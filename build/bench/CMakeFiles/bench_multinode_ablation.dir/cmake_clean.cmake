file(REMOVE_RECURSE
  "CMakeFiles/bench_multinode_ablation.dir/bench_multinode_ablation.cpp.o"
  "CMakeFiles/bench_multinode_ablation.dir/bench_multinode_ablation.cpp.o.d"
  "bench_multinode_ablation"
  "bench_multinode_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multinode_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
