# Empty compiler generated dependencies file for bench_example_a5.
# This may be replaced when dependencies are built.
