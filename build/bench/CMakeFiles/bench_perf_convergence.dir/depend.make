# Empty dependencies file for bench_perf_convergence.
# This may be replaced when dependencies are built.
