file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_convergence.dir/bench_perf_convergence.cpp.o"
  "CMakeFiles/bench_perf_convergence.dir/bench_perf_convergence.cpp.o.d"
  "bench_perf_convergence"
  "bench_perf_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
