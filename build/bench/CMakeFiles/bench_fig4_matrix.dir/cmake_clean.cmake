file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_matrix.dir/bench_fig4_matrix.cpp.o"
  "CMakeFiles/bench_fig4_matrix.dir/bench_fig4_matrix.cpp.o.d"
  "bench_fig4_matrix"
  "bench_fig4_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
