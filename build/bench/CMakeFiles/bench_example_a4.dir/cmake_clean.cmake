file(REMOVE_RECURSE
  "CMakeFiles/bench_example_a4.dir/bench_example_a4.cpp.o"
  "CMakeFiles/bench_example_a4.dir/bench_example_a4.cpp.o.d"
  "bench_example_a4"
  "bench_example_a4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example_a4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
