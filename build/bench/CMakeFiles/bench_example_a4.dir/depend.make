# Empty dependencies file for bench_example_a4.
# This may be replaced when dependencies are built.
