file(REMOVE_RECURSE
  "CMakeFiles/bench_open_cells.dir/bench_open_cells.cpp.o"
  "CMakeFiles/bench_open_cells.dir/bench_open_cells.cpp.o.d"
  "bench_open_cells"
  "bench_open_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_open_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
