# Empty dependencies file for bench_open_cells.
# This may be replaced when dependencies are built.
