# Empty dependencies file for bench_example_a6.
# This may be replaced when dependencies are built.
