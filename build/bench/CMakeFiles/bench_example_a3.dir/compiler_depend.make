# Empty compiler generated dependencies file for bench_example_a3.
# This may be replaced when dependencies are built.
