file(REMOVE_RECURSE
  "CMakeFiles/bench_example_a3.dir/bench_example_a3.cpp.o"
  "CMakeFiles/bench_example_a3.dir/bench_example_a3.cpp.o.d"
  "bench_example_a3"
  "bench_example_a3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example_a3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
