# Empty dependencies file for bench_example_a2.
# This may be replaced when dependencies are built.
