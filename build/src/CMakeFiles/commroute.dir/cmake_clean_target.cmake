file(REMOVE_RECURSE
  "libcommroute.a"
)
