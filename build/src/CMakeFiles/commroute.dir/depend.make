# Empty dependencies file for commroute.
# This may be replaced when dependencies are built.
