
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/compile.cpp" "src/CMakeFiles/commroute.dir/bgp/compile.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/bgp/compile.cpp.o.d"
  "/root/repo/src/bgp/policy.cpp" "src/CMakeFiles/commroute.dir/bgp/policy.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/bgp/policy.cpp.o.d"
  "/root/repo/src/bgp/random_topology.cpp" "src/CMakeFiles/commroute.dir/bgp/random_topology.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/bgp/random_topology.cpp.o.d"
  "/root/repo/src/bgp/session.cpp" "src/CMakeFiles/commroute.dir/bgp/session.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/bgp/session.cpp.o.d"
  "/root/repo/src/bgp/topology.cpp" "src/CMakeFiles/commroute.dir/bgp/topology.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/bgp/topology.cpp.o.d"
  "/root/repo/src/checker/explorer.cpp" "src/CMakeFiles/commroute.dir/checker/explorer.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/checker/explorer.cpp.o.d"
  "/root/repo/src/checker/minimize.cpp" "src/CMakeFiles/commroute.dir/checker/minimize.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/checker/minimize.cpp.o.d"
  "/root/repo/src/checker/successors.cpp" "src/CMakeFiles/commroute.dir/checker/successors.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/checker/successors.cpp.o.d"
  "/root/repo/src/checker/targeted.cpp" "src/CMakeFiles/commroute.dir/checker/targeted.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/checker/targeted.cpp.o.d"
  "/root/repo/src/core/graph.cpp" "src/CMakeFiles/commroute.dir/core/graph.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/core/graph.cpp.o.d"
  "/root/repo/src/core/path.cpp" "src/CMakeFiles/commroute.dir/core/path.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/core/path.cpp.o.d"
  "/root/repo/src/engine/channel.cpp" "src/CMakeFiles/commroute.dir/engine/channel.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/engine/channel.cpp.o.d"
  "/root/repo/src/engine/executor.cpp" "src/CMakeFiles/commroute.dir/engine/executor.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/engine/executor.cpp.o.d"
  "/root/repo/src/engine/runner.cpp" "src/CMakeFiles/commroute.dir/engine/runner.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/engine/runner.cpp.o.d"
  "/root/repo/src/engine/scheduler.cpp" "src/CMakeFiles/commroute.dir/engine/scheduler.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/engine/scheduler.cpp.o.d"
  "/root/repo/src/engine/state.cpp" "src/CMakeFiles/commroute.dir/engine/state.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/engine/state.cpp.o.d"
  "/root/repo/src/model/activation.cpp" "src/CMakeFiles/commroute.dir/model/activation.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/model/activation.cpp.o.d"
  "/root/repo/src/model/fairness.cpp" "src/CMakeFiles/commroute.dir/model/fairness.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/model/fairness.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/CMakeFiles/commroute.dir/model/model.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/model/model.cpp.o.d"
  "/root/repo/src/model/multi.cpp" "src/CMakeFiles/commroute.dir/model/multi.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/model/multi.cpp.o.d"
  "/root/repo/src/model/script_io.cpp" "src/CMakeFiles/commroute.dir/model/script_io.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/model/script_io.cpp.o.d"
  "/root/repo/src/realization/closure.cpp" "src/CMakeFiles/commroute.dir/realization/closure.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/realization/closure.cpp.o.d"
  "/root/repo/src/realization/compose.cpp" "src/CMakeFiles/commroute.dir/realization/compose.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/realization/compose.cpp.o.d"
  "/root/repo/src/realization/facts.cpp" "src/CMakeFiles/commroute.dir/realization/facts.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/realization/facts.cpp.o.d"
  "/root/repo/src/realization/machine_facts.cpp" "src/CMakeFiles/commroute.dir/realization/machine_facts.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/realization/machine_facts.cpp.o.d"
  "/root/repo/src/realization/matrix.cpp" "src/CMakeFiles/commroute.dir/realization/matrix.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/realization/matrix.cpp.o.d"
  "/root/repo/src/realization/paper_data.cpp" "src/CMakeFiles/commroute.dir/realization/paper_data.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/realization/paper_data.cpp.o.d"
  "/root/repo/src/realization/relation.cpp" "src/CMakeFiles/commroute.dir/realization/relation.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/realization/relation.cpp.o.d"
  "/root/repo/src/realization/transforms.cpp" "src/CMakeFiles/commroute.dir/realization/transforms.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/realization/transforms.cpp.o.d"
  "/root/repo/src/spp/builder.cpp" "src/CMakeFiles/commroute.dir/spp/builder.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/spp/builder.cpp.o.d"
  "/root/repo/src/spp/dispute_wheel.cpp" "src/CMakeFiles/commroute.dir/spp/dispute_wheel.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/spp/dispute_wheel.cpp.o.d"
  "/root/repo/src/spp/dot.cpp" "src/CMakeFiles/commroute.dir/spp/dot.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/spp/dot.cpp.o.d"
  "/root/repo/src/spp/gadgets.cpp" "src/CMakeFiles/commroute.dir/spp/gadgets.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/spp/gadgets.cpp.o.d"
  "/root/repo/src/spp/instance.cpp" "src/CMakeFiles/commroute.dir/spp/instance.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/spp/instance.cpp.o.d"
  "/root/repo/src/spp/random_gen.cpp" "src/CMakeFiles/commroute.dir/spp/random_gen.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/spp/random_gen.cpp.o.d"
  "/root/repo/src/spp/serialize.cpp" "src/CMakeFiles/commroute.dir/spp/serialize.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/spp/serialize.cpp.o.d"
  "/root/repo/src/spp/solver.cpp" "src/CMakeFiles/commroute.dir/spp/solver.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/spp/solver.cpp.o.d"
  "/root/repo/src/study/campaign.cpp" "src/CMakeFiles/commroute.dir/study/campaign.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/study/campaign.cpp.o.d"
  "/root/repo/src/support/error.cpp" "src/CMakeFiles/commroute.dir/support/error.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/support/error.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/commroute.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/strings.cpp" "src/CMakeFiles/commroute.dir/support/strings.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/support/strings.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/commroute.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/support/table.cpp.o.d"
  "/root/repo/src/trace/recording.cpp" "src/CMakeFiles/commroute.dir/trace/recording.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/trace/recording.cpp.o.d"
  "/root/repo/src/trace/seq_match.cpp" "src/CMakeFiles/commroute.dir/trace/seq_match.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/trace/seq_match.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/commroute.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/commroute.dir/trace/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
