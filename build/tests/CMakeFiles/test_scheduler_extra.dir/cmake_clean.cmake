file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_extra.dir/test_scheduler_extra.cpp.o"
  "CMakeFiles/test_scheduler_extra.dir/test_scheduler_extra.cpp.o.d"
  "test_scheduler_extra"
  "test_scheduler_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
