# Empty dependencies file for test_scheduler_extra.
# This may be replaced when dependencies are built.
