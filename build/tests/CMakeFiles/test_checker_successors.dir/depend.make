# Empty dependencies file for test_checker_successors.
# This may be replaced when dependencies are built.
