file(REMOVE_RECURSE
  "CMakeFiles/test_checker_successors.dir/test_checker_successors.cpp.o"
  "CMakeFiles/test_checker_successors.dir/test_checker_successors.cpp.o.d"
  "test_checker_successors"
  "test_checker_successors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checker_successors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
