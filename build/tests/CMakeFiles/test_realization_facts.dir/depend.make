# Empty dependencies file for test_realization_facts.
# This may be replaced when dependencies are built.
