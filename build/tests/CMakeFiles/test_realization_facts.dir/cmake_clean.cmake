file(REMOVE_RECURSE
  "CMakeFiles/test_realization_facts.dir/test_realization_facts.cpp.o"
  "CMakeFiles/test_realization_facts.dir/test_realization_facts.cpp.o.d"
  "test_realization_facts"
  "test_realization_facts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_realization_facts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
