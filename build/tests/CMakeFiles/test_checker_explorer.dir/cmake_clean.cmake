file(REMOVE_RECURSE
  "CMakeFiles/test_checker_explorer.dir/test_checker_explorer.cpp.o"
  "CMakeFiles/test_checker_explorer.dir/test_checker_explorer.cpp.o.d"
  "test_checker_explorer"
  "test_checker_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checker_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
