# Empty dependencies file for test_checker_explorer.
# This may be replaced when dependencies are built.
