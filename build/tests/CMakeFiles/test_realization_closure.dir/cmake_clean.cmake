file(REMOVE_RECURSE
  "CMakeFiles/test_realization_closure.dir/test_realization_closure.cpp.o"
  "CMakeFiles/test_realization_closure.dir/test_realization_closure.cpp.o.d"
  "test_realization_closure"
  "test_realization_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_realization_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
