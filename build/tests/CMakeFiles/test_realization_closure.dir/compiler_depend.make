# Empty compiler generated dependencies file for test_realization_closure.
# This may be replaced when dependencies are built.
