# Empty dependencies file for test_machine_facts.
# This may be replaced when dependencies are built.
