file(REMOVE_RECURSE
  "CMakeFiles/test_machine_facts.dir/test_machine_facts.cpp.o"
  "CMakeFiles/test_machine_facts.dir/test_machine_facts.cpp.o.d"
  "test_machine_facts"
  "test_machine_facts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_facts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
