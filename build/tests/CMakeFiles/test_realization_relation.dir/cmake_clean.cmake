file(REMOVE_RECURSE
  "CMakeFiles/test_realization_relation.dir/test_realization_relation.cpp.o"
  "CMakeFiles/test_realization_relation.dir/test_realization_relation.cpp.o.d"
  "test_realization_relation"
  "test_realization_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_realization_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
