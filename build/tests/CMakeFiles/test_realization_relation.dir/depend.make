# Empty dependencies file for test_realization_relation.
# This may be replaced when dependencies are built.
