file(REMOVE_RECURSE
  "CMakeFiles/test_gadget_families.dir/test_gadget_families.cpp.o"
  "CMakeFiles/test_gadget_families.dir/test_gadget_families.cpp.o.d"
  "test_gadget_families"
  "test_gadget_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gadget_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
