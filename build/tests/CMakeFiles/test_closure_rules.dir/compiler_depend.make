# Empty compiler generated dependencies file for test_closure_rules.
# This may be replaced when dependencies are built.
