file(REMOVE_RECURSE
  "CMakeFiles/test_closure_rules.dir/test_closure_rules.cpp.o"
  "CMakeFiles/test_closure_rules.dir/test_closure_rules.cpp.o.d"
  "test_closure_rules"
  "test_closure_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_closure_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
