file(REMOVE_RECURSE
  "CMakeFiles/test_examples_integration.dir/test_examples_integration.cpp.o"
  "CMakeFiles/test_examples_integration.dir/test_examples_integration.cpp.o.d"
  "test_examples_integration"
  "test_examples_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_examples_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
