# Empty compiler generated dependencies file for test_examples_integration.
# This may be replaced when dependencies are built.
