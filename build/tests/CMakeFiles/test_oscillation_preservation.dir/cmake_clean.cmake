file(REMOVE_RECURSE
  "CMakeFiles/test_oscillation_preservation.dir/test_oscillation_preservation.cpp.o"
  "CMakeFiles/test_oscillation_preservation.dir/test_oscillation_preservation.cpp.o.d"
  "test_oscillation_preservation"
  "test_oscillation_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oscillation_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
