# Empty compiler generated dependencies file for test_oscillation_preservation.
# This may be replaced when dependencies are built.
