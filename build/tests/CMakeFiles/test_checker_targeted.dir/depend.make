# Empty dependencies file for test_checker_targeted.
# This may be replaced when dependencies are built.
