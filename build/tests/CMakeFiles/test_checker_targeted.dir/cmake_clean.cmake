file(REMOVE_RECURSE
  "CMakeFiles/test_checker_targeted.dir/test_checker_targeted.cpp.o"
  "CMakeFiles/test_checker_targeted.dir/test_checker_targeted.cpp.o.d"
  "test_checker_targeted"
  "test_checker_targeted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checker_targeted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
