file(REMOVE_RECURSE
  "CMakeFiles/test_dispute_wheel.dir/test_dispute_wheel.cpp.o"
  "CMakeFiles/test_dispute_wheel.dir/test_dispute_wheel.cpp.o.d"
  "test_dispute_wheel"
  "test_dispute_wheel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dispute_wheel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
