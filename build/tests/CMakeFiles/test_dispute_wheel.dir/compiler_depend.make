# Empty compiler generated dependencies file for test_dispute_wheel.
# This may be replaced when dependencies are built.
