# Empty dependencies file for test_script_io.
# This may be replaced when dependencies are built.
