file(REMOVE_RECURSE
  "CMakeFiles/test_seq_match.dir/test_seq_match.cpp.o"
  "CMakeFiles/test_seq_match.dir/test_seq_match.cpp.o.d"
  "test_seq_match"
  "test_seq_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
