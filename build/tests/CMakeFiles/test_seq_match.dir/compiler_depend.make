# Empty compiler generated dependencies file for test_seq_match.
# This may be replaced when dependencies are built.
