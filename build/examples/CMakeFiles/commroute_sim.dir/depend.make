# Empty dependencies file for commroute_sim.
# This may be replaced when dependencies are built.
