file(REMOVE_RECURSE
  "CMakeFiles/commroute_sim.dir/commroute_sim.cpp.o"
  "CMakeFiles/commroute_sim.dir/commroute_sim.cpp.o.d"
  "commroute_sim"
  "commroute_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commroute_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
