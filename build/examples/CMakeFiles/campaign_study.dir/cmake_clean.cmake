file(REMOVE_RECURSE
  "CMakeFiles/campaign_study.dir/campaign_study.cpp.o"
  "CMakeFiles/campaign_study.dir/campaign_study.cpp.o.d"
  "campaign_study"
  "campaign_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
