# Empty dependencies file for campaign_study.
# This may be replaced when dependencies are built.
