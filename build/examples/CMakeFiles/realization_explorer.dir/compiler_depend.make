# Empty compiler generated dependencies file for realization_explorer.
# This may be replaced when dependencies are built.
