file(REMOVE_RECURSE
  "CMakeFiles/realization_explorer.dir/realization_explorer.cpp.o"
  "CMakeFiles/realization_explorer.dir/realization_explorer.cpp.o.d"
  "realization_explorer"
  "realization_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realization_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
