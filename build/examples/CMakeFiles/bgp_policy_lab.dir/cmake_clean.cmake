file(REMOVE_RECURSE
  "CMakeFiles/bgp_policy_lab.dir/bgp_policy_lab.cpp.o"
  "CMakeFiles/bgp_policy_lab.dir/bgp_policy_lab.cpp.o.d"
  "bgp_policy_lab"
  "bgp_policy_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_policy_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
