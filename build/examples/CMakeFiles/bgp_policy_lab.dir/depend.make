# Empty dependencies file for bgp_policy_lab.
# This may be replaced when dependencies are built.
