file(REMOVE_RECURSE
  "CMakeFiles/checker_tour.dir/checker_tour.cpp.o"
  "CMakeFiles/checker_tour.dir/checker_tour.cpp.o.d"
  "checker_tour"
  "checker_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
