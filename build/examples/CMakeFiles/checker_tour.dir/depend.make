# Empty dependencies file for checker_tour.
# This may be replaced when dependencies are built.
