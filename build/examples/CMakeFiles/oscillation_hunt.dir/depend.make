# Empty dependencies file for oscillation_hunt.
# This may be replaced when dependencies are built.
