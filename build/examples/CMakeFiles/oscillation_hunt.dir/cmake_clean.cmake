file(REMOVE_RECURSE
  "CMakeFiles/oscillation_hunt.dir/oscillation_hunt.cpp.o"
  "CMakeFiles/oscillation_hunt.dir/oscillation_hunt.cpp.o.d"
  "oscillation_hunt"
  "oscillation_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oscillation_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
