# Empty dependencies file for taxonomy_tour.
# This may be replaced when dependencies are built.
