file(REMOVE_RECURSE
  "CMakeFiles/taxonomy_tour.dir/taxonomy_tour.cpp.o"
  "CMakeFiles/taxonomy_tour.dir/taxonomy_tour.cpp.o.d"
  "taxonomy_tour"
  "taxonomy_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxonomy_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
