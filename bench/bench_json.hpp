// Machine-readable bench output. Every perf bench supports a JSON-only
// mode (the --json flag or COMMROUTE_BENCH_JSON=1): the human banner and
// tables are suppressed and the run's metrics are written to
// BENCH_<name>.json in the working directory, establishing a perf
// trajectory that CI can archive per commit.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/meta.hpp"
#include "support/error.hpp"

namespace commroute::bench {

inline bool& json_mode_flag() {
  static bool flag = [] {
    const char* env = std::getenv("COMMROUTE_BENCH_JSON");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return flag;
}

/// True after --json was parsed or COMMROUTE_BENCH_JSON=1 is set.
inline bool json_mode() { return json_mode_flag(); }

/// Strips --json from argv (so later flag parsing never sees it) and
/// enables JSON mode when present. Call first thing in main().
inline bool parse_json_mode(int& argc, char** argv) {
  obs::set_process_argv(argc, argv);  // stamp the artifact headers
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json_mode_flag() = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  argv[argc] = nullptr;
  return json_mode();
}

/// Human-output stream: std::cout normally, a discarding stream in JSON
/// mode (a null streambuf sets badbit; insertions become no-ops).
inline std::ostream& out() {
  static std::ostream null_stream(nullptr);
  return json_mode() ? null_stream : std::cout;
}

/// Accumulates one bench run's top-level metrics and per-case result
/// rows, then renders/writes BENCH_<name>.json:
///   {"name":...,"metrics":{"wall_ms":...,...},"results":[{...},...]}
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void set_metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }
  void add_result(const obs::JsonWriter& row) {
    results_.push_back(row.str());
  }

  std::string to_json() const {
    obs::JsonWriter metrics;
    for (const auto& [key, value] : metrics_) {
      metrics.field(key, value);
    }
    std::string rows = "[";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      if (i > 0) {
        rows += ',';
      }
      rows += results_[i];
    }
    rows += ']';
    obs::JsonWriter meta;
    obs::add_metadata_fields(meta);
    obs::JsonWriter top;
    top.field("name", name_);
    top.raw_field("meta", meta.str());
    top.raw_field("metrics", metrics.str());
    top.raw_field("results", rows);
    return top.str();
  }

  /// Writes BENCH_<name>.json to the working directory; returns the path.
  std::string write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream file(path, std::ios::trunc);
    CR_REQUIRE(file.is_open(), "cannot write " + path);
    file << to_json() << "\n";
    return path;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::string> results_;
};

}  // namespace commroute::bench
