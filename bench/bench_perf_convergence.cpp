// Extension experiment (E-PERF2): how the communication model affects
// convergence *cost* on safe instances — steps and messages to strong
// quiescence under deterministic round-robin and randomized fair
// schedules, across all 24 models and three instance families. Run with
// --json to write BENCH_perf_convergence.json (per model x family rows
// plus wall-ms / steps-per-sec totals).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "bgp/compile.hpp"
#include "bgp/random_topology.hpp"
#include "engine/runner.hpp"
#include "spp/gadgets.hpp"

namespace {

using namespace commroute;
using model::Model;

struct Family {
  std::string name;
  spp::Instance instance;
};

std::uint64_t median(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::parse_json_mode(argc, argv);
  bench::BenchJson output("perf_convergence");
  bench::banner(
      "Convergence cost across the taxonomy (steps / messages to "
      "quiescence)");

  Rng topo_rng(7);
  std::vector<Family> families;
  families.push_back({"GOOD-GADGET", spp::good_gadget()});
  families.push_back({"SHORTEST-RING-8", spp::shortest_ring(8)});
  families.push_back(
      {"GAO-REXFORD-8",
       bgp::compile_gao_rexford(
           bgp::random_as_topology(topo_rng, {.as_count = 8}), "as0")});

  bool ok = true;
  double total_ms = 0.0;
  std::uint64_t total_steps = 0;
  const auto t_start = std::chrono::steady_clock::now();
  for (const Family& family : families) {
    bench::out() << family.name << " (" << family.instance.node_count()
                 << " nodes):\n";
    TextTable table;
    table.set_header({"model", "rr steps", "rr msgs", "rand steps (med)",
                      "rand msgs (med)", "rand drops (med)"});
    for (const Model& m : Model::all()) {
      engine::RoundRobinScheduler rr(m, family.instance);
      const auto rr_result =
          engine::run(family.instance, rr,
                      {.max_steps = 100000, .record_trace = false});
      ok = ok && rr_result.outcome == engine::Outcome::kConverged;
      total_steps += rr_result.steps;

      std::vector<std::uint64_t> steps, msgs, drops;
      for (std::uint64_t seed = 0; seed < 7; ++seed) {
        engine::RandomFairScheduler rand_sched(
            m, family.instance, Rng(seed * 101 + m.index()),
            {.drop_prob = 0.2, .sweep_period = 8});
        const auto r = engine::run(
            family.instance, rand_sched,
            {.max_steps = 200000, .record_trace = false});
        ok = ok && r.outcome == engine::Outcome::kConverged;
        steps.push_back(r.steps);
        msgs.push_back(r.messages_sent);
        drops.push_back(r.messages_dropped);
        total_steps += r.steps;
      }
      table.add_row({m.name(), std::to_string(rr_result.steps),
                     std::to_string(rr_result.messages_sent),
                     std::to_string(median(steps)),
                     std::to_string(median(msgs)),
                     std::to_string(median(drops))});
      obs::JsonWriter row;
      row.field("name", family.name)
          .field("model", m.name())
          .field("rr_steps", rr_result.steps)
          .field("rr_messages", rr_result.messages_sent)
          .field("rand_steps_median", median(steps))
          .field("rand_messages_median", median(msgs))
          .field("rand_drops_median", median(drops));
      output.add_result(row);
    }
    bench::out() << table.render() << "\n";
  }
  total_ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t_start)
                 .count();

  bench::out() << "Reading guide: polling models (wxA) drain channels "
                  "and need the fewest activations; message-passing "
                  "models (wxO) need the most; unreliable variants pay "
                  "for retransmitted state through extra activations, "
                  "not extra messages.\n";

  if (json) {
    output.set_metric("wall_ms", total_ms);
    output.set_metric(
        "steps_per_sec",
        total_ms > 0.0 ? static_cast<double>(total_steps) / (total_ms / 1e3)
                       : 0.0);
    output.write();
    std::cout << output.to_json() << "\n";
  }

  return bench::verdict(ok,
                        "all safe instances converged in all 24 models "
                        "under both schedulers");
}
