// Scenario-subsystem microbenchmarks (google-benchmark): perturbation
// throughput, fault-schedule drawing, faulted DES runs, and the
// adversarial sweep machinery. Run with --json to write
// BENCH_perf_scenario.json instead of the console table.
#include <benchmark/benchmark.h>

#include "bench_gbench.hpp"
#include "scenario/fault.hpp"
#include "scenario/perturb.hpp"
#include "scenario/search.hpp"
#include "sim/sim_runner.hpp"
#include "spp/gadgets.hpp"
#include "spp/random_gen.hpp"

namespace {

using namespace commroute;

const spp::Instance& medium_instance() {
  static const spp::Instance inst = [] {
    Rng rng(42);
    spp::RandomInstanceParams params;
    params.nodes = 12;
    params.extra_edge_prob = 0.3;
    params.max_paths_per_node = 8;
    return spp::random_shortest(rng, params);
  }();
  return inst;
}

void BM_PerturbTieBreak(benchmark::State& state) {
  const spp::Instance& inst = medium_instance();
  scenario::PerturbSpec spec;
  spec.kind = scenario::PerturbKind::kTieBreakFlip;
  spec.count = 2;
  std::uint64_t seed = 1;
  std::uint64_t edits = 0;
  for (auto _ : state) {
    const scenario::PerturbResult r = scenario::perturb(inst, spec, seed++);
    edits += r.record.edits.size();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  benchmark::DoNotOptimize(edits);
}
BENCHMARK(BM_PerturbTieBreak);

void BM_PerturbRankSwap(benchmark::State& state) {
  const spp::Instance& inst = medium_instance();
  scenario::PerturbSpec spec;
  spec.kind = scenario::PerturbKind::kRankSwap;
  spec.count = 4;
  spec.window = 3;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::perturb(inst, spec, seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PerturbRankSwap);

void BM_RandomFaultSchedule(benchmark::State& state) {
  const spp::Instance& inst = medium_instance();
  scenario::FaultScheduleSpec spec;
  spec.link_flaps = 2;
  spec.session_resets = 1;
  spec.reboots = 1;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scenario::random_fault_schedule(inst, spec, seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomFaultSchedule);

void BM_SimRunFaulted(benchmark::State& state) {
  const spp::Instance& inst = medium_instance();
  scenario::FaultScheduleSpec spec;
  spec.link_flaps = 2;
  spec.reboots = 1;
  spec.window_us = 20000;
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    scenario::FaultSchedule schedule =
        scenario::random_fault_schedule(inst, spec, seed);
    sim::SimOptions opts;
    opts.model = model::Model::parse("U1O");
    opts.link.latency_us = 1000;
    opts.seed = seed++;
    opts.max_steps = 20000;
    opts.faults = &schedule;
    const sim::SimResult result = sim::run(inst, opts);
    steps += result.run.steps;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SimRunFaulted);

void BM_BreakSearchSweep(benchmark::State& state) {
  // The sweep machinery without a multi-second witness extraction:
  // GOOD-GADGET resists single tie-break flips, so every attempt is a
  // fast convergent explore and the search reports found == false.
  const spp::Instance base = spp::good_gadget();
  const model::Model m = model::Model::parse("R1O");
  scenario::BreakSearchOptions opts;
  opts.specs.push_back(scenario::parse_perturb_spec("tiebreak:1"));
  opts.seeds_per_spec = 4;
  opts.explore.max_states = 50000;
  std::uint64_t explorations = 0;
  for (auto _ : state) {
    const scenario::BreakSearchResult r =
        scenario::find_breaking_perturbation(base, m, opts);
    explorations += r.explorations;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(explorations));
}
BENCHMARK(BM_BreakSearchSweep);

}  // namespace

int main(int argc, char** argv) {
  return commroute::bench::gbench_main("perf_scenario", "ops_per_sec",
                                       argc, argv);
}
