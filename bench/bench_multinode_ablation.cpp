// Ablation over the "number of nodes updating" dimension (Def. 2.6,
// Ex. A.6): the same base model behaves differently when every node
// updates simultaneously. Single-node polling provably converges on
// DISAGREE (Thm. 3.8), synchronous polling oscillates; safe instances
// converge either way but at different activation costs.
#include <iostream>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "spp/gadgets.hpp"

int main() {
  using namespace commroute;
  using model::Model;

  bench::banner("Ablation — single-node vs. synchronous activation");

  struct Case {
    std::string instance_name;
    spp::Instance instance;
  };
  std::vector<Case> cases;
  cases.push_back({"DISAGREE", spp::disagree()});
  cases.push_back({"GOOD-GADGET", spp::good_gadget()});
  cases.push_back({"SHORTEST-RING-6", spp::shortest_ring(6)});

  bool ok = true;
  TextTable table;
  table.set_header({"instance", "base model", "|U|=1 (round-robin)",
                    "U=V (synchronous)", "rr activations",
                    "sync activations"});
  for (const Case& c : cases) {
    for (const char* base : {"R1A", "REA", "REO", "RMS"}) {
      const Model m = Model::parse(base);

      engine::RoundRobinScheduler rr(m, c.instance);
      const auto one = engine::run(c.instance, rr,
                                   {.max_steps = 20000,
                                    .record_trace = false});

      engine::SynchronousScheduler sync(m, c.instance);
      const auto every = engine::run(c.instance, sync,
                                     {.max_steps = 20000,
                                      .record_trace = false});

      const auto activations = [](const engine::RunResult& r) {
        std::uint64_t total = 0;
        for (const auto n : r.node_activations) {
          total += n;
        }
        return total;
      };
      table.add_row({c.instance_name, base,
                     engine::to_string(one.outcome),
                     engine::to_string(every.outcome),
                     std::to_string(activations(one)),
                     std::to_string(activations(every))});

      if (c.instance_name == "DISAGREE") {
        // Polling: converges single-node, oscillates synchronously.
        if (std::string(base) == "R1A" || std::string(base) == "REA") {
          ok = ok && one.outcome == engine::Outcome::kConverged;
          ok = ok && every.outcome == engine::Outcome::kOscillating;
        }
      } else {
        ok = ok && one.outcome == engine::Outcome::kConverged;
        ok = ok && every.outcome == engine::Outcome::kConverged;
      }
    }
  }
  std::cout << table.render() << "\n";
  std::cout << "Synchronous rounds revive the DISAGREE oscillation even "
               "under full polling — the paper's Ex. A.6: multi-node "
               "polling is strictly stronger than the |U| = 1 polling "
               "models of the main taxonomy.\n";

  return bench::verdict(ok,
                        "|U| = 1 vs. U = V separation on DISAGREE "
                        "reproduced; safe instances unaffected");
}
