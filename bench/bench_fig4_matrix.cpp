// Reproduces Figure 4: the ability of the 12 unreliable-channel models to
// realize each of the 24 models. Same methodology as bench_fig3_matrix.
#include <iostream>

#include "bench_common.hpp"
#include "realization/matrix.hpp"

int main() {
  using namespace commroute;
  using namespace commroute::realization;

  bench::banner("Figure 4 — realization by unreliable-channel models");

  const RealizationTable table = RealizationTable::closure();

  std::cout << "Computed matrix:\n\n";
  std::cout << render_matrix(table, Figure::kFig4Unreliable) << "\n";
  std::cout << "Published matrix:\n\n";
  std::cout << render_paper_matrix(Figure::kFig4Unreliable) << "\n";

  const MatrixComparison cmp =
      compare_with_paper(table, Figure::kFig4Unreliable);
  std::cout << "Comparison: " << cmp.summary() << "\n";
  for (const CellDiff& d : cmp.diffs) {
    std::cout << "  [" << d.kind << "] " << d.realized.name() << " in "
              << d.realizer.name() << ": computed '"
              << d.computed.paper_notation() << "' vs published '"
              << d.published.paper_notation() << "'\n";
  }

  std::cout << "\nHeadline checks from Sec. 3.5:\n";
  const model::Model ums = model::Model::parse("UMS");
  bool ums_universal = true;
  for (const model::Model& a : model::Model::all()) {
    ums_universal = ums_universal &&
                    (table.cell(a, ums).lo == Strength::kExact);
  }
  std::cout << "  UMS exactly realizes all 24 models: "
            << (ums_universal ? "yes" : "NO") << "\n";

  return bench::verdict(cmp.equal == cmp.cells && ums_universal,
                        "Figure 4 reproduced cell-for-cell (276/276)");
}
