// Reproduces Figure 3: the ability of the 12 reliable-channel models to
// realize each of the 24 models, derived by closing the paper's
// foundational theorems (Sec. 3.2/3.3) under the transitivity rules of
// Figures 1 and 2, then compared cell-by-cell against the published
// matrix.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "realization/matrix.hpp"

int main() {
  using namespace commroute;
  using namespace commroute::realization;

  bench::banner("Figure 3 — realization by reliable-channel models");

  const auto t0 = std::chrono::steady_clock::now();
  const RealizationTable table = RealizationTable::closure();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  std::cout << "Computed closure of " << foundational_facts().size()
            << " foundational facts in " << ms << " ms\n\n";
  std::cout << "Computed matrix (rows: realized model A; columns: "
               "realizing model B;\n '.' = unknown, '-1' = oscillations "
               "not preserved, 2/3/4 = subsequence /\n repetition / exact, "
               ">= and <= are open bounds):\n\n";
  std::cout << render_matrix(table, Figure::kFig3Reliable) << "\n";

  std::cout << "Published matrix (transcribed from the paper):\n\n";
  std::cout << render_paper_matrix(Figure::kFig3Reliable) << "\n";

  const MatrixComparison cmp =
      compare_with_paper(table, Figure::kFig3Reliable);
  std::cout << "Comparison: " << cmp.summary() << "\n";
  for (const CellDiff& d : cmp.diffs) {
    std::cout << "  [" << d.kind << "] " << d.realized.name() << " in "
              << d.realizer.name() << ": computed '"
              << d.computed.paper_notation() << "' vs published '"
              << (d.published.paper_notation().empty()
                      ? "(blank)"
                      : d.published.paper_notation())
              << "'\n";
    if (d.kind == "tighter") {
      std::cout << table.explain(d.realized, d.realizer);
    }
  }

  return bench::verdict(
      !cmp.has_contradiction() && !cmp.has_looser(),
      "every published Figure 3 bound re-derived, no contradictions "
      "(tighter cells are new corollaries)");
}
