// Reproduces Example A.4 / Figure 8 (Prop. 3.11): the REA execution
// below cannot be realized *with repetition* in R1O, but can as a
// subsequence (the paper's explicit witness inserts suad just before
// subd) — matching the REA-row/R1O-column entry "2" of Fig. 3.
#include <iostream>

#include "bench_common.hpp"
#include "checker/targeted.hpp"
#include "spp/gadgets.hpp"
#include "trace/recording.hpp"
#include "trace/seq_match.hpp"

int main() {
  using namespace commroute;
  using model::Model;
  using trace::MatchKind;

  bench::banner(
      "Example A.4 / Figure 8 — REA not realizable with repetition in R1O");

  const spp::Instance inst = spp::example_a4();
  std::cout << inst.to_string() << "\n";

  const auto rec = trace::record_script(
      inst,
      bench::named_script(inst, {"d", "a", "u", "b", "u", "s"}, true),
      Model::parse("REA"));
  std::cout << "The REA execution:\n";
  bench::print_activation_table(inst, rec);

  // The channel invariant the proof leans on.
  const ChannelIdx us = inst.graph().channel(inst.graph().node("u"),
                                             inst.graph().node("s"));
  const auto prefix = trace::record_script(
      inst, bench::named_script(inst, {"d", "a", "u", "b", "u"}, true));
  std::cout << "\nChannel (u,s) before the last step: [";
  for (std::size_t i = 0; i < prefix.final_state.channel(us).size(); ++i) {
    std::cout << (i ? ", " : "")
              << inst.path_name(prefix.final_state.channel(us).at(i).path);
  }
  std::cout << "]  (the paper: first uad, second ubd)\n\n";

  bool ok = true;

  const auto rep = checker::find_realization(
      inst, Model::parse("R1O"), rec.trace, MatchKind::kRepetition);
  std::cout << "Realization with repetition in R1O: " << rep.summary()
            << "\n";
  ok = ok && !rep.found && rep.exhaustive;

  const auto sub = checker::find_realization(
      inst, Model::parse("R1O"), rec.trace, MatchKind::kSubsequence);
  std::cout << "Realization as a subsequence in R1O: " << sub.summary()
            << "\n";
  ok = ok && sub.found;

  if (sub.found) {
    std::cout << "\nSubsequence witness (" << sub.witness.size()
              << " steps; note the extra suad state the paper predicts):\n";
    const auto replay =
        trace::record_script(inst, sub.witness, Model::parse("R1O"));
    bench::print_activation_table(inst, replay);
    const NodeId s = inst.graph().node("s");
    bool saw_suad = false;
    for (const auto& a : replay.trace.states()) {
      saw_suad = saw_suad || inst.path_name(a[s]) == "suad";
    }
    std::cout << "Witness passes through suad: " << (saw_suad ? "yes" : "no")
              << "\n";
    ok = ok && saw_suad;
  }

  return bench::verdict(ok,
                        "Prop. 3.11 machine-checked: repetition "
                        "impossible, subsequence witness found (via suad)");
}
