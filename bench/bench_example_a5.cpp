// Reproduces Example A.5 / Figure 9 (Props. 3.12/3.13): the REA (also
// REO-legal) execution below cannot be exactly realized in R1S — matching
// the REA/REO rows' R1S-column entries "3" of Fig. 3 — though repetition
// is possible.
#include <iostream>

#include "bench_common.hpp"
#include "checker/targeted.hpp"
#include "spp/gadgets.hpp"

int main() {
  using namespace commroute;
  using model::Model;
  using trace::MatchKind;

  bench::banner(
      "Example A.5 / Figure 9 — REA not exactly realizable in R1S");

  const spp::Instance inst = spp::example_a5();
  std::cout << inst.to_string() << "\n";

  const auto rec = trace::record_script(
      inst,
      bench::named_script(inst, {"d", "b", "c", "x", "s", "a", "c", "s"},
                          true),
      Model::parse("REA"));
  std::cout << "The REA execution:\n";
  bench::print_activation_table(inst, rec);
  std::cout << "\n";

  bool ok = true;

  const auto exact = checker::find_realization(
      inst, Model::parse("R1S"), rec.trace, MatchKind::kExact);
  std::cout << "Exact realization in R1S: " << exact.summary() << "\n";
  ok = ok && !exact.found && exact.exhaustive;

  const auto rep = checker::find_realization(
      inst, Model::parse("R1S"), rec.trace, MatchKind::kRepetition);
  std::cout << "Realization with repetition in R1S: " << rep.summary()
            << "\n";
  ok = ok && rep.found;

  // Prop. 3.13: the same sequence is an REO sequence (each step read one
  // message per channel), so REO is also not exactly realizable in R1S.
  const auto reo_rec = trace::record_script(
      inst,
      bench::named_script(inst, {"d", "b", "c", "x", "s", "a", "c", "s"},
                          false),
      Model::parse("REO"));
  const bool same_trace = reo_rec.trace == rec.trace;
  std::cout << "The REO replay induces the identical trace (Prop. 3.13's "
               "observation): "
            << (same_trace ? "yes" : "no") << "\n";
  ok = ok && same_trace;

  return bench::verdict(ok,
                        "Props. 3.12/3.13 machine-checked: no exact R1S "
                        "realization; repetition exists");
}
