// Engine microbenchmarks (google-benchmark): step execution throughput
// per model, state hashing/copying, and scheduler overhead. Run with
// --json to write BENCH_perf_engine.json instead of the console table.
#include <benchmark/benchmark.h>

#include "bench_gbench.hpp"
#include "engine/executor.hpp"
#include "engine/runner.hpp"
#include "engine/scheduler.hpp"
#include "spp/gadgets.hpp"
#include "spp/random_gen.hpp"

namespace {

using namespace commroute;
using model::Model;

const spp::Instance& medium_instance() {
  static const spp::Instance inst = [] {
    Rng rng(42);
    spp::RandomInstanceParams params;
    params.nodes = 12;
    params.extra_edge_prob = 0.3;
    params.max_paths_per_node = 8;
    return spp::random_shortest(rng, params);
  }();
  return inst;
}

void BM_ExecuteStep(benchmark::State& state) {
  const Model m = Model::from_index(static_cast<int>(state.range(0)));
  const spp::Instance& inst = medium_instance();
  engine::RandomFairScheduler sched(m, inst, Rng(1),
                                    {.drop_prob = 0.1, .sweep_period = 32});
  engine::NetworkState net(inst);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto step = sched.next(net);
    benchmark::DoNotOptimize(engine::execute_step(net, step));
    if (++steps % 4096 == 0) {
      net = engine::NetworkState(inst);  // reset periodically
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(m.name());
}
BENCHMARK(BM_ExecuteStep)->DenseRange(0, 23, 6);

void BM_StateHash(benchmark::State& state) {
  const spp::Instance& inst = medium_instance();
  engine::RoundRobinScheduler sched(Model::parse("RMS"), inst);
  engine::NetworkState net(inst);
  for (int i = 0; i < 30; ++i) {
    engine::execute_step(net, sched.next(net));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.hash());
  }
}
BENCHMARK(BM_StateHash);

void BM_StateCopy(benchmark::State& state) {
  const spp::Instance& inst = medium_instance();
  engine::RoundRobinScheduler sched(Model::parse("RMS"), inst);
  engine::NetworkState net(inst);
  for (int i = 0; i < 30; ++i) {
    engine::execute_step(net, sched.next(net));
  }
  for (auto _ : state) {
    engine::NetworkState copy = net;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_StateCopy);

void BM_FullConvergenceRun(benchmark::State& state) {
  const Model m = Model::from_index(static_cast<int>(state.range(0)));
  const spp::Instance& inst = medium_instance();
  for (auto _ : state) {
    engine::RoundRobinScheduler sched(m, inst);
    const auto result = engine::run(
        inst, sched, {.max_steps = 100000, .record_trace = false});
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(m.name());
}
BENCHMARK(BM_FullConvergenceRun)->DenseRange(0, 23, 6);

void BM_SchedulerNext(benchmark::State& state) {
  const spp::Instance& inst = medium_instance();
  engine::RandomFairScheduler sched(Model::parse("UMS"), inst, Rng(3),
                                    {.drop_prob = 0.2});
  engine::NetworkState net(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.next(net));
  }
}
BENCHMARK(BM_SchedulerNext);

}  // namespace

int main(int argc, char** argv) {
  return commroute::bench::gbench_main("perf_engine", "steps_per_sec",
                                       argc, argv);
}
