// Extension experiment: resolving the paper's open (blank) matrix cells.
//
// Figures 3 and 4 leave many cells blank — mostly the UEO / UEF / U1A /
// UMA / UEA columns. The exhaustive checker shows DISAGREE oscillates
// under R1O yet provably cannot oscillate under any of those five
// unreliable models, so none of them preserves R1O's oscillations. Adding
// these five machine-checked facts to the closure resolves 70 of the 115
// blank cells; the 45 still open all relate members of the strong E/A
// family to one another, where DISAGREE cannot separate.
#include <iostream>

#include "bench_common.hpp"
#include "checker/explorer.hpp"
#include "realization/machine_facts.hpp"
#include "realization/matrix.hpp"
#include "spp/gadgets.hpp"

int main() {
  using namespace commroute;
  using namespace commroute::realization;
  using model::Model;

  bench::banner("Open cells of Figures 3/4 — machine-checked resolution");

  const spp::Instance disagree = spp::disagree();
  std::cout << "Checker evidence on DISAGREE (channel bound 3, never "
               "hit):\n";
  {
    const auto weak = checker::explore(disagree, Model::parse("R1O"),
                                       {.max_channel_length = 3});
    std::cout << "  R1O: " << weak.summary() << "\n";
  }
  for (const char* name : {"UEO", "UEF", "U1A", "UMA", "UEA"}) {
    const auto strong = checker::explore(disagree, Model::parse(name),
                                         {.max_channel_length = 3});
    std::cout << "  " << name << ": " << strong.summary() << "\n";
  }
  const bool verified = verify_machine_facts();
  std::cout << "\nMachine-checked facts verified: "
            << (verified ? "yes" : "NO") << "\n";
  std::cout << "  => hi(R1O, B) = -1 for B in {UEO, UEF, U1A, UMA, UEA}\n\n";

  const RealizationTable base = RealizationTable::closure();
  const RealizationTable extended = extended_closure();
  const std::size_t blanks_before = count_unknown_cells(base);
  const std::size_t blanks_after = count_unknown_cells(extended);
  std::cout << "Fully unknown cells: " << blanks_before
            << " from the paper's facts alone, " << blanks_after
            << " after adding the five machine-checked facts.\n\n";

  std::cout << "Extended Figure 3 (paper blanks now resolved):\n\n"
            << render_matrix(extended, Figure::kFig3Reliable) << "\n";
  std::cout << "Extended Figure 4:\n\n"
            << render_matrix(extended, Figure::kFig4Unreliable) << "\n";

  // Consistency: the extension must refine, never contradict, the paper.
  bool consistent = true;
  for (const Model& a : Model::all()) {
    for (const Model& b : Model::all()) {
      if (a == b) {
        continue;
      }
      consistent =
          consistent && paper_bound(a, b).overlaps(extended.cell(a, b));
    }
  }
  std::cout << "Extended table consistent with every published cell: "
            << (consistent ? "yes" : "NO") << "\n";

  return bench::verdict(verified && consistent && blanks_after < blanks_before,
                        "open cells resolved by machine-checked "
                        "DISAGREE separations, consistent with the paper");
}
