// Simulation microbenchmarks (google-benchmark): DES event-queue
// throughput, latency sampling cost, and full timed runs across link
// models. Run with --json to write BENCH_perf_sim.json instead of the
// console table.
#include <benchmark/benchmark.h>

#include "bench_gbench.hpp"
#include "sim/event_queue.hpp"
#include "sim/sim_runner.hpp"
#include "spp/gadgets.hpp"
#include "spp/random_gen.hpp"

namespace {

using namespace commroute;

const spp::Instance& medium_instance() {
  static const spp::Instance inst = [] {
    Rng rng(42);
    spp::RandomInstanceParams params;
    params.nodes = 12;
    params.extra_edge_prob = 0.3;
    params.max_paths_per_node = 8;
    return spp::random_shortest(rng, params);
  }();
  return inst;
}

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  Rng rng(7);
  std::uint64_t t = 0;
  for (auto _ : state) {
    sim::Event ev;
    ev.time = t + rng.below(1000);
    ev.kind = sim::Event::Kind::kArrival;
    ev.channel = 0;
    queue.push(ev);
    if (queue.size() > 256) {
      t = queue.pop().time;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SampleLatency(benchmark::State& state) {
  sim::LinkModel link;
  link.dist = static_cast<sim::LatencyDist>(state.range(0));
  link.latency_us = 1000;
  link.jitter_us = 200;
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(link.sample_latency(rng));
  }
  state.SetLabel(sim::to_string(link.dist));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SampleLatency)->DenseRange(0, 2);

void BM_SimRunBadGadget(benchmark::State& state) {
  const spp::Instance inst = spp::bad_gadget();
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sim::SimOptions opts;
    opts.model = model::Model::parse("U1O");
    opts.link.latency_us = 1000;
    opts.link.jitter_us = 500;
    opts.link.dist = sim::LatencyDist::kUniform;
    opts.link.loss_prob = 0.1;
    opts.seed = seed++;
    opts.max_steps = 5000;
    const sim::SimResult result = sim::run(inst, opts);
    steps += result.run.steps;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SimRunBadGadget);

void BM_SimRunMedium(benchmark::State& state) {
  const spp::Instance& inst = medium_instance();
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sim::SimOptions opts;
    opts.model = model::Model::parse("RMS");
    opts.link.dist = sim::LatencyDist::kExponential;
    opts.link.latency_us = 2000;
    opts.seed = seed++;
    opts.max_steps = 20000;
    const sim::SimResult result = sim::run(inst, opts);
    steps += result.run.steps;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SimRunMedium);

}  // namespace

int main(int argc, char** argv) {
  return commroute::bench::gbench_main("perf_sim", "steps_per_sec", argc,
                                       argv);
}
