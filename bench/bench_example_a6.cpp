// Reproduces Example A.6: with multiple nodes activated per step, even a
// polling discipline (each node processing all messages of one channel)
// oscillates on DISAGREE — while single-node R1A provably converges.
// Prints the paper's X(t) cycle table.
#include <iostream>

#include "bench_common.hpp"
#include "checker/explorer.hpp"
#include "engine/runner.hpp"
#include "spp/gadgets.hpp"

int main() {
  using namespace commroute;
  using model::Model;
  using model::ReadSpec;

  bench::banner("Example A.6 — multi-node polling oscillates on DISAGREE");

  const spp::Instance inst = spp::disagree();
  const Graph& g = inst.graph();
  const NodeId d = g.node("d");
  const NodeId x = g.node("x");
  const NodeId y = g.node("y");

  // X(1) = {(d,d)}: d activates. Then alternate
  //   X = {(d,x),(d,y)}  — both poll their channel from d — and
  //   X = {(x,y),(y,x)}  — both poll their channel from each other.
  model::ActivationScript script;
  script.push_back(model::poll_one_step(inst, d, x));
  const std::size_t loop_from = script.size();
  script.push_back(model::make_multi_step(
      {x, y}, {ReadSpec{g.channel(d, x), std::nullopt, {}},
               ReadSpec{g.channel(d, y), std::nullopt, {}}}));
  script.push_back(model::make_multi_step(
      {x, y}, {ReadSpec{g.channel(y, x), std::nullopt, {}},
               ReadSpec{g.channel(x, y), std::nullopt, {}}}));
  script.push_back(model::make_multi_step(
      {d}, {ReadSpec{g.channel(x, d), std::nullopt, {}},
            ReadSpec{g.channel(y, d), std::nullopt, {}}}));

  engine::ScriptedScheduler sched(script, loop_from);
  const engine::RunResult run = engine::run(inst, sched,
                                            {.max_steps = 100});

  std::cout << "Multi-node R1A-style execution (paper's cycle):\n\n";
  TextTable table;
  table.set_header({"t", "pi_x(t)", "pi_y(t)"});
  for (std::size_t t = 0; t < std::min<std::size_t>(run.trace.size(), 12);
       ++t) {
    table.add_row({std::to_string(t),
                   inst.path_name(run.trace.at(t)[x]),
                   inst.path_name(run.trace.at(t)[y])});
  }
  std::cout << table.render() << "\n";
  std::cout << "Outcome: " << engine::to_string(run.outcome)
            << " (cycle length " << run.cycle_length << ")\n\n";

  bool ok = run.outcome == engine::Outcome::kOscillating;

  // Both nodes flip together: xd/yd <-> xyd/yxd.
  bool direct_pair = false, indirect_pair = false;
  for (std::size_t t = run.cycle_start; t < run.trace.size(); ++t) {
    const std::string pair = inst.path_name(run.trace.at(t)[x]) + "/" +
                             inst.path_name(run.trace.at(t)[y]);
    direct_pair = direct_pair || pair == "xd/yd";
    indirect_pair = indirect_pair || pair == "xyd/yxd";
  }
  std::cout << "Cycle visits xd/yd and xyd/yxd simultaneously: "
            << ((direct_pair && indirect_pair) ? "yes" : "no") << "\n";
  ok = ok && direct_pair && indirect_pair;

  // Contrast: single-node R1A provably converges on DISAGREE.
  const auto r1a = checker::explore(inst, Model::parse("R1A"),
                                    {.max_channel_length = 3});
  std::cout << "Single-node R1A (|U| = 1): " << r1a.summary() << "\n";
  ok = ok && r1a.proves_no_oscillation();

  return bench::verdict(
      ok,
      "multi-node polling oscillates where single-node polling provably "
      "converges — Ex. A.6's strictness of the |U| = 1 restriction");
}
