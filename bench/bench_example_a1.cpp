// Reproduces Example A.1 / Figure 5 (DISAGREE) and Theorem 3.8's
// separation: DISAGREE oscillates under R1O (the paper's hand-built
// execution) yet provably cannot oscillate under REO, REF, R1A, RMA, REA.
// The model checker verifies both directions for all 24 models.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "checker/explorer.hpp"
#include "engine/runner.hpp"
#include "spp/dispute_wheel.hpp"
#include "spp/gadgets.hpp"
#include "spp/solver.hpp"

int main() {
  using namespace commroute;
  using model::Model;

  bench::banner("Example A.1 / Figure 5 — DISAGREE");

  const spp::Instance inst = spp::disagree();
  std::cout << inst.to_string() << "\n";

  const auto solutions = spp::stable_assignments(inst);
  std::cout << "Stable solutions (" << solutions.size() << "):\n";
  for (const auto& s : solutions) {
    std::cout << "  " << spp::assignment_name(inst, s) << "\n";
  }
  const auto wheel = spp::find_dispute_wheel(inst);
  std::cout << "Dispute wheel: "
            << (wheel ? wheel->to_string(inst) : "none") << "\n\n";

  // The paper's R1O oscillation.
  const NodeId d = inst.graph().node("d");
  const NodeId x = inst.graph().node("x");
  const NodeId y = inst.graph().node("y");
  model::ActivationScript script{
      model::read_one_step(inst, d, x), model::read_one_step(inst, x, d),
      model::read_one_step(inst, y, d), model::read_one_step(inst, x, y),
      model::read_one_step(inst, y, x)};
  const std::size_t loop_from = script.size();
  script.push_back(model::read_one_step(inst, x, y));
  script.push_back(model::read_one_step(inst, y, x));
  script.push_back(model::read_one_step(inst, d, x));
  script.push_back(model::read_one_step(inst, d, y));
  script.push_back(model::read_one_step(inst, x, d));
  script.push_back(model::read_one_step(inst, y, d));

  engine::ScriptedScheduler sched(script, loop_from);
  const engine::RunResult run = engine::run(
      inst, sched, {.max_steps = 200, .enforce_model = Model::parse("R1O")});
  std::cout << "Scripted R1O execution: " << engine::to_string(run.outcome)
            << " (provable cycle of length " << run.cycle_length
            << " from step " << run.cycle_start << ")\n";
  std::cout << "First steps of the oscillating trace:\n"
            << run.trace.to_string(inst).substr(0, 700) << "  ...\n\n";

  // The checker can also *discover* an oscillation witness by itself.
  {
    const auto discovered = checker::explore(
        inst, Model::parse("R1O"),
        {.max_channel_length = 3, .extract_witness = true});
    std::cout << "Checker-discovered witness: " << discovered.summary()
              << "\n  prefix " << discovered.witness_prefix.size()
              << " steps, cycle " << discovered.witness_cycle.size()
              << " steps touring the witness SCC; replaying it through "
                 "the engine reproduces a provable oscillation (see "
                 "test_checker_explorer).\n\n";
  }

  // Checker verdicts for all 24 models.
  std::cout << "Exhaustive model checking (channel bound 3):\n\n";
  TextTable table;
  table.set_header({"model", "fair oscillation?", "states", "verdict"});
  bool ok = run.outcome == engine::Outcome::kOscillating;
  const std::vector<std::string> cannot{"REO", "REF", "R1A", "RMA", "REA",
                                        "UEO", "UEF", "U1A", "UMA", "UEA"};
  for (const Model& m : Model::all()) {
    const auto r = checker::explore(inst, m, {.max_channel_length = 3});
    const bool expected_no =
        std::find(cannot.begin(), cannot.end(), m.name()) != cannot.end() &&
        m.reliable();  // the paper proves impossibility for the R five
    std::string verdict;
    if (r.oscillation_found) {
      verdict = "oscillates";
      if (expected_no) {
        ok = false;
        verdict += " (UNEXPECTED)";
      }
    } else {
      verdict = r.exhaustive ? "cannot oscillate (proof)"
                             : "no oscillation within bound";
      if (m.reliable() && !expected_no) {
        ok = false;
        verdict += " (UNEXPECTED)";
      }
    }
    table.add_row({m.name(), r.oscillation_found ? "yes" : "no",
                   std::to_string(r.states), verdict});
  }
  std::cout << table.render();

  return bench::verdict(
      ok,
      "DISAGREE oscillates in R1O (and every reliable model outside "
      "{REO, REF, R1A, RMA, REA}) and provably cannot in those five — "
      "Thm. 3.8");
}
