// Empirical validation of every positive theorem of Sec. 3.2: runs the
// constructive realization transforms over randomized fair executions and
// verifies the claimed relation between source and target traces. One
// table row per theorem instantiation.
#include <chrono>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "engine/executor.hpp"
#include "engine/scheduler.hpp"
#include "realization/transforms.hpp"
#include "spp/gadgets.hpp"
#include "spp/random_gen.hpp"
#include "trace/seq_match.hpp"

namespace {

using namespace commroute;
using realization::Strength;

trace::MatchKind required_kind(Strength s) {
  switch (s) {
    case Strength::kExact:
      return trace::MatchKind::kExact;
    case Strength::kRepetition:
      return trace::MatchKind::kRepetition;
    default:
      return trace::MatchKind::kSubsequence;
  }
}

}  // namespace

int main() {
  bench::banner("Sec. 3.2 positive theorems — constructive transforms");

  const auto cases = realization::all_transform_cases();
  std::cout << cases.size()
            << " theorem instantiations; each validated on DISAGREE, the "
               "Fig. 6 instance, and random instances with randomized "
               "fair executions.\n\n";

  std::map<std::string, std::pair<std::size_t, std::size_t>> by_theorem;
  std::size_t failures = 0;
  std::size_t total = 0;
  const auto t0 = std::chrono::steady_clock::now();

  Rng rng(20090622);  // ICDCS'09
  for (const auto& c : cases) {
    for (int trial = 0; trial < 8; ++trial) {
      const spp::Instance inst =
          (trial % 3 == 0)   ? spp::disagree()
          : (trial % 3 == 1) ? spp::example_a2()
                             : spp::random_policy(rng, {.nodes = 5});
      engine::RandomFairScheduler sched(
          c.from, inst, rng.split(),
          {.drop_prob = c.from.reliable() ? 0.0 : 0.3,
           .sweep_period = 16});
      engine::NetworkState state(inst);
      model::ActivationScript script;
      for (int i = 0; i < 70; ++i) {
        const auto step = sched.next(state);
        engine::execute_step(state, step);
        script.push_back(step);
      }
      const auto rec = trace::record_script(inst, script, c.from);
      const auto out = realization::apply_transform(c, inst, rec);
      for (const auto& step : out) {
        model::require_step_allowed(c.to, inst, step);
      }
      const auto replay = trace::record_script(inst, out, c.to);
      const auto got = trace::strongest_match(rec.trace, replay.trace);
      const bool pass = static_cast<int>(got) >=
                        static_cast<int>(required_kind(c.claimed));
      ++total;
      auto& bucket = by_theorem[c.name];
      ++bucket.second;
      if (pass) {
        ++bucket.first;
      } else {
        ++failures;
      }
    }
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  TextTable table;
  table.set_header({"theorem", "claimed sense", "trials", "verified"});
  for (const auto& c : cases) {
    if (by_theorem.count(c.name) == 0) {
      continue;
    }
    const auto [passed, ran] = by_theorem[c.name];
    table.add_row({c.name, realization::to_string(c.claimed),
                   std::to_string(ran), std::to_string(passed)});
    by_theorem.erase(c.name);
  }
  std::cout << table.render();
  std::cout << "\n" << total << " transform executions in " << secs
            << " s (" << (secs * 1000.0 / static_cast<double>(total))
            << " ms each)\n";

  return bench::verdict(failures == 0,
                        "every Sec. 3.2 construction realized its claimed "
                        "relation on every randomized trial");
}
