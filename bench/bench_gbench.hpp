// Shared main() for the google-benchmark perf benches. Normal mode is
// the stock console reporter; --json / COMMROUTE_BENCH_JSON=1 captures
// every run instead and writes BENCH_<name>.json (wall_ms plus a peak
// throughput metric) via bench_json.hpp, printing the same JSON object
// to stdout.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "obs/resource.hpp"

namespace commroute::bench {

class CaptureReporter : public benchmark::BenchmarkReporter {
 public:
  struct Row {
    std::string name;
    std::int64_t iterations = 0;
    double real_ms_per_iter = 0.0;
    double items_per_second = 0.0;  ///< 0 when the bench sets no items
  };

  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration) {
        continue;  // skip aggregate (mean/median/stddev) rows
      }
      Row row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      if (run.iterations > 0) {
        row.real_ms_per_iter =
            run.real_accumulated_time /
            static_cast<double>(run.iterations) * 1e3;
      }
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        row.items_per_second = it->second.value;
      }
      rows_.push_back(std::move(row));
    }
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

/// `throughput_key` names the peak-throughput metric in the JSON output
/// (items/sec when the benches report items, iterations/sec otherwise).
/// `extra_metrics`, when given, runs after the benchmarks in JSON mode
/// so a bench can stamp workload-specific metrics (tracked byte peaks,
/// state counts) into the document; bench-diff gates "*_bytes" keys
/// under its separate memory threshold. Every JSON document also
/// carries `peak_rss_bytes` — the OS-level high watermark of the whole
/// bench process.
inline int gbench_main(
    const std::string& name, const std::string& throughput_key, int argc,
    char** argv,
    const std::function<void(BenchJson&)>& extra_metrics = {}) {
  const bool json = parse_json_mode(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  if (!json) {
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }

  CaptureReporter reporter;
  const auto t0 = std::chrono::steady_clock::now();
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  benchmark::Shutdown();

  BenchJson output(name);
  double peak_throughput = 0.0;
  for (const CaptureReporter::Row& row : reporter.rows()) {
    obs::JsonWriter w;
    w.field("name", row.name)
        .field("iterations", row.iterations)
        .field("real_ms_per_iter", row.real_ms_per_iter);
    double throughput = 0.0;
    if (row.items_per_second > 0.0) {
      w.field("items_per_second", row.items_per_second);
      throughput = row.items_per_second;
    } else if (row.real_ms_per_iter > 0.0) {
      throughput = 1e3 / row.real_ms_per_iter;  // iterations/sec
    }
    peak_throughput = std::max(peak_throughput, throughput);
    output.add_result(w);
  }
  output.set_metric("wall_ms", wall_ms);
  output.set_metric(throughput_key, peak_throughput);
  output.set_metric("peak_rss_bytes",
                    static_cast<double>(
                        obs::read_process_memory().peak_rss_bytes));
  if (extra_metrics) {
    extra_metrics(output);
  }
  output.write();
  std::cout << output.to_json() << "\n";
  return 0;
}

}  // namespace commroute::bench
