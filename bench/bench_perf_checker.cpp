// Checker microbenchmarks (google-benchmark): exhaustive exploration and
// targeted realization-search cost on the paper's gadgets. Run with
// --json to write BENCH_perf_checker.json instead of the console table.
#include <benchmark/benchmark.h>

#include "bench_gbench.hpp"
#include "checker/explorer.hpp"
#include "checker/successors.hpp"
#include "checker/targeted.hpp"
#include "spp/gadgets.hpp"
#include "trace/recording.hpp"

namespace {

using namespace commroute;
using model::Model;

void BM_ExploreDisagree(benchmark::State& state) {
  const Model m = Model::from_index(static_cast<int>(state.range(0)));
  const spp::Instance inst = spp::disagree();
  std::size_t states_explored = 0;
  for (auto _ : state) {
    const auto r = checker::explore(inst, m, {.max_channel_length = 3});
    states_explored = r.states;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * states_explored));  // states/sec
  state.SetLabel(m.name() + " (" + std::to_string(states_explored) +
                 " states)");
}
BENCHMARK(BM_ExploreDisagree)->DenseRange(0, 23, 3)
    ->Unit(benchmark::kMillisecond);

void BM_SuccessorEnumeration(benchmark::State& state) {
  const Model m = Model::from_index(static_cast<int>(state.range(0)));
  const spp::Instance inst = spp::example_a2();
  engine::NetworkState net(inst);
  // Load a few channels.
  const NodeId d = inst.graph().node("d");
  engine::execute_step(net, model::poll_one_step(inst, d, inst.graph().node("x")));
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker::enumerate_steps(net, m));
  }
  state.SetLabel(m.name());
}
BENCHMARK(BM_SuccessorEnumeration)->DenseRange(0, 23, 6);

void BM_TargetedSearchA4(benchmark::State& state) {
  const spp::Instance inst = spp::example_a4();
  model::ActivationScript script;
  for (const char* n : {"d", "a", "u", "b", "u", "s"}) {
    script.push_back(model::poll_all_step(inst, inst.graph().node(n)));
  }
  const auto rec = trace::record_script(inst, script);
  for (auto _ : state) {
    const auto r = checker::find_realization(
        inst, Model::parse("R1O"), rec.trace,
        trace::MatchKind::kRepetition);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("A.4 repetition-in-R1O (impossibility proof)");
}
BENCHMARK(BM_TargetedSearchA4)->Unit(benchmark::kMicrosecond);

void BM_TargetedSearchA3Exact(benchmark::State& state) {
  const spp::Instance inst = spp::example_a3();
  model::ActivationScript script;
  for (const char* n : {"d", "b", "u", "v", "a", "u", "v", "s", "s", "s"}) {
    script.push_back(model::read_every_one_step(inst, inst.graph().node(n)));
  }
  const auto rec = trace::record_script(inst, script);
  for (auto _ : state) {
    const auto r = checker::find_realization(
        inst, Model::parse("R1O"), rec.trace, trace::MatchKind::kExact);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("A.3 exact-in-R1O (impossibility proof)");
}
BENCHMARK(BM_TargetedSearchA3Exact)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return commroute::bench::gbench_main("perf_checker", "states_per_sec",
                                       argc, argv);
}
