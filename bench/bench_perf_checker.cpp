// Checker microbenchmarks (google-benchmark): exhaustive exploration and
// targeted realization-search cost on the paper's gadgets. Run with
// --json to write BENCH_perf_checker.json instead of the console table.
#include <benchmark/benchmark.h>

#include "bench_gbench.hpp"
#include "checker/explorer.hpp"
#include "checker/successors.hpp"
#include "checker/targeted.hpp"
#include "spp/gadgets.hpp"
#include "trace/recording.hpp"

namespace {

using namespace commroute;
using model::Model;

void BM_ExploreDisagree(benchmark::State& state) {
  const Model m = Model::from_index(static_cast<int>(state.range(0)));
  const spp::Instance inst = spp::disagree();
  std::size_t states_explored = 0;
  for (auto _ : state) {
    const auto r = checker::explore(inst, m, {.max_channel_length = 3});
    states_explored = r.states;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * states_explored));  // states/sec
  state.SetLabel(m.name() + " (" + std::to_string(states_explored) +
                 " states)");
}
BENCHMARK(BM_ExploreDisagree)->DenseRange(0, 23, 3)
    ->Unit(benchmark::kMillisecond);

void BM_ExploreBadGadget(benchmark::State& state) {
  const Model m = Model::parse("R1O");
  const spp::Instance inst = spp::bad_gadget();
  std::size_t states_explored = 0;
  std::uint64_t tracked_peak = 0;
  for (auto _ : state) {
    obs::TrackedBytes memory;
    const auto r = checker::explore(
        inst, m, {.max_channel_length = 3, .memory = &memory});
    states_explored = r.states;
    tracked_peak = r.tracked_peak_bytes;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * states_explored));  // states/sec
  state.SetLabel("BAD-GADGET R1O (" + std::to_string(states_explored) +
                 " states, peak " + std::to_string(tracked_peak) +
                 " tracked bytes)");
}
BENCHMARK(BM_ExploreBadGadget)->Unit(benchmark::kMillisecond);

// Thread-scaling on the BAD-GADGET frontier: the same bounded
// exploration at widths 1/2/4/8. Besides the wall-clock curve (only
// meaningful on a machine with that many physical cores — on a 1-core
// runner every width costs serial time plus coordination overhead),
// each width re-asserts the explorer's determinism contract: verdict,
// state count, transition count, and dedup count must reproduce the
// width-1 result exactly, or the benchmark aborts with an error.
void BM_ExploreBadGadgetThreads(benchmark::State& state) {
  const Model m = Model::parse("R1O");
  const spp::Instance inst = spp::bad_gadget();
  checker::ExploreOptions opts;
  opts.max_channel_length = 3;
  opts.max_states = 20000;  // bounded so one iteration stays ~1s
  opts.threads = static_cast<std::size_t>(state.range(0));
  static const checker::ExploreResult reference = [&inst, &m] {
    checker::ExploreOptions serial;
    serial.max_channel_length = 3;
    serial.max_states = 20000;
    serial.threads = 1;
    return checker::explore(inst, m, serial);
  }();
  std::size_t states_explored = 0;
  for (auto _ : state) {
    const auto r = checker::explore(inst, m, opts);
    if (r.oscillation_found != reference.oscillation_found ||
        r.states != reference.states ||
        r.transitions != reference.transitions ||
        r.dedup_hits != reference.dedup_hits) {
      state.SkipWithError("verdict diverged from the threads=1 result");
      return;
    }
    states_explored = r.states;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * states_explored));  // states/sec
  state.SetLabel("BAD-GADGET R1O cap 20000, threads=" +
                 std::to_string(state.range(0)));
}
BENCHMARK(BM_ExploreBadGadgetThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SuccessorEnumeration(benchmark::State& state) {
  const Model m = Model::from_index(static_cast<int>(state.range(0)));
  const spp::Instance inst = spp::example_a2();
  engine::NetworkState net(inst);
  // Load a few channels.
  const NodeId d = inst.graph().node("d");
  engine::execute_step(net, model::poll_one_step(inst, d, inst.graph().node("x")));
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker::enumerate_steps(net, m));
  }
  state.SetLabel(m.name());
}
BENCHMARK(BM_SuccessorEnumeration)->DenseRange(0, 23, 6);

void BM_TargetedSearchA4(benchmark::State& state) {
  const spp::Instance inst = spp::example_a4();
  model::ActivationScript script;
  for (const char* n : {"d", "a", "u", "b", "u", "s"}) {
    script.push_back(model::poll_all_step(inst, inst.graph().node(n)));
  }
  const auto rec = trace::record_script(inst, script);
  for (auto _ : state) {
    const auto r = checker::find_realization(
        inst, Model::parse("R1O"), rec.trace,
        trace::MatchKind::kRepetition);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("A.4 repetition-in-R1O (impossibility proof)");
}
BENCHMARK(BM_TargetedSearchA4)->Unit(benchmark::kMicrosecond);

void BM_TargetedSearchA3Exact(benchmark::State& state) {
  const spp::Instance inst = spp::example_a3();
  model::ActivationScript script;
  for (const char* n : {"d", "b", "u", "v", "a", "u", "v", "s", "s", "s"}) {
    script.push_back(model::read_every_one_step(inst, inst.graph().node(n)));
  }
  const auto rec = trace::record_script(inst, script);
  for (auto _ : state) {
    const auto r = checker::find_realization(
        inst, Model::parse("R1O"), rec.trace, trace::MatchKind::kExact);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("A.3 exact-in-R1O (impossibility proof)");
}
BENCHMARK(BM_TargetedSearchA3Exact)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Memory metrics ride along in JSON mode: one instrumented BAD-GADGET
  // exploration stamps its tracked-byte peak and bytes/state into the
  // document (deterministic — byte estimates come from element counts),
  // where bench-diff's --mem-threshold gate picks them up.
  return commroute::bench::gbench_main(
      "perf_checker", "states_per_sec", argc, argv,
      [](commroute::bench::BenchJson& out) {
        using namespace commroute;
        obs::TrackedBytes memory;
        const auto r = checker::explore(
            spp::bad_gadget(), model::Model::parse("R1O"),
            {.max_channel_length = 3, .memory = &memory});
        out.set_metric("tracked_peak_bytes",
                       static_cast<double>(r.tracked_peak_bytes));
        out.set_metric("checker_bytes_per_state", r.bytes_per_state());
        out.set_metric("checker_states",
                       static_cast<double>(r.states));
      });
}
