// Extension experiment: scaling behavior of the engine with network
// size — steps, messages, and wall time to convergence on growing
// dispute-wheel-free instances, under the queueing model RMS and the
// polling model REA — plus the campaign runtime's thread-scaling curve.
// Run with --json to write BENCH_perf_scaling.json (per-config rows
// plus wall-ms / steps-per-sec totals).
#include <chrono>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "spp/gadgets.hpp"
#include "spp/random_gen.hpp"
#include "study/campaign.hpp"

int main(int argc, char** argv) {
  using namespace commroute;
  using model::Model;

  const bool json = bench::parse_json_mode(argc, argv);
  bench::BenchJson output("perf_scaling");
  bench::banner("Scaling — convergence cost vs. network size");

  bool ok = true;
  double total_ms = 0.0;
  std::uint64_t total_steps = 0;
  const auto measure = [&](const std::string& label,
                           const spp::Instance& inst, const Model& m) {
    engine::RoundRobinScheduler sched(m, inst);
    const auto t0 = std::chrono::steady_clock::now();
    const auto run = engine::run(inst, sched,
                                 {.max_steps = 2000000,
                                  .record_trace = false,
                                  .detect_cycles = false});
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    ok = ok && run.outcome == engine::Outcome::kConverged;
    total_ms += ms;
    total_steps += run.steps;
    obs::JsonWriter row;
    // Row names carry the model so they stay unique across the document
    // (bench-diff matches rows by name); real_ms_per_iter is what the
    // bench-diff gate compares, and each row here is a single run.
    row.field("name", label + "/" + m.name())
        .field("model", m.name())
        .field("steps", run.steps)
        .field("messages_sent", run.messages_sent)
        .field("wall_ms", ms)
        .field("real_ms_per_iter", ms)
        .field("steps_per_sec",
               ms > 0.0 ? static_cast<double>(run.steps) / (ms / 1e3)
                        : 0.0);
    output.add_result(row);
    return std::tuple(run.steps, run.messages_sent, ms);
  };

  bench::out() << "shortest_ring(k): ring of k nodes around d, two "
                  "permitted paths each\n";
  TextTable ring;
  ring.set_header({"k", "RMS steps", "RMS msgs", "RMS ms", "REA steps",
                   "REA msgs", "REA ms"});
  for (const std::size_t k : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const spp::Instance inst = spp::shortest_ring(k);
    const std::string label = "ring-" + std::to_string(k);
    const auto [s1, m1, t1] = measure(label, inst, Model::parse("RMS"));
    const auto [s2, m2, t2] = measure(label, inst, Model::parse("REA"));
    ring.add_row({std::to_string(k), std::to_string(s1),
                  std::to_string(m1), std::to_string(t1),
                  std::to_string(s2), std::to_string(m2),
                  std::to_string(t2)});
  }
  bench::out() << ring.render() << "\n";

  bench::out() << "random shortest-path instances (seeded, degree ~3)\n";
  TextTable rnd;
  rnd.set_header({"nodes", "paths", "RMS steps", "RMS msgs", "RMS ms"});
  Rng rng(1234);
  for (const std::size_t n : {8u, 12u, 16u, 24u, 32u}) {
    spp::RandomInstanceParams params;
    params.nodes = n;
    params.extra_edge_prob = 3.0 / static_cast<double>(n);
    params.max_paths_per_node = 8;
    const spp::Instance inst = spp::random_shortest(rng, params);
    const auto [s, m, t] = measure("random-" + std::to_string(n), inst,
                                   Model::parse("RMS"));
    rnd.add_row({std::to_string(n),
                 std::to_string(inst.permitted_path_count()),
                 std::to_string(s), std::to_string(m),
                 std::to_string(t)});
  }
  bench::out() << rnd.render() << "\n";

  bench::out() << "Steps grow linearly in network size for round-robin "
                  "schedules on shortest-path-like policies; per-step "
                  "cost stays flat (flat channel indexing, no allocation "
                  "on the hot path beyond path copies).\n";

  bench::out() << "campaign thread scaling: one fixed campaign, worker "
                  "pool width 1/2/4/8\n";
  {
    const spp::Instance r16 = spp::shortest_ring(16);
    const spp::Instance r32 = spp::shortest_ring(32);
    const spp::Instance r48 = spp::shortest_ring(48);
    const auto make_spec = [&](std::size_t threads) {
      study::CampaignSpec spec;
      spec.instances = {{"RING16", &r16}, {"RING32", &r32},
                        {"RING48", &r48}};
      spec.models = {Model::parse("RMS"), Model::parse("REA"),
                     Model::parse("R1O"), Model::parse("UMS")};
      spec.schedulers = {study::SchedulerKind::kRoundRobin,
                         study::SchedulerKind::kRandomFair};
      spec.seeds = 2;
      spec.max_steps = 200000;
      spec.threads = threads;
      return spec;
    };
    const auto normalized_csv = [](study::CampaignResult result) {
      for (auto& row : result.rows) {
        row.wall_ms = 0.0;  // the only field that varies run to run
      }
      return result.to_csv();
    };

    TextTable scale;
    scale.set_header({"threads", "wall_ms", "speedup", "deterministic"});
    double serial_ms = 0.0;
    std::string serial_csv;
    for (const std::size_t t : {1u, 2u, 4u, 8u}) {
      const auto spec = make_spec(t);
      const auto t0 = std::chrono::steady_clock::now();
      const study::CampaignResult result = study::run_campaign(spec);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      const std::string csv = normalized_csv(result);
      if (t == 1) {
        serial_ms = ms;
        serial_csv = csv;
      }
      const bool same = csv == serial_csv;
      ok = ok && same;
      const double speedup = ms > 0.0 ? serial_ms / ms : 0.0;
      scale.add_row({std::to_string(t), std::to_string(ms),
                     std::to_string(speedup), same ? "yes" : "NO"});
      obs::JsonWriter row;
      row.field("name", "campaign/threads=" + std::to_string(t))
          .field("threads", static_cast<std::uint64_t>(t))
          .field("rows", static_cast<std::uint64_t>(result.rows.size()))
          .field("wall_ms", ms)
          .field("real_ms_per_iter", ms)
          .field("speedup_vs_serial", speedup)
          .field("deterministic", same);
      output.add_result(row);
      if (t == 4) {
        output.set_metric("campaign_speedup_4t", speedup);
      }
      total_ms += ms;
    }
    bench::out() << scale.render() << "\n";
    bench::out()
        << "Rows are enumerated up front and emitted in enumeration "
           "order, so the CSV (modulo wall_ms) is byte-identical at "
           "every pool width. Speedup tracks available cores — on a "
           "single-core runner every width degenerates to ~1x.\n";
  }

  if (json) {
    output.set_metric("wall_ms", total_ms);
    output.set_metric(
        "steps_per_sec",
        total_ms > 0.0 ? static_cast<double>(total_steps) / (total_ms / 1e3)
                       : 0.0);
    output.write();
    std::cout << output.to_json() << "\n";
  }

  return bench::verdict(ok, "all scaling runs converged");
}
