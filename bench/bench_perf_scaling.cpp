// Extension experiment: scaling behavior of the engine with network
// size — steps, messages, and wall time to convergence on growing
// dispute-wheel-free instances, under the queueing model RMS and the
// polling model REA.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "spp/gadgets.hpp"
#include "spp/random_gen.hpp"

int main() {
  using namespace commroute;
  using model::Model;

  bench::banner("Scaling — convergence cost vs. network size");

  bool ok = true;
  const auto measure = [&](const spp::Instance& inst, const Model& m) {
    engine::RoundRobinScheduler sched(m, inst);
    const auto t0 = std::chrono::steady_clock::now();
    const auto run = engine::run(inst, sched,
                                 {.max_steps = 2000000,
                                  .record_trace = false,
                                  .detect_cycles = false});
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    ok = ok && run.outcome == engine::Outcome::kConverged;
    return std::tuple(run.steps, run.messages_sent, ms);
  };

  std::cout << "shortest_ring(k): ring of k nodes around d, two permitted "
               "paths each\n";
  TextTable ring;
  ring.set_header({"k", "RMS steps", "RMS msgs", "RMS ms", "REA steps",
                   "REA msgs", "REA ms"});
  for (const std::size_t k : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const spp::Instance inst = spp::shortest_ring(k);
    const auto [s1, m1, t1] = measure(inst, Model::parse("RMS"));
    const auto [s2, m2, t2] = measure(inst, Model::parse("REA"));
    ring.add_row({std::to_string(k), std::to_string(s1),
                  std::to_string(m1), std::to_string(t1),
                  std::to_string(s2), std::to_string(m2),
                  std::to_string(t2)});
  }
  std::cout << ring.render() << "\n";

  std::cout << "random shortest-path instances (seeded, degree ~3)\n";
  TextTable rnd;
  rnd.set_header({"nodes", "paths", "RMS steps", "RMS msgs", "RMS ms"});
  Rng rng(1234);
  for (const std::size_t n : {8u, 12u, 16u, 24u, 32u}) {
    spp::RandomInstanceParams params;
    params.nodes = n;
    params.extra_edge_prob = 3.0 / static_cast<double>(n);
    params.max_paths_per_node = 8;
    const spp::Instance inst = spp::random_shortest(rng, params);
    const auto [s, m, t] = measure(inst, Model::parse("RMS"));
    rnd.add_row({std::to_string(n),
                 std::to_string(inst.permitted_path_count()),
                 std::to_string(s), std::to_string(m),
                 std::to_string(t)});
  }
  std::cout << rnd.render() << "\n";

  std::cout << "Steps grow linearly in network size for round-robin "
               "schedules on shortest-path-like policies; per-step cost "
               "stays flat (flat channel indexing, no allocation on the "
               "hot path beyond path copies).\n";

  return bench::verdict(ok, "all scaling runs converged");
}
