// Reproduces Example A.2 / Figure 6 and Theorem 3.9's separation: the
// instance oscillates in REO and REF but cannot oscillate in the polling
// models R1A, RMA, REA. Prints the paper's t = 1..13 activation table,
// demonstrates the infinite REO oscillation, proves the REO/REF
// oscillations with the checker, and gathers convergence evidence for the
// polling models (bounded checking plus randomized fair executions).
#include <iostream>

#include "bench_common.hpp"
#include "checker/explorer.hpp"
#include "engine/runner.hpp"
#include "spp/gadgets.hpp"

int main() {
  using namespace commroute;
  using model::Model;

  bench::banner("Example A.2 / Figure 6 — REO/REF vs. polling models");

  const spp::Instance inst = spp::example_a2();
  std::cout << inst.to_string() << "\n";

  bool ok = true;

  // The paper's REO execution, t = 1..13.
  const std::vector<std::string> order{"d", "x", "a", "u", "v", "y", "a",
                                       "u", "v", "z", "a", "v", "u"};
  const auto rec = trace::record_script(
      inst, bench::named_script(inst, order, false), Model::parse("REO"));
  std::cout << "REO execution of the paper (t = 1..13):\n";
  bench::print_activation_table(inst, rec);

  const std::vector<std::string> expected{
      "d",  "xd",  "axd", "uaxd", "vuaxd", "yd",  "ayd",
      "(eps)", "vayd", "zd", "azd", "vazd", "uazd"};
  for (std::size_t t = 0; t < expected.size(); ++t) {
    const NodeId v = rec.steps[t].step.node();
    ok = ok && inst.path_name(rec.trace.at(t + 1)[v]) == expected[t];
  }
  std::cout << "Trace matches the published table: " << (ok ? "yes" : "NO")
            << "\n\n";

  // Continue into the classic DISAGREE oscillation between u and v.
  model::ActivationScript script = bench::named_script(inst, order, false);
  const std::size_t loop_from = script.size();
  for (const char* n : {"v", "u", "a", "d", "x", "y", "z"}) {
    script.push_back(
        model::read_every_one_step(inst, inst.graph().node(n)));
  }
  engine::ScriptedScheduler sched(script, loop_from);
  const engine::RunResult run = engine::run(
      inst, sched,
      {.max_steps = 2000, .enforce_model = Model::parse("REO")});
  std::cout << "Fair continuation in REO: " << engine::to_string(run.outcome)
            << " (cycle length " << run.cycle_length << ")\n\n";
  ok = ok && run.outcome == engine::Outcome::kOscillating;

  // Checker: oscillation exists in REO and REF.
  for (const char* name : {"REO", "REF"}) {
    const auto r = checker::explore(inst, Model::parse(name),
                                    {.max_channel_length = 2,
                                     .max_states = 120000});
    std::cout << name << ": " << r.summary() << "\n";
    ok = ok && r.oscillation_found;
  }

  // Polling models: bounded checking + randomized executions all converge.
  std::cout << "\nPolling models (Thm. 3.9 direction):\n";
  for (const char* name : {"R1A", "RMA", "REA"}) {
    const Model m = Model::parse(name);
    const auto r = checker::explore(inst, m, {.max_channel_length = 2,
                                              .max_states = 60000});
    ok = ok && !r.oscillation_found;
    std::size_t converged = 0;
    const std::size_t trials = 25;
    for (std::size_t seed = 0; seed < trials; ++seed) {
      engine::RandomFairScheduler rand_sched(m, inst, Rng(seed),
                                             {.sweep_period = 8});
      const auto rr = engine::run(inst, rand_sched, {.max_steps = 20000});
      if (rr.outcome == engine::Outcome::kConverged) {
        ++converged;
      }
    }
    std::cout << "  " << name << ": " << r.summary() << "; randomized fair "
              << "executions converged " << converged << "/" << trials
              << "\n";
    ok = ok && converged == trials;
  }

  return bench::verdict(
      ok,
      "Fig. 6 instance: published REO trace reproduced, oscillates in "
      "REO/REF, no oscillation found in R1A/RMA/REA (Thm. 3.9)");
}
