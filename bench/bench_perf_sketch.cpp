// Sketch microbenchmarks (google-benchmark): LogHistogram observe and
// merge throughput, TopK add under eviction pressure, reservoir
// sampling, and the end-to-end cost gap between ObsBudget::kFull and
// kSketched engine runs. Run with --json to write
// BENCH_perf_sketch.json instead of the console table.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_gbench.hpp"
#include "engine/runner.hpp"
#include "engine/scheduler.hpp"
#include "obs/sketch.hpp"
#include "spp/random_gen.hpp"

namespace {

using namespace commroute;
using model::Model;

std::vector<std::uint64_t> value_stream(std::size_t n) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out.push_back((x & 0xffffffffull) + 1);
  }
  return out;
}

void BM_LogHistogramObserve(benchmark::State& state) {
  const auto values = value_stream(4096);
  obs::LogHistogram hist(
      static_cast<unsigned>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    hist.observe(values[i++ & 4095]);
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LogHistogramObserve)->Arg(3)->Arg(5)->Arg(7);

void BM_LogHistogramMerge(benchmark::State& state) {
  const auto values = value_stream(65536);
  obs::LogHistogram shard(7);
  for (const std::uint64_t v : values) {
    shard.observe(v);
  }
  for (auto _ : state) {
    obs::LogHistogram target(7);
    target.merge_from(shard);
    benchmark::DoNotOptimize(target.count());
  }
}
BENCHMARK(BM_LogHistogramMerge);

void BM_TopKAddUnderEviction(benchmark::State& state) {
  // Key space far beyond capacity: every add churns the eviction path.
  const auto values = value_stream(4096);
  obs::TopK top(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    top.add(values[i++ & 4095] % 1024);
  }
  benchmark::DoNotOptimize(top.total_weight());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TopKAddUnderEviction)->Arg(16)->Arg(64);

void BM_ReservoirAdd(benchmark::State& state) {
  obs::ReservoirSample sample(64, 42);
  std::uint64_t id = 0;
  for (auto _ : state) {
    sample.add(id++, "x");
  }
  benchmark::DoNotOptimize(sample.seen());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReservoirAdd);

void BM_EngineRunByBudget(benchmark::State& state) {
  // The knob's end-to-end price: same 2000-node run, full vs sketched
  // observability (per-node vectors + trace vs bounded sketches).
  static const spp::Instance inst = [] {
    Rng rng(11);
    return spp::random_tree(rng, 2000);
  }();
  const auto budget = state.range(0) == 0 ? obs::ObsBudget::kFull
                                          : obs::ObsBudget::kSketched;
  for (auto _ : state) {
    engine::RoundRobinScheduler sched(Model::parse("UMS"), inst);
    engine::RunOptions options;
    options.max_steps = 20000;
    // Trace and cycle table off in both arms: they are O(nodes) per
    // step and would drown the per-node-structure delta being measured.
    options.record_trace = false;
    options.detect_cycles = false;
    options.budget = budget;
    benchmark::DoNotOptimize(engine::run(inst, sched, options));
  }
  state.SetLabel(obs::to_string(budget));
}
BENCHMARK(BM_EngineRunByBudget)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return commroute::bench::gbench_main("perf_sketch", "items_per_sec",
                                       argc, argv);
}
