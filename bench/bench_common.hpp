// Shared helpers for the figure-reproduction benches. All human output
// routes through bench::out() (bench_json.hpp), so every bench can run
// in quiet JSON-only mode via --json / COMMROUTE_BENCH_JSON=1.
#pragma once

#include <string>
#include <vector>

#include "bench_json.hpp"
#include "model/activation.hpp"
#include "spp/instance.hpp"
#include "support/table.hpp"
#include "trace/recording.hpp"

namespace commroute::bench {

inline void banner(const std::string& title) {
  out() << "\n=== " << title << " ===\n\n";
}

/// Builds the paper's node-activation scripts: one step per named node,
/// either poll-all (REA) or read-one-from-every-channel (REO / REF).
inline model::ActivationScript named_script(
    const spp::Instance& inst, const std::vector<std::string>& nodes,
    bool poll_all) {
  model::ActivationScript script;
  for (const std::string& name : nodes) {
    const NodeId v = inst.graph().node(name);
    script.push_back(poll_all ? model::poll_all_step(inst, v)
                              : model::read_every_one_step(inst, v));
  }
  return script;
}

/// Prints the paper's activation-table format: step, updating node, the
/// path it selects.
inline void print_activation_table(const spp::Instance& inst,
                                   const trace::Recording& rec) {
  TextTable table;
  table.set_header({"t", "U(t)", "pi_{U(t)}(t)"});
  for (std::size_t t = 0; t < rec.steps.size(); ++t) {
    const NodeId v = rec.steps[t].step.node();
    table.add_row({std::to_string(t + 1), inst.graph().name(v),
                   inst.path_name(rec.trace.at(t + 1)[v])});
  }
  out() << table.render();
}

/// Exit code helper: prints the verdict line and returns 0/1.
inline int verdict(bool ok, const std::string& what) {
  out() << "\n[" << (ok ? "OK" : "MISMATCH") << "] " << what << "\n";
  return ok ? 0 : 1;
}

}  // namespace commroute::bench
