// Reproduces Example A.3 / Figure 7 (Prop. 3.10): the REO execution
// below cannot be exactly realized in R1O — machine-checked by exhaustive
// search over all R1O activation sequences — although it can be realized
// with repetition, matching the REO-row/R1O-column entry "3" of Fig. 3.
#include <iostream>

#include "bench_common.hpp"
#include "checker/targeted.hpp"
#include "spp/gadgets.hpp"

int main() {
  using namespace commroute;
  using model::Model;
  using trace::MatchKind;

  bench::banner("Example A.3 / Figure 7 — REO not exactly realizable in R1O");

  const spp::Instance inst = spp::example_a3();
  std::cout << inst.to_string() << "\n";

  const auto rec = trace::record_script(
      inst,
      bench::named_script(
          inst, {"d", "b", "u", "v", "a", "u", "v", "s", "s", "s"}, false),
      Model::parse("REO"));
  std::cout << "The starred REO execution:\n";
  bench::print_activation_table(inst, rec);
  std::cout << "\n";

  bool ok = true;

  const auto exact = checker::find_realization(
      inst, Model::parse("R1O"), rec.trace, MatchKind::kExact);
  std::cout << "Exact realization in R1O: " << exact.summary() << "\n";
  ok = ok && !exact.found && exact.exhaustive;

  const auto rep = checker::find_realization(
      inst, Model::parse("R1O"), rec.trace, MatchKind::kRepetition);
  std::cout << "Realization with repetition in R1O: " << rep.summary()
            << "\n";
  ok = ok && rep.found;

  // Observation beyond the paper: the obstruction needs f = 1; R1F can
  // jump over the stale vbd by reading two messages at once.
  const auto r1f = checker::find_realization(
      inst, Model::parse("R1F"), rec.trace, MatchKind::kExact);
  std::cout << "Exact realization in R1F (extension): " << r1f.summary()
            << "\n";
  ok = ok && r1f.found;

  // Show the repetition witness.
  if (rep.found) {
    std::cout << "\nRepetition witness (" << rep.witness.size()
              << " steps):\n";
    for (const auto& step : rep.witness) {
      std::cout << "  " << step.to_string(inst) << "\n";
    }
  }

  return bench::verdict(ok,
                        "Prop. 3.10 machine-checked: no exact R1O "
                        "realization exists; repetition does");
}
