// Oscillation hunt: mine random policy instances for model separations —
// networks that can oscillate under the message-passing model R1O but
// provably converge under the polling model REA. Demonstrates using the
// checker as a search tool over the instance space.
//
//   $ ./oscillation_hunt [seed] [max-candidates]
#include <cstdlib>
#include <iostream>

#include "checker/explorer.hpp"
#include "checker/minimize.hpp"
#include "spp/dispute_wheel.hpp"
#include "spp/random_gen.hpp"
#include "spp/solver.hpp"

int main(int argc, char** argv) {
  using namespace commroute;
  using model::Model;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1u;
  const int max_candidates = argc > 2 ? std::atoi(argv[2]) : 400;

  Rng rng(seed);
  spp::RandomInstanceParams params;
  params.nodes = 4;
  params.extra_edge_prob = 0.5;
  params.max_paths_per_node = 4;

  std::cout << "Hunting for instances separating R1O from REA (seed "
            << seed << ")...\n\n";

  int examined = 0, with_wheel = 0, found = 0;
  for (int i = 0; i < max_candidates && found < 3; ++i) {
    const spp::Instance inst = spp::random_policy(rng, params);
    ++examined;

    // Cheap prefilter: only dispute-wheel instances can ever oscillate.
    if (spp::is_dispute_wheel_free(inst)) {
      continue;
    }
    ++with_wheel;

    const auto weak = checker::explore(inst, Model::parse("R1O"),
                                       {.max_channel_length = 3,
                                        .max_states = 60000});
    if (!weak.oscillation_found) {
      continue;
    }
    const auto strong = checker::explore(inst, Model::parse("REA"),
                                         {.max_channel_length = 3,
                                          .max_states = 60000});
    if (strong.oscillation_found || !strong.exhaustive) {
      continue;
    }

    ++found;
    std::cout << "--- separation witness #" << found << " ---\n";
    std::cout << inst.to_string();
    std::cout << "  R1O: " << weak.summary() << "\n";
    std::cout << "  REA: " << strong.summary() << "\n";
    const auto solutions = spp::stable_assignments(inst);
    std::cout << "  stable solutions: " << solutions.size() << "\n";
    const auto wheel = spp::find_dispute_wheel(inst);
    if (wheel) {
      std::cout << "  " << wheel->to_string(inst) << "\n";
    }
    // Shrink to the conflict core (delta debugging).
    const auto minimized = checker::minimize_oscillating_instance(
        inst, Model::parse("R1O"),
        {.max_channel_length = 3, .max_states = 60000});
    if (minimized.removed_paths > 0) {
      std::cout << "  minimized core (removed " << minimized.removed_paths
                << " paths):\n"
                << minimized.instance.to_string();
    } else {
      std::cout << "  instance is already path-minimal\n";
    }
    std::cout << "\n";
  }

  std::cout << "Examined " << examined << " random instances; "
            << with_wheel << " had dispute wheels; " << found
            << " separate R1O (oscillates) from REA (provably "
               "converges).\n";
  std::cout << "DISAGREE is the minimal such network — the hunt shows the "
               "phenomenon is not an isolated curiosity.\n";
  return found > 0 ? 0 : 1;
}
