// Realization explorer: query the derived Figure 3/4 knowledge base.
//
//   $ ./realization_explorer            # summary of the whole table
//   $ ./realization_explorer REA R1O    # can R1O realize REA? and back
#include <iostream>

#include "realization/closure.hpp"
#include "realization/compose.hpp"
#include "realization/matrix.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace commroute;
  using model::Model;
  using namespace commroute::realization;

  const RealizationTable table = RealizationTable::closure();

  if (argc == 3) {
    const Model a = Model::parse(argv[1]);
    const Model b = Model::parse(argv[2]);
    const auto show = [&](const Model& realized, const Model& realizer) {
      std::cout << table.explain(realized, realizer);
      const auto chain = find_transform_chain(realized, realizer);
      if (chain.has_value() && !chain->links.empty()) {
        std::cout << "  constructive chain: " << chain->to_string()
                  << "\n";
      } else if (!chain.has_value()) {
        std::cout << "  no constructive chain of positive theorems\n";
      }
      std::cout << "\n";
    };
    show(a, b);
    show(b, a);
    return 0;
  }

  std::cout << "Realization knowledge derived from the paper's "
               "foundational theorems.\n\n";
  std::cout << render_matrix(table, Figure::kFig3Reliable) << "\n";
  std::cout << render_matrix(table, Figure::kFig4Unreliable) << "\n";

  // Rank models by universality: how many of the 24 models they realize
  // at least as subsequences (lower-bound level >= 2).
  TextTable ranking;
  ranking.set_header({"model", "realizes (>=subsequence)",
                      "realizes exactly", "provably misses"});
  for (const Model& b : Model::all()) {
    int subs = 0, exact = 0, misses = 0;
    for (const Model& a : Model::all()) {
      const RelationBound& bound = table.cell(a, b);
      if (level(bound.lo) >= level(Strength::kSubsequence)) {
        ++subs;
      }
      if (bound.lo == Strength::kExact) {
        ++exact;
      }
      if (bound.hi == Strength::kNotPreserving) {
        ++misses;
      }
    }
    ranking.add_row({b.name(), std::to_string(subs), std::to_string(exact),
                     std::to_string(misses)});
  }
  std::cout << ranking.render() << "\n";
  std::cout << "Usage: realization_explorer <MODEL-A> <MODEL-B> for the "
               "derivation chain of a single cell (e.g. REA R1O).\n";
  return 0;
}
