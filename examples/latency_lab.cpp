// latency_lab: virtual-time simulation runs and latency/loss sweeps.
//
//   latency_lab <gadget|instance-file> <model> [opts]
//
//     gadget        DISAGREE | BAD-GADGET | GOOD-GADGET | ... (same
//                   loader as commroute_sim), or an instance file in the
//                   spp/serialize.hpp text format
//     model         one of the 24 names (R1O .. UEA)
//     opts          --seed S        sampling seed            (default 1)
//                   --steps N       step budget              (default 20000)
//                   --latency US    base link latency        (default 1000)
//                   --jitter US     uniform jitter width     (default 0)
//                   --dist D        fixed | uniform | exponential
//                   --loss P        loss probability (U models only)
//                   --burst M       mean loss-burst length   (default 1)
//                   --proc US       node processing delay    (default 100)
//                   --mrai US       per-node batching timer  (default 0)
//                   --max-virtual US  virtual-time budget    (default off)
//                   --record FILE   flight-record the induced sequence
//                                   (replay with commroute-obs replay)
//                   --causality     build the happens-before DAG and
//                                   report the critical path (in steps
//                                   and virtual us)
//                   --json          print the sim_summary JSON object
//                                   (byte-identical for a fixed seed)
//                   --sweep-latency A,B,..  campaign over latency points
//                   --sweep-loss P,Q,..     campaign over loss points
//                   --seeds N       seeds per sweep point    (default 3)
//                   --threads N     sweep worker threads     (default 0=auto)
//
// Without --sweep-* flags one timed run executes and its virtual-time
// summary is printed; all output is deterministic for a fixed seed (no
// wall-clock fields). With sweep flags a study::run_campaign sweep over
// the latency x loss cross product runs and its CSV goes to stdout.
//
// Examples:
//   latency_lab BAD-GADGET U1O --loss 0.2 --seed 7 --json
//   latency_lab BAD-GADGET UMS --sweep-latency 100,1000,10000
//       --sweep-loss 0,0.1,0.3 --seeds 5 --threads 4
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/meta.hpp"
#include "sim/sim_runner.hpp"
#include "spp/gadgets.hpp"
#include "spp/serialize.hpp"
#include "study/campaign.hpp"

namespace {

using namespace commroute;

int usage() {
  std::cerr
      << "usage: latency_lab <gadget|file> <model> [--seed S] [--steps N]\n"
         "         [--latency US] [--jitter US] [--dist fixed|uniform|"
         "exponential]\n"
         "         [--loss P] [--burst M] [--proc US] [--mrai US]\n"
         "         [--max-virtual US] [--record FILE] [--causality] "
         "[--json]\n"
         "         [--sweep-latency A,B,..] [--sweep-loss P,Q,..]\n"
         "         [--seeds N] [--threads N]\n";
  return 2;
}

spp::Instance load_instance(const std::string& name) {
  for (const auto& [gadget_name, inst] : spp::all_gadgets()) {
    if (gadget_name == name) {
      return inst;
    }
  }
  std::ifstream file(name);
  if (!file) {
    throw PreconditionError("no such gadget or file: " + name);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return spp::parse_instance(text.str());
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> parts;
  std::istringstream in(s);
  std::string part;
  while (std::getline(in, part, ',')) {
    if (!part.empty()) {
      parts.push_back(part);
    }
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  commroute::obs::set_process_argv(argc, argv);
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() < 2) {
    return usage();
  }

  try {
    const spp::Instance instance = load_instance(args[0]);
    const model::Model m = model::Model::parse(args[1]);

    sim::SimOptions opts;
    opts.model = m;
    bool json = false;
    std::string record_file;
    std::vector<std::uint64_t> sweep_latency;
    std::vector<double> sweep_loss;
    std::uint64_t seeds = 3;
    std::size_t threads = 0;

    for (std::size_t i = 2; i < args.size(); ++i) {
      const auto need = [&](const char* flag) {
        if (i + 1 >= args.size()) {
          throw PreconditionError(std::string(flag) + " needs a value");
        }
        return args[++i];
      };
      if (args[i] == "--seed") {
        opts.seed = std::stoull(need("--seed"));
      } else if (args[i] == "--steps") {
        opts.max_steps = std::stoull(need("--steps"));
      } else if (args[i] == "--latency") {
        opts.link.latency_us = std::stoull(need("--latency"));
      } else if (args[i] == "--jitter") {
        opts.link.jitter_us = std::stoull(need("--jitter"));
      } else if (args[i] == "--dist") {
        opts.link.dist = sim::parse_latency_dist(need("--dist"));
      } else if (args[i] == "--loss") {
        opts.link.loss_prob = std::stod(need("--loss"));
      } else if (args[i] == "--burst") {
        opts.link.burst_mean = std::stod(need("--burst"));
      } else if (args[i] == "--proc") {
        opts.node.proc_delay_us = std::stoull(need("--proc"));
      } else if (args[i] == "--mrai") {
        opts.node.mrai_us = std::stoull(need("--mrai"));
      } else if (args[i] == "--max-virtual") {
        opts.max_virtual_us = std::stoull(need("--max-virtual"));
      } else if (args[i] == "--record") {
        record_file = need("--record");
      } else if (args[i] == "--causality") {
        opts.causality = true;
      } else if (args[i] == "--json") {
        json = true;
      } else if (args[i] == "--sweep-latency") {
        for (const std::string& p : split_list(need("--sweep-latency"))) {
          sweep_latency.push_back(std::stoull(p));
        }
      } else if (args[i] == "--sweep-loss") {
        for (const std::string& p : split_list(need("--sweep-loss"))) {
          sweep_loss.push_back(std::stod(p));
        }
      } else if (args[i] == "--seeds") {
        seeds = std::stoull(need("--seeds"));
      } else if (args[i] == "--threads") {
        threads = std::stoull(need("--threads"));
      } else {
        return usage();
      }
    }

    if (!sweep_latency.empty() || !sweep_loss.empty()) {
      // Sweep mode: latency x loss cross product as kSim campaign rows.
      if (sweep_latency.empty()) {
        sweep_latency.push_back(opts.link.latency_us);
      }
      if (sweep_loss.empty()) {
        sweep_loss.push_back(opts.link.loss_prob);
      }
      study::CampaignSpec spec;
      spec.instances.push_back({args[0], &instance});
      spec.models.push_back(m);
      spec.schedulers.push_back(study::SchedulerKind::kSim);
      spec.seeds = seeds;
      spec.max_steps = opts.max_steps;
      spec.sim_node = opts.node;
      spec.causality = opts.causality;
      spec.threads = threads;
      for (const std::uint64_t latency : sweep_latency) {
        for (const double loss : sweep_loss) {
          sim::LinkModel point = opts.link;
          point.latency_us = latency;
          point.loss_prob = loss;
          spec.sim_points.push_back(point);
        }
      }
      const study::CampaignResult result = study::run_campaign(spec);
      std::cout << result.to_csv();
      return 0;
    }

    if (!record_file.empty()) {
      opts.flight.mode = engine::FlightRecorderOptions::Mode::kFull;
      opts.flight.flush_path = record_file;
      opts.flight.flush_always = true;
      opts.flight.instance_name = args[0];
    }

    const sim::SimResult result = sim::run(instance, opts);
    if (json) {
      std::cout << result.to_json() << "\n";
    } else {
      std::cout << "model " << m.name() << ", link "
                << opts.link.describe() << ": "
                << engine::to_string(result.run.outcome) << " after "
                << result.run.steps << " steps / "
                << result.virtual_end_us << " virtual us\n";
      std::cout << "last assignment change at " << result.last_change_us
                << " us; events " << result.events_processed
                << ", delivered " << result.messages_delivered
                << ", lost " << result.messages_lost << "\n";
      std::cout << "last flap per node (us):";
      for (NodeId v = 0; v < instance.node_count(); ++v) {
        std::cout << " " << instance.graph().name(v) << "="
                  << result.last_flap_us[v];
      }
      std::cout << "\n";
    }
    if (!json && opts.causality) {
      std::cout << "critical path: " << result.run.critical_path_len
                << " activation(s), " << result.critical_path_us
                << " virtual us (latency lower bound)\n";
    }
    if (!result.run.recording_path.empty()) {
      std::cout << "recording written to " << result.run.recording_path
                << " (verify with commroute-obs replay; dissect with "
                   "commroute-obs critical-path)\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
