// Tour of the 24-model taxonomy: for every model, check DISAGREE with the
// exhaustive model checker and with randomized fair executions, printing
// one row per model. Reproduces the "weak vs. strong model" split of the
// paper at a glance.
//
//   $ ./taxonomy_tour
#include <iostream>

#include "checker/explorer.hpp"
#include "engine/runner.hpp"
#include "spp/gadgets.hpp"
#include "support/table.hpp"

int main() {
  using namespace commroute;
  using model::Model;

  const spp::Instance inst = spp::disagree();
  std::cout << "DISAGREE under every communication model:\n\n";

  TextTable table;
  table.set_header({"model", "kind", "checker verdict",
                    "random runs converged"});
  for (const Model& m : Model::all()) {
    const auto check = checker::explore(inst, m, {.max_channel_length = 3});

    std::size_t converged = 0;
    const std::size_t trials = 10;
    for (std::size_t seed = 0; seed < trials; ++seed) {
      engine::RandomFairScheduler sched(
          m, inst, Rng(seed),
          {.drop_prob = m.reliable() ? 0.0 : 0.2, .sweep_period = 8});
      const auto run = engine::run(inst, sched,
                                   {.max_steps = 3000,
                                    .record_trace = false});
      if (run.outcome == engine::Outcome::kConverged) {
        ++converged;
      }
    }

    std::string kind;
    if (m.is_polling()) kind = "polling";
    else if (m.is_queueing()) kind = "queueing";
    else if (m.is_message_passing()) kind = "message-passing";

    std::string verdict;
    if (check.oscillation_found) {
      verdict = "can oscillate";
    } else if (check.exhaustive) {
      verdict = "always converges (proof)";
    } else {
      verdict = "no oscillation within bound";
    }
    table.add_row({m.name(), kind, verdict,
                   std::to_string(converged) + "/" +
                       std::to_string(trials)});
  }
  std::cout << table.render() << "\n";

  std::cout
      << "Note how the \"strong\" models (REO, REF and the polling family "
         "wxA) are the only reliable ones where DISAGREE cannot diverge — "
         "exactly Thm. 3.8 — while randomized fair runs converge "
         "everywhere because oscillation needs adversarial timing.\n";
  return 0;
}
