// Quickstart: build an SPP instance, pick a communication model, run the
// distributed routing algorithm, and watch the same network converge or
// oscillate depending only on how updates are collected.
//
//   $ ./quickstart
#include <iostream>

#include "engine/runner.hpp"
#include "spp/builder.hpp"

int main() {
  using namespace commroute;

  // 1. Describe the network: DISAGREE (paper Fig. 5). Node x prefers the
  //    route through y over its direct route, and vice versa.
  spp::InstanceBuilder builder("d");
  builder.edge("x", "d").edge("y", "d").edge("x", "y");
  builder.prefer("x", {"xyd", "xd"});  // most preferred first
  builder.prefer("y", {"yxd", "yd"});
  const spp::Instance instance = builder.build();
  std::cout << instance.to_string() << "\n";

  // 2. Run it under the queueing model RMS (reliable channels, any number
  //    of neighbors and messages per activation) with a fair round-robin
  //    schedule: it converges to one of the two stable solutions.
  {
    const model::Model rms = model::Model::parse("RMS");
    engine::RoundRobinScheduler scheduler(rms, instance);
    const engine::RunResult result =
        engine::run(instance, scheduler, {.enforce_model = rms});
    std::cout << "RMS round-robin: " << engine::to_string(result.outcome)
              << " after " << result.steps << " steps, "
              << result.messages_sent << " messages\n";
    std::cout << "Final assignment:";
    for (NodeId v = 0; v < instance.node_count(); ++v) {
      std::cout << " " << instance.graph().name(v) << "="
                << instance.path_name(result.final_assignment[v]);
    }
    std::cout << "\n\n";
  }

  // 3. Run the *same* network under the message-passing model R1O with
  //    the paper's adversarial-but-fair schedule: it oscillates forever.
  {
    const NodeId d = instance.graph().node("d");
    const NodeId x = instance.graph().node("x");
    const NodeId y = instance.graph().node("y");
    model::ActivationScript script{
        model::read_one_step(instance, d, x),
        model::read_one_step(instance, x, d),
        model::read_one_step(instance, y, d),
        model::read_one_step(instance, x, y),
        model::read_one_step(instance, y, x)};
    const std::size_t loop_from = script.size();
    script.push_back(model::read_one_step(instance, x, y));
    script.push_back(model::read_one_step(instance, y, x));
    script.push_back(model::read_one_step(instance, d, x));
    script.push_back(model::read_one_step(instance, d, y));
    script.push_back(model::read_one_step(instance, x, d));
    script.push_back(model::read_one_step(instance, y, d));

    engine::ScriptedScheduler scheduler(script, loop_from);
    const engine::RunResult result = engine::run(
        instance, scheduler,
        {.max_steps = 100, .enforce_model = model::Model::parse("R1O")});
    std::cout << "R1O scripted: " << engine::to_string(result.outcome)
              << " (provable cycle of length " << result.cycle_length
              << ")\n";
    std::cout << "Oscillating trace (first rows):\n"
              << result.trace.to_string(instance).substr(0, 500)
              << "  ...\n\n";
  }

  std::cout << "Same network, same policies — the communication model "
               "alone decides the outcome.\n";
  return 0;
}
