// commroute_sim: a small command-line simulator.
//
//   commroute_sim --list
//   commroute_sim <gadget|instance-file> <model> [scheduler] [opts]
//
//     gadget        DISAGREE | EXAMPLE-A2 .. EXAMPLE-A5 | BAD-GADGET |
//                   GOOD-GADGET (see --list), or a path to an instance
//                   file in the spp/serialize.hpp text format
//     model         one of the 24 names (R1O .. UEA)
//     scheduler     rr (default) | random | event | sync
//     opts          --steps N      step budget        (default 20000)
//                   --seed S       random seed        (default 1)
//                   --drop P       drop probability   (default 0.2, U only)
//                   --trace        print the path-assignment trace
//                   --replay FILE  play an activation script (see
//                                  docs/FORMAT.md and model/script_io.hpp)
//                   --loop-from N  with --replay: loop the script suffix
//                   --record FILE  flight-record the full run to FILE
//                                  (inspect with commroute-obs replay /
//                                  flaps / oscillation / causality /
//                                  critical-path)
//                   --chrome-trace FILE
//                                  write a Perfetto trace of the run with
//                                  causal flow arrows between steps (open
//                                  in ui.perfetto.dev)
//
// Examples:
//   commroute_sim DISAGREE RMS
//   commroute_sim BAD-GADGET REA rr --steps 500
//   commroute_sim mynet.spp U1O random --seed 7 --drop 0.4 --trace
//   commroute_sim DISAGREE R1O --replay witness.acts --loop-from 5
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "engine/runner.hpp"
#include "model/script_io.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/meta.hpp"
#include "spp/gadgets.hpp"
#include "spp/serialize.hpp"

namespace {

using namespace commroute;

int usage() {
  std::cerr << "usage: commroute_sim --list | <gadget|file> <model> "
               "[rr|random|event|sync] [--steps N] [--seed S] [--drop P] "
               "[--trace] [--record FILE] [--chrome-trace FILE]\n";
  return 2;
}

spp::Instance load_instance(const std::string& name) {
  for (const auto& [gadget_name, inst] : spp::all_gadgets()) {
    if (gadget_name == name) {
      return inst;
    }
  }
  std::ifstream file(name);
  if (!file) {
    throw PreconditionError("no such gadget or file: " + name);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return spp::parse_instance(text.str());
}

}  // namespace

int main(int argc, char** argv) {
  commroute::obs::set_process_argv(argc, argv);
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return usage();
  }
  if (args[0] == "--list") {
    for (const auto& [name, inst] : spp::all_gadgets()) {
      std::cout << name << "  (" << inst.node_count() << " nodes, "
                << inst.permitted_path_count() << " permitted paths)\n";
    }
    return 0;
  }
  if (args.size() < 2) {
    return usage();
  }

  try {
    const spp::Instance instance = load_instance(args[0]);
    const model::Model m = model::Model::parse(args[1]);
    std::string scheduler_name = "rr";
    std::uint64_t steps = 20000, seed = 1;
    double drop = 0.2;
    bool show_trace = false;
    std::string replay_file, record_file, chrome_trace_file;
    std::optional<std::size_t> loop_from;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--steps" && i + 1 < args.size()) {
        steps = std::stoull(args[++i]);
      } else if (args[i] == "--seed" && i + 1 < args.size()) {
        seed = std::stoull(args[++i]);
      } else if (args[i] == "--drop" && i + 1 < args.size()) {
        drop = std::stod(args[++i]);
      } else if (args[i] == "--replay" && i + 1 < args.size()) {
        replay_file = args[++i];
      } else if (args[i] == "--record" && i + 1 < args.size()) {
        record_file = args[++i];
      } else if (args[i] == "--chrome-trace" && i + 1 < args.size()) {
        chrome_trace_file = args[++i];
      } else if (args[i] == "--loop-from" && i + 1 < args.size()) {
        loop_from = std::stoull(args[++i]);
      } else if (args[i] == "--trace") {
        show_trace = true;
      } else if (i == 2) {
        scheduler_name = args[i];
      } else {
        return usage();
      }
    }

    std::unique_ptr<engine::Scheduler> scheduler;
    engine::RunOptions options;
    options.max_steps = steps;
    if (!replay_file.empty()) {
      std::ifstream file(replay_file);
      if (!file) {
        std::cerr << "cannot open script: " << replay_file << "\n";
        return 1;
      }
      std::ostringstream text;
      text << file.rdbuf();
      const model::ActivationScript script =
          model::parse_script(instance, text.str());
      scheduler = std::make_unique<engine::ScriptedScheduler>(script,
                                                              loop_from);
      options.enforce_model = m;
      scheduler_name = "replay(" + replay_file + ")";
    } else if (scheduler_name == "rr") {
      scheduler =
          std::make_unique<engine::RoundRobinScheduler>(m, instance);
      options.enforce_model = m;
    } else if (scheduler_name == "random") {
      scheduler = std::make_unique<engine::RandomFairScheduler>(
          m, instance, Rng(seed),
          engine::RandomFairOptions{.drop_prob =
                                        m.reliable() ? 0.0 : drop,
                                    .sweep_period = 16});
      options.enforce_model = m;
    } else if (scheduler_name == "event") {
      if (!m.is_message_passing()) {
        std::cerr << "the event-driven scheduler needs a wxO model\n";
        return 2;
      }
      scheduler = std::make_unique<engine::EventDrivenScheduler>(instance);
      options.enforce_model = m;
    } else if (scheduler_name == "sync") {
      scheduler =
          std::make_unique<engine::SynchronousScheduler>(m, instance);
      // synchronous steps are multi-node: skip single-node enforcement
    } else {
      return usage();
    }

    if (!record_file.empty()) {
      options.flight.mode = engine::FlightRecorderOptions::Mode::kFull;
      options.flight.flush_path = record_file;
      options.flight.flush_always = true;
      options.flight.instance_name = args[0];
      options.flight.scheduler = scheduler_name;
      options.flight.seed = seed;
    }

    obs::SpanCollector spans;
    if (!chrome_trace_file.empty()) {
      options.obs.spans = &spans;
      options.causality = true;  // flow arrows need the message DAG
    }

    std::cout << instance.to_string() << "\n";
    const engine::RunResult result =
        engine::run(instance, *scheduler, options);

    std::cout << "model " << m.name() << ", scheduler " << scheduler_name
              << ": " << engine::to_string(result.outcome) << " after "
              << result.steps << " steps\n";
    std::cout << "messages sent " << result.messages_sent << ", dropped "
              << result.messages_dropped << ", max queue "
              << result.max_channel_occupancy << ", max read gap "
              << result.max_attempt_gap << "\n";
    if (result.outcome == engine::Outcome::kOscillating) {
      std::cout << "provable cycle: length " << result.cycle_length
                << " starting at step " << result.cycle_start << "\n";
    }
    std::cout << "final assignment:";
    for (NodeId v = 0; v < instance.node_count(); ++v) {
      std::cout << " " << instance.graph().name(v) << "="
                << instance.path_name(result.final_assignment[v]);
    }
    std::cout << "\n";
    if (show_trace) {
      std::cout << "\n" << result.trace.to_string(instance);
    }
    if (!result.recording_path.empty()) {
      std::cout << "recording written to " << result.recording_path
                << " (inspect with commroute-obs replay/flaps/"
                   "oscillation/causality/critical-path)\n";
    }
    if (!chrome_trace_file.empty()) {
      std::ofstream trace_out(chrome_trace_file, std::ios::trunc);
      if (!trace_out) {
        std::cerr << "cannot write " << chrome_trace_file << "\n";
        return 1;
      }
      trace_out << obs::chrome_trace_json(spans, *result.causality)
                << "\n";
      std::cout << "chrome trace written to " << chrome_trace_file
                << " (" << result.critical_path_len
                << "-step critical path; open in ui.perfetto.dev)\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
