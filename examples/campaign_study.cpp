// Campaign study: sweep every registered gadget across the full taxonomy
// with deterministic and randomized fair schedules, print an aggregate
// view, and emit the raw per-run data as CSV.
//
//   $ ./campaign_study            # summary table to stdout
//   $ ./campaign_study --csv      # raw CSV instead (pipe to a file)
//   $ ./campaign_study --trace campaign.json   # span trace for Perfetto
//   $ ./campaign_study --recordings DIR   # flight-record non-converged
//                                         # runs into DIR (ring buffer)
//   $ ./campaign_study --threads N   # worker threads (0 = all cores,
//                                    # 1 = serial); output is identical
//                                    # for any N, modulo wall_ms
//   $ ./campaign_study --telemetry tele.jsonl   # periodic resource
//                                    # snapshots + pool_summary (side
//                                    # channel: RSS and wall-clock live
//                                    # here, never in the CSV)
//   $ ./campaign_study --telemetry-interval MS  # snapshot cadence
//   $ ./campaign_study --causality   # per-row happens-before DAGs:
//                                    # critical_path_len/_us columns
//                                    # (byte-identical for any --threads)
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/meta.hpp"
#include "spp/gadgets.hpp"
#include "study/campaign.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace commroute;
  obs::set_process_argv(argc, argv);
  bool csv = false;
  bool causality = false;
  std::size_t threads = 0;
  std::uint64_t telemetry_interval = 250;
  std::string trace_path, recording_dir, telemetry_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--recordings" && i + 1 < argc) {
      recording_dir = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--telemetry" && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else if (arg == "--telemetry-interval" && i + 1 < argc) {
      telemetry_interval = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--causality") {
      causality = true;
    }
  }

  const auto gadgets = spp::all_gadgets();
  study::CampaignSpec spec;
  for (const auto& [name, inst] : gadgets) {
    spec.instances.emplace_back(name, &inst);
  }
  spec.models = model::Model::all();
  spec.schedulers = {study::SchedulerKind::kRoundRobin,
                     study::SchedulerKind::kRandomFair};
  spec.seeds = 3;
  spec.max_steps = 30000;
  spec.recording_dir = recording_dir;
  spec.causality = causality;
  spec.threads = threads;

  obs::SpanCollector spans;
  if (!trace_path.empty()) {
    spec.obs.spans = &spans;
  }
  std::unique_ptr<obs::FileSink> telemetry;
  if (!telemetry_path.empty()) {
    telemetry = std::make_unique<obs::FileSink>(telemetry_path);
    spec.telemetry_sink = telemetry.get();
    spec.telemetry_interval_ms = telemetry_interval;
  }

  const study::CampaignResult result = study::run_campaign(spec);

  if (telemetry != nullptr) {
    std::cerr << "Wrote resource telemetry to " << telemetry_path
              << " — inspect with commroute-obs mem/pool\n";
  }

  if (!trace_path.empty()) {
    obs::write_chrome_trace(spans, trace_path);
    std::cerr << "Wrote " << spans.size() << " span(s) to " << trace_path
              << " — open in chrome://tracing or ui.perfetto.dev\n";
  }

  if (csv) {
    std::cout << result.to_csv();
    return 0;
  }

  std::cout << result.rows.size() << " runs ("
            << spec.instances.size() << " instances x 24 models x {rr, 3 "
               "random seeds}).\n\n";

  TextTable table;
  table.set_header({"instance", "converged", "oscillating/exhausted",
                    "median steps (converged)"});
  for (const auto& [name, inst] : gadgets) {
    std::size_t converged = 0, other = 0;
    for (const auto& row : result.rows) {
      if (row.instance != name) {
        continue;
      }
      (row.outcome == engine::Outcome::kConverged ? converged : other) += 1;
    }
    const auto median = result.median_steps([&](const auto& row) {
      return row.instance == name &&
             row.outcome == engine::Outcome::kConverged;
    });
    table.add_row({name, std::to_string(converged), std::to_string(other),
                   std::to_string(median)});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "BAD-GADGET and CYCLIC-5 never converge (no stable assignment "
         "exists). DISAGREE and DISAGREE-CHAIN-2 converge under "
         "randomized schedules but the deterministic round-robin rotation "
         "happens to *be* an adversarial schedule for a handful of "
         "one-message models — fair does not mean safe. Run with --csv "
         "for the raw per-run rows.\n";
  return 0;
}
