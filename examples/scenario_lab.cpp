// Scenario lab: the scenario subsystem end to end — ranking
// perturbations, timed fault injection, and adversarial robustness
// search (docs/SCENARIOS.md).
//
//   $ ./scenario_lab                  # demo: perturb GOOD-GADGET, then run
//                                     # a faulted sim and report reconvergence
//   $ ./scenario_lab --record FILE    # flight-record the faulted demo run
//                                     # (schema v3; replay with commroute-obs)
//   $ ./scenario_lab --hunt           # adversarial search: minimal ranking
//                                     # perturbation that breaks GOOD-GADGET
//   $ ./scenario_lab --model UMS      # model for the demo / hunt
//   $ ./scenario_lab --campaign       # perturbation x fault-schedule campaign
//                                     # over all 24 models (E-PERTURB driver)
//   $ ./scenario_lab --campaign --csv            # raw rows
//   $ ./scenario_lab --campaign --threads N      # identical bytes for any N
//   $ ./scenario_lab --campaign --provenance F   # perturbation records JSONL
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "checker/explorer.hpp"
#include "model/script_io.hpp"
#include "obs/meta.hpp"
#include "scenario/fault.hpp"
#include "scenario/perturb.hpp"
#include "scenario/search.hpp"
#include "sim/sim_runner.hpp"
#include "spp/gadgets.hpp"
#include "study/campaign.hpp"
#include "support/table.hpp"

namespace {

using namespace commroute;

int run_demo(const model::Model& m, const std::string& record_path) {
  const spp::Instance base = spp::good_gadget();

  // Pillar 1: a deterministic ranking perturbation with provenance.
  scenario::PerturbSpec pspec;
  pspec.kind = scenario::PerturbKind::kTieBreakFlip;
  pspec.count = 1;
  const scenario::PerturbResult perturbed = scenario::perturb(base, pspec, 7);
  std::cout << "perturbation: " << perturbed.record.to_json(base) << "\n";

  // Pillar 2: a timed fault schedule injected into the DES run — a link
  // flap followed by a node reboot, all after the unfaulted network
  // would have converged.
  const scenario::FaultSchedule faults = scenario::parse_fault_schedule(
      "1200 link-down 1 2; 2600 link-up 1 2; 4000 reboot 3",
      perturbed.instance);
  std::cout << "faults:       " << faults.format(perturbed.instance)
            << "\n\n";

  sim::SimOptions sopts;
  sopts.model = m;
  sopts.seed = 42;
  sopts.faults = &faults;
  if (!record_path.empty()) {
    sopts.flight.mode = engine::FlightRecorderOptions::Mode::kFull;
    sopts.flight.instance_name = "GOOD-GADGET~tiebreak:1#7";
    sopts.flight.scheduler = "sim";
    sopts.flight.seed = sopts.seed;
    sopts.flight.flush_path = record_path;
    sopts.flight.flush_always = true;
  }
  const sim::SimResult res = sim::run(perturbed.instance, sopts);

  std::cout << "model " << m.name() << ": "
            << engine::to_string(res.run.outcome) << " after "
            << res.run.steps << " steps, " << res.faults_applied
            << " fault(s) applied\n";
  std::cout << "  last fault at  " << res.last_fault_us << " us\n";
  std::cout << "  last change at " << res.last_change_us << " us\n";
  std::cout << "  reconvergence  " << res.reconverge_us()
            << " us after the final fault\n";
  if (!record_path.empty()) {
    std::cout << "\nWrote recording to " << record_path
              << " — replay with `commroute-obs replay " << record_path
              << "`\n";
  }
  return 0;
}

int run_hunt(const model::Model& m) {
  const spp::Instance base = spp::good_gadget();

  // GOOD-GADGET's tie-breaks are exactly what separates it from
  // BAD-GADGET, but a single flip is harmless — the search has to find
  // a *set* of flips whose interaction builds a dispute wheel. Sweep
  // the default ladder first (count 1-2, provably insufficient here),
  // then triple flips.
  scenario::BreakSearchOptions opts;
  opts.specs.push_back(scenario::parse_perturb_spec("tiebreak:1"));
  opts.specs.push_back(scenario::parse_perturb_spec("tiebreak:2"));
  opts.specs.push_back(scenario::parse_perturb_spec("tiebreak:3"));
  opts.explore.max_states = 200000;
  opts.minimize = true;

  const scenario::BreakSearchResult found =
      scenario::find_breaking_perturbation(base, m, opts);
  std::cout << "explored " << found.explorations
            << " perturbed instances under " << m.name() << "\n";
  if (!found.found) {
    std::cout << "no breaking perturbation in the swept families\n";
    return 1;
  }
  std::cout << "breaking perturbation ("
            << scenario::to_string(found.record.kind) << ", "
            << found.record.edits.size() << " edit(s), every one "
            << "necessary):\n  " << found.record.to_json(base) << "\n";
  std::cout << "witness SCC size " << found.witness_scc_size
            << "; oscillation = prefix (" << found.witness_prefix.size()
            << " step(s)) then cycle (" << found.witness_cycle.size()
            << " step(s)) forever; first cycle step:\n  "
            << model::format_script(
                   *found.instance,
                   model::ActivationScript{found.witness_cycle.front()})
            << "\n";
  if (found.minimized.has_value()) {
    std::cout << "delta-debugged oscillating core: removed "
              << found.minimized->removed_paths << " more permitted "
              << "path(s), minimal="
              << (found.minimized->minimal ? "yes" : "no") << "\n";
  }
  return 0;
}

int run_campaign_mode(bool csv, std::size_t threads,
                      const std::string& provenance_path) {
  const spp::Instance good = spp::good_gadget();
  const spp::Instance disagree = spp::disagree();

  study::CampaignSpec spec;
  spec.instances.emplace_back("GOOD-GADGET", &good);
  spec.instances.emplace_back("DISAGREE", &disagree);
  spec.models = model::Model::all();
  spec.schedulers = {study::SchedulerKind::kSim};
  spec.seeds = 2;
  spec.max_steps = 30000;
  spec.threads = threads;
  spec.perturbations.push_back(scenario::parse_perturb_spec("tiebreak:1"));
  spec.perturbations.push_back(scenario::parse_perturb_spec("rankswap:2"));
  spec.perturbations.push_back(scenario::parse_perturb_spec("delete:1"));
  spec.perturb_seeds = 1;
  // Fault axis: a no-fault baseline cell, a link flap, and a session
  // reset + reboot combination.
  spec.fault_schedules.push_back(scenario::parse_fault_spec("none"));
  spec.fault_schedules.push_back(scenario::parse_fault_spec("flap1"));
  spec.fault_schedules.push_back(
      scenario::parse_fault_spec("reset1+reboot1"));

  const study::CampaignResult result = study::run_campaign(spec);

  if (!provenance_path.empty()) {
    std::ofstream out(provenance_path);
    for (const study::PerturbProvenance& p : result.provenance) {
      out << "{\"variant\":\"" << p.variant << "\",\"record\":"
          << p.record_json << "}\n";
    }
    std::cerr << "Wrote " << result.provenance.size()
              << " perturbation record(s) to " << provenance_path << "\n";
  }

  if (csv) {
    std::cout << result.to_csv();
    return 0;
  }

  // The E-PERTURB view: per (model, perturbation) divergence probability
  // and median reconvergence time over the faulted cells.
  std::vector<std::string> perturbs = {"none"};
  for (const scenario::PerturbSpec& p : spec.perturbations) {
    perturbs.push_back(p.label());
  }
  TextTable table;
  table.set_header({"model", "perturb", "diverged", "median reconverge us"});
  for (const model::Model& m : spec.models) {
    for (const std::string& perturb : perturbs) {
      std::size_t total = 0, diverged = 0;
      std::vector<std::uint64_t> reconverge;
      for (const study::CampaignRow& row : result.rows) {
        if (row.model.index() != m.index() || row.perturb != perturb) {
          continue;
        }
        ++total;
        if (row.outcome != engine::Outcome::kConverged) {
          ++diverged;
        }
        if (row.faults_applied > 0 &&
            row.outcome == engine::Outcome::kConverged) {
          reconverge.push_back(row.reconverge_us);
        }
      }
      if (total == 0) {
        continue;
      }
      std::sort(reconverge.begin(), reconverge.end());
      table.add_row({m.name(), perturb,
                     std::to_string(diverged) + "/" + std::to_string(total),
                     reconverge.empty()
                         ? "-"
                         : std::to_string(reconverge[reconverge.size() / 2])});
    }
  }
  std::cout << result.rows.size() << " rows (2 instances x 4 perturbation "
            << "cells x 24 models x 3 fault cells x 2 seeds, lossy cells "
            << "skipped for R models).\n\n";
  std::cout << table.render();
  std::cout << "\nDivergence here means the row exhausted its step budget "
               "without quiescing. Rerun with --csv for the raw rows; the "
               "bytes are identical for any --threads value.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::set_process_argv(argc, argv);
  bool campaign = false;
  bool hunt = false;
  bool csv = false;
  std::size_t threads = 1;
  std::string record_path, provenance_path;
  bool model_given = false;
  model::Model m = model::Model::parse("UMS");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--campaign") {
      campaign = true;
    } else if (arg == "--hunt") {
      hunt = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--record" && i + 1 < argc) {
      record_path = argv[++i];
    } else if (arg == "--provenance" && i + 1 < argc) {
      provenance_path = argv[++i];
    } else if (arg == "--model" && i + 1 < argc) {
      m = model::Model::parse(argv[++i]);
      model_given = true;
    }
  }
  if (campaign) {
    return run_campaign_mode(csv, threads, provenance_path);
  }
  if (hunt) {
    // The hunt's checker sweeps dozens of perturbed instances; default
    // to the cheap one-message model unless the user picked one.
    return run_hunt(model_given ? m : model::Model::parse("R1O"));
  }
  return run_demo(m, record_path);
}
