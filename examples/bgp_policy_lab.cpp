// BGP policy lab: the taxonomy applied to interdomain routing.
//
// Compiles a Gao-Rexford AS topology into an SPP instance (valley-free
// permitted paths, customer > peer > provider ranking, GR3 export
// filtering) and shows it converging under every communication model —
// then contrasts with BAD GADGET, a policy configuration outside the
// Gao-Rexford rules that diverges even under polling.
//
//   $ ./bgp_policy_lab
#include <iostream>

#include "bgp/compile.hpp"
#include "bgp/random_topology.hpp"
#include "engine/runner.hpp"
#include "spp/dispute_wheel.hpp"
#include "spp/gadgets.hpp"
#include "spp/solver.hpp"
#include "support/table.hpp"

int main() {
  using namespace commroute;
  using model::Model;

  // A small provider hierarchy with peering and multihoming.
  auto topo = std::make_shared<bgp::AsTopology>();
  topo->add_peering("as0", "as1");
  topo->add_customer_provider("as2", "as0");
  topo->add_customer_provider("as3", "as1");
  topo->add_peering("as2", "as3");
  topo->add_customer_provider("as4", "as2");
  topo->add_customer_provider("as4", "as3");

  const spp::Instance inst = bgp::compile_gao_rexford(topo, "as0");
  std::cout << "Gao-Rexford configuration compiled to SPP:\n"
            << inst.to_string() << "\n";
  std::cout << "Dispute-wheel free: "
            << (spp::is_dispute_wheel_free(inst) ? "yes" : "no")
            << " (GR1-GR3 guarantee this)\n\n";

  TextTable table;
  table.set_header({"model", "outcome", "steps", "messages"});
  for (const Model& m : Model::all()) {
    engine::RoundRobinScheduler sched(m, inst);
    const auto run = engine::run(inst, sched,
                                 {.record_trace = false,
                                  .enforce_model = m});
    table.add_row({m.name(), engine::to_string(run.outcome),
                   std::to_string(run.steps),
                   std::to_string(run.messages_sent)});
  }
  std::cout << table.render() << "\n";

  std::cout << "Model dimensions map onto BGP configuration:\n"
               "  R vs U — BGP-over-TCP vs. datagram transport;\n"
               "  A      — Route Refresh (RFC 2918): poll the neighbor's "
               "current state;\n"
               "  O vs S — per-update event processing vs. draining the "
               "Adj-RIB-In queue.\n\n";

  // Outside Gao-Rexford: BAD GADGET diverges in every model.
  const spp::Instance bad = spp::bad_gadget();
  std::cout << "Counterpoint — BAD GADGET (cyclic transit preferences, "
               "violating GR):\n"
            << bad.to_string();
  std::cout << "Stable solutions: " << spp::stable_assignments(bad).size()
            << "; dispute wheel: "
            << (spp::find_dispute_wheel(bad) ? "yes" : "no") << "\n";
  engine::RoundRobinScheduler sched(Model::parse("REA"), bad);
  const auto run = engine::run(bad, sched, {.max_steps = 2000,
                                            .record_trace = false});
  std::cout << "Under REA (polling, the strongest model): "
            << engine::to_string(run.outcome) << " after " << run.steps
            << " steps — no communication model can save a broken policy "
               "configuration.\n";
  return 0;
}
