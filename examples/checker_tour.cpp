// Tour of the verification toolkit: exhaustive checking, witness
// extraction and replay, targeted realization search, and instance
// minimization — on one small custom network.
//
//   $ ./checker_tour
//   $ ./checker_tour --trace tour.json   # span trace for Perfetto
//   $ ./checker_tour --witness osc.recording.jsonl
//                                        # export the found oscillation
//                                        # witness as a recording
//   $ ./checker_tour --threads 8         # parallel exploration (same
//                                        # bytes at any width)
//   $ ./checker_tour --searcher dfs      # bfs | dfs | random | priority
#include <iostream>
#include <string>

#include "checker/explorer.hpp"
#include "checker/minimize.hpp"
#include "checker/targeted.hpp"
#include "engine/runner.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/meta.hpp"
#include "spp/builder.hpp"
#include "trace/recording.hpp"
#include "trace/recording_io.hpp"

int main(int argc, char** argv) {
  using namespace commroute;
  using model::Model;

  obs::set_process_argv(argc, argv);
  std::string trace_path, witness_path;
  std::size_t threads = 1;
  checker::SearcherKind searcher = checker::SearcherKind::kBFS;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::string(argv[i]) == "--witness" && i + 1 < argc) {
      witness_path = argv[++i];
    } else if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::string(argv[i]) == "--searcher" && i + 1 < argc) {
      searcher = checker::parse_searcher_kind(argv[++i]);
    }
  }
  obs::SpanCollector spans;
  obs::Instrumentation tour_obs;
  if (!trace_path.empty()) {
    tour_obs.spans = &spans;
  }

  // DISAGREE with a decoy: x has a third, useless route through w.
  spp::InstanceBuilder b("d");
  b.edge("x", "d").edge("y", "d").edge("x", "y");
  b.edge("w", "d").edge("w", "x");
  b.prefer("x", {"xyd", "xd", "xwd"});
  b.prefer("y", {"yxd", "yd"});
  b.prefer("w", {"wd"});
  const spp::Instance inst = b.build();
  std::cout << inst.to_string() << "\n";

  // 1. Exhaustive checking: can it oscillate under R1O? Under REA?
  checker::ExploreOptions opts{.max_channel_length = 3,
                               .extract_witness = true};
  opts.obs = tour_obs;
  opts.threads = threads;
  opts.searcher = searcher;
  const auto weak = checker::explore(inst, Model::parse("R1O"), opts);
  checker::ExploreOptions strong_opts{.max_channel_length = 3};
  strong_opts.obs = tour_obs;
  strong_opts.threads = threads;
  strong_opts.searcher = searcher;
  const auto strong = checker::explore(inst, Model::parse("REA"),
                                       strong_opts);
  std::cout << "R1O: " << weak.summary() << "\n";
  std::cout << "REA: " << strong.summary() << "\n\n";

  // 2. Replay the discovered oscillation as a concrete schedule.
  if (weak.oscillation_found) {
    model::ActivationScript script = weak.witness_prefix;
    const std::size_t loop_from = script.size();
    script.insert(script.end(), weak.witness_cycle.begin(),
                  weak.witness_cycle.end());
    engine::ScriptedScheduler sched(script, loop_from);
    engine::RunOptions replay_opts{.max_steps = 5 * script.size() + 50,
                                   .enforce_model = Model::parse("R1O")};
    replay_opts.obs = tour_obs;
    const auto run = engine::run(inst, sched, replay_opts);
    std::cout << "Replaying the checker's witness ("
              << weak.witness_prefix.size() << " prefix + "
              << weak.witness_cycle.size() << " cycle steps): "
              << engine::to_string(run.outcome) << ", cycle length "
              << run.cycle_length << "\n\n";

    // Export the witness as a durable recording: same JSONL schema as
    // the flight recorder, so commroute-obs replay/flaps/oscillation all
    // work on checker output too.
    if (!witness_path.empty()) {
      trace::RecordingDoc doc = trace::record_witness(
          inst, weak.witness_prefix, weak.witness_cycle);
      doc.meta.instance_name = "disagree-with-decoy";
      doc.meta.model = "R1O";
      trace::save_recording(witness_path, inst, doc);
      std::cout << "Wrote the oscillation witness to " << witness_path
                << " (inspect with commroute-obs)\n\n";
    }
  }

  // 3. Targeted search: is the REA converged trace exactly realizable in
  //    R1O? (Here yes — this instance has no Fig. 7-style trap.)
  {
    engine::RoundRobinScheduler sched(Model::parse("REA"), inst);
    engine::RunOptions run_opts{.enforce_model = Model::parse("REA")};
    run_opts.obs = tour_obs;
    const auto run = engine::run(inst, sched, run_opts);
    trace::Trace target = run.trace;
    const auto exact = checker::find_realization(
        inst, Model::parse("R1O"), target, trace::MatchKind::kExact);
    std::cout << "REA round-robin trace exactly realizable in R1O: "
              << exact.summary() << "\n\n";
  }

  // 4. Minimization: strip the decoy route, keep the oscillation.
  checker::ExploreOptions minimize_opts{.max_channel_length = 3};
  minimize_opts.obs = tour_obs;
  const auto minimized = checker::minimize_oscillating_instance(
      inst, Model::parse("R1O"), minimize_opts);
  std::cout << "Minimized oscillating core (removed "
            << minimized.removed_paths << " path(s)):\n"
            << minimized.instance.to_string();
  std::cout << "\nThe decoy xwd is gone; what remains is DISAGREE plus "
               "spectators — the canonical conflict this library is "
               "about.\n";

  if (!trace_path.empty()) {
    obs::write_chrome_trace(spans, trace_path);
    std::cout << "\nWrote " << spans.size() << " span(s) to " << trace_path
              << " — open in chrome://tracing or ui.perfetto.dev\n";
  }
  return 0;
}
