// Tour of the verification toolkit: exhaustive checking, witness
// extraction and replay, targeted realization search, and instance
// minimization — on one small custom network.
//
//   $ ./checker_tour
#include <iostream>

#include "checker/explorer.hpp"
#include "checker/minimize.hpp"
#include "checker/targeted.hpp"
#include "engine/runner.hpp"
#include "spp/builder.hpp"
#include "trace/recording.hpp"

int main() {
  using namespace commroute;
  using model::Model;

  // DISAGREE with a decoy: x has a third, useless route through w.
  spp::InstanceBuilder b("d");
  b.edge("x", "d").edge("y", "d").edge("x", "y");
  b.edge("w", "d").edge("w", "x");
  b.prefer("x", {"xyd", "xd", "xwd"});
  b.prefer("y", {"yxd", "yd"});
  b.prefer("w", {"wd"});
  const spp::Instance inst = b.build();
  std::cout << inst.to_string() << "\n";

  // 1. Exhaustive checking: can it oscillate under R1O? Under REA?
  const checker::ExploreOptions opts{.max_channel_length = 3,
                                     .extract_witness = true};
  const auto weak = checker::explore(inst, Model::parse("R1O"), opts);
  const auto strong = checker::explore(inst, Model::parse("REA"),
                                       {.max_channel_length = 3});
  std::cout << "R1O: " << weak.summary() << "\n";
  std::cout << "REA: " << strong.summary() << "\n\n";

  // 2. Replay the discovered oscillation as a concrete schedule.
  if (weak.oscillation_found) {
    model::ActivationScript script = weak.witness_prefix;
    const std::size_t loop_from = script.size();
    script.insert(script.end(), weak.witness_cycle.begin(),
                  weak.witness_cycle.end());
    engine::ScriptedScheduler sched(script, loop_from);
    const auto run = engine::run(
        inst, sched,
        {.max_steps = 5 * script.size() + 50,
         .enforce_model = Model::parse("R1O")});
    std::cout << "Replaying the checker's witness ("
              << weak.witness_prefix.size() << " prefix + "
              << weak.witness_cycle.size() << " cycle steps): "
              << engine::to_string(run.outcome) << ", cycle length "
              << run.cycle_length << "\n\n";
  }

  // 3. Targeted search: is the REA converged trace exactly realizable in
  //    R1O? (Here yes — this instance has no Fig. 7-style trap.)
  {
    engine::RoundRobinScheduler sched(Model::parse("REA"), inst);
    const auto run = engine::run(inst, sched,
                                 {.enforce_model = Model::parse("REA")});
    trace::Trace target = run.trace;
    const auto exact = checker::find_realization(
        inst, Model::parse("R1O"), target, trace::MatchKind::kExact);
    std::cout << "REA round-robin trace exactly realizable in R1O: "
              << exact.summary() << "\n\n";
  }

  // 4. Minimization: strip the decoy route, keep the oscillation.
  const auto minimized = checker::minimize_oscillating_instance(
      inst, Model::parse("R1O"), {.max_channel_length = 3});
  std::cout << "Minimized oscillating core (removed "
            << minimized.removed_paths << " path(s)):\n"
            << minimized.instance.to_string();
  std::cout << "\nThe decoy xwd is gone; what remains is DISAGREE plus "
               "spectators — the canonical conflict this library is "
               "about.\n";
  return 0;
}
