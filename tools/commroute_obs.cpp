// commroute-obs: consumer CLI for the observability artifacts the
// library emits — JSONL event traces, span traces, BENCH_*.json perf
// output, and flight-recorder recordings. Closes the loop PR-wise: what
// the instrumented loops write, this tool aggregates, converts, gates
// on, replays, and dissects.
//
//   commroute-obs summarize RUN.jsonl [--follow]   per-type counts + latency quantiles
//   commroute-obs report RUN.jsonl [--json] [--title T]
//                                                  self-contained HTML (or JSON) run report
//   commroute-obs spans TRACE[.jsonl|.json] [--top N]   self-time table
//   commroute-obs convert RUN.jsonl OUT.json       Chrome trace / Perfetto export
//   commroute-obs bench-diff BASE.json CUR.json [--threshold PCT] [--mem-threshold PCT]
//                                                  perf+mem gate: exit 1 on regression
//   commroute-obs mem RUN.jsonl [--json]           memory telemetry report
//   commroute-obs pool RUN.jsonl [--json]          thread-pool utilization report
//   commroute-obs replay REC.recording.jsonl       deterministic re-execution diff
//   commroute-obs flaps REC.recording.jsonl        per-node route-flap timelines
//   commroute-obs oscillation REC.recording.jsonl  cycle extraction
//   commroute-obs causality REC.recording.jsonl    happens-before DAG stats + influence
//   commroute-obs critical-path REC.recording.jsonl  longest dependency chain, hop by hop
//
// Input handling: a missing or unreadable file exits 2 with a clear
// message; an empty file is a valid zero-event input for summarize /
// spans / convert and a hard error (exit 2) where structure is required
// (bench-diff and the recording commands).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/report.hpp"
#include "obs/causality.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/forensics.hpp"
#include "obs/json.hpp"
#include "obs/meta.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "trace/recording_io.hpp"

namespace {

using namespace commroute;

constexpr int kExitOk = 0;
// Exit 1 = the analysis itself says "no": a perf regression, a replay
// divergence, or no oscillation found. Exit 2 = usage / input errors.
constexpr int kExitFinding = 1;
constexpr int kExitUsage = 2;

int usage() {
  std::cerr
      << "usage: commroute-obs <command> [args]\n"
         "  summarize FILE.jsonl [--follow]    aggregate a JSONL event "
         "trace per event type\n"
         "                                     (--follow tails the file, "
         "re-printing as it grows)\n"
         "  report FILE.jsonl [--json] [--title T]\n"
         "                                     render any JSONL artifact "
         "into one self-contained\n"
         "                                     HTML page (inline CSS/SVG, "
         "no scripts); --json emits\n"
         "                                     the deterministic report "
         "document instead\n"
         "  spans FILE [--top N]               span self-time table "
         "(JSONL or Chrome trace input)\n"
         "  convert FILE.jsonl OUT.json        JSONL -> Chrome "
         "trace-event JSON (open in Perfetto)\n"
         "  bench-diff BASELINE.json CURRENT.json [--threshold PCT] "
         "[--mem-threshold PCT]\n"
         "                                     compare BENCH_*.json runs; "
         "exit 1 beyond threshold (default 10,\n"
         "                                     byte metrics gated "
         "separately, default 25)\n"
         "  mem FILE.jsonl [--json]            memory telemetry: snapshot "
         "gauges, checker/engine byte peaks\n"
         "  pool FILE.jsonl [--json]           thread-pool utilization "
         "from pool_summary + snapshots\n"
         "  replay FILE.recording.jsonl [--json]\n"
         "                                     re-execute a recording and "
         "diff per-step assignments; exit 1 on divergence\n"
         "  flaps FILE.recording.jsonl [--json]\n"
         "                                     per-node route-flap "
         "timelines + channel occupancy peaks\n"
         "  oscillation FILE.recording.jsonl [--json]\n"
         "                                     extract the recurring "
         "pi-cycle; exit 1 when none is found\n"
         "  causality FILE.recording.jsonl [--json] [--why NODE]\n"
         "                                     happens-before DAG stats + "
         "per-node influence; --why traces\n"
         "                                     the adoption chain behind "
         "NODE's final assignment\n"
         "  critical-path FILE.recording.jsonl [--json]\n"
         "                                     longest dependency chain to "
         "the last assignment change,\n"
         "                                     hop by hop; exit 1 when "
         "nothing ever changed\n";
  return kExitUsage;
}

/// Opens `path` for reading; on failure prints the message every
/// subcommand shares and leaves the stream !is_open().
std::ifstream open_input(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::cerr << "commroute-obs: cannot open " << path
              << ": no such file or not readable\n";
  }
  return in;
}

std::string slurp(std::ifstream& in) {
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool blank(const std::string& content) {
  return trim(content).empty();
}

std::string format_us(std::uint64_t us) {
  char buf[32];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof buf, "%.2fs", static_cast<double>(us) / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof buf, "%.2fms",
                  static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lluus",
                  static_cast<unsigned long long>(us));
  }
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.2fGiB",
                  static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024ull * 1024) {
    std::snprintf(buf, sizeof buf, "%.2fMiB",
                  static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1fKiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

void print_summary(const obs::JsonlSummary& summary) {
  TextTable table;
  table.set_header({"type", "count", "timed", "total", "p50", "p90",
                    "p99", "max"});
  for (const obs::EventTypeSummary& row : summary.types) {
    table.add_row({row.type, std::to_string(row.count),
                   std::to_string(row.timed), format_us(row.total_us),
                   format_us(row.p50_us), format_us(row.p90_us),
                   format_us(row.p99_us), format_us(row.max_us)});
  }
  std::cout << table.render();
  std::cout << summary.lines << " line(s), " << summary.malformed
            << " malformed\n";
}

int cmd_summarize(const std::vector<std::string>& args) {
  bool follow = false;
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    if (arg == "--follow") {
      follow = true;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 1) {
    return usage();
  }
  std::ifstream in = open_input(files[0]);
  if (!in.is_open()) {
    return kExitUsage;
  }
  if (!follow) {
    const obs::JsonlSummary summary = obs::summarize_jsonl(in);
    if (summary.lines == 0) {
      std::cout << files[0] << ": empty input (0 events)\n";
      return kExitOk;
    }
    print_summary(summary);
    return kExitOk;
  }
  // Tail mode: one StreamingSummarizer lives for the whole watch, so
  // memory stays bounded however long the producer runs. Each pass
  // drains whatever was appended since the last EOF, clears the eof bit,
  // and re-prints only when the file actually grew. Runs until killed.
  obs::StreamingSummarizer summarizer;
  std::size_t reported = static_cast<std::size_t>(-1);
  for (;;) {
    summarizer.consume(in);
    if (summarizer.lines() != reported) {
      reported = summarizer.lines();
      print_summary(summarizer.summary());
      std::cout.flush();
    }
    if (in.bad()) {
      std::cerr << "commroute-obs: read error on " << files[0] << "\n";
      return kExitUsage;
    }
    in.clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
}

int cmd_report(const std::vector<std::string>& args) {
  std::string file;
  std::string title;
  bool json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      json = true;
    } else if (args[i] == "--title" && i + 1 < args.size()) {
      title = args[++i];
    } else if (file.empty()) {
      file = args[i];
    } else {
      return usage();
    }
  }
  if (file.empty()) {
    return usage();
  }
  std::ifstream in = open_input(file);
  if (!in.is_open()) {
    return kExitUsage;
  }
  const obs::RunReport report = obs::build_report(in, file);
  if (json) {
    // Deterministic by design (no generation metadata): CI runs this
    // twice and byte-compares, like causality_report.
    std::cout << obs::report_json(report) << "\n";
  } else {
    std::cout << obs::report_html(report, title);
  }
  return kExitOk;
}

int cmd_spans(const std::vector<std::string>& args) {
  std::size_t top = 20;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top" && i + 1 < args.size()) {
      top = static_cast<std::size_t>(std::stoul(args[++i]));
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 1) {
    return usage();
  }
  std::ifstream in = open_input(files[0]);
  if (!in.is_open()) {
    return kExitUsage;
  }
  // A Chrome trace document is one JSON object spanning the whole file;
  // a span trace is JSONL. Try the document parse first.
  const std::string content = slurp(in);
  std::vector<obs::SpanRecord> records;
  if (const auto doc = obs::json_parse(content);
      doc.has_value() && doc->find("traceEvents") != nullptr) {
    records = obs::spans_from_chrome_trace(*doc);
  } else {
    std::istringstream jsonl(content);
    records = obs::spans_from_jsonl(jsonl);
  }
  if (records.empty()) {
    std::cout << "no spans in " << files[0] << "\n";
    return kExitOk;
  }
  const std::vector<obs::SpanStat> stats = obs::span_self_times(records);

  TextTable table;
  table.set_header({"span", "count", "self", "total", "max"});
  for (std::size_t i = 0; i < stats.size() && i < top; ++i) {
    const obs::SpanStat& s = stats[i];
    table.add_row({s.name, std::to_string(s.count), format_us(s.self_us),
                   format_us(s.total_us), format_us(s.max_us)});
  }
  std::cout << table.render();
  std::cout << records.size() << " span(s), " << stats.size()
            << " distinct name(s)\n";
  return kExitOk;
}

int cmd_convert(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return usage();
  }
  std::ifstream in = open_input(args[0]);
  if (!in.is_open()) {
    return kExitUsage;
  }
  const obs::JsonlConversion conversion = obs::chrome_trace_from_jsonl(in);
  std::ofstream out(args[1], std::ios::trunc);
  CR_REQUIRE(out.is_open(), "cannot write " + args[1]);
  out << conversion.trace_json << "\n";
  std::cout << args[1] << ": " << conversion.events << " event(s), "
            << conversion.skipped
            << " skipped — open in chrome://tracing or ui.perfetto.dev\n";
  return kExitOk;
}

std::optional<obs::JsonValue> parse_json_file(const std::string& path,
                                              const char* expected) {
  std::ifstream in = open_input(path);
  if (!in.is_open()) {
    return std::nullopt;
  }
  const std::string content = slurp(in);
  if (blank(content)) {
    std::cerr << "commroute-obs: " << path << ": empty file (expected "
              << expected << ")\n";
    return std::nullopt;
  }
  auto doc = obs::json_parse(content);
  if (!doc.has_value()) {
    std::cerr << "commroute-obs: " << path << " is not valid JSON\n";
  }
  return doc;
}

/// Shared "FILE [--json]" argument shape (mem, pool, and the
/// recording commands).
struct RecordingArgs {
  std::string file;
  bool json = false;
  bool ok = false;
};

RecordingArgs parse_recording_args(const std::vector<std::string>& args) {
  RecordingArgs out;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      out.json = true;
    } else if (out.file.empty()) {
      out.file = arg;
    } else {
      return out;  // too many positionals
    }
  }
  out.ok = !out.file.empty();
  return out;
}

int cmd_bench_diff(const std::vector<std::string>& args) {
  double threshold = 10.0;
  double mem_threshold = 25.0;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold" && i + 1 < args.size()) {
      threshold = std::stod(args[++i]);
    } else if (args[i] == "--mem-threshold" && i + 1 < args.size()) {
      mem_threshold = std::stod(args[++i]);
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 2) {
    return usage();
  }
  const auto baseline = parse_json_file(files[0], "BENCH_*.json");
  if (!baseline.has_value()) {
    return kExitUsage;
  }
  const auto current = parse_json_file(files[1], "BENCH_*.json");
  if (!current.has_value()) {
    return kExitUsage;
  }
  const obs::BenchDiff diff = obs::bench_diff(*baseline, *current,
                                              threshold, mem_threshold);

  TextTable table;
  table.set_header({"benchmark", "baseline", "current", "delta", ""});
  for (const obs::BenchDelta& d : diff.deltas) {
    char base[32], cur[32], delta[32];
    std::snprintf(base, sizeof base, "%.3fms", d.base_ms);
    std::snprintf(cur, sizeof cur, "%.3fms", d.current_ms);
    std::snprintf(delta, sizeof delta, "%+.1f%%", d.delta_pct);
    table.add_row({d.name, base, cur, delta,
                   d.regression ? "REGRESSION" : ""});
  }
  std::cout << table.render();
  for (const std::string& name : diff.only_in_baseline) {
    std::cout << "missing from current: " << name << "\n";
  }
  for (const std::string& name : diff.only_in_current) {
    std::cout << "new in current: " << name << "\n";
  }
  if (!diff.mem_deltas.empty()) {
    TextTable mem;
    mem.set_header({"byte metric", "baseline", "current", "delta", ""});
    for (const obs::MemDelta& d : diff.mem_deltas) {
      char delta[32];
      std::snprintf(delta, sizeof delta, "%+.1f%%", d.delta_pct);
      mem.add_row({d.name, format_bytes(d.base_bytes),
                   format_bytes(d.current_bytes), delta,
                   d.regression ? "REGRESSION" : ""});
    }
    std::cout << "\n" << mem.render();
  }
  if (diff.regression || diff.mem_regression) {
    if (diff.regression) {
      std::cout << "FAIL: at least one benchmark regressed more than "
                << threshold << "%\n";
    }
    if (diff.mem_regression) {
      std::cout << "FAIL: at least one byte metric grew more than "
                << mem_threshold << "%\n";
    }
    return kExitFinding;
  }
  std::cout << "OK: no benchmark regressed more than " << threshold
            << "%";
  if (!diff.mem_deltas.empty()) {
    std::cout << ", no byte metric grew more than " << mem_threshold
              << "%";
  }
  std::cout << "\n";
  return kExitOk;
}

int cmd_mem(const std::vector<std::string>& args) {
  const RecordingArgs opts = parse_recording_args(args);
  if (!opts.ok) {
    return usage();
  }
  std::ifstream in = open_input(opts.file);
  if (!in.is_open()) {
    return kExitUsage;
  }
  const obs::MemoryReport report = obs::memory_report(in);

  if (opts.json) {
    obs::JsonWriter w;
    w.field("type", "memory_report");
    obs::add_metadata_fields(w);
    w.field("file", opts.file)
        .field("snapshots", report.snapshots)
        .field("checker_summaries", report.checker_summaries)
        .field("tracked_peak_bytes", report.tracked_peak_bytes)
        .field("bytes_per_state", report.bytes_per_state)
        .field("peak_channel_bytes", report.peak_channel_bytes);
    std::string series = "[";
    for (std::size_t i = 0; i < report.series.size(); ++i) {
      const obs::MemorySeries& s = report.series[i];
      if (i > 0) {
        series += ',';
      }
      obs::JsonWriter row;
      row.field("name", s.name)
          .field("last", s.last)
          .field("peak", s.peak)
          .field("samples", s.samples);
      series += row.str();
    }
    series += ']';
    w.raw_field("series", series);
    std::cout << w.str() << "\n";
    return kExitOk;
  }

  if (report.snapshots == 0 && report.checker_summaries == 0 &&
      report.peak_channel_bytes == 0) {
    std::cout << opts.file << ": no memory telemetry found (no "
              << "telemetry_snapshot / checker_summary / engine_run "
              << "events)\n";
    return kExitOk;
  }
  if (!report.series.empty()) {
    TextTable table;
    table.set_header({"gauge", "last", "peak", "samples"});
    for (const obs::MemorySeries& s : report.series) {
      // Only gauges named *_bytes carry byte semantics; other probes
      // (pool.busy_us, pool.tasks_executed, ...) print as raw counts.
      const bool is_bytes =
          s.name.size() >= 6 &&
          (s.name.rfind("_bytes") == s.name.size() - 6 ||
           (s.name.size() >= 11 &&
            s.name.rfind("_bytes_peak") == s.name.size() - 11));
      table.add_row({s.name,
                     is_bytes ? format_bytes(s.last) : std::to_string(s.last),
                     is_bytes ? format_bytes(s.peak) : std::to_string(s.peak),
                     std::to_string(s.samples)});
    }
    std::cout << table.render();
  }
  std::cout << report.snapshots << " snapshot(s)";
  if (report.checker_summaries > 0) {
    char bps[32];
    std::snprintf(bps, sizeof bps, "%.1f", report.bytes_per_state);
    std::cout << "; checker tracked peak "
              << format_bytes(report.tracked_peak_bytes) << " (" << bps
              << " bytes/state over " << report.checker_summaries
              << " exploration(s))";
  }
  if (report.peak_channel_bytes > 0) {
    std::cout << "; engine peak in-flight "
              << format_bytes(report.peak_channel_bytes);
  }
  std::cout << "\n";
  return kExitOk;
}

int cmd_pool(const std::vector<std::string>& args) {
  const RecordingArgs opts = parse_recording_args(args);
  if (!opts.ok) {
    return usage();
  }
  std::ifstream in = open_input(opts.file);
  if (!in.is_open()) {
    return kExitUsage;
  }
  const obs::PoolReport report = obs::pool_report(in);

  if (opts.json) {
    obs::JsonWriter w;
    w.field("type", "pool_report");
    obs::add_metadata_fields(w);
    w.field("file", opts.file)
        .field("has_summary", report.has_summary)
        .field("workers", report.workers)
        .field("tasks_executed", report.tasks_executed)
        .field("busy_us", report.busy_us)
        .field("idle_us", report.idle_us)
        .field("utilization", report.utilization)
        .field("queue_depth_peak", report.queue_depth_peak);
    std::string workers = "[";
    for (std::size_t i = 0; i < report.per_worker.size(); ++i) {
      const obs::PoolWorkerRow& r = report.per_worker[i];
      if (i > 0) {
        workers += ',';
      }
      obs::JsonWriter row;
      row.field("worker", r.worker)
          .field("tasks", r.tasks)
          .field("busy_us", r.busy_us)
          .field("idle_us", r.idle_us);
      workers += row.str();
    }
    workers += ']';
    w.raw_field("per_worker", workers);
    std::string timeline = "[";
    for (std::size_t i = 0; i < report.timeline.size(); ++i) {
      const obs::PoolTimelinePoint& p = report.timeline[i];
      if (i > 0) {
        timeline += ',';
      }
      obs::JsonWriter row;
      row.field("elapsed_ms", p.elapsed_ms)
          .field("queue_depth", p.queue_depth)
          .field("tasks_executed", p.tasks_executed);
      timeline += row.str();
    }
    timeline += ']';
    w.raw_field("timeline", timeline);
    std::cout << w.str() << "\n";
    return kExitOk;
  }

  if (!report.has_summary && report.timeline.empty()) {
    std::cout << opts.file << ": no pool telemetry found (no "
              << "pool_summary / telemetry_snapshot pool probes)\n";
    return kExitOk;
  }
  if (report.has_summary) {
    char util[32];
    std::snprintf(util, sizeof util, "%.1f%%",
                  report.utilization * 100.0);
    std::cout << report.workers << " worker(s), "
              << report.tasks_executed << " task(s), utilization "
              << util << ", queue depth peak "
              << report.queue_depth_peak << "\n";
    if (!report.per_worker.empty()) {
      TextTable table;
      table.set_header({"worker", "tasks", "busy", "idle"});
      for (const obs::PoolWorkerRow& r : report.per_worker) {
        table.add_row({std::to_string(r.worker),
                       std::to_string(r.tasks), format_us(r.busy_us),
                       format_us(r.idle_us)});
      }
      std::cout << table.render();
    }
  }
  if (!report.timeline.empty()) {
    std::cout << report.timeline.size()
              << " snapshot(s) with pool probes; final queue depth "
              << report.timeline.back().queue_depth << ", final tasks "
              << report.timeline.back().tasks_executed << "\n";
  }
  return kExitOk;
}

// ---- Recording commands --------------------------------------------------

/// Loads a recording with the shared missing/empty/malformed handling;
/// nullopt means the error is already reported (exit 2).
std::optional<trace::LoadedRecording> load_recording(
    const std::string& path) {
  std::ifstream in = open_input(path);
  if (!in.is_open()) {
    return std::nullopt;
  }
  const std::string content = slurp(in);
  if (blank(content)) {
    std::cerr << "commroute-obs: " << path
              << ": empty file (expected a flight-recorder recording)\n";
    return std::nullopt;
  }
  std::istringstream stream(content);
  try {
    return trace::load_recording_jsonl(stream);
  } catch (const Error& e) {
    std::cerr << "commroute-obs: " << path << ": " << e.what() << "\n";
    return std::nullopt;
  }
}

std::string assignment_text(const spp::Instance& inst,
                            const trace::Assignment& a) {
  std::string out;
  for (NodeId v = 0; v < static_cast<NodeId>(a.size()); ++v) {
    if (v > 0) {
      out += ' ';
    }
    out += inst.graph().name(v) + "=" + inst.path_name(a[v]);
  }
  return out;
}

void describe_recording(const trace::LoadedRecording& loaded) {
  const trace::RecordingMeta& meta = loaded.doc.meta;
  std::cout << meta.kind << " of "
            << (meta.instance_name.empty() ? "<unnamed instance>"
                                           : meta.instance_name)
            << " (" << loaded.instance.node_count() << " nodes)";
  if (!meta.model.empty()) {
    std::cout << ", model " << meta.model;
  }
  if (!meta.scheduler.empty()) {
    std::cout << ", scheduler " << meta.scheduler;
  }
  std::cout << ": steps " << meta.first_step << ".."
            << (meta.first_step + loaded.doc.steps.size() - 1);
  if (!meta.outcome.empty()) {
    std::cout << ", outcome " << meta.outcome;
  }
  std::cout << (loaded.doc.complete() ? "" : " [partial ring window]")
            << "\n";
}

int cmd_replay(const std::vector<std::string>& args) {
  const RecordingArgs opts = parse_recording_args(args);
  if (!opts.ok) {
    return usage();
  }
  const auto loaded = load_recording(opts.file);
  if (!loaded.has_value()) {
    return kExitUsage;
  }
  if (!loaded->doc.complete()) {
    std::cerr << "commroute-obs: " << opts.file
              << ": partial (ring-buffer) recording starting at step "
              << loaded->doc.meta.first_step
              << " cannot be replayed; record in full mode for replay\n";
    return kExitUsage;
  }
  const trace::ReplayResult result = trace::replay_recording(*loaded);
  const std::size_t collapsed = loaded->doc.collapsed().size();

  if (opts.json) {
    obs::JsonWriter w;
    w.field("type", "replay_report");
    obs::add_metadata_fields(w);
    w.field("file", opts.file)
        .field("steps_replayed", result.steps_replayed)
        .field("identical", result.identical)
        .field("collapsed_states",
               static_cast<std::uint64_t>(collapsed));
    if (result.divergence.has_value()) {
      obs::JsonWriter d;
      d.field("step", result.divergence->step)
          .field("node",
                 loaded->instance.graph().name(result.divergence->node))
          .field("expected",
                 loaded->instance.path_name(result.divergence->expected))
          .field("actual",
                 loaded->instance.path_name(result.divergence->actual));
      w.raw_field("divergence", d.str());
    }
    std::cout << w.str() << "\n";
  } else {
    describe_recording(*loaded);
    if (result.identical) {
      std::cout << "replayed " << result.steps_replayed
                << " step(s): identical per-step path assignments ("
                << collapsed << " collapsed states)\n";
    } else if (result.divergence.has_value()) {
      const trace::ReplayDivergence& d = *result.divergence;
      std::cout << "DIVERGENCE at step " << d.step << ": node "
                << loaded->instance.graph().name(d.node) << " expected "
                << loaded->instance.path_name(d.expected) << ", got "
                << loaded->instance.path_name(d.actual) << "\n";
    }
  }
  return result.identical ? kExitOk : kExitFinding;
}

int cmd_flaps(const std::vector<std::string>& args) {
  const RecordingArgs opts = parse_recording_args(args);
  if (!opts.ok) {
    return usage();
  }
  const auto loaded = load_recording(opts.file);
  if (!loaded.has_value()) {
    return kExitUsage;
  }
  const obs::FlapReport report =
      obs::flap_timelines(loaded->instance, loaded->doc);
  const bool have_io = !loaded->doc.io.empty();
  std::vector<obs::ChannelOccupancy> occupancy;
  if (have_io) {
    occupancy = obs::channel_occupancy(loaded->instance, loaded->doc);
  }

  if (opts.json) {
    std::string nodes = "[";
    for (std::size_t i = 0; i < report.nodes.size(); ++i) {
      const obs::NodeFlapTimeline& n = report.nodes[i];
      if (i > 0) {
        nodes += ',';
      }
      obs::JsonWriter w;
      w.field("node", n.name)
          .field("changes", n.changes)
          .field("withdrawals", n.withdrawals)
          .field("first_change_step", n.first_change_step)
          .field("last_change_step", n.last_change_step)
          .field("distinct_paths",
                 static_cast<std::uint64_t>(n.distinct_paths));
      nodes += w.str();
    }
    nodes += ']';
    std::string channels = "[";
    for (std::size_t i = 0; i < occupancy.size(); ++i) {
      const obs::ChannelOccupancy& c = occupancy[i];
      if (i > 0) {
        channels += ',';
      }
      obs::JsonWriter w;
      w.field("channel", c.name)
          .field("peak", static_cast<std::uint64_t>(c.peak))
          .field("sent", c.sent)
          .field("processed", c.processed)
          .field("dropped", c.dropped);
      std::string series = "[";
      for (std::size_t t = 0; t < c.series.size(); ++t) {
        if (t > 0) {
          series += ',';
        }
        series += std::to_string(c.series[t]);
      }
      series += ']';
      w.raw_field("series", series);
      channels += w.str();
    }
    channels += ']';
    obs::JsonWriter top;
    top.field("type", "flap_report");
    obs::add_metadata_fields(top);
    top.field("file", opts.file)
        .field("steps", report.steps)
        .field("first_step", report.first_step)
        .field("total_changes", report.total_changes);
    top.raw_field("nodes", nodes);
    top.raw_field("channels", channels);
    std::cout << top.str() << "\n";
    return kExitOk;
  }

  describe_recording(*loaded);
  TextTable table;
  table.set_header({"node", "changes", "withdrawals", "first", "last",
                    "distinct paths"});
  for (const obs::NodeFlapTimeline& n : report.nodes) {
    table.add_row({n.name, std::to_string(n.changes),
                   std::to_string(n.withdrawals),
                   std::to_string(n.first_change_step),
                   std::to_string(n.last_change_step),
                   std::to_string(n.distinct_paths)});
  }
  std::cout << table.render();
  std::cout << report.total_changes << " assignment change(s) over "
            << report.steps << " recorded step(s)\n";
  if (have_io) {
    TextTable channels;
    channels.set_header({"channel", "peak", "sent", "processed",
                         "dropped"});
    for (const obs::ChannelOccupancy& c : occupancy) {
      channels.add_row({c.name, std::to_string(c.peak),
                        std::to_string(c.sent),
                        std::to_string(c.processed),
                        std::to_string(c.dropped)});
    }
    std::cout << "\n" << channels.render();
  }
  return kExitOk;
}

int cmd_oscillation(const std::vector<std::string>& args) {
  const RecordingArgs opts = parse_recording_args(args);
  if (!opts.ok) {
    return usage();
  }
  const auto loaded = load_recording(opts.file);
  if (!loaded.has_value()) {
    return kExitUsage;
  }
  // A converged recording's pi-sequence can transiently revisit its
  // final state; the outcome metadata is authoritative there.
  const bool converged = loaded->doc.meta.outcome == "converged";
  const obs::OscillationCycle cycle =
      converged ? obs::OscillationCycle{}
                : obs::extract_cycle(loaded->doc);

  if (opts.json) {
    obs::JsonWriter w;
    w.field("type", "oscillation_report");
    obs::add_metadata_fields(w);
    w.field("file", opts.file)
        .field("found", cycle.found)
        .field("collapsed_states",
               static_cast<std::uint64_t>(
                   converged ? loaded->doc.collapsed().size()
                             : cycle.collapsed_states));
    if (cycle.found) {
      w.field("period", static_cast<std::uint64_t>(cycle.period))
          .field("cycle_start_step", cycle.cycle_start_step);
      std::string states = "[";
      for (std::size_t k = 0; k < cycle.cycle.size(); ++k) {
        if (k > 0) {
          states += ',';
        }
        states += '"' +
                  obs::json_escape(
                      assignment_text(loaded->instance, cycle.cycle[k])) +
                  '"';
      }
      states += ']';
      w.raw_field("cycle", states);
      std::string steps = "[";
      for (std::size_t k = 0; k < cycle.witness_steps.size(); ++k) {
        if (k > 0) {
          steps += ',';
        }
        steps += std::to_string(cycle.witness_steps[k]);
      }
      steps += ']';
      w.raw_field("witness_steps", steps);
    }
    std::cout << w.str() << "\n";
    return cycle.found ? kExitOk : kExitFinding;
  }

  describe_recording(*loaded);
  if (!cycle.found) {
    std::cout << (converged
                      ? "recording converged; no oscillation to extract\n"
                      : "no recurring pi-cycle found in the recorded "
                        "window\n");
    return kExitFinding;
  }
  std::cout << "oscillation cycle: period " << cycle.period
            << " (collapsed states), entered at step "
            << cycle.cycle_start_step << "\n";
  for (std::size_t k = 0; k < cycle.cycle.size(); ++k) {
    std::cout << "  [step " << cycle.witness_steps[k] << "] "
              << assignment_text(loaded->instance, cycle.cycle[k]) << "\n";
  }
  return kExitOk;
}

/// NodeId for `name`, or kNoNode (with a message) when unknown.
NodeId node_by_name(const spp::Instance& inst, const std::string& name) {
  for (NodeId v = 0; v < static_cast<NodeId>(inst.node_count()); ++v) {
    if (inst.graph().name(v) == name) {
      return v;
    }
  }
  std::cerr << "commroute-obs: no node named \"" << name
            << "\" in this instance\n";
  return kNoNode;
}

/// pi(link.node) right after link.step, rendered; "" when the recording
/// window does not cover that step.
std::string link_pi(const trace::LoadedRecording& loaded,
                    const obs::CausalLink& link) {
  const std::uint64_t first = loaded.doc.meta.first_step;
  if (link.step < first) {
    return "";
  }
  const std::uint64_t local = link.step - first;
  if (local >= loaded.doc.assignments.size()) {
    return "";
  }
  return loaded.instance.path_name(loaded.doc.assignments[local][link.node]);
}

/// How the hop was reached: the arriving channel, program order, or the
/// chain root.
std::string link_via(const obs::CausalityGraph& graph,
                     const obs::CausalLink& link, bool root) {
  if (link.via != kNoChannel) {
    return graph.channel_name(link.via);
  }
  return root ? "(root)" : "(local)";
}

/// ["{...}",...] of chain hops, shared by causality --why and
/// critical-path --json.
std::string chain_json(const trace::LoadedRecording& loaded,
                       const obs::CausalityGraph& graph,
                       const std::vector<obs::CausalLink>& chain) {
  std::string out = "[";
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const obs::CausalLink& link = chain[i];
    if (i > 0) {
      out += ',';
    }
    obs::JsonWriter w;
    w.field("step", link.step)
        .field("node", graph.node_name(link.node))
        .field("changed", link.changed);
    if (graph.timed()) {
      w.field("t_us", link.t_us);
    }
    if (link.via != kNoChannel) {
      w.field("via", graph.channel_name(link.via));
    }
    const std::string pi = link_pi(loaded, link);
    if (!pi.empty() || link.changed) {
      w.field("pi", pi);
    }
    out += w.str();
  }
  out += ']';
  return out;
}

void print_chain(const trace::LoadedRecording& loaded,
                 const obs::CausalityGraph& graph,
                 const std::vector<obs::CausalLink>& chain) {
  TextTable table;
  if (graph.timed()) {
    table.set_header({"step", "t", "node", "via", "pi"});
  } else {
    table.set_header({"step", "node", "via", "pi"});
  }
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const obs::CausalLink& link = chain[i];
    std::vector<std::string> row;
    row.push_back(std::to_string(link.step));
    if (graph.timed()) {
      row.push_back(format_us(link.t_us));
    }
    row.push_back(graph.node_name(link.node));
    row.push_back(link_via(graph, link, i == 0));
    row.push_back(link_pi(loaded, link));
    table.add_row(row);
  }
  std::cout << table.render();
}

int cmd_causality(const std::vector<std::string>& args) {
  std::string file;
  std::string why;
  bool json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      json = true;
    } else if (args[i] == "--why" && i + 1 < args.size()) {
      why = args[++i];
    } else if (file.empty()) {
      file = args[i];
    } else {
      return usage();
    }
  }
  if (file.empty()) {
    return usage();
  }
  const auto loaded = load_recording(file);
  if (!loaded.has_value()) {
    return kExitUsage;
  }
  // PreconditionError (ring window without I/O) propagates to main's
  // handler: exit 2 with the library's message.
  const obs::CausalityGraph graph =
      obs::build_causality(loaded->instance, loaded->doc);
  const obs::CausalityStats stats = graph.stats();
  const std::vector<std::uint64_t> influence = graph.influence();
  obs::CausalityGraph::RootCause cause;
  if (!why.empty()) {
    const NodeId v = node_by_name(loaded->instance, why);
    if (v == kNoNode) {
      return kExitUsage;
    }
    cause = graph.root_cause(v);
  }

  if (json) {
    obs::JsonWriter w;
    // Deliberately no created_unix_ms/argv header: this report is part
    // of the determinism contract (CI byte-compares two runs).
    w.field("type", "causality_report")
        .field("schema_version", obs::kArtifactSchemaVersion)
        .field("file", file)
        .field("activations", stats.activations)
        .field("messages", stats.messages)
        .field("consume_edges", stats.consume_edges)
        .field("program_edges", stats.program_edges)
        .field("adoption_edges", stats.adoption_edges)
        .field("emit_edges", stats.emit_edges)
        .field("dropped_messages", stats.dropped_messages)
        .field("in_flight_messages", stats.in_flight_messages)
        .field("unknown_origin_messages", stats.unknown_origin_messages)
        .field("faults", stats.faults)
        .field("flushed_messages", stats.flushed_messages)
        .field("roots", stats.roots)
        .field("max_depth", stats.max_depth)
        .field("critical_path_len", stats.critical_path_len)
        .field("critical_path_us", stats.critical_path_us)
        .field("truncated", stats.truncated)
        .field("timed", stats.timed);
    std::string rows = "[";
    for (NodeId v = 0; v < static_cast<NodeId>(influence.size()); ++v) {
      if (v > 0) {
        rows += ',';
      }
      obs::JsonWriter row;
      row.field("node", graph.node_name(v)).field("influence", influence[v]);
      rows += row.str();
    }
    rows += ']';
    w.raw_field("influence", rows);
    if (!why.empty()) {
      obs::JsonWriter c;
      c.field("node", graph.node_name(cause.node))
          .field("complete", cause.complete);
      c.raw_field("chain", chain_json(*loaded, graph, cause.chain));
      w.raw_field("root_cause", c.str());
    }
    std::cout << w.str() << "\n";
    return kExitOk;
  }

  describe_recording(*loaded);
  std::cout << "happens-before DAG: " << stats.activations
            << " activation(s), " << stats.messages << " message(s), "
            << stats.consume_edges + stats.program_edges + stats.emit_edges
            << " edge(s) (" << stats.consume_edges << " consume, "
            << stats.program_edges << " program, " << stats.emit_edges
            << " emit; " << stats.adoption_edges
            << " adoption data-flow)\n";
  std::cout << "messages: " << stats.dropped_messages << " dropped, "
            << stats.in_flight_messages << " still in flight, "
            << stats.unknown_origin_messages << " of unknown origin\n";
  if (stats.faults > 0) {
    std::cout << "faults: " << stats.faults << " injected, "
              << stats.flushed_messages << " message(s) flushed in flight\n";
  }
  std::cout << "depth: max " << stats.max_depth << " over " << stats.roots
            << " root(s); critical path " << stats.critical_path_len
            << " activation(s)";
  if (stats.timed) {
    std::cout << " / " << format_us(stats.critical_path_us)
              << " virtual";
  }
  std::cout << "\n";
  if (stats.truncated) {
    std::cout << "NOTE: ring-buffer window (starts at step "
              << graph.first_step()
              << "); chains may continue past the window edge, all "
              << "figures are lower bounds\n";
  }
  TextTable table;
  table.set_header({"node", "influence"});
  for (NodeId v = 0; v < static_cast<NodeId>(influence.size()); ++v) {
    table.add_row({graph.node_name(v), std::to_string(influence[v])});
  }
  std::cout << table.render();
  if (!why.empty()) {
    std::cout << "root cause of " << graph.node_name(cause.node)
              << "'s final assignment"
              << (cause.complete ? ":" : " (incomplete — provenance "
                                         "leaves the recorded window):")
              << "\n";
    if (cause.chain.empty()) {
      std::cout << "  pi(" << graph.node_name(cause.node)
                << ") never changed inside the window\n";
    } else {
      print_chain(*loaded, graph, cause.chain);
    }
  }
  return kExitOk;
}

int cmd_critical_path(const std::vector<std::string>& args) {
  const RecordingArgs opts = parse_recording_args(args);
  if (!opts.ok) {
    return usage();
  }
  const auto loaded = load_recording(opts.file);
  if (!loaded.has_value()) {
    return kExitUsage;
  }
  const obs::CausalityGraph graph =
      obs::build_causality(loaded->instance, loaded->doc);
  const std::vector<obs::CausalLink> chain = graph.critical_path();

  if (opts.json) {
    obs::JsonWriter w;
    // Deterministic by design, like causality_report.
    w.field("type", "critical_path_report")
        .field("schema_version", obs::kArtifactSchemaVersion)
        .field("file", opts.file)
        .field("found", !chain.empty())
        .field("length", static_cast<std::uint64_t>(chain.size()))
        .field("critical_path_us", graph.critical_path_us())
        .field("truncated", graph.truncated())
        .field("timed", graph.timed());
    w.raw_field("chain", chain_json(*loaded, graph, chain));
    std::cout << w.str() << "\n";
    return chain.empty() ? kExitFinding : kExitOk;
  }

  describe_recording(*loaded);
  if (chain.empty()) {
    std::cout << "no assignment ever changed in the recorded window; "
              << "there is no critical path\n";
    return kExitFinding;
  }
  std::cout << "critical path: " << chain.size() << " activation(s)";
  if (graph.timed()) {
    std::cout << ", virtual length " << format_us(graph.critical_path_us());
  }
  if (graph.truncated()) {
    std::cout << " (lower bound: window starts at step "
              << graph.first_step() << ")";
  }
  std::cout << "\n";
  print_chain(*loaded, graph, chain);
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  commroute::obs::set_process_argv(argc, argv);
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "summarize") {
      return cmd_summarize(args);
    }
    if (command == "report") {
      return cmd_report(args);
    }
    if (command == "spans") {
      return cmd_spans(args);
    }
    if (command == "convert") {
      return cmd_convert(args);
    }
    if (command == "bench-diff") {
      return cmd_bench_diff(args);
    }
    if (command == "mem") {
      return cmd_mem(args);
    }
    if (command == "pool") {
      return cmd_pool(args);
    }
    if (command == "replay") {
      return cmd_replay(args);
    }
    if (command == "flaps") {
      return cmd_flaps(args);
    }
    if (command == "oscillation") {
      return cmd_oscillation(args);
    }
    if (command == "causality") {
      return cmd_causality(args);
    }
    if (command == "critical-path") {
      return cmd_critical_path(args);
    }
    std::cerr << "unknown command: " << command << "\n";
    return usage();
  } catch (const commroute::Error& e) {
    std::cerr << "commroute-obs: " << e.what() << "\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "commroute-obs: " << e.what() << "\n";
    return kExitUsage;
  }
}
