// commroute-obs: consumer CLI for the observability artifacts the
// library emits — JSONL event traces, span traces, and BENCH_*.json
// perf output. Closes the loop PR-wise: what the instrumented loops
// write, this tool aggregates, converts, and gates on.
//
//   commroute-obs summarize RUN.jsonl              per-type counts + latency quantiles
//   commroute-obs spans TRACE[.jsonl|.json] [--top N]   self-time table
//   commroute-obs convert RUN.jsonl OUT.json       Chrome trace / Perfetto export
//   commroute-obs bench-diff BASE.json CUR.json [--threshold PCT]
//                                                  perf gate: exit 1 on regression
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/chrome_trace.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

namespace {

using namespace commroute;

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;

int usage() {
  std::cerr
      << "usage: commroute-obs <command> [args]\n"
         "  summarize FILE.jsonl               aggregate a JSONL event "
         "trace per event type\n"
         "  spans FILE [--top N]               span self-time table "
         "(JSONL or Chrome trace input)\n"
         "  convert FILE.jsonl OUT.json        JSONL -> Chrome "
         "trace-event JSON (open in Perfetto)\n"
         "  bench-diff BASELINE.json CURRENT.json [--threshold PCT]\n"
         "                                     compare BENCH_*.json runs; "
         "exit 1 beyond threshold (default 10)\n";
  return kExitUsage;
}

std::ifstream open_or_die(const std::string& path) {
  std::ifstream in(path);
  CR_REQUIRE(in.is_open(), "cannot open " + path);
  return in;
}

std::string format_us(std::uint64_t us) {
  char buf[32];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof buf, "%.2fs", static_cast<double>(us) / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof buf, "%.2fms",
                  static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lluus",
                  static_cast<unsigned long long>(us));
  }
  return buf;
}

int cmd_summarize(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return usage();
  }
  std::ifstream in = open_or_die(args[0]);
  const obs::JsonlSummary summary = obs::summarize_jsonl(in);

  TextTable table;
  table.set_header({"type", "count", "timed", "total", "p50", "p90",
                    "p99", "max"});
  for (const obs::EventTypeSummary& row : summary.types) {
    table.add_row({row.type, std::to_string(row.count),
                   std::to_string(row.timed), format_us(row.total_us),
                   format_us(row.p50_us), format_us(row.p90_us),
                   format_us(row.p99_us), format_us(row.max_us)});
  }
  std::cout << table.render();
  std::cout << summary.lines << " line(s), " << summary.malformed
            << " malformed\n";
  return kExitOk;
}

std::vector<obs::SpanRecord> load_spans(const std::string& path) {
  // A Chrome trace document is one JSON object spanning the whole file;
  // a span trace is JSONL. Try the document parse first.
  std::ifstream in = open_or_die(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  if (const auto doc = obs::json_parse(buffer.str());
      doc.has_value() && doc->find("traceEvents") != nullptr) {
    return obs::spans_from_chrome_trace(*doc);
  }
  buffer.clear();
  buffer.seekg(0);
  return obs::spans_from_jsonl(buffer);
}

int cmd_spans(const std::vector<std::string>& args) {
  std::size_t top = 20;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top" && i + 1 < args.size()) {
      top = static_cast<std::size_t>(std::stoul(args[++i]));
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 1) {
    return usage();
  }
  const std::vector<obs::SpanRecord> records = load_spans(files[0]);
  if (records.empty()) {
    std::cout << "no spans in " << files[0] << "\n";
    return kExitOk;
  }
  const std::vector<obs::SpanStat> stats = obs::span_self_times(records);

  TextTable table;
  table.set_header({"span", "count", "self", "total", "max"});
  for (std::size_t i = 0; i < stats.size() && i < top; ++i) {
    const obs::SpanStat& s = stats[i];
    table.add_row({s.name, std::to_string(s.count), format_us(s.self_us),
                   format_us(s.total_us), format_us(s.max_us)});
  }
  std::cout << table.render();
  std::cout << records.size() << " span(s), " << stats.size()
            << " distinct name(s)\n";
  return kExitOk;
}

int cmd_convert(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return usage();
  }
  std::ifstream in = open_or_die(args[0]);
  const obs::JsonlConversion conversion = obs::chrome_trace_from_jsonl(in);
  std::ofstream out(args[1], std::ios::trunc);
  CR_REQUIRE(out.is_open(), "cannot write " + args[1]);
  out << conversion.trace_json << "\n";
  std::cout << args[1] << ": " << conversion.events << " event(s), "
            << conversion.skipped
            << " skipped — open in chrome://tracing or ui.perfetto.dev\n";
  return kExitOk;
}

obs::JsonValue parse_file_or_die(const std::string& path) {
  std::ifstream in = open_or_die(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = obs::json_parse(buffer.str());
  CR_REQUIRE(doc.has_value(), path + " is not valid JSON");
  return *doc;
}

int cmd_bench_diff(const std::vector<std::string>& args) {
  double threshold = 10.0;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold" && i + 1 < args.size()) {
      threshold = std::stod(args[++i]);
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 2) {
    return usage();
  }
  const obs::BenchDiff diff = obs::bench_diff(
      parse_file_or_die(files[0]), parse_file_or_die(files[1]), threshold);

  TextTable table;
  table.set_header({"benchmark", "baseline", "current", "delta", ""});
  for (const obs::BenchDelta& d : diff.deltas) {
    char base[32], cur[32], delta[32];
    std::snprintf(base, sizeof base, "%.3fms", d.base_ms);
    std::snprintf(cur, sizeof cur, "%.3fms", d.current_ms);
    std::snprintf(delta, sizeof delta, "%+.1f%%", d.delta_pct);
    table.add_row({d.name, base, cur, delta,
                   d.regression ? "REGRESSION" : ""});
  }
  std::cout << table.render();
  for (const std::string& name : diff.only_in_baseline) {
    std::cout << "missing from current: " << name << "\n";
  }
  for (const std::string& name : diff.only_in_current) {
    std::cout << "new in current: " << name << "\n";
  }
  if (diff.regression) {
    std::cout << "FAIL: at least one benchmark regressed more than "
              << threshold << "%\n";
    return kExitRegression;
  }
  std::cout << "OK: no benchmark regressed more than " << threshold
            << "%\n";
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "summarize") {
      return cmd_summarize(args);
    }
    if (command == "spans") {
      return cmd_spans(args);
    }
    if (command == "convert") {
      return cmd_convert(args);
    }
    if (command == "bench-diff") {
      return cmd_bench_diff(args);
    }
    std::cerr << "unknown command: " << command << "\n";
    return usage();
  } catch (const commroute::Error& e) {
    std::cerr << "commroute-obs: " << e.what() << "\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "commroute-obs: " << e.what() << "\n";
    return kExitUsage;
  }
}
