#include "checker/targeted.hpp"

#include <deque>
#include <sstream>
#include <unordered_map>

#include "checker/successors.hpp"
#include "engine/executor.hpp"
#include "engine/runner.hpp"
#include "support/error.hpp"

namespace commroute::checker {

std::string RealizationSearchResult::summary() const {
  std::ostringstream os;
  if (found) {
    os << "realizable (witness has " << witness.size() << " steps, "
       << configs_explored << " configurations explored)";
  } else {
    os << "not realizable ("
       << (exhaustive ? "proof: search exhaustive" : "within bounds only")
       << ", " << configs_explored << " configurations explored)";
  }
  return os.str();
}

RealizationSearchResult find_realization(
    const spp::Instance& instance, const model::Model& m,
    const trace::Trace& target, trace::MatchKind sense,
    const RealizationSearchOptions& options) {
  CR_REQUIRE(sense != trace::MatchKind::kNone,
             "sense must be a realization relation");
  CR_REQUIRE(!target.empty(), "target trace must be non-empty");

  RealizationSearchResult result;

  engine::NetworkState initial(instance);
  CR_REQUIRE(initial.assignments() == target.at(0),
             "target trace must start at the initial assignment");
  const std::size_t last = target.size() - 1;
  if (target.size() == 1 && !options.require_convergent_tail) {
    result.found = true;
    result.exhaustive = true;
    return result;
  }

  struct Config {
    engine::NetworkState state;
    std::size_t pos;  ///< index of the last matched target element
    std::size_t parent;
    model::ActivationStep via;
  };

  std::vector<Config> configs;
  std::unordered_map<std::size_t, std::vector<std::size_t>> visited;
  std::deque<std::size_t> frontier;

  const auto config_key = [](const engine::NetworkState& s,
                             std::size_t pos) {
    std::size_t key = s.hash();
    hash_combine_value(key, pos);
    return key;
  };

  const auto intern = [&](engine::NetworkState s, std::size_t pos,
                          std::size_t parent,
                          const model::ActivationStep& via) -> bool {
    const std::size_t key = config_key(s, pos);
    for (const std::size_t id : visited[key]) {
      if (configs[id].pos == pos && configs[id].state == s) {
        return false;
      }
    }
    configs.push_back(Config{std::move(s), pos, parent, via});
    visited[key].push_back(configs.size() - 1);
    frontier.push_back(configs.size() - 1);
    return true;
  };

  SuccessorOptions successor_options;
  successor_options.max_steps_per_state = options.max_steps_per_state;

  bool truncated = false;
  intern(std::move(initial), 0, static_cast<std::size_t>(-1), {});

  while (!frontier.empty()) {
    if (configs.size() > options.max_configs) {
      truncated = true;
      break;
    }
    const std::size_t id = frontier.front();
    frontier.pop_front();

    // Copy indices out: configs may reallocate as we intern successors.
    const std::size_t pos = configs[id].pos;
    const std::vector<model::ActivationStep> steps =
        enumerate_steps(configs[id].state, m, successor_options);

    for (const model::ActivationStep& step : steps) {
      engine::NetworkState next = configs[id].state;
      engine::execute_step(next, step);
      if (next.max_channel_length() > options.max_channel_length) {
        truncated = true;
        continue;
      }
      const trace::Assignment pi = next.assignments();

      std::optional<std::size_t> next_pos;
      if (pos == last) {
        // Tail phase: the assignment must hold at target.back() until
        // strong quiescence (only reachable with require_convergent_tail).
        if (pi == target.at(last)) {
          next_pos = last;
        }
      } else {
        switch (sense) {
          case trace::MatchKind::kExact:
            if (pi == target.at(pos + 1)) {
              next_pos = pos + 1;
            }
            break;
          case trace::MatchKind::kRepetition:
            if (pi == target.at(pos + 1)) {
              next_pos = pos + 1;
            } else if (pi == target.at(pos)) {
              next_pos = pos;
            }
            break;
          case trace::MatchKind::kSubsequence:
            next_pos = (pi == target.at(pos + 1)) ? pos + 1 : pos;
            break;
          case trace::MatchKind::kNone:
            break;
        }
      }
      if (!next_pos.has_value()) {
        continue;
      }

      const bool accepted =
          (*next_pos == last) &&
          (!options.require_convergent_tail ||
           engine::strongly_quiescent(next));
      if (accepted) {
        // Reconstruct the witness.
        result.found = true;
        std::vector<model::ActivationStep> rev{step};
        for (std::size_t at = id; configs[at].parent !=
                                  static_cast<std::size_t>(-1);
             at = configs[at].parent) {
          rev.push_back(configs[at].via);
        }
        result.witness.assign(rev.rbegin(), rev.rend());
        result.configs_explored = configs.size();
        result.exhaustive = true;
        return result;
      }
      intern(std::move(next), *next_pos, id, step);
    }
  }

  result.configs_explored = configs.size();
  result.exhaustive = !truncated;
  return result;
}

}  // namespace commroute::checker
