#include "checker/minimize.hpp"

#include "support/error.hpp"

namespace commroute::checker {

namespace {

/// Rebuilds the instance without one permitted path.
spp::Instance without_path(const spp::Instance& instance, NodeId node,
                           std::size_t path_index) {
  std::vector<std::string> names;
  names.reserve(instance.node_count());
  for (NodeId v = 0; v < instance.node_count(); ++v) {
    names.push_back(instance.graph().name(v));
  }
  Graph graph(names);
  for (ChannelIdx c = 0; c < instance.graph().channel_count(); ++c) {
    const ChannelId id = instance.graph().channel_id(c);
    if (id.from < id.to) {
      graph.add_edge(id.from, id.to);
    }
  }
  std::vector<std::vector<Path>> permitted(instance.node_count());
  for (NodeId v = 0; v < instance.node_count(); ++v) {
    if (v == instance.destination()) {
      continue;
    }
    const auto& paths = instance.permitted(v);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (v == node && i == path_index) {
        continue;
      }
      permitted[v].push_back(paths[i]);
    }
  }
  return spp::Instance(std::move(graph), instance.destination(),
                       std::move(permitted));
}

bool oscillates(const spp::Instance& instance, const model::Model& m,
                const ExploreOptions& options) {
  return explore(instance, m, options).oscillation_found;
}

}  // namespace

MinimizeResult minimize_oscillating_instance(const spp::Instance& instance,
                                             const model::Model& m,
                                             const ExploreOptions& options) {
  // Every candidate re-exploration below nests its checker.explore
  // spans (and metrics/events) under this one via the shared handle.
  obs::Span minimize_span = options.obs.span("checker.minimize");
  CR_REQUIRE(oscillates(instance, m, options),
             "instance does not oscillate under " + m.name() +
                 " within the given bounds");

  MinimizeResult result{instance, 0, false};
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId v = 0; v < result.instance.node_count() && !changed; ++v) {
      if (v == result.instance.destination()) {
        continue;
      }
      const std::size_t count = result.instance.permitted(v).size();
      if (count <= 1) {
        continue;  // keep every node routable
      }
      for (std::size_t i = 0; i < count; ++i) {
        spp::Instance candidate = without_path(result.instance, v, i);
        if (oscillates(candidate, m, options)) {
          result.instance = std::move(candidate);
          ++result.removed_paths;
          changed = true;
          break;
        }
      }
    }
  }
  result.minimal = true;
  if (minimize_span.enabled()) {
    minimize_span.attr("removed_paths",
                       static_cast<std::uint64_t>(result.removed_paths));
  }
  return result;
}

}  // namespace commroute::checker
