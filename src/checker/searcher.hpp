// Pluggable exploration-order strategies for checker::explore, mirroring
// the KLEE Searcher/BFSSearcher design: the explorer owns the frontier
// through this interface and asks it which interned state to expand
// next. Strategies only affect the *order* states are expanded in — on
// an exhaustive exploration the reachable set, transition count, and
// verdict are order-independent, so every searcher proves the same
// theorem; on truncated runs the searcher decides which corner of the
// state space the budget is spent on.
//
//   * kBFS       — FIFO; the historical default, byte-compatible with
//                  the pre-Searcher explorer at any thread width.
//   * kDFS       — LIFO; drills deep executions first, useful when long
//                  schedules reach the interesting SCC sooner.
//   * kRandomPath — uniformly random frontier pick from a seeded Rng;
//                  an unbiased sample of the space under a state cap.
//   * kPriorityFlap — most-recently-flapped first: states discovered
//                  via an assignment-changing edge are expanded before
//                  quiet ones (LIFO within each class), surfacing
//                  oscillation witnesses with fewer expansions.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.hpp"

namespace commroute::checker {

/// Dense id of an interned configuration in the explorer's graph.
using StateId = std::uint32_t;

enum class SearcherKind {
  kBFS,
  kDFS,
  kRandomPath,
  kPriorityFlap,
};

std::string to_string(SearcherKind kind);

/// Parses "bfs" / "dfs" / "random" / "priority" (case-sensitive);
/// throws PreconditionError on anything else.
SearcherKind parse_searcher_kind(std::string_view name);

/// What the explorer knows about a state at enqueue time; strategies
/// use it to order the frontier.
struct SearcherPush {
  /// The discovery edge changed some node's path assignment — the state
  /// is "recently flapped".
  bool pi_changed = false;
  /// Global discovery sequence number (monotone across the run).
  std::uint64_t order = 0;
};

/// Frontier-order strategy. Single-threaded contract: the explorer
/// calls push()/select() only from the merge phase (never from expansion
/// workers), so implementations need no locking.
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// Enqueues a newly interned state.
  virtual void push(StateId id, const SearcherPush& info) = 0;

  /// Removes and returns the next state to expand. Requires !empty().
  virtual StateId select() = 0;

  virtual bool empty() const = 0;

  /// States currently queued.
  virtual std::size_t size() const = 0;

  virtual std::string name() const = 0;
};

/// FIFO frontier: classic breadth-first order.
class BFSSearcher final : public Searcher {
 public:
  void push(StateId id, const SearcherPush& info) override;
  StateId select() override;
  bool empty() const override { return states_.empty(); }
  std::size_t size() const override { return states_.size(); }
  std::string name() const override { return "bfs"; }

 private:
  std::deque<StateId> states_;
};

/// LIFO frontier: depth-first order.
class DFSSearcher final : public Searcher {
 public:
  void push(StateId id, const SearcherPush& info) override;
  StateId select() override;
  bool empty() const override { return states_.empty(); }
  std::size_t size() const override { return states_.size(); }
  std::string name() const override { return "dfs"; }

 private:
  std::vector<StateId> states_;
};

/// Uniformly random frontier pick, deterministic per seed: select()
/// swaps a random element to the back and pops it.
class RandomPathSearcher final : public Searcher {
 public:
  explicit RandomPathSearcher(std::uint64_t seed) : rng_(seed) {}

  void push(StateId id, const SearcherPush& info) override;
  StateId select() override;
  bool empty() const override { return states_.empty(); }
  std::size_t size() const override { return states_.size(); }
  std::string name() const override { return "random"; }

 private:
  Rng rng_;
  std::vector<StateId> states_;
};

/// Most-recently-flapped first: states whose discovery edge changed an
/// assignment outrank quiet ones; within a class, higher discovery
/// order (more recent) wins. Backed by two LIFO stacks rather than a
/// heap — push order *is* discovery order, so recency never needs a
/// comparator.
class PriorityFlapSearcher final : public Searcher {
 public:
  void push(StateId id, const SearcherPush& info) override;
  StateId select() override;
  bool empty() const override {
    return flapped_.empty() && quiet_.empty();
  }
  std::size_t size() const override {
    return flapped_.size() + quiet_.size();
  }
  std::string name() const override { return "priority"; }

 private:
  std::vector<StateId> flapped_;
  std::vector<StateId> quiet_;
};

/// Builds the strategy for `kind`; `seed` feeds kRandomPath only.
std::unique_ptr<Searcher> make_searcher(SearcherKind kind,
                                        std::uint64_t seed);

}  // namespace commroute::checker
