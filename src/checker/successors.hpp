// Canonical successor-step enumeration for the model checker.
//
// For a given model and network state, enumerates every activation step
// that is (a) legal in the model and (b) canonically distinct: processing
// f > m messages from a channel holding m has the same effect as
// processing exactly m, so only the canonical representative is emitted.
// Drop sets range over all subsets of the processed prefix for unreliable
// models.
//
// The enumeration is exponential in node degree (M models) and in the
// number of processed messages (U models); it is intended for the small
// gadget instances the paper analyzes, and guards against misuse.
#pragma once

#include <vector>

#include "engine/state.hpp"
#include "model/activation.hpp"

namespace commroute::checker {

struct SuccessorOptions {
  /// Hard cap on the steps generated for one state (throws if exceeded;
  /// a blown cap means the instance is too large for exhaustive search).
  std::size_t max_steps_per_state = 20000;
};

/// All canonical legal steps of `m` from `state` (single-node steps).
std::vector<model::ActivationStep> enumerate_steps(
    const engine::NetworkState& state, const model::Model& m,
    const SuccessorOptions& options = {});

}  // namespace commroute::checker
