#include "checker/explorer.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "checker/state_set.hpp"
#include "checker/successors.hpp"
#include "engine/executor.hpp"
#include "engine/runner.hpp"
#include "runtime/thread_pool.hpp"
#include "support/error.hpp"

namespace commroute::checker {

namespace {

struct EdgeLabel {
  StateId to = 0;
  std::uint64_t attempts = 0;    ///< bitmask of channels in X
  std::uint64_t drops = 0;       ///< channels with >= 1 dropped message
  std::uint64_t deliveries = 0;  ///< channels with a delivered message
  bool pi_changed = false;
  bool pruned = false;           ///< removed by the drop-fairness fixpoint
  std::uint32_t step_index = 0;  ///< into the witness step store
};

constexpr std::uint32_t kNoStep = static_cast<std::uint32_t>(-1);

/// final_of sentinels for provisional ids (see ShardedStateSet): not yet
/// renumbered, and refused at the state cap (so every later edge to the
/// same configuration is skipped too, exactly as if it was never seen).
constexpr StateId kUnmapped = static_cast<StateId>(-1);
constexpr StateId kDroppedAtCap = static_cast<StateId>(-2);

/// Tracked-bytes estimate for one witness-store activation step (object
/// plus the heap its vectors hold; counts, never capacity).
std::size_t step_bytes(const model::ActivationStep& step) {
  std::size_t bytes = sizeof(model::ActivationStep) +
                      step.nodes.size() * sizeof(NodeId);
  for (const model::ReadSpec& read : step.reads) {
    bytes += sizeof(model::ReadSpec) +
             read.drops.size() * sizeof(std::uint32_t);
  }
  return bytes;
}

/// The merged configuration graph. State payloads are owned by the
/// ShardedStateSet's shard arenas (stable addresses); `states` maps the
/// canonical, enumeration-ordered StateId to its payload.
struct ConfigGraph {
  std::vector<const engine::NetworkState*> states;
  std::vector<std::vector<EdgeLabel>> edges;

  const engine::NetworkState& state(StateId id) const {
    return *states[id];
  }
};

/// Expansion output for one batch slot. Caller-indexed storage: the
/// merge reads slots in batch order, so nothing downstream depends on
/// which worker ran which slot. `successors[k].to` holds the provisional
/// id until the merge renumbers it; `steps` parallels `successors` and
/// is filled only under extract_witness. Slots are reused across waves
/// (reset(), not destruction) so the per-successor buffers keep their
/// capacity instead of churning the allocator once per expansion.
struct ExpandResult {
  bool quiescent = false;
  trace::Assignment assignment;    ///< when quiescent
  std::size_t raw_successors = 0;  ///< enumerate_steps count, pre-filter
  std::size_t bound_skipped = 0;   ///< successors beyond the channel bound
  std::vector<EdgeLabel> successors;
  std::vector<model::ActivationStep> steps;

  void reset() {
    quiescent = false;
    raw_successors = 0;
    bound_skipped = 0;
    successors.clear();
    steps.clear();
  }
};

/// Tarjan SCC over the configuration graph, honoring edge pruning.
std::vector<std::vector<StateId>> tarjan_sccs(const ConfigGraph& graph) {
  const std::size_t n = graph.states.size();
  std::vector<std::uint32_t> indices(n, 0), lowlink(n, 0);
  std::vector<bool> on_stack(n, false), visited(n, false);
  std::vector<StateId> stack;
  std::vector<std::vector<StateId>> sccs;
  std::uint32_t counter = 1;

  struct Frame {
    StateId v;
    std::size_t next_edge = 0;
  };

  for (StateId root = 0; root < n; ++root) {
    if (visited[root]) {
      continue;
    }
    std::vector<Frame> frames{Frame{root}};
    visited[root] = true;
    indices[root] = lowlink[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const StateId v = frame.v;
      bool descended = false;
      while (frame.next_edge < graph.edges[v].size()) {
        const EdgeLabel& e = graph.edges[v][frame.next_edge++];
        if (e.pruned) {
          continue;
        }
        const StateId w = e.to;
        if (!visited[w]) {
          visited[w] = true;
          indices[w] = lowlink[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], indices[w]);
        }
      }
      if (descended) {
        continue;
      }
      // v finished.
      if (lowlink[v] == indices[v]) {
        std::vector<StateId> scc;
        for (;;) {
          const StateId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc.push_back(w);
          if (w == v) {
            break;
          }
        }
        sccs.push_back(std::move(scc));
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().v] =
            std::min(lowlink[frames.back().v], lowlink[v]);
      }
    }
  }
  return sccs;
}

}  // namespace

std::string ExploreResult::summary() const {
  std::ostringstream os;
  os << (oscillation_found ? "oscillation possible" : "no fair oscillation")
     << " (" << states << " states, " << transitions << " transitions, "
     << (exhaustive ? "exhaustive" : "bounded") << ")";
  if (state_cap_hit) {
    os << ", state cap " << state_cap_limit << " hit";
  }
  if (channel_bound_hit) {
    os << ", channel bound " << channel_length_limit << " hit ("
       << bound_skipped_expansions << " expansions skipped)";
  }
  if (memory_limit_hit) {
    os << ", memory limit " << memory_limit << " bytes hit";
  }
  if (!quiescent_assignments.empty()) {
    os << ", " << quiescent_assignments.size()
       << " distinct converged outcome(s)";
  }
  return os.str();
}

ExploreResult explore(const spp::Instance& instance, const model::Model& m,
                      const ExploreOptions& options) {
  CR_REQUIRE(instance.graph().channel_count() <= 64,
             "explorer supports at most 64 channels");

  const std::size_t threads = runtime::resolve_threads(options.threads);
  const bool observed = options.obs.attached();
  const auto explore_start =
      observed ? std::chrono::steady_clock::now()
               : std::chrono::steady_clock::time_point{};
  obs::Span explore_span = options.obs.span("checker.explore");
  if (explore_span.enabled()) {
    explore_span.attr("model", m.name());
    explore_span.attr("threads", static_cast<std::uint64_t>(threads));
    explore_span.attr("searcher", to_string(options.searcher));
  }

  ExploreResult result;
  ConfigGraph graph;
  ShardedStateSet seen(threads == 1
                           ? 1
                           : std::min<std::size_t>(64, threads * 8));
  const bool sketched = options.budget == obs::ObsBudget::kSketched;

  // Tracked-bytes accounting over the explorer's own structures (interned
  // states, edges, frontier, hash index, witness store). Always on — it
  // is a handful of integer adds per expansion — and mirrored into
  // options.memory when attached so a TelemetrySampler can watch the
  // exploration live. All accounting happens on the merge path, in
  // enumeration order, so the peak is identical at any thread count.
  std::uint64_t tracked_bytes = 0;
  const auto track_add = [&](std::size_t n) {
    tracked_bytes += n;
    if (tracked_bytes > result.tracked_peak_bytes) {
      result.tracked_peak_bytes = tracked_bytes;
    }
    if (options.memory != nullptr) {
      options.memory->add(n);
    }
  };
  const auto track_sub = [&](std::size_t n) {
    tracked_bytes -= n;
    if (options.memory != nullptr) {
      options.memory->sub(n);
    }
  };
  // Per interned state: the payload's own footprint plus its seen-set
  // slot, its pointer in the id table, and its (empty) adjacency row.
  const auto interned_state_bytes = [&](StateId id) {
    return graph.state(id).estimated_bytes() +
           ShardedStateSet::slot_bytes() +
           sizeof(const engine::NetworkState*) +
           sizeof(std::vector<EdgeLabel>);
  };

  SuccessorOptions successor_options;
  successor_options.max_steps_per_state = options.max_steps_per_state;
  std::uint64_t expanded = 0;
  std::uint64_t discovery_seq = 0;
  HeartbeatCadence cadence(options.heartbeat_every,
                           options.heartbeat_interval_ms);
  /// Expansions grouped under one checker.frontier_batch span, so a
  /// Perfetto view shows exploration progress at a glance without
  /// per-state slices drowning the track.
  constexpr std::uint64_t kExpansionsPerBatchSpan = 256;
  obs::Span batch_span;

  // Renumbering table: provisional id (seen-set order, racing under
  // threads > 1) -> canonical StateId (enumeration order).
  std::vector<StateId> final_of;
  // Provisional id -> payload, filled from the seen-set's fresh list
  // after every wave.
  std::vector<const engine::NetworkState*> payload_of;

  std::unique_ptr<Searcher> searcher =
      make_searcher(options.searcher, options.searcher_seed);

  {
    const auto interned = seen.intern(engine::NetworkState(instance));
    graph.states.push_back(interned.state);
    graph.edges.emplace_back();
    final_of.push_back(0);
    payload_of.push_back(interned.state);
    track_add(interned_state_bytes(0));
    searcher->push(0, SearcherPush{false, discovery_seq++});
    track_add(sizeof(StateId));
  }
  result.frontier_peak = 1;

  std::vector<trace::Assignment> quiescent;

  // Witness bookkeeping (only populated when requested).
  std::vector<model::ActivationStep> step_store;
  struct Parent {
    StateId from = 0;
    std::uint32_t step_index = kNoStep;
  };
  std::vector<Parent> parents(1);  // parents[initial] unused

  // Parallel machinery: a pool (threads > 1 only) and per-worker obs
  // shards — each worker owns a registry and span collector, merged
  // commutatively below, so the expansion hot path never contends on
  // the caller's handles (the PR 4 campaign pattern).
  std::optional<runtime::ThreadPool> pool;
  struct WorkerCtx {
    obs::Registry metrics;
    obs::SpanCollector spans;
    obs::Instrumentation obs;
    obs::Histogram* expand_hist = nullptr;
  };
  std::deque<WorkerCtx> workers;  // deque: SpanCollector is not movable
  if (threads > 1) {
    pool.emplace(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      workers.emplace_back();
    }
    for (WorkerCtx& w : workers) {
      if (options.obs.metrics != nullptr) {
        w.obs.metrics = &w.metrics;
      }
      if (options.obs.spans != nullptr) {
        w.obs.spans = &w.spans;
        w.expand_hist = w.obs.histogram(
            "checker.expand_us", obs::exponential_buckets(1, 4.0, 10));
      }
    }
  }
  obs::Histogram* serial_expand_hist =
      options.obs.spans != nullptr
          ? options.obs.histogram("checker.expand_us",
                                  obs::exponential_buckets(1, 4.0, 10))
          : nullptr;

  // One wave: select a batch in searcher order, expand it (in parallel
  // when threads > 1), then merge the caller-indexed results in batch
  // order. Any batch partitioning of a FIFO frontier yields the same
  // merge order, which is why the BFS searcher is byte-deterministic
  // across thread counts.
  const std::size_t batch_target = threads == 1 ? 1 : threads * 32;
  std::vector<StateId> batch;
  std::vector<ExpandResult> results;
  std::vector<std::pair<std::uint32_t, const engine::NetworkState*>> fresh;

  const auto expand_one = [&](const obs::Instrumentation& wobs,
                              obs::Histogram* whist, std::size_t i) {
    ExpandResult& out = results[i];
    const engine::NetworkState& s = graph.state(batch[i]);
    obs::Span expand_span = wobs.span("checker.expand");

    // Strongly quiescent states are terminal: no step changes anything.
    if (engine::strongly_quiescent(s)) {
      out.quiescent = true;
      out.assignment = s.assignments();
      return;
    }

    const std::vector<model::ActivationStep> steps =
        enumerate_steps(s, m, successor_options);
    out.raw_successors = steps.size();
    out.successors.reserve(steps.size());
    for (const model::ActivationStep& step : steps) {
      engine::NetworkState next = s;
      const engine::StepEffect effect = engine::execute_step(next, step);

      if (next.max_channel_length() > options.max_channel_length) {
        ++out.bound_skipped;
        continue;  // beyond the bound: do not expand
      }

      EdgeLabel label;
      for (const engine::ReadEffect& read : effect.reads) {
        label.attempts |= (1ULL << read.channel);
        if (read.dropped > 0) {
          label.drops |= (1ULL << read.channel);
        }
        if (read.delivered) {
          label.deliveries |= (1ULL << read.channel);
        }
      }
      for (const engine::NodeEffect& node : effect.nodes) {
        label.pi_changed |= node.changed;
      }
      label.to = seen.intern(std::move(next)).id;  // provisional
      out.successors.push_back(label);
      if (options.extract_witness) {
        out.steps.push_back(step);
      }
    }
    if (expand_span.enabled()) {
      expand_span.attr("successors",
                       static_cast<std::uint64_t>(steps.size()));
      if (whist != nullptr) {
        whist->observe(expand_span.elapsed_us());
      }
    }
  };

  bool truncated = false;
  std::uint64_t unmerged = 0;  ///< batch slots abandoned by a memory break
  std::uint64_t batch_span_epoch = static_cast<std::uint64_t>(-1);
  while (!searcher->empty() && !truncated) {
    // Rotate the batch span before expanding so serial expand spans nest
    // under it (span parenting is innermost-open-on-this-thread); worker
    // expand spans live in per-worker collectors and merge in as roots.
    if (options.obs.spans != nullptr &&
        expanded / kExpansionsPerBatchSpan != batch_span_epoch) {
      batch_span_epoch = expanded / kExpansionsPerBatchSpan;
      batch_span.finish();  // before begin(), so batches are siblings
      batch_span = options.obs.span("checker.frontier_batch");
    }
    batch.clear();
    while (batch.size() < batch_target && !searcher->empty()) {
      batch.push_back(searcher->select());
    }
    if (results.size() < batch.size()) {
      results.resize(batch.size());
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      results[i].reset();
    }

    if (threads == 1) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        expand_one(options.obs, serial_expand_hist, i);
      }
    } else {
      runtime::parallel_for_each(
          *pool, batch.size(),
          [&](std::size_t worker, std::size_t i) {
            expand_one(workers[worker].obs, workers[worker].expand_hist,
                       i);
          });
    }

    // Index this wave's discoveries by provisional id.
    fresh.clear();
    seen.drain_fresh(fresh);
    final_of.resize(seen.size(), kUnmapped);
    payload_of.resize(seen.size(), nullptr);
    for (const auto& [prov, payload] : fresh) {
      payload_of[prov] = payload;
    }

    // Merge in batch (enumeration) order on the calling thread.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (options.memory_limit_bytes > 0 &&
          tracked_bytes > options.memory_limit_bytes) {
        result.memory_limit_hit = true;
        result.memory_limit = options.memory_limit_bytes;
        unmerged = batch.size() - i;
        truncated = true;
        break;
      }
      const StateId id = batch[i];
      track_sub(sizeof(StateId));
      ++expanded;
      // States selected into this batch but not yet merged still count
      // as frontier: the pending total is partition-independent.
      const auto pending = [&] {
        return searcher->size() + (batch.size() - 1 - i);
      };
      if (options.progress != nullptr && expanded % 256 == 0) {
        // done/total both move: total = expanded + frontier is the best
        // lower bound on the reachable-state count known so far, so the
        // fraction converges to 1 exactly as the frontier drains.
        options.progress->update(expanded, expanded + pending());
        options.progress->set_detail(pending());
      }
      if (options.obs.sink != nullptr && cadence.active()) {
        const bool count_due = cadence.count_due(expanded);
        auto now = std::chrono::steady_clock::time_point{};
        std::uint64_t now_ms = 0;
        if (count_due || cadence.time_active()) {
          now = std::chrono::steady_clock::now();
          now_ms = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  now - explore_start)
                  .count());
        }
        const bool time_fired = cadence.time_due(now_ms);
        if (count_due || time_fired) {
          obs::Event ev("checker_heartbeat");
          ev.field("expanded", expanded)
              .field("states",
                     static_cast<std::uint64_t>(graph.states.size()))
              .field("frontier", static_cast<std::uint64_t>(pending()))
              .field("transitions",
                     static_cast<std::uint64_t>(result.transitions))
              .field("dedup_hits",
                     static_cast<std::uint64_t>(result.dedup_hits))
              .field("elapsed_ms", now_ms);
          options.obs.sink->emit(ev);
        }
      }

      ExpandResult& out = results[i];
      if (out.quiescent) {
        if (std::find(quiescent.begin(), quiescent.end(),
                      out.assignment) == quiescent.end()) {
          quiescent.push_back(std::move(out.assignment));
        }
        continue;
      }
      if (sketched) {
        result.successor_hist.observe(out.raw_successors);
      }
      if (out.bound_skipped > 0) {
        result.channel_bound_hit = true;
        result.channel_length_limit = options.max_channel_length;
        result.bound_skipped_expansions += out.bound_skipped;
      }

      for (std::size_t k = 0; k < out.successors.size(); ++k) {
        EdgeLabel& rec = out.successors[k];
        const std::uint32_t prov = rec.to;
        if (final_of[prov] == kDroppedAtCap) {
          continue;
        }
        bool is_new = false;
        StateId to;
        if (final_of[prov] == kUnmapped) {
          // Enforce the cap at intern time: a cap of N admits exactly
          // N states, whatever the expansion order or batch size.
          if (graph.states.size() >= options.max_states) {
            result.state_cap_hit = true;
            result.state_cap_limit = options.max_states;
            final_of[prov] = kDroppedAtCap;
            continue;
          }
          to = static_cast<StateId>(graph.states.size());
          final_of[prov] = to;
          is_new = true;
        } else {
          to = final_of[prov];
        }
        rec.to = to;
        if (options.extract_witness) {
          rec.step_index = static_cast<std::uint32_t>(step_store.size());
          step_store.push_back(std::move(out.steps[k]));
          track_add(step_bytes(step_store.back()));
        }
        graph.edges[id].push_back(rec);
        track_add(sizeof(EdgeLabel));
        ++result.transitions;
        if (is_new) {
          graph.states.push_back(payload_of[prov]);
          graph.edges.emplace_back();
          track_add(interned_state_bytes(to));
          searcher->push(to, SearcherPush{rec.pi_changed, discovery_seq++});
          track_add(sizeof(StateId));
          if (pending() > result.frontier_peak) {
            result.frontier_peak = pending();
          }
          if (options.extract_witness) {
            parents.push_back(Parent{id, rec.step_index});
            track_add(sizeof(Parent));
          }
        } else {
          ++result.dedup_hits;
        }
      }
      if (result.state_cap_hit) {
        // Stop after the slot that filled the cap (its remaining
        // successors above already resolved against the full graph);
        // later slots in this wave are discarded exactly as if they
        // were never expanded, matching the serial stop point.
        unmerged = batch.size() - 1 - i;
        truncated = true;
        break;
      }
    }
  }
  batch_span.finish();

  // Merge the per-worker instrumentation shards (counters add, gauges
  // per policy, histograms bucket-wise, span ids re-based).
  for (WorkerCtx& w : workers) {
    if (options.obs.metrics != nullptr) {
      options.obs.metrics->merge_from(w.metrics);
    }
    if (options.obs.spans != nullptr) {
      options.obs.spans->merge_from(w.spans);
    }
  }

  if (options.progress != nullptr) {
    const std::uint64_t remaining = searcher->size() + unmerged;
    if (truncated) {
      // Exploration is over even though the frontier is not empty:
      // report done == total so the fraction lands on 1.0 instead of
      // freezing short with a dangling ETA, and carry the truncation
      // reason in the detail label.
      const std::uint64_t total = expanded + remaining;
      options.progress->update(total, total);
      options.progress->set_detail(remaining);
      options.progress->set_detail_label(
          result.memory_limit_hit ? "truncated:memory_limit"
                                  : "truncated:state_cap");
    } else {
      options.progress->update(expanded, expanded + remaining);
      options.progress->set_detail(remaining);
    }
  }
  result.states = graph.states.size();
  result.quiescent_assignments = std::move(quiescent);
  result.exhaustive = !result.state_cap_hit && !result.channel_bound_hit &&
                      !result.memory_limit_hit;

  // Drop-fairness fixpoint: within each SCC, prune drop-edges whose
  // channel has no delivery-edge inside the same SCC; repeat until stable
  // (pruning can split SCCs).
  const std::uint64_t all_channels =
      (instance.graph().channel_count() == 64)
          ? ~0ULL
          : ((1ULL << instance.graph().channel_count()) - 1);

  for (;;) {
    ++result.scc_prune_passes;
    obs::Span pass_span = options.obs.span("checker.scc_prune_pass");
    const auto sccs = tarjan_sccs(graph);
    std::vector<std::uint32_t> scc_of(graph.states.size(), 0);
    for (std::uint32_t s = 0; s < sccs.size(); ++s) {
      for (const StateId v : sccs[s]) {
        scc_of[v] = s;
      }
    }

    // Delivery-channel mask per SCC (internal edges only).
    std::vector<std::uint64_t> scc_deliveries(sccs.size(), 0);
    for (StateId v = 0; v < graph.states.size(); ++v) {
      for (const EdgeLabel& e : graph.edges[v]) {
        if (!e.pruned && scc_of[v] == scc_of[e.to]) {
          scc_deliveries[scc_of[v]] |= e.deliveries;
        }
      }
    }

    bool pruned_any = false;
    for (StateId v = 0; v < graph.states.size(); ++v) {
      for (EdgeLabel& e : graph.edges[v]) {
        if (e.pruned || scc_of[v] != scc_of[e.to]) {
          continue;
        }
        if ((e.drops & ~scc_deliveries[scc_of[v]]) != 0) {
          e.pruned = true;
          pruned_any = true;
        }
      }
    }

    if (!pruned_any) {
      // Final verdict on this SCC decomposition.
      std::vector<std::uint64_t> scc_attempts(sccs.size(), 0);
      std::vector<bool> scc_pi_change(sccs.size(), false);
      for (StateId v = 0; v < graph.states.size(); ++v) {
        for (const EdgeLabel& e : graph.edges[v]) {
          if (e.pruned || scc_of[v] != scc_of[e.to]) {
            continue;
          }
          scc_attempts[scc_of[v]] |= e.attempts;
          scc_pi_change[scc_of[v]] =
              scc_pi_change[scc_of[v]] || e.pi_changed;
        }
      }
      std::optional<std::uint32_t> witness_scc;
      for (std::uint32_t s = 0; s < sccs.size(); ++s) {
        if (scc_pi_change[s] && scc_attempts[s] == all_channels) {
          result.oscillation_found = true;
          if (sccs[s].size() > result.witness_scc_size) {
            result.witness_scc_size = sccs[s].size();
            witness_scc = s;
          }
        }
      }

      if (options.extract_witness && witness_scc.has_value()) {
        // Build a closed tour through *every* internal edge of the
        // witness SCC (so the loop attempts every channel, performs a
        // delivery for every dropping channel, and changes assignments),
        // plus the BFS prefix from the initial state to the tour start.
        const std::vector<StateId>& members = sccs[*witness_scc];
        std::vector<bool> in_scc(graph.states.size(), false);
        for (const StateId v : members) {
          in_scc[v] = true;
        }
        const auto internal = [&](StateId v, const EdgeLabel& e) {
          return !e.pruned && in_scc[v] && in_scc[e.to];
        };

        // BFS path (as step indices) between two SCC states.
        const auto scc_path = [&](StateId from,
                                  StateId to) -> std::vector<std::uint32_t> {
          if (from == to) {
            return {};
          }
          std::unordered_map<StateId, std::pair<StateId, std::uint32_t>>
              via;  // state -> (predecessor, step index)
          std::deque<StateId> bfs{from};
          via.emplace(from, std::make_pair(from, kNoStep));
          while (!bfs.empty()) {
            const StateId at = bfs.front();
            bfs.pop_front();
            for (const EdgeLabel& e : graph.edges[at]) {
              if (!internal(at, e) || via.count(e.to) != 0) {
                continue;
              }
              via.emplace(e.to, std::make_pair(at, e.step_index));
              if (e.to == to) {
                std::vector<std::uint32_t> rev;
                for (StateId w = to; w != from;
                     w = via.at(w).first) {
                  rev.push_back(via.at(w).second);
                }
                return {rev.rbegin(), rev.rend()};
              }
              bfs.push_back(e.to);
            }
          }
          throw InvariantError("SCC is not strongly connected");
        };

        const StateId start = members.front();
        StateId cursor = start;
        std::vector<std::uint32_t> tour;
        for (const StateId v : members) {
          for (const EdgeLabel& e : graph.edges[v]) {
            if (!internal(v, e)) {
              continue;
            }
            for (const std::uint32_t idx : scc_path(cursor, v)) {
              tour.push_back(idx);
            }
            tour.push_back(e.step_index);
            cursor = e.to;
          }
        }
        for (const std::uint32_t idx : scc_path(cursor, start)) {
          tour.push_back(idx);
        }

        std::vector<std::uint32_t> prefix_rev;
        for (StateId at = start; at != 0;
             at = parents[at].from) {
          prefix_rev.push_back(parents[at].step_index);
        }
        for (auto it = prefix_rev.rbegin(); it != prefix_rev.rend();
             ++it) {
          result.witness_prefix.push_back(step_store[*it]);
        }
        for (const std::uint32_t idx : tour) {
          result.witness_cycle.push_back(step_store[idx]);
        }
      }
      break;
    }
  }

  if (observed) {
    const std::uint64_t wall_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - explore_start)
            .count());
    if (explore_span.enabled()) {
      explore_span
          .attr("states", static_cast<std::uint64_t>(result.states))
          .attr("transitions",
                static_cast<std::uint64_t>(result.transitions))
          .attr("oscillation_found", result.oscillation_found);
      explore_span.finish();
    }
    if (obs::Histogram* h = options.obs.histogram(
            "checker.explore_us", obs::exponential_buckets(16, 4.0, 10))) {
      h->observe(wall_us);
    }
    if (options.obs.metrics != nullptr) {
      obs::Registry& reg = *options.obs.metrics;
      reg.counter("checker.explorations").add();
      reg.counter("checker.states").add(result.states);
      reg.counter("checker.transitions").add(result.transitions);
      reg.counter("checker.dedup_hits").add(result.dedup_hits);
      reg.counter("checker.scc_prune_passes").add(result.scc_prune_passes);
      reg.counter("checker.bound_skipped_expansions")
          .add(result.bound_skipped_expansions);
      reg.counter("checker.wall_us").add(wall_us);
      reg.gauge("checker.frontier_peak").record_max(result.frontier_peak);
      reg.gauge("checker.tracked_peak_bytes")
          .record_max(result.tracked_peak_bytes);
      reg.gauge("checker.threads").record_max(threads);
      if (result.memory_limit_hit) {
        reg.gauge("checker.memory_limit_hit").record_max(1);
      }
    }
    if (options.obs.sink != nullptr) {
      obs::Event ev("checker_summary");
      ev.field("oscillation_found", result.oscillation_found)
          .field("exhaustive", result.exhaustive)
          .field("searcher", to_string(options.searcher))
          .field("state_cap_hit", result.state_cap_hit)
          .field("state_cap_limit",
                 static_cast<std::uint64_t>(result.state_cap_limit))
          .field("channel_bound_hit", result.channel_bound_hit)
          .field("channel_length_limit",
                 static_cast<std::uint64_t>(result.channel_length_limit))
          .field("bound_skipped_expansions",
                 static_cast<std::uint64_t>(result.bound_skipped_expansions))
          .field("memory_limit_hit", result.memory_limit_hit)
          .field("memory_limit_bytes",
                 static_cast<std::uint64_t>(result.memory_limit))
          .field("tracked_peak_bytes", result.tracked_peak_bytes)
          .field("bytes_per_state", result.bytes_per_state())
          .field("states", static_cast<std::uint64_t>(result.states))
          .field("transitions",
                 static_cast<std::uint64_t>(result.transitions))
          .field("dedup_hits",
                 static_cast<std::uint64_t>(result.dedup_hits))
          .field("frontier_peak",
                 static_cast<std::uint64_t>(result.frontier_peak))
          .field("scc_prune_passes",
                 static_cast<std::uint64_t>(result.scc_prune_passes))
          .field("witness_scc_size",
                 static_cast<std::uint64_t>(result.witness_scc_size))
          .field("quiescent_outcomes",
                 static_cast<std::uint64_t>(
                     result.quiescent_assignments.size()))
          .field("wall_us", wall_us);
      if (sketched) {
        // Gated so full-mode checker_summary lines keep their exact
        // pre-budget bytes.
        ev.field("obs_budget", obs::to_string(options.budget))
            .raw_field("successor_hist", result.successor_hist.to_json());
      }
      options.obs.sink->emit(ev);
    }
  }

  return result;
}

}  // namespace commroute::checker
