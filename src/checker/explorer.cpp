#include "checker/explorer.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <sstream>
#include <unordered_map>

#include "checker/successors.hpp"
#include "engine/executor.hpp"
#include "engine/runner.hpp"
#include "support/error.hpp"

namespace commroute::checker {

namespace {

using StateId = std::uint32_t;

struct EdgeLabel {
  StateId to = 0;
  std::uint64_t attempts = 0;    ///< bitmask of channels in X
  std::uint64_t drops = 0;       ///< channels with >= 1 dropped message
  std::uint64_t deliveries = 0;  ///< channels with a delivered message
  bool pi_changed = false;
  bool pruned = false;           ///< removed by the drop-fairness fixpoint
  std::uint32_t step_index = 0;  ///< into the witness step store
};

constexpr std::uint32_t kNoStep = static_cast<std::uint32_t>(-1);

/// Tracked-bytes estimate for one witness-store activation step (object
/// plus the heap its vectors hold; counts, never capacity).
std::size_t step_bytes(const model::ActivationStep& step) {
  std::size_t bytes = sizeof(model::ActivationStep) +
                      step.nodes.size() * sizeof(NodeId);
  for (const model::ReadSpec& read : step.reads) {
    bytes += sizeof(model::ReadSpec) +
             read.drops.size() * sizeof(std::uint32_t);
  }
  return bytes;
}

struct ConfigGraph {
  std::vector<engine::NetworkState> states;
  std::vector<std::vector<EdgeLabel>> edges;
  std::unordered_map<std::size_t, std::vector<StateId>> index;

  StateId intern(const engine::NetworkState& s, bool& is_new) {
    const std::size_t h = s.hash();
    for (const StateId id : index[h]) {
      if (states[id] == s) {
        is_new = false;
        return id;
      }
    }
    const StateId id = static_cast<StateId>(states.size());
    states.push_back(s);
    edges.emplace_back();
    index[h].push_back(id);
    is_new = true;
    return id;
  }
};

/// Tarjan SCC over the configuration graph, honoring edge pruning.
std::vector<std::vector<StateId>> tarjan_sccs(const ConfigGraph& graph) {
  const std::size_t n = graph.states.size();
  std::vector<std::uint32_t> indices(n, 0), lowlink(n, 0);
  std::vector<bool> on_stack(n, false), visited(n, false);
  std::vector<StateId> stack;
  std::vector<std::vector<StateId>> sccs;
  std::uint32_t counter = 1;

  struct Frame {
    StateId v;
    std::size_t next_edge = 0;
  };

  for (StateId root = 0; root < n; ++root) {
    if (visited[root]) {
      continue;
    }
    std::vector<Frame> frames{Frame{root}};
    visited[root] = true;
    indices[root] = lowlink[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const StateId v = frame.v;
      bool descended = false;
      while (frame.next_edge < graph.edges[v].size()) {
        const EdgeLabel& e = graph.edges[v][frame.next_edge++];
        if (e.pruned) {
          continue;
        }
        const StateId w = e.to;
        if (!visited[w]) {
          visited[w] = true;
          indices[w] = lowlink[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], indices[w]);
        }
      }
      if (descended) {
        continue;
      }
      // v finished.
      if (lowlink[v] == indices[v]) {
        std::vector<StateId> scc;
        for (;;) {
          const StateId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc.push_back(w);
          if (w == v) {
            break;
          }
        }
        sccs.push_back(std::move(scc));
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().v] =
            std::min(lowlink[frames.back().v], lowlink[v]);
      }
    }
  }
  return sccs;
}

}  // namespace

std::string ExploreResult::summary() const {
  std::ostringstream os;
  os << (oscillation_found ? "oscillation possible" : "no fair oscillation")
     << " (" << states << " states, " << transitions << " transitions, "
     << (exhaustive ? "exhaustive" : "bounded") << ")";
  if (state_cap_hit) {
    os << ", state cap " << state_cap_limit << " hit";
  }
  if (channel_bound_hit) {
    os << ", channel bound " << channel_length_limit << " hit ("
       << bound_skipped_expansions << " expansions skipped)";
  }
  if (memory_limit_hit) {
    os << ", memory limit " << memory_limit << " bytes hit";
  }
  if (!quiescent_assignments.empty()) {
    os << ", " << quiescent_assignments.size()
       << " distinct converged outcome(s)";
  }
  return os.str();
}

ExploreResult explore(const spp::Instance& instance, const model::Model& m,
                      const ExploreOptions& options) {
  CR_REQUIRE(instance.graph().channel_count() <= 64,
             "explorer supports at most 64 channels");

  const bool observed = options.obs.attached();
  const auto explore_start =
      observed ? std::chrono::steady_clock::now()
               : std::chrono::steady_clock::time_point{};
  obs::Span explore_span = options.obs.span("checker.explore");
  if (explore_span.enabled()) {
    explore_span.attr("model", m.name());
  }
  obs::Histogram* expand_hist =
      options.obs.spans != nullptr
          ? options.obs.histogram("checker.expand_us",
                                  obs::exponential_buckets(1, 4.0, 10))
          : nullptr;

  ExploreResult result;
  ConfigGraph graph;
  const bool sketched = options.budget == obs::ObsBudget::kSketched;

  // Tracked-bytes accounting over the explorer's own structures (interned
  // states, edges, frontier, hash index, witness store). Always on — it
  // is a handful of integer adds per expansion — and mirrored into
  // options.memory when attached so a TelemetrySampler can watch the
  // exploration live.
  std::uint64_t tracked_bytes = 0;
  const auto track_add = [&](std::size_t n) {
    tracked_bytes += n;
    if (tracked_bytes > result.tracked_peak_bytes) {
      result.tracked_peak_bytes = tracked_bytes;
    }
    if (options.memory != nullptr) {
      options.memory->add(n);
    }
  };
  const auto track_sub = [&](std::size_t n) {
    tracked_bytes -= n;
    if (options.memory != nullptr) {
      options.memory->sub(n);
    }
  };
  // Per interned state: the state's own footprint plus its hash-index
  // entry and its (empty) adjacency row.
  const auto interned_state_bytes = [&](StateId id) {
    return graph.states[id].estimated_bytes() + sizeof(StateId) +
           sizeof(std::vector<EdgeLabel>);
  };

  SuccessorOptions successor_options;
  successor_options.max_steps_per_state = options.max_steps_per_state;
  std::size_t expanded = 0;
  auto last_heartbeat = explore_start;
  /// Expansions grouped under one checker.frontier_batch span, so a
  /// Perfetto view shows exploration progress at a glance without
  /// per-state slices drowning the track.
  constexpr std::size_t kExpansionsPerBatchSpan = 256;
  obs::Span batch_span;

  bool dummy = false;
  const StateId initial =
      graph.intern(engine::NetworkState(instance), dummy);
  track_add(interned_state_bytes(initial));
  std::deque<StateId> frontier{initial};
  track_add(sizeof(StateId));
  result.frontier_peak = 1;

  std::vector<trace::Assignment> quiescent;

  // Witness bookkeeping (only populated when requested).
  std::vector<model::ActivationStep> step_store;
  struct Parent {
    StateId from = 0;
    std::uint32_t step_index = kNoStep;
  };
  std::vector<Parent> parents(1);  // parents[initial] unused

  while (!frontier.empty()) {
    if (graph.states.size() > options.max_states) {
      result.state_cap_hit = true;
      result.state_cap_limit = options.max_states;
      break;
    }
    if (options.memory_limit_bytes > 0 &&
        tracked_bytes > options.memory_limit_bytes) {
      result.memory_limit_hit = true;
      result.memory_limit = options.memory_limit_bytes;
      break;
    }
    if (options.obs.spans != nullptr &&
        expanded % kExpansionsPerBatchSpan == 0) {
      batch_span.finish();  // before begin(), so batches are siblings
      batch_span = options.obs.span("checker.frontier_batch");
    }
    const StateId id = frontier.front();
    frontier.pop_front();
    track_sub(sizeof(StateId));
    ++expanded;
    if (options.progress != nullptr && expanded % 256 == 0) {
      // done/total both move: total = expanded + frontier is the best
      // lower bound on the reachable-state count known so far, so the
      // fraction converges to 1 exactly as the frontier drains.
      options.progress->update(expanded, expanded + frontier.size());
      options.progress->set_detail(frontier.size());
    }
    if (options.obs.sink != nullptr) {
      const bool count_due = options.heartbeat_every > 0 &&
                             expanded % options.heartbeat_every == 0;
      bool time_due = false;
      auto now = std::chrono::steady_clock::time_point{};
      if (count_due || options.heartbeat_interval_ms > 0) {
        now = std::chrono::steady_clock::now();
        time_due = options.heartbeat_interval_ms > 0 &&
                   now - last_heartbeat >= std::chrono::milliseconds(
                                               options.heartbeat_interval_ms);
      }
      if (count_due || time_due) {
        last_heartbeat = now;
        obs::Event ev("checker_heartbeat");
        ev.field("expanded", static_cast<std::uint64_t>(expanded))
            .field("states",
                   static_cast<std::uint64_t>(graph.states.size()))
            .field("frontier", static_cast<std::uint64_t>(frontier.size()))
            .field("transitions",
                   static_cast<std::uint64_t>(result.transitions))
            .field("dedup_hits",
                   static_cast<std::uint64_t>(result.dedup_hits))
            .field("elapsed_ms",
                   static_cast<std::uint64_t>(
                       std::chrono::duration_cast<std::chrono::milliseconds>(
                           now - explore_start)
                           .count()));
        options.obs.sink->emit(ev);
      }
    }
    obs::Span expand_span = options.obs.span("checker.expand");

    // Strongly quiescent states are terminal: no step changes anything.
    if (engine::strongly_quiescent(graph.states[id])) {
      const trace::Assignment a = graph.states[id].assignments();
      if (std::find(quiescent.begin(), quiescent.end(), a) ==
          quiescent.end()) {
        quiescent.push_back(a);
      }
      continue;
    }

    const std::vector<model::ActivationStep> steps =
        enumerate_steps(graph.states[id], m, successor_options);
    if (sketched) {
      result.successor_hist.observe(steps.size());
    }
    for (const model::ActivationStep& step : steps) {
      engine::NetworkState next = graph.states[id];
      const engine::StepEffect effect = engine::execute_step(next, step);

      if (next.max_channel_length() > options.max_channel_length) {
        result.channel_bound_hit = true;
        result.channel_length_limit = options.max_channel_length;
        ++result.bound_skipped_expansions;
        continue;  // beyond the bound: do not expand
      }

      EdgeLabel label;
      for (const engine::ReadEffect& read : effect.reads) {
        label.attempts |= (1ULL << read.channel);
        if (read.dropped > 0) {
          label.drops |= (1ULL << read.channel);
        }
        if (read.delivered) {
          label.deliveries |= (1ULL << read.channel);
        }
      }
      for (const engine::NodeEffect& node : effect.nodes) {
        label.pi_changed |= node.changed;
      }

      bool is_new = false;
      const StateId to = graph.intern(next, is_new);
      label.to = to;
      if (options.extract_witness) {
        label.step_index = static_cast<std::uint32_t>(step_store.size());
        step_store.push_back(step);
        track_add(step_bytes(step));
      }
      graph.edges[id].push_back(label);
      track_add(sizeof(EdgeLabel));
      ++result.transitions;
      if (is_new) {
        track_add(interned_state_bytes(to));
        frontier.push_back(to);
        track_add(sizeof(StateId));
        if (frontier.size() > result.frontier_peak) {
          result.frontier_peak = frontier.size();
        }
        if (options.extract_witness) {
          parents.push_back(Parent{id, label.step_index});
          track_add(sizeof(Parent));
        }
      } else {
        ++result.dedup_hits;
      }
    }
    if (expand_span.enabled()) {
      expand_span.attr("successors",
                       static_cast<std::uint64_t>(steps.size()));
      if (expand_hist != nullptr) {
        expand_hist->observe(expand_span.elapsed_us());
      }
    }
  }
  batch_span.finish();

  if (options.progress != nullptr) {
    options.progress->update(expanded, expanded + frontier.size());
    options.progress->set_detail(frontier.size());
  }
  result.states = graph.states.size();
  result.quiescent_assignments = std::move(quiescent);
  result.exhaustive = !result.state_cap_hit && !result.channel_bound_hit &&
                      !result.memory_limit_hit;

  // Drop-fairness fixpoint: within each SCC, prune drop-edges whose
  // channel has no delivery-edge inside the same SCC; repeat until stable
  // (pruning can split SCCs).
  const std::uint64_t all_channels =
      (instance.graph().channel_count() == 64)
          ? ~0ULL
          : ((1ULL << instance.graph().channel_count()) - 1);

  for (;;) {
    ++result.scc_prune_passes;
    obs::Span pass_span = options.obs.span("checker.scc_prune_pass");
    const auto sccs = tarjan_sccs(graph);
    std::vector<std::uint32_t> scc_of(graph.states.size(), 0);
    for (std::uint32_t s = 0; s < sccs.size(); ++s) {
      for (const StateId v : sccs[s]) {
        scc_of[v] = s;
      }
    }

    // Delivery-channel mask per SCC (internal edges only).
    std::vector<std::uint64_t> scc_deliveries(sccs.size(), 0);
    for (StateId v = 0; v < graph.states.size(); ++v) {
      for (const EdgeLabel& e : graph.edges[v]) {
        if (!e.pruned && scc_of[v] == scc_of[e.to]) {
          scc_deliveries[scc_of[v]] |= e.deliveries;
        }
      }
    }

    bool pruned_any = false;
    for (StateId v = 0; v < graph.states.size(); ++v) {
      for (EdgeLabel& e : graph.edges[v]) {
        if (e.pruned || scc_of[v] != scc_of[e.to]) {
          continue;
        }
        if ((e.drops & ~scc_deliveries[scc_of[v]]) != 0) {
          e.pruned = true;
          pruned_any = true;
        }
      }
    }

    if (!pruned_any) {
      // Final verdict on this SCC decomposition.
      std::vector<std::uint64_t> scc_attempts(sccs.size(), 0);
      std::vector<bool> scc_pi_change(sccs.size(), false);
      for (StateId v = 0; v < graph.states.size(); ++v) {
        for (const EdgeLabel& e : graph.edges[v]) {
          if (e.pruned || scc_of[v] != scc_of[e.to]) {
            continue;
          }
          scc_attempts[scc_of[v]] |= e.attempts;
          scc_pi_change[scc_of[v]] =
              scc_pi_change[scc_of[v]] || e.pi_changed;
        }
      }
      std::optional<std::uint32_t> witness_scc;
      for (std::uint32_t s = 0; s < sccs.size(); ++s) {
        if (scc_pi_change[s] && scc_attempts[s] == all_channels) {
          result.oscillation_found = true;
          if (sccs[s].size() > result.witness_scc_size) {
            result.witness_scc_size = sccs[s].size();
            witness_scc = s;
          }
        }
      }

      if (options.extract_witness && witness_scc.has_value()) {
        // Build a closed tour through *every* internal edge of the
        // witness SCC (so the loop attempts every channel, performs a
        // delivery for every dropping channel, and changes assignments),
        // plus the BFS prefix from the initial state to the tour start.
        const std::vector<StateId>& members = sccs[*witness_scc];
        std::vector<bool> in_scc(graph.states.size(), false);
        for (const StateId v : members) {
          in_scc[v] = true;
        }
        const auto internal = [&](StateId v, const EdgeLabel& e) {
          return !e.pruned && in_scc[v] && in_scc[e.to];
        };

        // BFS path (as step indices) between two SCC states.
        const auto scc_path = [&](StateId from,
                                  StateId to) -> std::vector<std::uint32_t> {
          if (from == to) {
            return {};
          }
          std::unordered_map<StateId, std::pair<StateId, std::uint32_t>>
              via;  // state -> (predecessor, step index)
          std::deque<StateId> bfs{from};
          via.emplace(from, std::make_pair(from, kNoStep));
          while (!bfs.empty()) {
            const StateId at = bfs.front();
            bfs.pop_front();
            for (const EdgeLabel& e : graph.edges[at]) {
              if (!internal(at, e) || via.count(e.to) != 0) {
                continue;
              }
              via.emplace(e.to, std::make_pair(at, e.step_index));
              if (e.to == to) {
                std::vector<std::uint32_t> rev;
                for (StateId w = to; w != from;
                     w = via.at(w).first) {
                  rev.push_back(via.at(w).second);
                }
                return {rev.rbegin(), rev.rend()};
              }
              bfs.push_back(e.to);
            }
          }
          throw InvariantError("SCC is not strongly connected");
        };

        const StateId start = members.front();
        StateId cursor = start;
        std::vector<std::uint32_t> tour;
        for (const StateId v : members) {
          for (const EdgeLabel& e : graph.edges[v]) {
            if (!internal(v, e)) {
              continue;
            }
            for (const std::uint32_t idx : scc_path(cursor, v)) {
              tour.push_back(idx);
            }
            tour.push_back(e.step_index);
            cursor = e.to;
          }
        }
        for (const std::uint32_t idx : scc_path(cursor, start)) {
          tour.push_back(idx);
        }

        std::vector<std::uint32_t> prefix_rev;
        for (StateId at = start; at != initial;
             at = parents[at].from) {
          prefix_rev.push_back(parents[at].step_index);
        }
        for (auto it = prefix_rev.rbegin(); it != prefix_rev.rend();
             ++it) {
          result.witness_prefix.push_back(step_store[*it]);
        }
        for (const std::uint32_t idx : tour) {
          result.witness_cycle.push_back(step_store[idx]);
        }
      }
      break;
    }
  }

  if (observed) {
    const std::uint64_t wall_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - explore_start)
            .count());
    if (explore_span.enabled()) {
      explore_span
          .attr("states", static_cast<std::uint64_t>(result.states))
          .attr("transitions",
                static_cast<std::uint64_t>(result.transitions))
          .attr("oscillation_found", result.oscillation_found);
      explore_span.finish();
    }
    if (obs::Histogram* h = options.obs.histogram(
            "checker.explore_us", obs::exponential_buckets(16, 4.0, 10))) {
      h->observe(wall_us);
    }
    if (options.obs.metrics != nullptr) {
      obs::Registry& reg = *options.obs.metrics;
      reg.counter("checker.explorations").add();
      reg.counter("checker.states").add(result.states);
      reg.counter("checker.transitions").add(result.transitions);
      reg.counter("checker.dedup_hits").add(result.dedup_hits);
      reg.counter("checker.scc_prune_passes").add(result.scc_prune_passes);
      reg.counter("checker.bound_skipped_expansions")
          .add(result.bound_skipped_expansions);
      reg.counter("checker.wall_us").add(wall_us);
      reg.gauge("checker.frontier_peak").record_max(result.frontier_peak);
      reg.gauge("checker.tracked_peak_bytes")
          .record_max(result.tracked_peak_bytes);
      if (result.memory_limit_hit) {
        reg.gauge("checker.memory_limit_hit").record_max(1);
      }
    }
    if (options.obs.sink != nullptr) {
      obs::Event ev("checker_summary");
      ev.field("oscillation_found", result.oscillation_found)
          .field("exhaustive", result.exhaustive)
          .field("state_cap_hit", result.state_cap_hit)
          .field("state_cap_limit",
                 static_cast<std::uint64_t>(result.state_cap_limit))
          .field("channel_bound_hit", result.channel_bound_hit)
          .field("channel_length_limit",
                 static_cast<std::uint64_t>(result.channel_length_limit))
          .field("bound_skipped_expansions",
                 static_cast<std::uint64_t>(result.bound_skipped_expansions))
          .field("memory_limit_hit", result.memory_limit_hit)
          .field("memory_limit_bytes",
                 static_cast<std::uint64_t>(result.memory_limit))
          .field("tracked_peak_bytes", result.tracked_peak_bytes)
          .field("bytes_per_state", result.bytes_per_state())
          .field("states", static_cast<std::uint64_t>(result.states))
          .field("transitions",
                 static_cast<std::uint64_t>(result.transitions))
          .field("dedup_hits",
                 static_cast<std::uint64_t>(result.dedup_hits))
          .field("frontier_peak",
                 static_cast<std::uint64_t>(result.frontier_peak))
          .field("scc_prune_passes",
                 static_cast<std::uint64_t>(result.scc_prune_passes))
          .field("witness_scc_size",
                 static_cast<std::uint64_t>(result.witness_scc_size))
          .field("quiescent_outcomes",
                 static_cast<std::uint64_t>(
                     result.quiescent_assignments.size()))
          .field("wall_us", wall_us);
      if (sketched) {
        // Gated so full-mode checker_summary lines keep their exact
        // pre-budget bytes.
        ev.field("obs_budget", obs::to_string(options.budget))
            .raw_field("successor_hist", result.successor_hist.to_json());
      }
      options.obs.sink->emit(ev);
    }
  }

  return result;
}

}  // namespace commroute::checker
