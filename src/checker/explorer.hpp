// Bounded exhaustive exploration of all executions of an instance under a
// communication model, with sound fair-oscillation detection.
//
// The explorer builds the reachable configuration graph (configurations
// are full NetworkStates; edges are canonical activation steps) up to a
// channel-length bound, then decides whether a *fair* non-convergent
// execution exists:
//
//   A fair oscillation exists iff, after iteratively deleting from every
//   SCC the drop-edges whose channel has no delivery-edge in the same SCC
//   (to a fixpoint), some SCC retains (a) an edge changing the path
//   assignment and (b) read attempts covering every channel of the graph.
//
// Soundness both ways (within the explored subgraph): any SCC passing the
// test yields a fair infinite execution by touring its edges; conversely
// the infinitely-often-used edges of any fair oscillation form a strongly
// connected sub-multigraph that survives the pruning and passes the test.
//
// When the channel bound or the state cap is hit the result is marked
// non-exhaustive: a "no oscillation" verdict then only covers executions
// whose channels stay within the bound. For the paper's gadgets the
// default bound is never hit, so verdicts are complete.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checker/searcher.hpp"
#include "engine/state.hpp"
#include "model/activation.hpp"
#include "model/model.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "obs/resource.hpp"
#include "obs/sketch.hpp"
#include "trace/trace.hpp"

namespace commroute::checker {

struct ExploreOptions {
  std::size_t max_channel_length = 4;
  std::size_t max_states = 500000;
  std::size_t max_steps_per_state = 20000;
  /// Truncate exploration once the tracked-bytes estimate of the
  /// explorer's own structures (interned states, edges, frontier, hash
  /// index, witness store) exceeds this many bytes; 0 means unbounded.
  /// The estimate is deterministic (see NetworkState::estimated_bytes),
  /// so a limited run truncates at the same state on every machine —
  /// unlike an RSS-based limit would.
  std::size_t memory_limit_bytes = 0;
  /// Optional live mirror of the tracked-bytes accounting, for a
  /// TelemetrySampler to watch mid-exploration. The peak also lands in
  /// ExploreResult::tracked_peak_bytes either way.
  obs::TrackedBytes* memory = nullptr;
  /// Also construct a replayable witness for a found oscillation: a
  /// prefix script from the initial state to the witness SCC plus a cycle
  /// script touring every edge of the SCC (hence covering all channel
  /// attempts and at least one assignment change). Costs memory
  /// proportional to the number of transitions; leave off for large
  /// sweeps.
  bool extract_witness = false;
  /// Optional metrics registry / JSONL event sink / span collector.
  /// Detached (the default) adds nothing measurable; attached,
  /// explore() publishes expansion/dedup/frontier aggregates, emits a
  /// periodic "checker_heartbeat" plus a final "checker_summary" event,
  /// and traces checker.explore > checker.frontier_batch >
  /// checker.expand plus per-pass checker.scc_prune_pass spans.
  obs::Instrumentation obs;
  /// With a sink attached, emit a heartbeat every this many expanded
  /// states (0 disables count-based heartbeats).
  std::size_t heartbeat_every = 10000;
  /// Also emit a heartbeat whenever this many milliseconds pass without
  /// one (checked per expansion; 0 disables). Count-based heartbeats go
  /// quiet exactly when expansions get slow — the time-based interval
  /// keeps long stalls visible. Every heartbeat carries `elapsed_ms`.
  std::uint64_t heartbeat_interval_ms = 0;
  /// ObsBudget::kSketched additionally fills
  /// ExploreResult::successor_hist (bounded log-histogram of
  /// per-expansion successor counts). The explorer's core structures are
  /// already bounded by max_states / memory_limit_bytes, so unlike the
  /// engine the budget adds summaries rather than suppressing anything.
  obs::ObsBudget budget = obs::ObsBudget::kFull;
  /// Online progress: when attached, explore() reports done=expanded /
  /// total=expanded+frontier (the coverage lower bound; total grows as
  /// states are discovered) plus the live frontier size as detail,
  /// every 256 expansions. On truncation (state cap / memory limit) the
  /// final update reports done == total — exploration is over even
  /// though the frontier is non-empty — and rewrites the detail label
  /// to "truncated:<reason>". Borrowed; must outlive the call.
  obs::ProgressEstimator* progress = nullptr;
  /// Worker threads for frontier expansion: 1 (default) explores on the
  /// calling thread; 0 means hardware_concurrency(). Exploration is
  /// wave-based — a batch of frontier states expands in parallel against
  /// a sharded concurrent seen-set, then the results merge on the
  /// calling thread in deterministic enumeration order with canonical
  /// StateId re-numbering — so under the default BFS searcher the
  /// verdict, `states`, `transitions`, `dedup_hits`, witness scripts,
  /// and the `checker_summary` event (minus `wall_us`) are
  /// byte-identical at any thread count, truncated or not.
  std::size_t threads = 1;
  /// Frontier-order strategy (see checker/searcher.hpp). Non-BFS
  /// searchers reach the same verdict on exhaustive explorations but
  /// number states differently (and explore a different prefix under a
  /// cap); kBFS is byte-compatible with the historical explorer.
  SearcherKind searcher = SearcherKind::kBFS;
  /// Seed for SearcherKind::kRandomPath.
  std::uint64_t searcher_seed = 0;
};

/// Independent count- and time-based heartbeat cadences. The two
/// triggers deliberately share no state: a count-based beat never
/// resets the time interval (the historical bug — with both cadences
/// enabled, steady expansion re-armed the time clock on every
/// count-based beat and starved time-based heartbeats forever).
class HeartbeatCadence {
 public:
  /// `start_ms` anchors the time cadence (first time-based beat is due
  /// at start_ms + interval_ms).
  HeartbeatCadence(std::size_t every, std::uint64_t interval_ms,
                   std::uint64_t start_ms = 0)
      : every_(every), interval_ms_(interval_ms), last_beat_ms_(start_ms) {}

  bool active() const { return every_ > 0 || interval_ms_ > 0; }
  bool time_active() const { return interval_ms_ > 0; }

  /// Count cadence: due every `every` expansions (stateless).
  bool count_due(std::uint64_t expanded) const {
    return every_ > 0 && expanded % every_ == 0;
  }

  /// Time cadence: due when `interval_ms` elapsed since the last
  /// *time-based* beat; advances its own clock when it fires.
  bool time_due(std::uint64_t now_ms) {
    if (interval_ms_ == 0 || now_ms - last_beat_ms_ < interval_ms_) {
      return false;
    }
    last_beat_ms_ = now_ms;
    return true;
  }

 private:
  std::size_t every_;
  std::uint64_t interval_ms_;
  std::uint64_t last_beat_ms_;
};

struct ExploreResult {
  bool oscillation_found = false;
  /// True when the full reachable graph was explored (no bound hit); a
  /// negative oscillation verdict is then a proof for this instance+model.
  bool exhaustive = false;
  bool channel_bound_hit = false;
  bool state_cap_hit = false;
  bool memory_limit_hit = false;

  std::size_t states = 0;
  std::size_t transitions = 0;

  /// Which configured bound truncated exploration, at what value (0 when
  /// the corresponding bound was not hit) — so a non-exhaustive verdict
  /// tells the caller exactly which limit fired.
  std::size_t state_cap_limit = 0;       ///< ExploreOptions::max_states
  std::size_t channel_length_limit = 0;  ///< ExploreOptions::max_channel_length
  std::size_t memory_limit = 0;          ///< ExploreOptions::memory_limit_bytes
  /// Successor expansions discarded because they exceeded the channel
  /// bound (each is a reachable configuration the verdict does not cover).
  std::size_t bound_skipped_expansions = 0;

  /// Exploration statistics: successors that deduplicated into an
  /// already-interned state, the frontier's high-water mark, and how
  /// many passes the drop-fairness SCC pruning fixpoint took.
  std::size_t dedup_hits = 0;
  std::size_t frontier_peak = 0;
  std::size_t scc_prune_passes = 0;

  /// High-watermark of the deterministic tracked-bytes estimate over the
  /// explorer's structures (states + edges + frontier + index + witness
  /// store). Always populated — the accounting is a handful of integer
  /// adds per expansion, cheap enough to keep on unconditionally.
  std::uint64_t tracked_peak_bytes = 0;

  /// Populated under ObsBudget::kSketched: log-bucketed distribution of
  /// per-expansion successor counts (the branching factor — the number
  /// that predicts how exploration cost scales with the channel bound).
  obs::LogHistogram successor_hist;

  /// Peak tracked bytes per explored state — the scaling number the
  /// bench_perf_scale roadmap item wants (0 when nothing was explored).
  double bytes_per_state() const {
    return states == 0 ? 0.0
                       : static_cast<double>(tracked_peak_bytes) /
                             static_cast<double>(states);
  }

  /// Distinct assignments of strongly quiescent (converged) states.
  std::vector<trace::Assignment> quiescent_assignments;

  /// Size of one SCC witnessing the oscillation (0 if none).
  std::size_t witness_scc_size = 0;

  /// With ExploreOptions::extract_witness and a found oscillation:
  /// playing witness_prefix then witness_cycle forever is a fair
  /// activation sequence of the checked model that never converges
  /// (verify with ScriptedScheduler{prefix+cycle, loop_from=prefix
  /// size} and engine::run).
  model::ActivationScript witness_prefix;
  model::ActivationScript witness_cycle;

  /// True when exhaustive and no fair oscillation was found.
  bool proves_no_oscillation() const {
    return exhaustive && !oscillation_found;
  }

  std::string summary() const;
};

/// Explores `instance` under model `m`.
ExploreResult explore(const spp::Instance& instance, const model::Model& m,
                      const ExploreOptions& options = {});

}  // namespace commroute::checker
