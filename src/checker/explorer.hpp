// Bounded exhaustive exploration of all executions of an instance under a
// communication model, with sound fair-oscillation detection.
//
// The explorer builds the reachable configuration graph (configurations
// are full NetworkStates; edges are canonical activation steps) up to a
// channel-length bound, then decides whether a *fair* non-convergent
// execution exists:
//
//   A fair oscillation exists iff, after iteratively deleting from every
//   SCC the drop-edges whose channel has no delivery-edge in the same SCC
//   (to a fixpoint), some SCC retains (a) an edge changing the path
//   assignment and (b) read attempts covering every channel of the graph.
//
// Soundness both ways (within the explored subgraph): any SCC passing the
// test yields a fair infinite execution by touring its edges; conversely
// the infinitely-often-used edges of any fair oscillation form a strongly
// connected sub-multigraph that survives the pruning and passes the test.
//
// When the channel bound or the state cap is hit the result is marked
// non-exhaustive: a "no oscillation" verdict then only covers executions
// whose channels stay within the bound. For the paper's gadgets the
// default bound is never hit, so verdicts are complete.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/state.hpp"
#include "model/activation.hpp"
#include "model/model.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "obs/resource.hpp"
#include "obs/sketch.hpp"
#include "trace/trace.hpp"

namespace commroute::checker {

struct ExploreOptions {
  std::size_t max_channel_length = 4;
  std::size_t max_states = 500000;
  std::size_t max_steps_per_state = 20000;
  /// Truncate exploration once the tracked-bytes estimate of the
  /// explorer's own structures (interned states, edges, frontier, hash
  /// index, witness store) exceeds this many bytes; 0 means unbounded.
  /// The estimate is deterministic (see NetworkState::estimated_bytes),
  /// so a limited run truncates at the same state on every machine —
  /// unlike an RSS-based limit would.
  std::size_t memory_limit_bytes = 0;
  /// Optional live mirror of the tracked-bytes accounting, for a
  /// TelemetrySampler to watch mid-exploration. The peak also lands in
  /// ExploreResult::tracked_peak_bytes either way.
  obs::TrackedBytes* memory = nullptr;
  /// Also construct a replayable witness for a found oscillation: a
  /// prefix script from the initial state to the witness SCC plus a cycle
  /// script touring every edge of the SCC (hence covering all channel
  /// attempts and at least one assignment change). Costs memory
  /// proportional to the number of transitions; leave off for large
  /// sweeps.
  bool extract_witness = false;
  /// Optional metrics registry / JSONL event sink / span collector.
  /// Detached (the default) adds nothing measurable; attached,
  /// explore() publishes expansion/dedup/frontier aggregates, emits a
  /// periodic "checker_heartbeat" plus a final "checker_summary" event,
  /// and traces checker.explore > checker.frontier_batch >
  /// checker.expand plus per-pass checker.scc_prune_pass spans.
  obs::Instrumentation obs;
  /// With a sink attached, emit a heartbeat every this many expanded
  /// states (0 disables count-based heartbeats).
  std::size_t heartbeat_every = 10000;
  /// Also emit a heartbeat whenever this many milliseconds pass without
  /// one (checked per expansion; 0 disables). Count-based heartbeats go
  /// quiet exactly when expansions get slow — the time-based interval
  /// keeps long stalls visible. Every heartbeat carries `elapsed_ms`.
  std::uint64_t heartbeat_interval_ms = 0;
  /// ObsBudget::kSketched additionally fills
  /// ExploreResult::successor_hist (bounded log-histogram of
  /// per-expansion successor counts). The explorer's core structures are
  /// already bounded by max_states / memory_limit_bytes, so unlike the
  /// engine the budget adds summaries rather than suppressing anything.
  obs::ObsBudget budget = obs::ObsBudget::kFull;
  /// Online progress: when attached, explore() reports done=expanded /
  /// total=expanded+frontier (the coverage lower bound; total grows as
  /// states are discovered) plus the live frontier size as detail,
  /// every 256 expansions. Borrowed; must outlive the call.
  obs::ProgressEstimator* progress = nullptr;
};

struct ExploreResult {
  bool oscillation_found = false;
  /// True when the full reachable graph was explored (no bound hit); a
  /// negative oscillation verdict is then a proof for this instance+model.
  bool exhaustive = false;
  bool channel_bound_hit = false;
  bool state_cap_hit = false;
  bool memory_limit_hit = false;

  std::size_t states = 0;
  std::size_t transitions = 0;

  /// Which configured bound truncated exploration, at what value (0 when
  /// the corresponding bound was not hit) — so a non-exhaustive verdict
  /// tells the caller exactly which limit fired.
  std::size_t state_cap_limit = 0;       ///< ExploreOptions::max_states
  std::size_t channel_length_limit = 0;  ///< ExploreOptions::max_channel_length
  std::size_t memory_limit = 0;          ///< ExploreOptions::memory_limit_bytes
  /// Successor expansions discarded because they exceeded the channel
  /// bound (each is a reachable configuration the verdict does not cover).
  std::size_t bound_skipped_expansions = 0;

  /// Exploration statistics: successors that deduplicated into an
  /// already-interned state, the frontier's high-water mark, and how
  /// many passes the drop-fairness SCC pruning fixpoint took.
  std::size_t dedup_hits = 0;
  std::size_t frontier_peak = 0;
  std::size_t scc_prune_passes = 0;

  /// High-watermark of the deterministic tracked-bytes estimate over the
  /// explorer's structures (states + edges + frontier + index + witness
  /// store). Always populated — the accounting is a handful of integer
  /// adds per expansion, cheap enough to keep on unconditionally.
  std::uint64_t tracked_peak_bytes = 0;

  /// Populated under ObsBudget::kSketched: log-bucketed distribution of
  /// per-expansion successor counts (the branching factor — the number
  /// that predicts how exploration cost scales with the channel bound).
  obs::LogHistogram successor_hist;

  /// Peak tracked bytes per explored state — the scaling number the
  /// bench_perf_scale roadmap item wants (0 when nothing was explored).
  double bytes_per_state() const {
    return states == 0 ? 0.0
                       : static_cast<double>(tracked_peak_bytes) /
                             static_cast<double>(states);
  }

  /// Distinct assignments of strongly quiescent (converged) states.
  std::vector<trace::Assignment> quiescent_assignments;

  /// Size of one SCC witnessing the oscillation (0 if none).
  std::size_t witness_scc_size = 0;

  /// With ExploreOptions::extract_witness and a found oscillation:
  /// playing witness_prefix then witness_cycle forever is a fair
  /// activation sequence of the checked model that never converges
  /// (verify with ScriptedScheduler{prefix+cycle, loop_from=prefix
  /// size} and engine::run).
  model::ActivationScript witness_prefix;
  model::ActivationScript witness_cycle;

  /// True when exhaustive and no fair oscillation was found.
  bool proves_no_oscillation() const {
    return exhaustive && !oscillation_found;
  }

  std::string summary() const;
};

/// Explores `instance` under model `m`.
ExploreResult explore(const spp::Instance& instance, const model::Model& m,
                      const ExploreOptions& options = {});

}  // namespace commroute::checker
