// Instance minimization: shrink an oscillating instance while the
// oscillation persists (delta debugging for routing gadgets).
//
// Greedily removes permitted paths (never a node's last one, so the
// instance stays well-formed) as long as the checker still finds a fair
// oscillation under the given model, iterating to a local fixpoint: in
// the result, removing any single removable path destroys the
// oscillation. Applied to random divergent instances this rediscovers
// DISAGREE-like cores.
#pragma once

#include "checker/explorer.hpp"
#include "spp/instance.hpp"

namespace commroute::checker {

struct MinimizeResult {
  spp::Instance instance;
  std::size_t removed_paths = 0;
  /// True when every further single-path removal kills the oscillation
  /// (the minimization ran to its fixpoint within the explore bounds).
  bool minimal = false;
};

/// Requires that `instance` oscillates under `m` within `options` (throws
/// otherwise). Returns a path-minimal sub-instance that still oscillates.
MinimizeResult minimize_oscillating_instance(
    const spp::Instance& instance, const model::Model& m,
    const ExploreOptions& options = {});

}  // namespace commroute::checker
