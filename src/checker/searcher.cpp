#include "checker/searcher.hpp"

#include "support/error.hpp"

namespace commroute::checker {

std::string to_string(SearcherKind kind) {
  switch (kind) {
    case SearcherKind::kBFS:
      return "bfs";
    case SearcherKind::kDFS:
      return "dfs";
    case SearcherKind::kRandomPath:
      return "random";
    case SearcherKind::kPriorityFlap:
      return "priority";
  }
  throw InvariantError("unknown SearcherKind");
}

SearcherKind parse_searcher_kind(std::string_view name) {
  if (name == "bfs") {
    return SearcherKind::kBFS;
  }
  if (name == "dfs") {
    return SearcherKind::kDFS;
  }
  if (name == "random") {
    return SearcherKind::kRandomPath;
  }
  if (name == "priority") {
    return SearcherKind::kPriorityFlap;
  }
  throw PreconditionError("unknown searcher '" + std::string(name) +
                          "' (expected bfs, dfs, random, or priority)");
}

void BFSSearcher::push(StateId id, const SearcherPush&) {
  states_.push_back(id);
}

StateId BFSSearcher::select() {
  CR_REQUIRE(!states_.empty(), "select() on an empty searcher");
  const StateId id = states_.front();
  states_.pop_front();
  return id;
}

void DFSSearcher::push(StateId id, const SearcherPush&) {
  states_.push_back(id);
}

StateId DFSSearcher::select() {
  CR_REQUIRE(!states_.empty(), "select() on an empty searcher");
  const StateId id = states_.back();
  states_.pop_back();
  return id;
}

void RandomPathSearcher::push(StateId id, const SearcherPush&) {
  states_.push_back(id);
}

StateId RandomPathSearcher::select() {
  CR_REQUIRE(!states_.empty(), "select() on an empty searcher");
  const std::size_t pick =
      static_cast<std::size_t>(rng_.below(states_.size()));
  std::swap(states_[pick], states_.back());
  const StateId id = states_.back();
  states_.pop_back();
  return id;
}

void PriorityFlapSearcher::push(StateId id, const SearcherPush& info) {
  (info.pi_changed ? flapped_ : quiet_).push_back(id);
}

StateId PriorityFlapSearcher::select() {
  std::vector<StateId>& from = flapped_.empty() ? quiet_ : flapped_;
  CR_REQUIRE(!from.empty(), "select() on an empty searcher");
  const StateId id = from.back();
  from.pop_back();
  return id;
}

std::unique_ptr<Searcher> make_searcher(SearcherKind kind,
                                        std::uint64_t seed) {
  switch (kind) {
    case SearcherKind::kBFS:
      return std::make_unique<BFSSearcher>();
    case SearcherKind::kDFS:
      return std::make_unique<DFSSearcher>();
    case SearcherKind::kRandomPath:
      return std::make_unique<RandomPathSearcher>(seed);
    case SearcherKind::kPriorityFlap:
      return std::make_unique<PriorityFlapSearcher>();
  }
  throw InvariantError("unknown SearcherKind");
}

}  // namespace commroute::checker
