#include "checker/state_set.hpp"

namespace commroute::checker {

namespace {

/// splitmix64 finalizer: NetworkState::hash is a composition hash whose
/// low bits drive open addressing and whose high bits pick the shard —
/// re-mixing here keeps both usable whatever the input quality.
std::size_t mix(std::size_t h) {
  std::uint64_t z = static_cast<std::uint64_t>(h);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(z ^ (z >> 31));
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

constexpr std::size_t kInitialSlots = 64;

}  // namespace

ShardedStateSet::ShardedStateSet(std::size_t shard_count)
    : shards_(round_up_pow2(shard_count == 0 ? 1 : shard_count)) {
  shard_mask_ = shards_.size() - 1;
  for (Shard& shard : shards_) {
    shard.slots.resize(kInitialSlots);
  }
}

void ShardedStateSet::insert_slot(std::vector<Slot>& slots,
                                  const Slot& slot) {
  const std::size_t mask = slots.size() - 1;
  std::size_t at = slot.hash & mask;
  while (slots[at].state != nullptr) {
    at = (at + 1) & mask;
  }
  slots[at] = slot;
}

void ShardedStateSet::grow(Shard& shard) {
  std::vector<Slot> bigger(shard.slots.size() * 2);
  for (const Slot& slot : shard.slots) {
    if (slot.state != nullptr) {
      insert_slot(bigger, slot);
    }
  }
  shard.slots = std::move(bigger);
}

ShardedStateSet::InternResult ShardedStateSet::intern(
    engine::NetworkState&& state) {
  const std::size_t h = mix(state.hash());
  Shard& shard = shards_[(h >> 48) & shard_mask_];
  std::lock_guard<std::mutex> lock(shard.mutex);

  const std::size_t mask = shard.slots.size() - 1;
  std::size_t at = h & mask;
  while (shard.slots[at].state != nullptr) {
    const Slot& slot = shard.slots[at];
    if (slot.hash == h && *slot.state == state) {
      return InternResult{slot.id, slot.state, false};
    }
    at = (at + 1) & mask;
  }

  const std::uint32_t id =
      next_id_.fetch_add(1, std::memory_order_relaxed);
  shard.owned.push_back(std::move(state));
  const engine::NetworkState* payload = &shard.owned.back();
  shard.slots[at] = Slot{h, payload, id};
  shard.fresh.emplace_back(id, payload);
  // Keep the load factor under ~0.7 so probe chains stay short.
  if (++shard.used * 10 >= shard.slots.size() * 7) {
    grow(shard);
  }
  return InternResult{id, payload, true};
}

void ShardedStateSet::drain_fresh(
    std::vector<std::pair<std::uint32_t, const engine::NetworkState*>>&
        out) {
  for (Shard& shard : shards_) {
    out.insert(out.end(), shard.fresh.begin(), shard.fresh.end());
    shard.fresh.clear();
  }
}

}  // namespace commroute::checker
