// Sharded concurrent seen-set for the parallel explorer. Replaces the
// serial ConfigGraph hash index (an unordered_map of collision chains):
// states hash-partition across shards, each shard an open-addressing
// table under its own mutex, so expansion workers intern successors
// concurrently with contention only on same-shard collisions.
//
// Ids and determinism: intern() assigns *provisional* ids from a global
// atomic counter, in whatever order the workers race. Provisional ids
// are stable names for distinct states (two workers interning equal
// states always receive the same id) but their numeric order is
// scheduling-dependent — the explorer's merge phase re-numbers them into
// final StateIds in deterministic enumeration order (see explorer.cpp),
// which is why exploration results are byte-identical at any thread
// width. Payloads are moved into per-shard deques and never relocate,
// so the `const NetworkState*` returned alongside an id stays valid for
// the set's lifetime; the merged graph indexes those pointers instead
// of copying states a second time.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "engine/state.hpp"

namespace commroute::checker {

class ShardedStateSet {
 public:
  struct InternResult {
    std::uint32_t id = 0;  ///< provisional id (dense, racing order)
    const engine::NetworkState* state = nullptr;  ///< shard-owned payload
    bool inserted = false;  ///< this call created the entry
  };

  /// `shard_count` is rounded up to a power of two (at least 1).
  explicit ShardedStateSet(std::size_t shard_count = 16);

  /// Looks `state` up; absent, moves it into shard storage under a
  /// fresh provisional id. Thread-safe; locks exactly one shard.
  InternResult intern(engine::NetworkState&& state);

  /// Distinct states interned so far (monotone; safe from any thread).
  std::size_t size() const {
    return next_id_.load(std::memory_order_relaxed);
  }

  /// Deterministic byte estimate of one interned entry's index overhead
  /// (the table slot; the payload accounts separately via
  /// NetworkState::estimated_bytes).
  static constexpr std::size_t slot_bytes() { return sizeof(Slot); }

  /// Drains the (id, payload) pairs interned since the last call, in no
  /// particular order. Single-threaded contract: call only between
  /// expansion waves, never concurrently with intern().
  void drain_fresh(
      std::vector<std::pair<std::uint32_t, const engine::NetworkState*>>&
          out);

 private:
  struct Slot {
    std::size_t hash = 0;
    const engine::NetworkState* state = nullptr;  ///< nullptr = empty
    std::uint32_t id = 0;
  };

  struct Shard {
    std::mutex mutex;
    std::vector<Slot> slots;  ///< power-of-two, linear probing
    std::size_t used = 0;
    std::deque<engine::NetworkState> owned;
    std::vector<std::pair<std::uint32_t, const engine::NetworkState*>>
        fresh;
  };

  static void insert_slot(std::vector<Slot>& slots, const Slot& slot);
  void grow(Shard& shard);

  std::vector<Shard> shards_;
  std::size_t shard_mask_ = 0;
  std::atomic<std::uint32_t> next_id_{0};
};

}  // namespace commroute::checker
