#include "checker/successors.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace commroute::checker {

using model::ActivationStep;
using model::MessageMode;
using model::Model;
using model::NeighborMode;
using model::ReadSpec;
using model::Reliability;

namespace {

/// Canonical (f, g) options for one channel holding `m` messages.
/// For each canonical processed count i, either one ReadSpec (reliable)
/// or one per subset of {1..i} (unreliable).
std::vector<ReadSpec> read_options(ChannelIdx c, std::size_t m,
                                   const Model& model) {
  std::vector<std::size_t> counts;  // canonical i values
  switch (model.messages) {
    case MessageMode::kOne:
      counts.push_back(std::min<std::size_t>(1, m));
      break;
    case MessageMode::kAll:
      counts.push_back(m);
      break;
    case MessageMode::kForced:
      if (m == 0) {
        counts.push_back(0);
      } else {
        for (std::size_t i = 1; i <= m; ++i) {
          counts.push_back(i);
        }
      }
      break;
    case MessageMode::kSome:
      for (std::size_t i = 0; i <= m; ++i) {
        counts.push_back(i);
      }
      break;
  }

  std::vector<ReadSpec> out;
  for (const std::size_t i : counts) {
    // Encode the count. O requires f=1 even on an empty channel; F
    // requires f >= 1; A requires f = all. S can state i directly.
    std::optional<std::uint32_t> f;
    switch (model.messages) {
      case MessageMode::kOne:
        f = 1u;
        break;
      case MessageMode::kAll:
        f = std::nullopt;
        break;
      case MessageMode::kForced:
        f = std::max<std::uint32_t>(1u, static_cast<std::uint32_t>(i));
        break;
      case MessageMode::kSome:
        f = static_cast<std::uint32_t>(i);
        break;
    }

    if (model.reliability == Reliability::kReliable || i == 0) {
      out.push_back(ReadSpec{c, f, {}});
      continue;
    }
    // Unreliable: all subsets of {1..i} as drop sets.
    CR_REQUIRE(i <= 16, "too many messages for exhaustive drop subsets");
    const std::size_t subsets = static_cast<std::size_t>(1) << i;
    for (std::size_t mask = 0; mask < subsets; ++mask) {
      ReadSpec spec{c, f, {}};
      for (std::size_t bit = 0; bit < i; ++bit) {
        if (mask & (static_cast<std::size_t>(1) << bit)) {
          spec.drops.push_back(static_cast<std::uint32_t>(bit + 1));
        }
      }
      out.push_back(std::move(spec));
    }
  }
  return out;
}

/// Cartesian product of per-channel read options.
void product(const std::vector<std::vector<ReadSpec>>& options,
             std::size_t at, std::vector<ReadSpec>& current,
             NodeId node, std::vector<ActivationStep>& out,
             std::size_t cap) {
  if (at == options.size()) {
    CR_REQUIRE(out.size() < cap,
               "successor enumeration exceeded max_steps_per_state");
    ActivationStep step;
    step.nodes = {node};
    step.reads = current;
    out.push_back(std::move(step));
    return;
  }
  for (const ReadSpec& spec : options[at]) {
    current.push_back(spec);
    product(options, at + 1, current, node, out, cap);
    current.pop_back();
  }
}

}  // namespace

std::vector<ActivationStep> enumerate_steps(const engine::NetworkState& state,
                                            const Model& m,
                                            const SuccessorOptions& options) {
  const spp::Instance& inst = state.instance();
  const Graph& g = inst.graph();
  std::vector<ActivationStep> out;

  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::vector<ChannelIdx>& in = g.in_channels(v);

    // Channel subsets per neighbor mode.
    std::vector<std::vector<ChannelIdx>> channel_sets;
    switch (m.neighbors) {
      case NeighborMode::kOne:
        for (const ChannelIdx c : in) {
          channel_sets.push_back({c});
        }
        break;
      case NeighborMode::kEvery:
        channel_sets.push_back(in);
        break;
      case NeighborMode::kMultiple: {
        CR_REQUIRE(in.size() <= 8,
                   "node degree too large for exhaustive M-model subsets");
        const std::size_t subsets = static_cast<std::size_t>(1)
                                    << in.size();
        for (std::size_t mask = 0; mask < subsets; ++mask) {
          std::vector<ChannelIdx> set;
          for (std::size_t bit = 0; bit < in.size(); ++bit) {
            if (mask & (static_cast<std::size_t>(1) << bit)) {
              set.push_back(in[bit]);
            }
          }
          channel_sets.push_back(std::move(set));
        }
        break;
      }
    }

    for (const std::vector<ChannelIdx>& channels : channel_sets) {
      std::vector<std::vector<ReadSpec>> per_channel;
      per_channel.reserve(channels.size());
      for (const ChannelIdx c : channels) {
        per_channel.push_back(
            read_options(c, state.channel(c).size(), m));
      }
      std::vector<ReadSpec> current;
      product(per_channel, 0, current, v, out,
              options.max_steps_per_state);
    }
  }
  return out;
}

}  // namespace commroute::checker
