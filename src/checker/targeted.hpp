// Targeted realization search: can a given path-assignment sequence be
// induced by some activation sequence of a given model?
//
// This machine-checks the paper's negative examples:
//   * Ex. A.3 — the REO sequence on Fig. 7 has no exact realization in R1O;
//   * Ex. A.4 — the REA sequence on Fig. 8 has no realization with
//     repetition in R1O (but has one as a subsequence);
//   * Ex. A.5 — the REA sequence on Fig. 9 has no exact realization in R1S.
//
// The search explores (network state, match position) pairs:
//   exact:        step t must induce target[t]; depth = target length;
//   repetition:   each step must re-induce target[pos] or induce
//                 target[pos+1]; visited-set pruning on (state, pos) makes
//                 the search complete: a repeated pair can be cut because
//                 the continuation requirements coincide;
//   subsequence:  any step allowed; pos advances on a match.
// For repetition/subsequence the search succeeds when pos reaches the end
// of the target. A negative answer is a proof whenever no bound was hit.
#pragma once

#include <cstdint>
#include <string>

#include "engine/state.hpp"
#include "model/activation.hpp"
#include "trace/seq_match.hpp"
#include "trace/trace.hpp"

namespace commroute::checker {

struct RealizationSearchOptions {
  std::size_t max_configs = 2000000;   ///< (state, pos) pairs explored
  std::size_t max_channel_length = 6;  ///< prune longer channels
  std::size_t max_steps_per_state = 20000;
  /// Def. 3.2 compares *infinite* traces; a finite target stands for an
  /// execution that converges to its last assignment. With this flag the
  /// search must, after matching the target, keep the assignment at
  /// target.back() and reach strong quiescence — i.e. produce a fair-
  /// completable witness. Without it, matching the finite prefix suffices
  /// (which is weaker: leftover messages may be postponed forever, as
  /// Ex. A.3 illustrates).
  bool require_convergent_tail = true;
};

struct RealizationSearchResult {
  bool found = false;
  /// A witnessing activation sequence when found.
  model::ActivationScript witness;
  /// True when the negative answer is exhaustive within the target length
  /// (no cap or channel bound was hit), i.e. a proof of non-realizability.
  bool exhaustive = false;
  std::size_t configs_explored = 0;

  std::string summary() const;
};

/// Searches for an activation sequence of model `m` on `instance` whose
/// induced trace realizes `target` in the given sense. target.at(0) must
/// equal the initial assignment.
RealizationSearchResult find_realization(const spp::Instance& instance,
                                         const model::Model& m,
                                         const trace::Trace& target,
                                         trace::MatchKind sense,
                                         const RealizationSearchOptions&
                                             options = {});

}  // namespace commroute::checker
