// Fluent builder for SPP instances with symbolic node names.
//
// Example (DISAGREE):
//   InstanceBuilder b("d");
//   b.edge("x", "d").edge("y", "d").edge("x", "y");
//   b.prefer("x", {"xyd", "xd"});
//   b.prefer("y", {"yxd", "yd"});
//   Instance disagree = b.build();
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "spp/instance.hpp"

namespace commroute::spp {

class InstanceBuilder {
 public:
  /// Starts an instance whose destination node is named `destination`.
  explicit InstanceBuilder(std::string destination);

  /// Declares a node (idempotent). Nodes referenced by edge()/prefer()
  /// are declared implicitly, in order of first mention.
  InstanceBuilder& node(const std::string& name);

  /// Adds undirected edge {u, v}; declares endpoints as needed.
  InstanceBuilder& edge(const std::string& u, const std::string& v);

  /// Sets `v`'s permitted paths, most-preferred first. Each entry uses
  /// Instance path syntax: "x y d" or compact "xyd" (single-char names).
  /// All mentioned nodes must already be declared.
  InstanceBuilder& prefer(const std::string& v,
                          const std::vector<std::string>& paths_best_first);

  /// Installs an export policy (default: allow all).
  InstanceBuilder& export_policy(std::shared_ptr<const ExportPolicy> policy);

  /// Validates and returns the immutable instance.
  Instance build() const;

 private:
  std::string destination_;
  std::vector<std::string> names_;
  std::vector<std::pair<std::string, std::string>> edges_;
  std::vector<std::pair<std::string, std::vector<std::string>>> preferences_;
  std::shared_ptr<const ExportPolicy> policy_;

  NodeId index_of(const std::string& name) const;
  bool declared(const std::string& name) const;
};

}  // namespace commroute::spp
