#include "spp/solver.hpp"

#include <sstream>

#include "support/error.hpp"

namespace commroute::spp {

PathAssignment best_response(const Instance& instance,
                             const PathAssignment& pi) {
  CR_REQUIRE(pi.size() == instance.node_count(),
             "assignment size mismatch");
  const Graph& g = instance.graph();
  PathAssignment out(pi.size());
  for (NodeId v = 0; v < pi.size(); ++v) {
    if (v == instance.destination()) {
      out[v] = Path{v};
      continue;
    }
    std::vector<Path> candidates;
    candidates.reserve(g.neighbors(v).size());
    for (const NodeId u : g.neighbors(v)) {
      if (!pi[u].empty() && !pi[u].contains(v)) {
        candidates.push_back(pi[u].extended_by(v));
      }
    }
    out[v] = instance.best(v, candidates);
  }
  return out;
}

bool is_consistent(const Instance& instance, const PathAssignment& pi) {
  CR_REQUIRE(pi.size() == instance.node_count(),
             "assignment size mismatch");
  const NodeId d = instance.destination();
  if (pi[d] != Path{d}) {
    return false;
  }
  for (NodeId v = 0; v < pi.size(); ++v) {
    if (v == d || pi[v].empty()) {
      continue;
    }
    const NodeId u = pi[v].next_hop();
    if (u == kNoNode) {
      return false;  // a non-destination node cannot have a 1-node path.
    }
    if (pi[v].tail() != pi[u]) {
      return false;
    }
  }
  return true;
}

bool is_stable(const Instance& instance, const PathAssignment& pi) {
  return best_response(instance, pi) == pi;
}

bool is_solution(const Instance& instance, const PathAssignment& pi) {
  // Stability as a best-response fixed point already forces consistency;
  // both are checked to mirror the paper's two-part definition.
  return is_consistent(instance, pi) && is_stable(instance, pi);
}

std::vector<PathAssignment> stable_assignments(const Instance& instance,
                                               std::size_t limit) {
  const std::size_t n = instance.node_count();
  const NodeId d = instance.destination();

  // Choice list per node: epsilon plus each permitted path.
  std::vector<std::vector<Path>> choices(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v == d) {
      choices[v] = {Path{d}};
      continue;
    }
    choices[v].push_back(Path::epsilon());
    for (const Path& p : instance.permitted(v)) {
      choices[v].push_back(p);
    }
  }

  std::vector<PathAssignment> solutions;
  PathAssignment pi(n);
  std::vector<std::size_t> odometer(n, 0);

  for (;;) {
    for (NodeId v = 0; v < n; ++v) {
      pi[v] = choices[v][odometer[v]];
    }
    if (is_solution(instance, pi)) {
      solutions.push_back(pi);
      if (limit != 0 && solutions.size() >= limit) {
        return solutions;
      }
    }
    // Advance the odometer.
    std::size_t k = 0;
    while (k < n) {
      if (++odometer[k] < choices[k].size()) {
        break;
      }
      odometer[k] = 0;
      ++k;
    }
    if (k == n) {
      break;
    }
  }
  return solutions;
}

std::string assignment_name(const Instance& instance,
                            const PathAssignment& pi) {
  std::ostringstream os;
  os << "(";
  for (NodeId v = 0; v < pi.size(); ++v) {
    if (v > 0) {
      os << ", ";
    }
    os << instance.path_name(pi[v]);
  }
  os << ")";
  return os.str();
}

}  // namespace commroute::spp
