// Random SPP instance generators for property tests and benchmarks.
//
// Three families:
//  * random_tree:      spanning-tree instances (unique permitted path per
//                      node) — trivially safe, unique solution.
//  * random_shortest:  random connected graphs with all simple paths up to
//                      a length cap permitted and ranked by length (ties
//                      broken lexicographically) — dispute-wheel free.
//  * random_policy:    random connected graphs with arbitrary random
//                      rankings over a random subset of simple paths — may
//                      or may not be safe; use with the dispute-wheel
//                      detector or the checker.
#pragma once

#include <cstddef>

#include "spp/instance.hpp"
#include "support/rng.hpp"

namespace commroute::spp {

/// Parameters shared by the graph-based generators.
struct RandomInstanceParams {
  std::size_t nodes = 6;           ///< including the destination
  double extra_edge_prob = 0.3;    ///< beyond the random spanning tree
  std::size_t max_path_len = 4;    ///< max edges per permitted path
  std::size_t max_paths_per_node = 6;
  double permit_prob = 0.8;        ///< chance each enumerated path is kept
};

/// Spanning-tree instance over `nodes` nodes: each node permits exactly
/// its unique tree path to d. Requires nodes >= 2.
Instance random_tree(Rng& rng, std::size_t nodes);

/// Connected random graph; every simple path to d of length at most
/// `params.max_path_len` is permitted, ranked by (length, node sequence).
Instance random_shortest(Rng& rng, const RandomInstanceParams& params);

/// Connected random graph with randomly permitted and randomly ranked
/// simple paths. Every node is guaranteed at least one permitted path
/// (its shortest) so the instance is never vacuous.
Instance random_policy(Rng& rng, const RandomInstanceParams& params);

}  // namespace commroute::spp
