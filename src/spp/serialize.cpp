#include "spp/serialize.hpp"

#include <sstream>

#include "spp/builder.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace commroute::spp {

namespace {

[[noreturn]] void fail(std::size_t line_number, const std::string& what) {
  throw ParseError("instance text line " + std::to_string(line_number) +
                   ": " + what);
}

std::string strip_comment(const std::string& line) {
  const auto hash = line.find('#');
  return (hash == std::string::npos) ? line : line.substr(0, hash);
}

}  // namespace

Instance parse_instance(const std::string& text) {
  std::istringstream in(text);
  std::string raw;
  std::size_t line_number = 0;

  std::string dest;
  std::vector<std::pair<std::string, std::string>> edges;
  std::vector<std::pair<std::string, std::string>> prefers;  // node, rhs

  while (std::getline(in, raw)) {
    ++line_number;
    const std::string line{trim(strip_comment(raw))};
    if (line.empty()) {
      continue;
    }
    if (starts_with(line, "dest ")) {
      if (!dest.empty()) {
        fail(line_number, "duplicate 'dest' directive");
      }
      dest = trim(line.substr(5));
      if (dest.empty()) {
        fail(line_number, "'dest' needs a node name");
      }
    } else if (starts_with(line, "edge ")) {
      const auto parts = split_trimmed(line.substr(5), ' ');
      if (parts.size() != 2) {
        fail(line_number, "'edge' needs exactly two node names");
      }
      edges.emplace_back(parts[0], parts[1]);
    } else if (starts_with(line, "prefer ")) {
      const auto colon = line.find(':');
      if (colon == std::string::npos) {
        fail(line_number, "'prefer' needs 'prefer <node>: <paths>'");
      }
      const std::string node{trim(line.substr(7, colon - 7))};
      const std::string rhs{trim(line.substr(colon + 1))};
      if (node.empty() || rhs.empty()) {
        fail(line_number, "'prefer' needs a node and at least one path");
      }
      prefers.emplace_back(node, rhs);
    } else {
      fail(line_number, "unknown directive: '" + line + "'");
    }
  }

  if (dest.empty()) {
    throw ParseError("instance text is missing the 'dest' directive");
  }

  InstanceBuilder builder(dest);
  bool compact_names = dest.size() == 1;
  for (const auto& [u, v] : edges) {
    builder.edge(u, v);
    compact_names = compact_names && u.size() == 1 && v.size() == 1;
  }
  for (const auto& [node, rhs] : prefers) {
    // With single-character node names, paths are whitespace-separated
    // compact strings ("xyd xd"); otherwise they are comma-separated with
    // spaces between node names ("n1 n2 dst, n1 dst").
    const std::vector<std::string> paths =
        compact_names ? split_trimmed(rhs, ' ') : split_trimmed(rhs, ',');
    builder.prefer(node, paths);
  }
  return builder.build();
}

std::string format_instance(const Instance& instance) {
  const Graph& g = instance.graph();
  bool compact = true;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    compact = compact && g.name(v).size() == 1;
  }

  std::ostringstream out;
  out << "dest " << g.name(instance.destination()) << "\n";
  for (ChannelIdx c = 0; c < g.channel_count(); ++c) {
    // One line per undirected edge, emitted at the pair's first-built
    // direction. The builder numbers u->v before v->u, so preserving
    // the original orientation keeps ChannelIdx numbering stable across
    // a serialize/parse round trip — recordings store raw channel
    // indices, which would silently swap within each pair otherwise.
    const ChannelId id = g.channel_id(c);
    if (c < g.channel(id.to, id.from)) {
      out << "edge " << g.name(id.from) << " " << g.name(id.to) << "\n";
    }
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == instance.destination() || instance.permitted(v).empty()) {
      continue;
    }
    out << "prefer " << g.name(v) << ":";
    const auto& paths = instance.permitted(v);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (compact) {
        out << " " << instance.path_name(paths[i]);
      } else {
        out << (i == 0 ? " " : ", ");
        for (std::size_t j = 0; j < paths[i].size(); ++j) {
          out << (j ? " " : "") << g.name(paths[i].at(j));
        }
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace commroute::spp
