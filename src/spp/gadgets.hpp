// Canonical SPP instances.
//
// Includes the network instances of the paper's Appendix A (Figures 5-9)
// and the classic gadgets of Griffin-Shepherd-Wilfong ("The stable paths
// problem and interdomain routing", ToN 2002) used throughout the
// convergence literature.
#pragma once

#include <string>
#include <vector>

#include "spp/instance.hpp"

namespace commroute::spp {

/// DISAGREE (paper Fig. 5, Ex. A.1; originally from GSW). Two stable
/// solutions; oscillates in R1O but cannot oscillate in REO, REF, R1A,
/// RMA, REA.
Instance disagree();

/// The paper's Fig. 6 instance (Ex. A.2): oscillates in REO and REF but
/// not in the polling models R1A / RMA / REA.
Instance example_a2();

/// The paper's Fig. 7 instance (Ex. A.3): an REO execution that cannot be
/// exactly realized in R1O.
Instance example_a3();

/// The paper's Fig. 8 instance (Ex. A.4): an REA execution that cannot be
/// realized with repetition in R1O (but can as a subsequence).
Instance example_a4();

/// The paper's Fig. 9 instance (Ex. A.5): an REA execution that cannot be
/// exactly realized in R1S.
Instance example_a5();

/// BAD GADGET (GSW): three nodes around d, each preferring the route
/// through its clockwise neighbor; no stable assignment exists, so every
/// fair execution oscillates in every model.
Instance bad_gadget();

/// GOOD GADGET: same topology as BAD GADGET but with shortest-path-like
/// preferences (direct route first). Unique stable assignment, no dispute
/// wheel; converges in every model.
Instance good_gadget();

/// SHORTEST-k: a ring of k nodes around d where every node permits both
/// its direct path and one two-hop path, ranked by length. Dispute-wheel
/// free; used for scaling benchmarks. Requires k >= 3.
Instance shortest_ring(std::size_t k);

/// CYCLIC-k: the BAD GADGET generalized to k nodes around d, each
/// preferring the two-hop route through its clockwise neighbor over its
/// direct route. Odd k has no stable assignment (every execution
/// oscillates); even k has two "alternating" stable assignments.
/// Requires k >= 3. cyclic_gadget(3) == bad_gadget().
Instance cyclic_gadget(std::size_t k);

/// DISAGREE-CHAIN-k: k independent DISAGREE pairs sharing the
/// destination; the solution count multiplies to 2^k. Stress-tests the
/// solver and the checker's handling of product state spaces.
/// Requires k >= 1.
Instance disagree_chain(std::size_t k);

/// A named registry of all gadgets above (for examples and benches).
struct NamedInstance {
  std::string name;
  Instance instance;
};
std::vector<NamedInstance> all_gadgets();

}  // namespace commroute::spp
