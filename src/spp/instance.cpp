#include "spp/instance.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace commroute::spp {

Instance::Instance(Graph graph, NodeId destination,
                   std::vector<std::vector<Path>> permitted,
                   std::shared_ptr<const ExportPolicy> export_policy)
    : graph_(std::move(graph)),
      destination_(destination),
      permitted_(std::move(permitted)),
      export_policy_(export_policy ? std::move(export_policy)
                                   : std::make_shared<AllowAllExport>()) {
  CR_REQUIRE(destination_ < graph_.node_count(),
             "destination out of range");
  CR_REQUIRE(permitted_.size() == graph_.node_count(),
             "permitted-path table must have one entry per node");

  // The destination's permitted set is exactly the trivial path.
  permitted_[destination_] = {Path{destination_}};

  rank_.resize(permitted_.size());
  for (NodeId v = 0; v < permitted_.size(); ++v) {
    for (Rank r = 0; r < permitted_[v].size(); ++r) {
      const bool inserted = rank_[v].emplace(permitted_[v][r], r).second;
      CR_REQUIRE(inserted, "duplicate permitted path at node " +
                               graph_.name(v));
    }
  }

  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    if (graph_.name(v).size() != 1) {
      single_char_names_ = false;
    }
  }

  validate();
}

void Instance::validate() const {
  for (NodeId v = 0; v < permitted_.size(); ++v) {
    if (v == destination_) {
      continue;
    }
    for (const Path& p : permitted_[v]) {
      const std::string where = " (path " + path_name(p) + " at node " +
                                graph_.name(v) + ")";
      CR_REQUIRE(!p.empty(), "epsilon cannot be a permitted path" + where);
      CR_REQUIRE(p.source() == v,
                 "permitted path must start at its node" + where);
      CR_REQUIRE(p.destination() == destination_,
                 "permitted path must end at the destination" + where);
      CR_REQUIRE(p.is_simple(), "permitted paths must be simple" + where);
      CR_REQUIRE(graph_.supports_path(p),
                 "permitted path uses a missing edge" + where);
    }
  }
}

const std::vector<Path>& Instance::permitted(NodeId v) const {
  CR_REQUIRE(v < permitted_.size(), "node out of range");
  return permitted_[v];
}

std::optional<Rank> Instance::rank(NodeId v, const Path& p) const {
  CR_REQUIRE(v < rank_.size(), "node out of range");
  const auto it = rank_[v].find(p);
  if (it == rank_[v].end()) {
    return std::nullopt;
  }
  return it->second;
}

bool Instance::is_permitted(NodeId v, const Path& p) const {
  return rank(v, p).has_value();
}

bool Instance::prefers(NodeId v, const Path& a, const Path& b) const {
  if (a.empty()) {
    return false;  // epsilon is never strictly preferred.
  }
  const auto ra = rank(v, a);
  CR_REQUIRE(ra.has_value(), "prefers(): path not permitted at node");
  if (b.empty()) {
    return true;  // any permitted path beats epsilon.
  }
  const auto rb = rank(v, b);
  CR_REQUIRE(rb.has_value(), "prefers(): path not permitted at node");
  return *ra < *rb;
}

Path Instance::best(NodeId v, const std::vector<Path>& candidates) const {
  Path chosen = Path::epsilon();
  std::optional<Rank> chosen_rank;
  for (const Path& p : candidates) {
    const auto r = rank(v, p);
    if (!r.has_value()) {
      continue;
    }
    if (!chosen_rank.has_value() || *r < *chosen_rank) {
      chosen = p;
      chosen_rank = r;
    }
  }
  return chosen;
}

bool Instance::export_allows(NodeId from, NodeId to, const Path& path) const {
  return export_policy_->allows(graph_, from, to, path);
}

std::string Instance::path_name(const Path& p) const {
  if (p.empty()) {
    return "(eps)";
  }
  std::string out;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i > 0 && !single_char_names_) {
      out += '>';
    }
    out += graph_.name(p.at(i));
  }
  return out;
}

Path Instance::parse_path(const std::string& text) const {
  const std::string_view trimmed_text = trim(text);
  if (trimmed_text.empty() || trimmed_text == "(eps)") {
    return Path::epsilon();
  }
  std::vector<NodeId> nodes;
  if (trimmed_text.find(' ') != std::string_view::npos) {
    for (const std::string& name :
         split_trimmed(trimmed_text, ' ')) {
      nodes.push_back(graph_.node(name));
    }
  } else {
    CR_REQUIRE(single_char_names_,
               "compact path syntax requires single-character node names");
    for (const char ch : trimmed_text) {
      const std::string name(1, ch);
      if (!graph_.has_node(name)) {
        throw ParseError("unknown node '" + name + "' in path '" +
                         std::string(trimmed_text) + "'");
      }
      nodes.push_back(graph_.node(name));
    }
  }
  return Path(std::move(nodes));
}

std::string Instance::to_string() const {
  std::ostringstream os;
  os << "SPP instance: " << graph_.node_count() << " nodes, "
     << graph_.edge_count() << " edges, destination "
     << graph_.name(destination_) << "\n";
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    if (v == destination_) {
      continue;
    }
    os << "  " << graph_.name(v) << ": ";
    if (permitted_[v].empty()) {
      os << "(no permitted paths)";
    }
    for (std::size_t i = 0; i < permitted_[v].size(); ++i) {
      if (i > 0) {
        os << " > ";
      }
      os << path_name(permitted_[v][i]);
    }
    os << "\n";
  }
  return os.str();
}

std::size_t Instance::permitted_path_count() const {
  std::size_t total = 0;
  for (NodeId v = 0; v < permitted_.size(); ++v) {
    if (v != destination_) {
      total += permitted_[v].size();
    }
  }
  return total;
}

}  // namespace commroute::spp
