// Graphviz export of SPP instances and network states.
#pragma once

#include <optional>
#include <string>

#include "engine/state.hpp"
#include "spp/instance.hpp"

namespace commroute::spp {

/// DOT digraph of the instance: the destination is double-circled, edges
/// are undirected (rendered once), and each node is labeled with its
/// ranked permitted paths.
std::string to_dot(const Instance& instance);

/// DOT digraph of a snapshot: additionally highlights each node's current
/// assignment (solid arrow along the chosen next hop) and annotates
/// channels holding messages.
std::string to_dot(const Instance& instance,
                   const engine::NetworkState& state);

}  // namespace commroute::spp
