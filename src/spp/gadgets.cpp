#include "spp/gadgets.hpp"

#include "spp/builder.hpp"
#include "support/error.hpp"

namespace commroute::spp {

Instance disagree() {
  InstanceBuilder b("d");
  b.edge("x", "d").edge("y", "d").edge("x", "y");
  b.prefer("x", {"xyd", "xd"});
  b.prefer("y", {"yxd", "yd"});
  return b.build();
}

Instance example_a2() {
  // Fig. 6: x, y, z hang off d; a reaches d through each of them and
  // prefers z > y > x; u and v sit above a in a DISAGREE-like pair, with
  // u refusing every path through y.
  InstanceBuilder b("d");
  b.edge("x", "d").edge("y", "d").edge("z", "d");
  b.edge("a", "x").edge("a", "y").edge("a", "z");
  b.edge("u", "a").edge("v", "a").edge("u", "v");
  b.prefer("x", {"xd"});
  b.prefer("y", {"yd"});
  b.prefer("z", {"zd"});
  b.prefer("a", {"azd", "ayd", "axd"});
  b.prefer("u", {"uvazd", "uazd", "uaxd"});
  b.prefer("v", {"vuazd", "vazd", "vayd", "vuaxd"});
  return b.build();
}

Instance example_a3() {
  // Fig. 7: s chooses among routes learned from u and v, both of which
  // reach d via a or b.
  InstanceBuilder b("d");
  b.edge("a", "d").edge("b", "d");
  b.edge("u", "a").edge("u", "b");
  b.edge("v", "a").edge("v", "b");
  b.edge("s", "u").edge("s", "v");
  b.prefer("a", {"ad"});
  b.prefer("b", {"bd"});
  b.prefer("u", {"uad", "ubd"});
  b.prefer("v", {"vad", "vbd"});
  b.prefer("s", {"subd", "svbd", "suad"});
  return b.build();
}

Instance example_a4() {
  // Fig. 8: permitted paths ad, bd, ubd, uad, suad, subd with
  // ubd preferred to uad and suad preferred to subd.
  InstanceBuilder b("d");
  b.edge("a", "d").edge("b", "d");
  b.edge("u", "a").edge("u", "b");
  b.edge("s", "u");
  b.prefer("a", {"ad"});
  b.prefer("b", {"bd"});
  b.prefer("u", {"ubd", "uad"});
  b.prefer("s", {"suad", "subd"});
  return b.build();
}

Instance example_a5() {
  // Fig. 9: permitted paths ad, bd, xd, cad, cbd, scad, scbd, sxd with
  // scbd > sxd > scad at s and cad > cbd at c.
  InstanceBuilder b("d");
  b.edge("a", "d").edge("b", "d").edge("x", "d");
  b.edge("c", "a").edge("c", "b");
  b.edge("s", "c").edge("s", "x");
  b.prefer("a", {"ad"});
  b.prefer("b", {"bd"});
  b.prefer("x", {"xd"});
  b.prefer("c", {"cad", "cbd"});
  b.prefer("s", {"scbd", "sxd", "scad"});
  return b.build();
}

Instance bad_gadget() {
  InstanceBuilder b("d");
  b.edge("1", "d").edge("2", "d").edge("3", "d");
  b.edge("1", "2").edge("2", "3").edge("3", "1");
  b.prefer("1", {"12d", "1d"});
  b.prefer("2", {"23d", "2d"});
  b.prefer("3", {"31d", "3d"});
  return b.build();
}

Instance good_gadget() {
  InstanceBuilder b("d");
  b.edge("1", "d").edge("2", "d").edge("3", "d");
  b.edge("1", "2").edge("2", "3").edge("3", "1");
  b.prefer("1", {"1d", "12d"});
  b.prefer("2", {"2d", "23d"});
  b.prefer("3", {"3d", "31d"});
  return b.build();
}

Instance shortest_ring(std::size_t k) {
  CR_REQUIRE(k >= 3, "shortest_ring requires k >= 3");
  InstanceBuilder b("d");
  std::vector<std::string> names;
  names.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    names.push_back("n" + std::to_string(i));
  }
  for (std::size_t i = 0; i < k; ++i) {
    b.edge(names[i], "d");
    b.edge(names[i], names[(i + 1) % k]);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const std::string& self = names[i];
    const std::string& succ = names[(i + 1) % k];
    b.prefer(self, {self + " d", self + " " + succ + " d"});
  }
  return b.build();
}

Instance cyclic_gadget(std::size_t k) {
  CR_REQUIRE(k >= 3, "cyclic_gadget requires k >= 3");
  InstanceBuilder b("d");
  std::vector<std::string> names;
  names.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    names.push_back(k <= 9 ? std::string(1, static_cast<char>('1' + i))
                           : "n" + std::to_string(i));
  }
  for (std::size_t i = 0; i < k; ++i) {
    b.edge(names[i], "d");
    b.edge(names[i], names[(i + 1) % k]);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const std::string& self = names[i];
    const std::string& succ = names[(i + 1) % k];
    b.prefer(self,
             {self + " " + succ + " d", self + " d"});
  }
  return b.build();
}

Instance disagree_chain(std::size_t k) {
  CR_REQUIRE(k >= 1, "disagree_chain requires k >= 1");
  InstanceBuilder b("d");
  for (std::size_t i = 0; i < k; ++i) {
    const std::string x = "x" + std::to_string(i);
    const std::string y = "y" + std::to_string(i);
    b.edge(x, "d").edge(y, "d").edge(x, y);
    b.prefer(x, {x + " " + y + " d", x + " d"});
    b.prefer(y, {y + " " + x + " d", y + " d"});
  }
  return b.build();
}

std::vector<NamedInstance> all_gadgets() {
  std::vector<NamedInstance> out;
  out.push_back({"DISAGREE", disagree()});
  out.push_back({"EXAMPLE-A2", example_a2()});
  out.push_back({"EXAMPLE-A3", example_a3()});
  out.push_back({"EXAMPLE-A4", example_a4()});
  out.push_back({"EXAMPLE-A5", example_a5()});
  out.push_back({"BAD-GADGET", bad_gadget()});
  out.push_back({"GOOD-GADGET", good_gadget()});
  out.push_back({"CYCLIC-4", cyclic_gadget(4)});
  out.push_back({"CYCLIC-5", cyclic_gadget(5)});
  out.push_back({"DISAGREE-CHAIN-2", disagree_chain(2)});
  return out;
}

}  // namespace commroute::spp
