#include "spp/random_gen.hpp"

#include <algorithm>
#include <queue>

#include "support/error.hpp"

namespace commroute::spp {

namespace {

std::vector<std::string> make_names(std::size_t nodes) {
  std::vector<std::string> names;
  names.reserve(nodes);
  names.push_back("d");
  for (std::size_t i = 1; i < nodes; ++i) {
    names.push_back("n" + std::to_string(i));
  }
  return names;
}

/// Random connected graph: a random spanning tree (random attachment)
/// plus independent extra edges.
Graph random_connected_graph(Rng& rng, std::size_t nodes,
                             double extra_edge_prob) {
  CR_REQUIRE(nodes >= 2, "need at least two nodes");
  Graph g(make_names(nodes));
  // Random attachment tree keeps the destination reachable from everyone.
  for (NodeId v = 1; v < nodes; ++v) {
    const NodeId parent = static_cast<NodeId>(rng.below(v));
    g.add_edge(v, parent);
  }
  for (NodeId u = 0; u < nodes; ++u) {
    for (NodeId v = u + 1; v < nodes; ++v) {
      if (!g.has_edge(u, v) && rng.chance(extra_edge_prob)) {
        g.add_edge(u, v);
      }
    }
  }
  return g;
}

/// All simple paths from v to d with at most `max_len` edges, in
/// lexicographic node order (deterministic).
std::vector<Path> simple_paths_to(const Graph& g, NodeId v, NodeId d,
                                  std::size_t max_len,
                                  std::size_t cap = 512) {
  std::vector<Path> out;
  std::vector<NodeId> current{v};
  std::vector<bool> used(g.node_count(), false);
  used[v] = true;

  const auto dfs = [&](auto&& self, NodeId at) -> void {
    if (out.size() >= cap) {
      return;
    }
    if (at == d) {
      out.emplace_back(current);
      return;
    }
    if (current.size() > max_len) {
      return;
    }
    std::vector<NodeId> nbrs = g.neighbors(at);
    std::sort(nbrs.begin(), nbrs.end());
    for (const NodeId next : nbrs) {
      if (used[next]) {
        continue;
      }
      used[next] = true;
      current.push_back(next);
      self(self, next);
      current.pop_back();
      used[next] = false;
    }
  };
  dfs(dfs, v);
  return out;
}

/// Ranks by (length, node sequence); shortest-path-like and hence
/// dispute-wheel free.
void sort_by_length(std::vector<Path>& paths) {
  std::sort(paths.begin(), paths.end(), [](const Path& a, const Path& b) {
    if (a.size() != b.size()) {
      return a.size() < b.size();
    }
    return a.nodes() < b.nodes();
  });
}

}  // namespace

Instance random_tree(Rng& rng, std::size_t nodes) {
  CR_REQUIRE(nodes >= 2, "need at least two nodes");
  Graph g(make_names(nodes));
  std::vector<NodeId> parent(nodes, kNoNode);
  for (NodeId v = 1; v < nodes; ++v) {
    parent[v] = static_cast<NodeId>(rng.below(v));
    g.add_edge(v, parent[v]);
  }
  std::vector<std::vector<Path>> permitted(nodes);
  for (NodeId v = 1; v < nodes; ++v) {
    std::vector<NodeId> chain;
    for (NodeId at = v; at != kNoNode; at = parent[at]) {
      chain.push_back(at);
      if (at == 0) {
        break;
      }
    }
    permitted[v] = {Path(std::move(chain))};
  }
  return Instance(std::move(g), 0, std::move(permitted));
}

Instance random_shortest(Rng& rng, const RandomInstanceParams& params) {
  Graph g = random_connected_graph(rng, params.nodes,
                                   params.extra_edge_prob);
  std::vector<std::vector<Path>> permitted(params.nodes);
  for (NodeId v = 1; v < params.nodes; ++v) {
    std::vector<Path> paths =
        simple_paths_to(g, v, 0, params.max_path_len);
    sort_by_length(paths);
    if (paths.size() > params.max_paths_per_node) {
      paths.resize(params.max_paths_per_node);
    }
    permitted[v] = std::move(paths);
  }
  return Instance(std::move(g), 0, std::move(permitted));
}

Instance random_policy(Rng& rng, const RandomInstanceParams& params) {
  Graph g = random_connected_graph(rng, params.nodes,
                                   params.extra_edge_prob);
  std::vector<std::vector<Path>> permitted(params.nodes);
  for (NodeId v = 1; v < params.nodes; ++v) {
    std::vector<Path> paths =
        simple_paths_to(g, v, 0, params.max_path_len);
    sort_by_length(paths);
    CR_ASSERT(!paths.empty(), "connected graph must offer a path to d");
    const Path shortest = paths.front();

    std::vector<Path> kept;
    for (const Path& p : paths) {
      if (p == shortest || rng.chance(params.permit_prob)) {
        kept.push_back(p);
      }
    }
    rng.shuffle(kept);
    if (kept.size() > params.max_paths_per_node) {
      kept.resize(params.max_paths_per_node);
    }
    // Re-guarantee the shortest path survives truncation.
    if (std::find(kept.begin(), kept.end(), shortest) == kept.end()) {
      kept.back() = shortest;
    }
    permitted[v] = std::move(kept);
  }
  return Instance(std::move(g), 0, std::move(permitted));
}

}  // namespace commroute::spp
