// Stable Paths Problem (SPP) instances — Sec. 2.1 of the paper.
//
// An instance is an undirected graph with a distinguished destination d
// and, per node v, a ranked list of permitted paths P_v (rank 0 = most
// preferred; lower rank = more preferred, like cost). The destination's
// only permitted path is the trivial path (d).
//
// Instances are immutable once built (see spp/builder.hpp).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/graph.hpp"
#include "core/path.hpp"

namespace commroute::spp {

/// Rank of a permitted path at a node; lower is more preferred.
using Rank = std::uint32_t;

/// Export-policy hook: step 4 of Def. 2.3 writes pi_v(t) to channel (v, u)
/// only "if prescribed by export policy". The default permits everything;
/// the BGP substrate installs Gao-Rexford export rules.
class ExportPolicy {
 public:
  virtual ~ExportPolicy() = default;

  /// May `from` announce `path` (its current assignment; never epsilon)
  /// to its neighbor `to`? When this returns false the neighbor receives
  /// a withdrawal instead.
  virtual bool allows(const Graph& graph, NodeId from, NodeId to,
                      const Path& path) const = 0;
};

/// Default export policy: announce everything to everyone.
class AllowAllExport final : public ExportPolicy {
 public:
  bool allows(const Graph&, NodeId, NodeId, const Path&) const override {
    return true;
  }
};

/// An immutable SPP instance.
class Instance {
 public:
  /// Builds and validates an instance. `permitted[v]` lists v's permitted
  /// paths most-preferred first; the entry for the destination must be
  /// empty or the single trivial path. Throws PreconditionError on any
  /// malformed input (non-simple paths, wrong endpoints, missing edges,
  /// duplicates).
  Instance(Graph graph, NodeId destination,
           std::vector<std::vector<Path>> permitted,
           std::shared_ptr<const ExportPolicy> export_policy = nullptr);

  const Graph& graph() const { return graph_; }
  NodeId destination() const { return destination_; }
  std::size_t node_count() const { return graph_.node_count(); }

  /// v's permitted paths, most-preferred first. For the destination this
  /// is the single trivial path (d).
  const std::vector<Path>& permitted(NodeId v) const;

  /// Rank of `p` at `v`, or nullopt if not permitted.
  std::optional<Rank> rank(NodeId v, const Path& p) const;

  bool is_permitted(NodeId v, const Path& p) const;

  /// True when `a` is strictly preferred to `b` at `v`. Both paths must be
  /// permitted at v; epsilon is less preferred than any permitted path and
  /// equal to itself.
  bool prefers(NodeId v, const Path& a, const Path& b) const;

  /// Best (lowest-rank) permitted path among `candidates`; epsilon if none
  /// is permitted. Non-permitted candidates are ignored.
  Path best(NodeId v, const std::vector<Path>& candidates) const;

  /// Export policy accessor (never null).
  const ExportPolicy& export_policy() const { return *export_policy_; }

  /// Shared ownership of the export policy, for derived instances
  /// (e.g. scenario perturbations) that keep the policy but change the
  /// ranking.
  std::shared_ptr<const ExportPolicy> export_policy_ptr() const {
    return export_policy_;
  }

  /// Whether `from` may export `path` to `to`.
  bool export_allows(NodeId from, NodeId to, const Path& path) const;

  /// Renders a path with symbolic node names: "xyd" when every node name
  /// is a single character, "x>y>d" otherwise; epsilon renders as "(eps)".
  std::string path_name(const Path& p) const;

  /// Parses a path from symbolic names: either whitespace-separated names
  /// ("x y d") or, when every node name is a single character, a compact
  /// string ("xyd"). Throws ParseError on unknown names.
  Path parse_path(const std::string& text) const;

  /// Human-readable dump of the whole instance.
  std::string to_string() const;

  /// Total number of permitted paths across all nodes (excluding d's
  /// trivial path).
  std::size_t permitted_path_count() const;

 private:
  Graph graph_;
  NodeId destination_;
  std::vector<std::vector<Path>> permitted_;
  std::vector<std::unordered_map<Path, Rank>> rank_;
  std::shared_ptr<const ExportPolicy> export_policy_;
  bool single_char_names_ = true;

  void validate() const;
};

}  // namespace commroute::spp
