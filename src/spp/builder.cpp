#include "spp/builder.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace commroute::spp {

InstanceBuilder::InstanceBuilder(std::string destination)
    : destination_(std::move(destination)) {
  CR_REQUIRE(!destination_.empty(), "destination name must be non-empty");
  names_.push_back(destination_);
}

bool InstanceBuilder::declared(const std::string& name) const {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

NodeId InstanceBuilder::index_of(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  CR_REQUIRE(it != names_.end(), "unknown node: " + name);
  return static_cast<NodeId>(it - names_.begin());
}

InstanceBuilder& InstanceBuilder::node(const std::string& name) {
  CR_REQUIRE(!name.empty(), "node name must be non-empty");
  if (!declared(name)) {
    names_.push_back(name);
  }
  return *this;
}

InstanceBuilder& InstanceBuilder::edge(const std::string& u,
                                       const std::string& v) {
  node(u);
  node(v);
  edges_.emplace_back(u, v);
  return *this;
}

InstanceBuilder& InstanceBuilder::prefer(
    const std::string& v, const std::vector<std::string>& paths_best_first) {
  CR_REQUIRE(declared(v), "prefer() on undeclared node: " + v);
  preferences_.emplace_back(v, paths_best_first);
  return *this;
}

InstanceBuilder& InstanceBuilder::export_policy(
    std::shared_ptr<const ExportPolicy> policy) {
  policy_ = std::move(policy);
  return *this;
}

Instance InstanceBuilder::build() const {
  Graph graph(names_);
  for (const auto& [u, v] : edges_) {
    graph.add_edge(index_of(u), index_of(v));
  }

  // Parse preference lists with a throwaway instance that knows the graph
  // but no paths yet (parse_path only needs node names).
  std::vector<std::vector<Path>> permitted(names_.size());
  const Instance name_scope(graph, index_of(destination_),
                            std::vector<std::vector<Path>>(names_.size()));
  for (const auto& [v, texts] : preferences_) {
    std::vector<Path>& list = permitted[index_of(v)];
    CR_REQUIRE(list.empty(), "prefer() called twice for node " + v);
    list.reserve(texts.size());
    for (const std::string& text : texts) {
      list.push_back(name_scope.parse_path(text));
    }
  }

  return Instance(std::move(graph), index_of(destination_),
                  std::move(permitted), policy_);
}

}  // namespace commroute::spp
