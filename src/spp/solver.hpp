// Brute-force solver for the Stable Paths Problem.
//
// A path assignment pi = {pi_v} is a solution when it is simultaneously
// consistent and stable (Sec. 2.1), which is equivalent to being a fixed
// point of the simultaneous best-response map: for every v != d,
//   pi_v = best_v({ v . pi_u : u in N(v), pi_u != eps, v . pi_u in P_v })
// (epsilon when the candidate set is empty). Deciding solvability is
// NP-complete [Griffin-Shepherd-Wilfong], so enumeration is exponential by
// necessity; this solver is intended for the small gadget instances used
// in the paper and for randomized testing.
#pragma once

#include <cstddef>
#include <vector>

#include "spp/instance.hpp"

namespace commroute::spp {

/// A full path assignment, indexed by node.
using PathAssignment = std::vector<Path>;

/// Enumerates all stable path assignments of `instance`, up to `limit`
/// solutions (0 = unlimited). The search space is the product of
/// (P_v + epsilon) over all non-destination nodes.
std::vector<PathAssignment> stable_assignments(const Instance& instance,
                                               std::size_t limit = 0);

/// True if `pi` is consistent: every assigned path extends the assignment
/// of its next hop, and pi_d = (d).
bool is_consistent(const Instance& instance, const PathAssignment& pi);

/// True if `pi` is stable: every node's path is its unique best response
/// to its neighbors' assigned paths.
bool is_stable(const Instance& instance, const PathAssignment& pi);

/// True if `pi` is a solution (consistent and stable).
bool is_solution(const Instance& instance, const PathAssignment& pi);

/// The simultaneous best response to `pi` (one application of the map).
PathAssignment best_response(const Instance& instance,
                             const PathAssignment& pi);

/// Renders an assignment as "(d, xd, yxd)" in node order, for test output.
std::string assignment_name(const Instance& instance,
                            const PathAssignment& pi);

}  // namespace commroute::spp
