// Dispute-wheel detection.
//
// A dispute wheel [Griffin-Shepherd-Wilfong] is a cyclic policy conflict:
// nodes u_0..u_{k-1}, spoke paths Q_i in P_{u_i}, and rim paths R_i from
// u_i to u_{i+1} (indices mod k, each R_i with at least one edge) such
// that R_i Q_{i+1} is permitted at u_i and is weakly preferred to Q_i:
//     lambda_{u_i}(R_i Q_{i+1}) <= lambda_{u_i}(Q_i).
// The absence of a dispute wheel is the broadest known sufficient
// condition for convergence (Ex. A.1 cites this); DISAGREE and BAD GADGET
// have wheels, GOOD GADGET does not.
//
// Detection reduces to cycle search in the "dispute relation" over
// (node, spoke-path) pairs:
//   (u, Q) -> (w, Q')  iff  some P in P_u has proper suffix Q' (so the
//   prefix R = P \ Q' is a u-to-w path with >= 1 edge, where w is Q''s
//   source) and lambda_u(P) <= lambda_u(Q).
// A directed cycle in this relation is exactly a dispute wheel.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "spp/instance.hpp"

namespace commroute::spp {

/// One spoke of a discovered wheel.
struct WheelSpoke {
  NodeId node = kNoNode;
  Path spoke;      ///< Q_i, permitted at `node`.
  Path rim_route;  ///< R_i Q_{i+1}, permitted at `node`, weakly preferred.
};

/// A dispute wheel witness: spokes in cyclic order.
struct DisputeWheel {
  std::vector<WheelSpoke> spokes;

  std::string to_string(const Instance& instance) const;
};

/// Searches for a dispute wheel; returns a witness or nullopt if the
/// instance is dispute-wheel-free. Complexity is polynomial in the total
/// number of permitted paths.
std::optional<DisputeWheel> find_dispute_wheel(const Instance& instance);

/// Convenience: true when no dispute wheel exists (the sufficient
/// condition for convergence of every fair execution).
bool is_dispute_wheel_free(const Instance& instance);

}  // namespace commroute::spp
