#include "spp/dot.hpp"

#include <sstream>

namespace commroute::spp {

namespace {

void emit_nodes(const Instance& instance, std::ostringstream& out) {
  const Graph& g = instance.graph();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "  \"" << g.name(v) << "\" [";
    if (v == instance.destination()) {
      out << "shape=doublecircle";
    } else {
      out << "shape=circle";
      std::ostringstream label;
      label << g.name(v);
      if (!instance.permitted(v).empty()) {
        label << "\\n";
        for (std::size_t i = 0; i < instance.permitted(v).size(); ++i) {
          label << (i ? " > " : "")
                << instance.path_name(instance.permitted(v)[i]);
        }
      }
      out << ", label=\"" << label.str() << "\"";
    }
    out << "];\n";
  }
}

void emit_edges(const Instance& instance, std::ostringstream& out) {
  const Graph& g = instance.graph();
  for (ChannelIdx c = 0; c < g.channel_count(); ++c) {
    const ChannelId id = g.channel_id(c);
    if (id.from < id.to) {
      out << "  \"" << g.name(id.from) << "\" -> \"" << g.name(id.to)
          << "\" [dir=none, color=gray];\n";
    }
  }
}

}  // namespace

std::string to_dot(const Instance& instance) {
  std::ostringstream out;
  out << "digraph spp {\n  rankdir=BT;\n";
  emit_nodes(instance, out);
  emit_edges(instance, out);
  out << "}\n";
  return out.str();
}

std::string to_dot(const Instance& instance,
                   const engine::NetworkState& state) {
  const Graph& g = instance.graph();
  std::ostringstream out;
  out << "digraph spp_state {\n  rankdir=BT;\n";
  emit_nodes(instance, out);
  emit_edges(instance, out);

  // Chosen next hops.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const Path& pi = state.assignment(v);
    if (pi.size() >= 2) {
      out << "  \"" << g.name(v) << "\" -> \"" << g.name(pi.next_hop())
          << "\" [color=blue, penwidth=2, label=\""
          << instance.path_name(pi) << "\"];\n";
    }
  }

  // Channels with queued messages.
  for (ChannelIdx c = 0; c < g.channel_count(); ++c) {
    const engine::Channel& channel = state.channel(c);
    if (channel.empty()) {
      continue;
    }
    const ChannelId id = g.channel_id(c);
    std::ostringstream label;
    for (std::size_t i = 0; i < channel.size(); ++i) {
      label << (i ? "," : "") << instance.path_name(channel.at(i).path);
    }
    out << "  \"" << g.name(id.from) << "\" -> \"" << g.name(id.to)
        << "\" [color=red, style=dashed, label=\"[" << label.str()
        << "]\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace commroute::spp
