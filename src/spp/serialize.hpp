// Text serialization of SPP instances.
//
// Line-oriented format (comments with '#', blank lines ignored):
//
//   # DISAGREE
//   dest d
//   edge x d
//   edge y d
//   edge x y
//   prefer x: xyd xd        # most preferred first
//   prefer y: y x d, y d    # multi-char names: space-separated, comma
//                           # between paths
//
// `prefer` paths use Instance path syntax; when any node name has more
// than one character the paths must be comma-separated with spaces
// between node names.
#pragma once

#include <string>

#include "spp/instance.hpp"

namespace commroute::spp {

/// Parses an instance from the text format above. Throws ParseError with
/// a line number on malformed input.
Instance parse_instance(const std::string& text);

/// Formats an instance in the same syntax; parse_instance(format_instance
/// (i)) reproduces i (same graph, destination, permitted ranking).
std::string format_instance(const Instance& instance);

}  // namespace commroute::spp
