#include "spp/dispute_wheel.hpp"

#include <sstream>
#include <unordered_map>

#include "support/error.hpp"

namespace commroute::spp {

namespace {

/// Vertex of the dispute relation: a node with one of its permitted paths
/// serving as spoke.
struct Vertex {
  NodeId node;
  Path spoke;
};

/// Edge with the witnessing rim route (the permitted path R Q').
struct Edge {
  std::size_t to;
  Path rim_route;
};

struct DisputeGraph {
  std::vector<Vertex> vertices;
  std::vector<std::vector<Edge>> edges;
};

DisputeGraph build_dispute_graph(const Instance& instance) {
  DisputeGraph dg;
  std::unordered_map<NodeId, std::unordered_map<Path, std::size_t>> index;

  for (NodeId v = 0; v < instance.node_count(); ++v) {
    if (v == instance.destination()) {
      continue;
    }
    for (const Path& q : instance.permitted(v)) {
      index[v][q] = dg.vertices.size();
      dg.vertices.push_back(Vertex{v, q});
    }
  }
  dg.edges.resize(dg.vertices.size());

  // For every permitted path P at u and every proper suffix Q' of P that
  // is permitted at its own source w, add (u, Q) -> (w, Q') for each spoke
  // Q at u that P is weakly preferred to.
  for (NodeId u = 0; u < instance.node_count(); ++u) {
    if (u == instance.destination()) {
      continue;
    }
    for (const Path& p : instance.permitted(u)) {
      const Rank p_rank = *instance.rank(u, p);
      // Proper suffixes with at least 2 nodes (a suffix of length 1 is the
      // trivial destination path; the rim would then end at d itself,
      // which is excluded since d has no spokes).
      for (std::size_t start = 1; start + 1 < p.size(); ++start) {
        std::vector<NodeId> suffix_nodes(p.nodes().begin() +
                                             static_cast<std::ptrdiff_t>(start),
                                         p.nodes().end());
        Path suffix(std::move(suffix_nodes));
        const NodeId w = suffix.source();
        const auto node_it = index.find(w);
        if (node_it == index.end()) {
          continue;
        }
        const auto suffix_it = node_it->second.find(suffix);
        if (suffix_it == node_it->second.end()) {
          continue;  // Q' not permitted at w.
        }
        // Connect from every spoke Q at u with rank >= rank(P).
        for (const Path& q : instance.permitted(u)) {
          if (*instance.rank(u, q) >= p_rank) {
            dg.edges[index[u][q]].push_back(Edge{suffix_it->second, p});
          }
        }
      }
    }
  }
  return dg;
}

/// Iterative DFS cycle search; returns the cycle as a list of
/// (vertex, rim route of the edge leaving it) pairs in cyclic order.
std::optional<std::vector<std::pair<std::size_t, Path>>> find_cycle(
    const DisputeGraph& dg) {
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(dg.vertices.size(), Color::kWhite);

  struct Frame {
    std::size_t vertex;
    std::size_t next_edge = 0;
  };

  for (std::size_t root = 0; root < dg.vertices.size(); ++root) {
    if (color[root] != Color::kWhite) {
      continue;
    }
    std::vector<Frame> stack{Frame{root}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_edge >= dg.edges[frame.vertex].size()) {
        color[frame.vertex] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const Edge& e = dg.edges[frame.vertex][frame.next_edge++];
      if (color[e.to] == Color::kGray) {
        // Cycle: the gray stack suffix from e.to up to frame.vertex, then
        // the closing edge e. The edge taken from stack[i] to stack[i+1]
        // is the one just before stack[i].next_edge.
        std::size_t begin = 0;
        while (stack[begin].vertex != e.to) {
          ++begin;
        }
        std::vector<std::pair<std::size_t, Path>> cycle;
        for (std::size_t i = begin; i + 1 < stack.size(); ++i) {
          const Edge& taken =
              dg.edges[stack[i].vertex][stack[i].next_edge - 1];
          CR_ASSERT(taken.to == stack[i + 1].vertex,
                    "DFS stack edge bookkeeping out of sync");
          cycle.emplace_back(stack[i].vertex, taken.rim_route);
        }
        cycle.emplace_back(frame.vertex, e.rim_route);
        return cycle;
      }
      if (color[e.to] == Color::kWhite) {
        color[e.to] = Color::kGray;
        stack.push_back(Frame{e.to});
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<DisputeWheel> find_dispute_wheel(const Instance& instance) {
  const DisputeGraph dg = build_dispute_graph(instance);
  const auto cycle = find_cycle(dg);
  if (!cycle.has_value()) {
    return std::nullopt;
  }
  DisputeWheel wheel;
  for (const auto& [vertex, rim_route] : *cycle) {
    wheel.spokes.push_back(WheelSpoke{dg.vertices[vertex].node,
                                      dg.vertices[vertex].spoke, rim_route});
  }
  return wheel;
}

bool is_dispute_wheel_free(const Instance& instance) {
  return !find_dispute_wheel(instance).has_value();
}

std::string DisputeWheel::to_string(const Instance& instance) const {
  std::ostringstream os;
  os << "dispute wheel with " << spokes.size() << " spokes:";
  for (const WheelSpoke& s : spokes) {
    os << " [" << instance.graph().name(s.node)
       << ": spoke " << instance.path_name(s.spoke) << ", rim "
       << instance.path_name(s.rim_route) << "]";
  }
  return os.str();
}

}  // namespace commroute::spp
