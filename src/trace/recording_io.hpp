// Durable recordings: versioned JSONL serialization of executions, load
// with structural validation, and deterministic replay.
//
// The paper's central objects are activation sequences and the
// path-assignment sequences {pi(t)} they induce (Defs. 2.2/2.3); a
// RecordingDoc is exactly one finite window of that pair, made durable:
//
//   {"type":"recording_header","schema_version":2,...,"instance":"...",
//    "initial":["d","",""]}
//   {"type":"recording_step","t":1,"step":"x | d->x f=inf",
//    "pi":["d","xd",""],"sent":[2],"reads":[[0,1,0]],"sel":[0]}
//   ...
//   {"type":"recording_footer","steps":N,"changes":K}
//
// The header embeds the full instance (spp/serialize.hpp text format) and
// the run metadata (model, scheduler, seed, outcome, argv, git), so a
// recording file is self-contained: it can be re-executed, diffed, and
// analyzed with no other artifact. Steps use the script_io one-line
// syntax; paths are space-separated node names ("" = epsilon).
//
// A recording is *complete* when it starts at step 1 (first_step == 1);
// the flight recorder's ring mode produces *partial* recordings (the last
// N steps only), which support forensics but not replay.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "model/activation.hpp"
#include "obs/obs.hpp"
#include "spp/instance.hpp"
#include "trace/recording.hpp"
#include "trace/trace.hpp"

namespace commroute::trace {

/// Layout version written into every recording header; readers reject
/// anything newer. v2 added the per-step causal fields ("sel" selection
/// provenance and, for timed runs, "t_us") — v1 files still load, with
/// those fields simply absent. v3 added typed fault entries
/// ("recording_fault" records, see RecordedFault) — v1/v2 files still
/// load, with no faults.
inline constexpr int kRecordingSchemaVersion = 3;

/// Per-step channel I/O summary, enough to reconstruct channel-occupancy
/// time series — and, since schema v2, the happens-before DAG — without
/// storing full channel contents.
struct StepIo {
  struct Read {
    ChannelIdx channel = kNoChannel;
    std::uint32_t processed = 0;  ///< messages removed from the channel
    std::uint32_t dropped = 0;    ///< of those, how many were dropped
    bool operator==(const Read& o) const {
      return channel == o.channel && processed == o.processed &&
             dropped == o.dropped;
    }
  };
  std::vector<ChannelIdx> sent;  ///< channels written during announce
  std::vector<Read> reads;
  /// Selection provenance, parallel to the step's U (schema v2;
  /// empty on v1 files): the in-channel whose rho furnished each
  /// updating node's new assignment, kNoChannel (serialized -1) when it
  /// selected epsilon or is the destination. This is what lets
  /// obs::build_causality recover adoption edges from ring windows.
  std::vector<ChannelIdx> selected;
  bool operator==(const StepIo& o) const {
    return sent == o.sent && reads == o.reads && selected == o.selected;
  }
};

/// Run metadata stamped into the header record.
struct RecordingMeta {
  std::string kind = "recording";  ///< "recording" | "witness"
  std::string instance_name;       ///< label, e.g. "BAD-GADGET" ("" ok)
  std::string model;               ///< taxonomy model name ("" = none)
  std::string scheduler;           ///< free-form ("" = unknown)
  std::uint64_t seed = 0;
  std::string outcome;  ///< engine outcome string ("" = unknown)
  /// Global 1-based index of the first recorded step. 1 = complete
  /// recording (replayable); > 1 = ring-buffer window (forensics only).
  std::uint64_t first_step = 1;
  /// Witness structure (kind == "witness"): the serialized script is
  /// prefix + `witness_repetitions` copies of the cycle.
  std::uint64_t witness_prefix_len = 0;
  std::uint64_t witness_cycle_len = 0;
};

/// An injected fault, recorded in execution order (schema v3). The
/// fault text is scenario fault syntax (scenario/fault.hpp) rendered
/// with the instance's symbolic names; storing it as a string keeps
/// trace independent of the scenario types while staying parseable.
struct RecordedFault {
  /// Global 1-based index of the first step executed after the fault
  /// (the fault happened between steps `before - 1` and `before`).
  std::uint64_t before = 1;
  std::string text;         ///< e.g. "session-reset u v"
  std::uint64_t t_us = 0;   ///< virtual time the fault fired
  bool operator==(const RecordedFault& o) const {
    return before == o.before && text == o.text && t_us == o.t_us;
  }
};

/// One recorded execution window: the activation steps and the
/// assignment pi(t) after each, plus pi before the window.
struct RecordingDoc {
  RecordingMeta meta;
  Assignment initial;  ///< pi(first_step - 1)
  std::vector<model::ActivationStep> steps;
  std::vector<Assignment> assignments;  ///< pi after each step
  std::vector<StepIo> io;  ///< parallel to steps, or empty (no I/O info)
  /// Virtual timestamp of each step (schema v2, timed runs only —
  /// sim::run sources); parallel to steps, or empty (untimed).
  std::vector<std::uint64_t> step_time_us;
  /// Injected faults in execution order (schema v3; empty on older
  /// files and fault-free runs). `before` values are non-decreasing and
  /// inside the recorded window.
  std::vector<RecordedFault> faults;

  /// True when the window starts at the initial state (replayable).
  bool complete() const { return meta.first_step == 1; }

  /// initial followed by the per-step assignments: the {pi(t)} window.
  std::vector<Assignment> pi_sequence() const;

  /// pi_sequence() with consecutive duplicates removed (Def. 3.2's
  /// collapsed view).
  std::vector<Assignment> collapsed() const;
};

/// Converts an in-memory Recording (trace/recording.hpp) to a complete
/// document, keeping per-step I/O summaries from the recorded effects.
RecordingDoc doc_from_recording(const Recording& recording,
                                RecordingMeta meta = {});

/// Executes prefix + `repetitions` copies of cycle from the initial
/// state and packages the result as a witness recording (kind
/// "witness"); this is the durable form of a checker oscillation witness
/// (ExploreResult::witness_prefix / witness_cycle). Steps are validated
/// structurally.
RecordingDoc record_witness(const spp::Instance& instance,
                            const model::ActivationScript& prefix,
                            const model::ActivationScript& cycle,
                            std::size_t repetitions = 2);

/// Serializes header + steps + footer as JSONL.
void write_recording_jsonl(std::ostream& out, const spp::Instance& instance,
                           const RecordingDoc& doc);
std::string recording_to_jsonl(const spp::Instance& instance,
                               const RecordingDoc& doc);

/// Writes the JSONL to `path` (truncating); throws PreconditionError
/// when the file cannot be opened.
void save_recording(const std::string& path, const spp::Instance& instance,
                    const RecordingDoc& doc);

/// A loaded recording owns the instance parsed from its header.
struct LoadedRecording {
  spp::Instance instance;
  RecordingDoc doc;

  explicit LoadedRecording(spp::Instance inst)
      : instance(std::move(inst)) {}
};

/// Parses and structurally validates a serialized recording: header
/// first (schema_version understood, instance parses, initial assignment
/// well-formed), steps contiguous from first_step with parseable,
/// structurally valid activation steps and full assignments, footer step
/// count matching. Leading "meta" records are skipped. Throws ParseError
/// with a line number on any violation.
LoadedRecording load_recording_jsonl(std::istream& in);
LoadedRecording load_recording_file(const std::string& path);

/// First point where a replay deviated from the stored recording.
struct ReplayDivergence {
  std::uint64_t step = 0;  ///< global step index of the divergent step
  NodeId node = kNoNode;   ///< first node whose assignment differs
  Path expected;           ///< stored pi_node
  Path actual;             ///< re-executed pi_node
};

struct ReplayResult {
  bool identical = false;          ///< every per-step assignment matched
  std::uint64_t steps_replayed = 0;
  std::optional<ReplayDivergence> divergence;
  Trace trace;  ///< the re-executed {pi(t)} sequence
};

/// Deterministic replay: re-executes the recording's script against its
/// instance from the initial state and diffs per-step path assignments.
/// Recorded faults (schema v3) are re-applied at their recorded
/// positions via scenario::apply_fault, so faulted sim recordings also
/// replay divergence-free.
/// The engine's step semantics (Def. 2.3) are deterministic given the
/// quadruple, so a clean load must replay identically; a divergence
/// means the recording was tampered with or the reader/engine disagree.
/// Requires a complete recording (throws PreconditionError on a ring
/// window). With instrumentation attached, traces a replay.run span and
/// publishes replay.steps / replay.divergences counters.
ReplayResult replay_recording(const LoadedRecording& loaded,
                              const obs::Instrumentation& obs = {});

}  // namespace commroute::trace
