#include "trace/recording_io.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "engine/executor.hpp"
#include "model/script_io.hpp"
#include "obs/json.hpp"
#include "obs/meta.hpp"
#include "scenario/fault.hpp"
#include "spp/serialize.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace commroute::trace {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ParseError("recording line " + std::to_string(line) + ": " + what);
}

std::string path_text(const spp::Instance& instance, const Path& p) {
  std::string out;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += instance.graph().name(p.at(i));
  }
  return out;  // epsilon renders as ""
}

Path path_from_text(const spp::Instance& instance, const std::string& text,
                    std::size_t line) {
  if (text.empty()) {
    return Path::epsilon();
  }
  try {
    return instance.parse_path(text);
  } catch (const Error& e) {
    fail(line, std::string("bad path: ") + e.what());
  }
}

std::string assignment_json(const spp::Instance& instance,
                            const Assignment& a) {
  std::string out = "[";
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '"' + obs::json_escape(path_text(instance, a[i])) + '"';
  }
  out += ']';
  return out;
}

Assignment assignment_from_json(const spp::Instance& instance,
                                const obs::JsonValue& value,
                                std::size_t line) {
  if (!value.is_array()) {
    fail(line, "assignment is not an array");
  }
  const auto& arr = value.as_array();
  if (arr.size() != instance.node_count()) {
    fail(line, "assignment has " + std::to_string(arr.size()) +
                   " entries, instance has " +
                   std::to_string(instance.node_count()) + " nodes");
  }
  Assignment out;
  out.reserve(arr.size());
  for (const obs::JsonValue& elem : arr) {
    if (!elem.is_string()) {
      fail(line, "assignment entry is not a string");
    }
    out.push_back(path_from_text(instance, elem.as_string(), line));
  }
  return out;
}

std::string step_text(const spp::Instance& instance,
                      const model::ActivationStep& step) {
  std::string text = model::format_script(instance, {step});
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

std::string io_sent_json(const StepIo& io) {
  std::string out = "[";
  for (std::size_t i = 0; i < io.sent.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(io.sent[i]);
  }
  out += ']';
  return out;
}

std::string io_reads_json(const StepIo& io) {
  std::string out = "[";
  for (std::size_t i = 0; i < io.reads.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    const StepIo::Read& r = io.reads[i];
    out += '[' + std::to_string(r.channel) + ',' +
           std::to_string(r.processed) + ',' + std::to_string(r.dropped) +
           ']';
  }
  out += ']';
  return out;
}

std::string io_selected_json(const StepIo& io) {
  std::string out = "[";
  for (std::size_t i = 0; i < io.selected.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += io.selected[i] == kNoChannel
               ? std::string("-1")
               : std::to_string(io.selected[i]);
  }
  out += ']';
  return out;
}

std::uint64_t u64_elem(const obs::JsonValue& v, std::size_t line,
                       const char* what) {
  if (!v.is_number() || v.as_number() < 0) {
    fail(line, std::string("bad ") + what);
  }
  return static_cast<std::uint64_t>(v.as_number());
}

const obs::JsonValue& require_field(const obs::JsonValue& record,
                                    std::string_view key, std::size_t line) {
  const obs::JsonValue* field = record.find(key);
  if (field == nullptr) {
    fail(line, "missing field \"" + std::string(key) + '"');
  }
  return *field;
}

std::string string_field(const obs::JsonValue& record, std::string_view key,
                         std::size_t line) {
  const obs::JsonValue& field = require_field(record, key, line);
  if (!field.is_string()) {
    fail(line, "field \"" + std::string(key) + "\" is not a string");
  }
  return field.as_string();
}

std::uint64_t u64_field(const obs::JsonValue& record, std::string_view key,
                        std::size_t line) {
  return u64_elem(require_field(record, key, line), line,
                  std::string(key).c_str());
}

std::string optional_string(const obs::JsonValue& record,
                            std::string_view key) {
  const obs::JsonValue* field = record.find(key);
  return field != nullptr && field->is_string() ? field->as_string() : "";
}

StepIo io_from_record(const spp::Instance& instance,
                      const obs::JsonValue& record, std::size_t line,
                      std::size_t step_nodes) {
  StepIo io;
  const std::size_t channels = instance.graph().channel_count();
  if (const obs::JsonValue* sent = record.find("sent")) {
    if (!sent->is_array()) {
      fail(line, "\"sent\" is not an array");
    }
    for (const obs::JsonValue& c : sent->as_array()) {
      const std::uint64_t idx = u64_elem(c, line, "sent channel");
      if (idx >= channels) {
        fail(line, "sent channel out of range");
      }
      io.sent.push_back(static_cast<ChannelIdx>(idx));
    }
  }
  if (const obs::JsonValue* reads = record.find("reads")) {
    if (!reads->is_array()) {
      fail(line, "\"reads\" is not an array");
    }
    for (const obs::JsonValue& r : reads->as_array()) {
      if (!r.is_array() || r.as_array().size() != 3) {
        fail(line, "read entry is not a [channel,processed,dropped] triple");
      }
      StepIo::Read read;
      const std::uint64_t idx =
          u64_elem(r.as_array()[0], line, "read channel");
      if (idx >= channels) {
        fail(line, "read channel out of range");
      }
      read.channel = static_cast<ChannelIdx>(idx);
      read.processed = static_cast<std::uint32_t>(
          u64_elem(r.as_array()[1], line, "read processed count"));
      read.dropped = static_cast<std::uint32_t>(
          u64_elem(r.as_array()[2], line, "read dropped count"));
      io.reads.push_back(read);
    }
  }
  if (const obs::JsonValue* sel = record.find("sel")) {
    if (!sel->is_array()) {
      fail(line, "\"sel\" is not an array");
    }
    for (const obs::JsonValue& c : sel->as_array()) {
      if (!c.is_number()) {
        fail(line, "selection entry is not a number");
      }
      const double n = c.as_number();
      if (n < 0) {
        io.selected.push_back(kNoChannel);  // -1 = epsilon / destination
      } else if (n >= static_cast<double>(channels)) {
        fail(line, "selection channel out of range");
      } else {
        io.selected.push_back(static_cast<ChannelIdx>(n));
      }
    }
    if (io.selected.size() != step_nodes) {
      fail(line, "\"sel\" must hold one entry per updating node");
    }
  }
  return io;
}

std::uint64_t count_changes(const RecordingDoc& doc) {
  std::uint64_t changes = 0;
  const Assignment* prev = &doc.initial;
  for (const Assignment& a : doc.assignments) {
    if (a != *prev) {
      ++changes;
    }
    prev = &a;
  }
  return changes;
}

}  // namespace

std::vector<Assignment> RecordingDoc::pi_sequence() const {
  std::vector<Assignment> seq;
  seq.reserve(assignments.size() + 1);
  seq.push_back(initial);
  seq.insert(seq.end(), assignments.begin(), assignments.end());
  return seq;
}

std::vector<Assignment> RecordingDoc::collapsed() const {
  std::vector<Assignment> out;
  out.push_back(initial);
  for (const Assignment& a : assignments) {
    if (a != out.back()) {
      out.push_back(a);
    }
  }
  return out;
}

RecordingDoc doc_from_recording(const Recording& recording,
                                RecordingMeta meta) {
  CR_REQUIRE(recording.trace.size() == recording.steps.size() + 1,
             "recording trace/steps mismatch");
  RecordingDoc doc;
  doc.meta = std::move(meta);
  doc.meta.first_step = 1;
  doc.initial = recording.trace.at(0);
  doc.steps.reserve(recording.steps.size());
  doc.assignments.reserve(recording.steps.size());
  doc.io.reserve(recording.steps.size());
  for (std::size_t t = 0; t < recording.steps.size(); ++t) {
    const RecordedStep& rec = recording.steps[t];
    doc.steps.push_back(rec.step);
    doc.assignments.push_back(recording.trace.at(t + 1));
    StepIo io;
    for (const engine::SentMessage& sent : rec.effect.sent) {
      io.sent.push_back(sent.channel);
    }
    for (const engine::ReadEffect& read : rec.effect.reads) {
      io.reads.push_back(
          StepIo::Read{read.channel, read.processed, read.dropped});
    }
    for (const engine::NodeEffect& node : rec.effect.nodes) {
      io.selected.push_back(node.selected_from);
    }
    doc.io.push_back(std::move(io));
  }
  return doc;
}

RecordingDoc record_witness(const spp::Instance& instance,
                            const model::ActivationScript& prefix,
                            const model::ActivationScript& cycle,
                            std::size_t repetitions) {
  CR_REQUIRE(!cycle.empty(), "witness cycle is empty");
  CR_REQUIRE(repetitions >= 1, "witness needs at least one cycle copy");
  model::ActivationScript script = prefix;
  for (std::size_t r = 0; r < repetitions; ++r) {
    script.insert(script.end(), cycle.begin(), cycle.end());
  }
  for (const model::ActivationStep& step : script) {
    model::validate_step(instance, step);
  }
  RecordingMeta meta;
  meta.kind = "witness";
  meta.witness_prefix_len = prefix.size();
  meta.witness_cycle_len = cycle.size();
  return doc_from_recording(record_script(instance, script),
                            std::move(meta));
}

void write_recording_jsonl(std::ostream& out, const spp::Instance& instance,
                           const RecordingDoc& doc) {
  CR_REQUIRE(doc.steps.size() == doc.assignments.size(),
             "recording steps/assignments mismatch");
  CR_REQUIRE(doc.io.empty() || doc.io.size() == doc.steps.size(),
             "recording io/steps mismatch");
  CR_REQUIRE(doc.step_time_us.empty() ||
                 doc.step_time_us.size() == doc.steps.size(),
             "recording step_time_us/steps mismatch");
  {
    std::uint64_t prev_before = doc.meta.first_step;
    for (const RecordedFault& f : doc.faults) {
      CR_REQUIRE(f.before >= prev_before &&
                     f.before <= doc.meta.first_step + doc.steps.size(),
                 "recording fault \"before\" indices must be non-decreasing "
                 "and inside the recorded window");
      prev_before = f.before;
    }
  }
  std::size_t fault_cursor = 0;
  const auto emit_faults_before = [&](std::uint64_t step_index) {
    while (fault_cursor < doc.faults.size() &&
           doc.faults[fault_cursor].before <= step_index) {
      const RecordedFault& f = doc.faults[fault_cursor];
      obs::JsonWriter record;
      record.field("type", "recording_fault")
          .field("before", f.before)
          .field("fault", f.text)
          .field("t_us", f.t_us);
      out << record.str() << '\n';
      ++fault_cursor;
    }
  };
  obs::JsonWriter header;
  header.field("type", "recording_header");
  // Like obs::add_metadata_fields, but with the recording layout's own
  // schema version (the generic artifact version stayed at 1 when the
  // causal fields bumped recordings to v2).
  header.field("schema_version", kRecordingSchemaVersion)
      .field("created_unix_ms", obs::unix_time_ms())
      .field("git", obs::git_describe())
      .field("argv", obs::process_argv());
  header.field("kind", doc.meta.kind)
      .field("instance_name", doc.meta.instance_name)
      .field("model", doc.meta.model)
      .field("scheduler", doc.meta.scheduler)
      .field("seed", doc.meta.seed)
      .field("outcome", doc.meta.outcome)
      .field("first_step", doc.meta.first_step)
      .field("steps", static_cast<std::uint64_t>(doc.steps.size()))
      .field("nodes", static_cast<std::uint64_t>(instance.node_count()));
  if (doc.meta.kind == "witness") {
    header.field("witness_prefix_len", doc.meta.witness_prefix_len)
        .field("witness_cycle_len", doc.meta.witness_cycle_len);
  }
  header.field("instance", spp::format_instance(instance));
  header.raw_field("initial", assignment_json(instance, doc.initial));
  out << header.str() << '\n';

  for (std::size_t t = 0; t < doc.steps.size(); ++t) {
    emit_faults_before(doc.meta.first_step + t);
    obs::JsonWriter record;
    record.field("type", "recording_step")
        .field("t", doc.meta.first_step + t)
        .field("step", step_text(instance, doc.steps[t]));
    record.raw_field("pi", assignment_json(instance, doc.assignments[t]));
    if (!doc.io.empty()) {
      record.raw_field("sent", io_sent_json(doc.io[t]));
      record.raw_field("reads", io_reads_json(doc.io[t]));
      if (!doc.io[t].selected.empty()) {
        record.raw_field("sel", io_selected_json(doc.io[t]));
      }
    }
    if (!doc.step_time_us.empty()) {
      record.field("t_us", doc.step_time_us[t]);
    }
    out << record.str() << '\n';
  }

  // Faults that fired after the last recorded step (the run ended before
  // another step executed).
  emit_faults_before(doc.meta.first_step + doc.steps.size());

  obs::JsonWriter footer;
  footer.field("type", "recording_footer")
      .field("steps", static_cast<std::uint64_t>(doc.steps.size()))
      .field("changes", count_changes(doc));
  if (!doc.faults.empty()) {
    footer.field("faults", static_cast<std::uint64_t>(doc.faults.size()));
  }
  out << footer.str() << '\n';
}

std::string recording_to_jsonl(const spp::Instance& instance,
                               const RecordingDoc& doc) {
  std::ostringstream out;
  write_recording_jsonl(out, instance, doc);
  return out.str();
}

void save_recording(const std::string& path, const spp::Instance& instance,
                    const RecordingDoc& doc) {
  std::ofstream out(path, std::ios::trunc);
  CR_REQUIRE(out.is_open(), "cannot write recording: " + path);
  write_recording_jsonl(out, instance, doc);
}

LoadedRecording load_recording_jsonl(std::istream& in) {
  std::string raw;
  std::size_t line_no = 0;

  // Header: the first non-blank, non-"meta" record.
  std::optional<obs::JsonValue> header;
  std::size_t header_line = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (trim(raw).empty()) {
      continue;
    }
    auto parsed = obs::json_parse(raw);
    if (!parsed.has_value()) {
      fail(line_no, "not valid JSON");
    }
    const std::string type = optional_string(*parsed, "type");
    if (type == "meta") {
      continue;  // sink-level self-description record
    }
    if (type != "recording_header") {
      fail(line_no, "expected a recording_header record, got \"" + type +
                        '"');
    }
    header = std::move(*parsed);
    header_line = line_no;
    break;
  }
  if (!header.has_value()) {
    throw ParseError("recording: empty input (no recording_header)");
  }

  const std::uint64_t schema =
      u64_field(*header, "schema_version", header_line);
  if (schema > static_cast<std::uint64_t>(kRecordingSchemaVersion)) {
    fail(header_line,
         "schema_version " + std::to_string(schema) +
             " is newer than this reader (understands up to " +
             std::to_string(kRecordingSchemaVersion) + ")");
  }

  spp::Instance instance = [&] {
    try {
      return spp::parse_instance(string_field(*header, "instance",
                                              header_line));
    } catch (const Error& e) {
      fail(header_line, std::string("embedded instance: ") + e.what());
    }
  }();
  LoadedRecording loaded(std::move(instance));
  RecordingDoc& doc = loaded.doc;

  doc.meta.kind = optional_string(*header, "kind");
  doc.meta.instance_name = optional_string(*header, "instance_name");
  doc.meta.model = optional_string(*header, "model");
  doc.meta.scheduler = optional_string(*header, "scheduler");
  doc.meta.outcome = optional_string(*header, "outcome");
  if (header->find("seed") != nullptr) {
    doc.meta.seed = u64_field(*header, "seed", header_line);
  }
  doc.meta.first_step = u64_field(*header, "first_step", header_line);
  if (doc.meta.first_step == 0) {
    fail(header_line, "first_step must be >= 1");
  }
  if (doc.meta.kind == "witness") {
    doc.meta.witness_prefix_len =
        u64_field(*header, "witness_prefix_len", header_line);
    doc.meta.witness_cycle_len =
        u64_field(*header, "witness_cycle_len", header_line);
  }
  const std::uint64_t declared_steps =
      u64_field(*header, "steps", header_line);
  doc.initial = assignment_from_json(
      loaded.instance, require_field(*header, "initial", header_line),
      header_line);

  bool saw_footer = false;
  while (std::getline(in, raw)) {
    ++line_no;
    if (trim(raw).empty()) {
      continue;
    }
    if (saw_footer) {
      fail(line_no, "trailing record after recording_footer");
    }
    auto parsed = obs::json_parse(raw);
    if (!parsed.has_value()) {
      fail(line_no, "not valid JSON");
    }
    const std::string type = optional_string(*parsed, "type");
    if (type == "recording_step") {
      const std::uint64_t t = u64_field(*parsed, "t", line_no);
      const std::uint64_t expected =
          doc.meta.first_step + doc.steps.size();
      if (t != expected) {
        fail(line_no, "step index " + std::to_string(t) +
                          " out of order (expected " +
                          std::to_string(expected) + ")");
      }
      const std::string text = string_field(*parsed, "step", line_no);
      model::ActivationScript step;
      try {
        step = model::parse_script(loaded.instance, text);
      } catch (const Error& e) {
        fail(line_no, std::string("bad step: ") + e.what());
      }
      if (step.size() != 1) {
        fail(line_no, "step record must hold exactly one step");
      }
      doc.steps.push_back(std::move(step.front()));
      doc.assignments.push_back(assignment_from_json(
          loaded.instance, require_field(*parsed, "pi", line_no),
          line_no));
      if (parsed->find("sent") != nullptr ||
          parsed->find("reads") != nullptr) {
        doc.io.push_back(io_from_record(loaded.instance, *parsed, line_no,
                                        doc.steps.back().nodes.size()));
      } else if (!doc.io.empty()) {
        fail(line_no, "step record is missing I/O fields present earlier");
      }
      if (const obs::JsonValue* t_us = parsed->find("t_us")) {
        doc.step_time_us.push_back(u64_elem(*t_us, line_no, "t_us"));
      } else if (!doc.step_time_us.empty()) {
        fail(line_no, "step record is missing \"t_us\" present earlier");
      }
    } else if (type == "recording_fault") {
      // Schema v3: a fault record appears exactly before the step it
      // precedes, so its "before" index must be the next step index (or
      // one past the last step, for faults that fired after it).
      RecordedFault f;
      f.before = u64_field(*parsed, "before", line_no);
      const std::uint64_t expected = doc.meta.first_step + doc.steps.size();
      if (f.before != expected) {
        fail(line_no, "fault \"before\" index " + std::to_string(f.before) +
                          " out of order (expected " +
                          std::to_string(expected) + ")");
      }
      f.text = string_field(*parsed, "fault", line_no);
      try {
        scenario::parse_fault(f.text, loaded.instance);
      } catch (const Error& e) {
        fail(line_no, std::string("bad fault: ") + e.what());
      }
      f.t_us = u64_field(*parsed, "t_us", line_no);
      if (!doc.faults.empty() && f.t_us < doc.faults.back().t_us) {
        fail(line_no, "fault timestamps must be non-decreasing");
      }
      doc.faults.push_back(std::move(f));
    } else if (type == "recording_footer") {
      const std::uint64_t steps = u64_field(*parsed, "steps", line_no);
      if (steps != doc.steps.size()) {
        fail(line_no, "footer declares " + std::to_string(steps) +
                          " steps, file holds " +
                          std::to_string(doc.steps.size()));
      }
      if (const obs::JsonValue* changes = parsed->find("changes")) {
        const std::uint64_t declared =
            u64_elem(*changes, line_no, "changes");
        if (declared != count_changes(doc)) {
          fail(line_no, "footer change count does not match assignments");
        }
      }
      if (const obs::JsonValue* faults = parsed->find("faults")) {
        const std::uint64_t declared = u64_elem(*faults, line_no, "faults");
        if (declared != doc.faults.size()) {
          fail(line_no, "footer declares " + std::to_string(declared) +
                            " faults, file holds " +
                            std::to_string(doc.faults.size()));
        }
      } else if (!doc.faults.empty()) {
        fail(line_no, "footer is missing the fault count for a faulted "
                      "recording");
      }
      saw_footer = true;
    } else {
      fail(line_no, "unexpected record type \"" + type + '"');
    }
  }
  if (!saw_footer) {
    throw ParseError("recording: truncated input (no recording_footer)");
  }
  if (declared_steps != doc.steps.size()) {
    fail(header_line, "header declares " + std::to_string(declared_steps) +
                          " steps, file holds " +
                          std::to_string(doc.steps.size()));
  }
  if (!doc.io.empty() && doc.io.size() != doc.steps.size()) {
    throw ParseError("recording: I/O fields present on only some steps");
  }
  if (!doc.step_time_us.empty() &&
      doc.step_time_us.size() != doc.steps.size()) {
    throw ParseError("recording: \"t_us\" present on only some steps");
  }
  std::size_t with_selection = 0;
  for (const StepIo& io : doc.io) {
    if (!io.selected.empty()) {
      ++with_selection;
    }
  }
  if (with_selection != 0 && with_selection != doc.io.size()) {
    throw ParseError("recording: \"sel\" present on only some steps");
  }
  return loaded;
}

LoadedRecording load_recording_file(const std::string& path) {
  std::ifstream in(path);
  CR_REQUIRE(in.is_open(), "cannot open recording: " + path);
  return load_recording_jsonl(in);
}

ReplayResult replay_recording(const LoadedRecording& loaded,
                              const obs::Instrumentation& obs) {
  const RecordingDoc& doc = loaded.doc;
  CR_REQUIRE(doc.complete(),
             "cannot replay a partial (ring-buffer) recording: it starts "
             "at step " +
                 std::to_string(doc.meta.first_step));
  obs::Span span = obs.span("replay.run");

  ReplayResult result;
  engine::NetworkState state(loaded.instance);
  if (state.assignments() != doc.initial) {
    // A complete recording must start from the canonical initial state;
    // load validation guarantees shape, this guards semantics.
    result.divergence = ReplayDivergence{0, kNoNode, {}, {}};
    return result;
  }
  result.trace = Trace(state.assignments());
  // Faulted recordings (schema v3): re-apply each fault's state effect
  // at the recorded position. scenario::apply_fault is the same code the
  // sim injector ran, so a clean recording replays divergence-free; the
  // delivery-level faults (link down/up, regime shifts) are no-ops here
  // — their consequences are already baked into the recorded steps.
  std::size_t fault_cursor = 0;
  const auto apply_faults_before = [&](std::uint64_t step_index) {
    while (fault_cursor < doc.faults.size() &&
           doc.faults[fault_cursor].before <= step_index) {
      scenario::apply_fault(
          state,
          scenario::parse_fault(doc.faults[fault_cursor].text,
                                loaded.instance));
      ++fault_cursor;
    }
  };
  for (std::size_t t = 0; t < doc.steps.size(); ++t) {
    apply_faults_before(doc.meta.first_step + t);
    engine::execute_step(state, doc.steps[t]);
    ++result.steps_replayed;
    const Assignment actual = state.assignments();
    result.trace.record(actual);
    const Assignment& expected = doc.assignments[t];
    if (actual != expected) {
      for (NodeId v = 0; v < static_cast<NodeId>(actual.size()); ++v) {
        if (actual[v] != expected[v]) {
          result.divergence = ReplayDivergence{
              doc.meta.first_step + t, v, expected[v], actual[v]};
          break;
        }
      }
      break;
    }
  }
  result.identical = !result.divergence.has_value();

  if (span.enabled()) {
    span.attr("steps", result.steps_replayed)
        .attr("identical", result.identical);
  }
  if (obs.metrics != nullptr) {
    obs.metrics->counter("replay.runs").add();
    obs.metrics->counter("replay.steps").add(result.steps_replayed);
    if (!result.identical) {
      obs.metrics->counter("replay.divergences").add();
    }
  }
  if (obs.sink != nullptr) {
    obs::Event ev("replay_run");
    ev.field("steps", result.steps_replayed)
        .field("identical", result.identical);
    if (result.divergence.has_value()) {
      ev.field("diverged_at", result.divergence->step);
    }
    obs.sink->emit(ev);
  }
  return result;
}

}  // namespace commroute::trace
