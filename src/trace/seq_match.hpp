// Sequence matchers for the three realization senses of Def. 3.2.
//
// Given the path-assignment sequence {pi(t)} induced by an activation
// sequence in model A and the sequence {pi'(t)} induced in model B:
//   * exact:       pi'(t) = pi(t) for all t;
//   * repetition:  {pi'(t)} is {pi(t)} with each element replaced by one
//                  or more consecutive copies of itself;
//   * subsequence: {pi(t)} is a subsequence of {pi'(t)}.
// exact => repetition => subsequence.
//
// Finite-prefix caveat: Def. 3.2 relates *infinite* executions, in which
// both systems take infinitely many no-op (stuttering) steps. On finite
// prefixes a realizing execution may take fewer no-op steps than the
// realized one, so the literal finite definitions would spuriously fail.
// The repetition and subsequence matchers therefore compare modulo
// stuttering: repetition holds iff the two sequences collapse (remove
// consecutive duplicates) to the same sequence, and subsequence holds iff
// the collapsed original is a subsequence of the candidate. On stutter-
// free sequences these coincide with the literal definitions, and the
// hierarchy exact => repetition => subsequence is preserved.
#pragma once

#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace commroute::trace {

/// How strongly `candidate` realizes `original`; ordered by strength.
enum class MatchKind : int {
  kNone = 0,
  kSubsequence = 1,
  kRepetition = 2,
  kExact = 3,
};

std::string to_string(MatchKind kind);

/// pi'(t) = pi(t) for every t (and equal lengths).
bool matches_exactly(const Trace& original, const Trace& candidate);

/// `candidate` is obtained from `original` by replacing each element with
/// one or more consecutive copies (order preserved, nothing else
/// inserted). Equal sequences qualify.
bool matches_with_repetition(const Trace& original, const Trace& candidate);

/// `original` is a subsequence of `candidate`.
bool matches_as_subsequence(const Trace& original, const Trace& candidate);

/// Strongest relation that holds.
MatchKind strongest_match(const Trace& original, const Trace& candidate);

/// Diagnostic for failed exact matches: the first step index at which the
/// two traces differ (or the shorter length when one is a prefix of the
/// other); nullopt when equal.
std::optional<std::size_t> first_divergence(const Trace& a, const Trace& b);

/// Human-readable report of the first divergence: which step, and each
/// node whose assignment differs there. Empty string when the traces are
/// identical.
std::string divergence_report(const spp::Instance& instance, const Trace& a,
                              const Trace& b);

}  // namespace commroute::trace
