#include "trace/recording.hpp"

namespace commroute::trace {

namespace {

Recording record_impl(const spp::Instance& instance,
                      const model::ActivationScript& script,
                      const model::Model* enforce_model,
                      bool require_single_node) {
  Recording recording{engine::NetworkState(instance)};
  recording.trace = Trace(recording.final_state.assignments());
  recording.steps.reserve(script.size());
  for (const model::ActivationStep& step : script) {
    if (enforce_model != nullptr) {
      model::require_step_allowed(*enforce_model, instance, step,
                                  require_single_node);
    }
    engine::StepEffect effect =
        engine::execute_step(recording.final_state, step);
    recording.trace.record(recording.final_state.assignments());
    recording.steps.push_back(RecordedStep{step, std::move(effect)});
  }
  return recording;
}

}  // namespace

Recording record_script(const spp::Instance& instance,
                        const model::ActivationScript& script) {
  return record_impl(instance, script, nullptr, true);
}

Recording record_script(const spp::Instance& instance,
                        const model::ActivationScript& script,
                        const model::Model& enforce_model,
                        bool require_single_node) {
  return record_impl(instance, script, &enforce_model, require_single_node);
}

}  // namespace commroute::trace
