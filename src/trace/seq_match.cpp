#include "trace/seq_match.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace commroute::trace {

std::string to_string(MatchKind kind) {
  switch (kind) {
    case MatchKind::kNone:
      return "none";
    case MatchKind::kSubsequence:
      return "subsequence";
    case MatchKind::kRepetition:
      return "repetition";
    case MatchKind::kExact:
      return "exact";
  }
  throw InvariantError("bad MatchKind");
}

bool matches_exactly(const Trace& original, const Trace& candidate) {
  return original.states() == candidate.states();
}

bool matches_with_repetition(const Trace& original, const Trace& candidate) {
  // Stutter-invariant reading of "each element replaced by one or more
  // consecutive copies": the collapsed sequences must coincide (see
  // seq_match.hpp).
  return original.collapsed() == candidate.collapsed();
}

bool matches_as_subsequence(const Trace& original, const Trace& candidate) {
  // Stutter-invariant reading: the collapsed original embeds into the
  // candidate (see seq_match.hpp).
  const std::vector<Assignment> a = original.collapsed();
  const auto& b = candidate.states();
  std::size_t i = 0;
  for (std::size_t j = 0; j < b.size() && i < a.size(); ++j) {
    if (b[j] == a[i]) {
      ++i;
    }
  }
  return i == a.size();
}

std::optional<std::size_t> first_divergence(const Trace& a,
                                            const Trace& b) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t t = 0; t < common; ++t) {
    if (a.at(t) != b.at(t)) {
      return t;
    }
  }
  if (a.size() != b.size()) {
    return common;
  }
  return std::nullopt;
}

std::string divergence_report(const spp::Instance& instance, const Trace& a,
                              const Trace& b) {
  const auto at = first_divergence(a, b);
  if (!at.has_value()) {
    return "";
  }
  std::string out = "traces diverge at step " + std::to_string(*at);
  if (*at >= a.size() || *at >= b.size()) {
    out += ": one trace ends (lengths " + std::to_string(a.size()) +
           " vs " + std::to_string(b.size()) + ")";
    return out;
  }
  out += ":";
  for (NodeId v = 0; v < instance.node_count(); ++v) {
    if (a.at(*at)[v] != b.at(*at)[v]) {
      out += " " + instance.graph().name(v) + "=" +
             instance.path_name(a.at(*at)[v]) + " vs " +
             instance.path_name(b.at(*at)[v]);
    }
  }
  return out;
}

MatchKind strongest_match(const Trace& original, const Trace& candidate) {
  if (matches_exactly(original, candidate)) {
    return MatchKind::kExact;
  }
  if (matches_with_repetition(original, candidate)) {
    return MatchKind::kRepetition;
  }
  if (matches_as_subsequence(original, candidate)) {
    return MatchKind::kSubsequence;
  }
  return MatchKind::kNone;
}

}  // namespace commroute::trace
