// Path-assignment traces: the sequences {pi(t)}_t that Def. 3.2 compares.
//
// A Trace holds the full path assignment after every step, starting with
// the initial assignment pi(0) (pi_d = (d), everything else epsilon).
#pragma once

#include <string>
#include <vector>

#include "spp/instance.hpp"

namespace commroute::trace {

/// One full assignment, indexed by node.
using Assignment = std::vector<Path>;

class Trace {
 public:
  Trace() = default;

  /// Starts a trace with the given initial assignment pi(0).
  explicit Trace(Assignment initial) { states_.push_back(std::move(initial)); }

  /// Appends pi(t) after a step.
  void record(Assignment a) { states_.push_back(std::move(a)); }

  std::size_t size() const { return states_.size(); }
  bool empty() const { return states_.empty(); }

  /// pi(t). t = 0 is the initial assignment.
  const Assignment& at(std::size_t t) const;

  const Assignment& back() const;

  const std::vector<Assignment>& states() const { return states_; }

  /// True if the last `stable_suffix` entries are identical (a cheap
  /// convergence heuristic for finite prefixes). Requires
  /// stable_suffix >= 1.
  bool settled(std::size_t stable_suffix) const;

  /// Number of steps t >= 1 with pi(t) != pi(t-1).
  std::size_t change_count() const;

  /// Removes consecutive duplicates, returning the "collapsed" sequence of
  /// distinct assignments (useful to compare against repetition
  /// expansions).
  std::vector<Assignment> collapsed() const;

  /// Renders one row per step, columns = nodes; `only_nodes` (by name)
  /// restricts the columns. Intended for reproducing the paper's
  /// activation tables.
  std::string to_string(const spp::Instance& instance,
                        const std::vector<std::string>& only_nodes = {}) const;

  bool operator==(const Trace& o) const { return states_ == o.states_; }

 private:
  std::vector<Assignment> states_;
};

}  // namespace commroute::trace
