#include "trace/trace.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/table.hpp"

namespace commroute::trace {

const Assignment& Trace::at(std::size_t t) const {
  CR_REQUIRE(t < states_.size(), "trace index out of range");
  return states_[t];
}

const Assignment& Trace::back() const {
  CR_REQUIRE(!states_.empty(), "back() of empty trace");
  return states_.back();
}

bool Trace::settled(std::size_t stable_suffix) const {
  CR_REQUIRE(stable_suffix >= 1, "stable_suffix must be >= 1");
  if (states_.size() < stable_suffix) {
    return false;
  }
  const Assignment& last = states_.back();
  for (std::size_t i = states_.size() - stable_suffix;
       i < states_.size(); ++i) {
    if (states_[i] != last) {
      return false;
    }
  }
  return true;
}

std::size_t Trace::change_count() const {
  std::size_t changes = 0;
  for (std::size_t t = 1; t < states_.size(); ++t) {
    if (states_[t] != states_[t - 1]) {
      ++changes;
    }
  }
  return changes;
}

std::vector<Assignment> Trace::collapsed() const {
  std::vector<Assignment> out;
  for (const Assignment& a : states_) {
    if (out.empty() || out.back() != a) {
      out.push_back(a);
    }
  }
  return out;
}

std::string Trace::to_string(
    const spp::Instance& instance,
    const std::vector<std::string>& only_nodes) const {
  const Graph& g = instance.graph();
  std::vector<NodeId> columns;
  if (only_nodes.empty()) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      columns.push_back(v);
    }
  } else {
    for (const std::string& name : only_nodes) {
      columns.push_back(g.node(name));
    }
  }

  TextTable table;
  std::vector<std::string> header{"t"};
  for (const NodeId v : columns) {
    header.push_back("pi_" + g.name(v));
  }
  table.set_header(std::move(header));
  for (std::size_t t = 0; t < states_.size(); ++t) {
    std::vector<std::string> row{std::to_string(t)};
    for (const NodeId v : columns) {
      row.push_back(instance.path_name(states_[t][v]));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace commroute::trace
