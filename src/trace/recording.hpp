// Recorded executions: a trace plus the per-step activation quadruples and
// their effects. The realization transforms (Sec. 3.2 constructions) need
// this level of detail — e.g. Thm. 3.5 orders channels by which one
// furnished the previously/newly selected path.
#pragma once

#include <vector>

#include "engine/executor.hpp"
#include "engine/state.hpp"
#include "trace/trace.hpp"

namespace commroute::trace {

struct RecordedStep {
  model::ActivationStep step;
  engine::StepEffect effect;
};

struct Recording {
  Trace trace;                      ///< pi(0) .. pi(T)
  std::vector<RecordedStep> steps;  ///< steps[t] produced trace[t+1]
  engine::NetworkState final_state; ///< state after the last step

  explicit Recording(engine::NetworkState initial)
      : final_state(std::move(initial)) {}
};

/// Executes `script` from the initial state of `instance`, recording
/// everything. Steps are validated structurally; pass a model to also
/// enforce model legality.
Recording record_script(const spp::Instance& instance,
                        const model::ActivationScript& script);

Recording record_script(const spp::Instance& instance,
                        const model::ActivationScript& script,
                        const model::Model& enforce_model,
                        bool require_single_node = true);

}  // namespace commroute::trace
