// The realization-strength lattice (Defs. 3.1 / 3.2) and interval bounds.
//
// For models A (realized) and B (realizer) the paper tracks how strongly
// B can reproduce A's executions:
//   4 — exact realization            (pi'(t) = pi(t) for all t)
//   3 — realization with repetition  (pi' is pi with elements repeated)
//   2 — realization as a subsequence (pi is a subsequence of pi')
//   1 — oscillation preservation     (A diverges => B can diverge)
//  -1 — oscillation preservation FAILS (encoded as level 0 here)
// Each level implies all lower ones. Published knowledge about a pair is
// an interval [lo, hi]: lo = strongest proven realization, hi = strongest
// not-yet-refuted one. The paper's cell notation maps onto intervals:
//   "4"/"3"/"2"  lo == hi == value        "-1"  lo == hi == 0
//   ">=k"        [k, 4]                   "<=k"  [0, k]
//   "k,m"        [k, m]                   blank  [0, 4]
#pragma once

#include <string>

#include "support/error.hpp"

namespace commroute::realization {

enum class Strength : int {
  kNotPreserving = 0,  ///< the paper's "-1"
  kOscillation = 1,
  kSubsequence = 2,
  kRepetition = 3,
  kExact = 4,
};

std::string to_string(Strength s);

inline int level(Strength s) { return static_cast<int>(s); }

inline Strength strength_from_level(int l) {
  CR_REQUIRE(l >= 0 && l <= 4, "strength level out of range");
  return static_cast<Strength>(l);
}

inline Strength min_strength(Strength a, Strength b) {
  return level(a) < level(b) ? a : b;
}

/// Proven interval of realization strengths for one (realized, realizer)
/// model pair, plus provenance strings for both bounds.
struct RelationBound {
  Strength lo = Strength::kNotPreserving;
  Strength hi = Strength::kExact;
  std::string lo_source;  ///< how the lower bound was proven
  std::string hi_source;  ///< how the upper bound was proven

  /// Raises lo; returns true on change, throws on contradiction.
  bool tighten_lo(Strength s, const std::string& source);

  /// Lowers hi; returns true on change, throws on contradiction.
  bool tighten_hi(Strength s, const std::string& source);

  bool known_exactly() const { return lo == hi; }
  bool unknown() const {
    return lo == Strength::kNotPreserving && hi == Strength::kExact;
  }

  /// The paper's cell notation (see file comment); blank when nothing is
  /// known.
  std::string paper_notation() const;

  /// True when this interval is consistent with (contained in or equal
  /// to, overlapping with) `other`.
  bool overlaps(const RelationBound& other) const {
    return level(lo) <= level(other.hi) && level(other.lo) <= level(hi);
  }
  bool contains(const RelationBound& other) const {
    return level(lo) <= level(other.lo) && level(other.hi) <= level(hi);
  }
};

/// Parses paper cell notation ("4", "-1", ">=3", "<=2", "2,3", "") into an
/// interval. "-" (diagonal) parses as [4,4].
RelationBound parse_paper_notation(const std::string& cell);

}  // namespace commroute::realization
