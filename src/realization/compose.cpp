#include "realization/compose.hpp"

#include <array>
#include <sstream>

#include "support/error.hpp"

namespace commroute::realization {

using model::Model;

Strength TransformChain::claimed() const {
  Strength s = Strength::kExact;
  for (const TransformCase& link : links) {
    s = min_strength(s, link.claimed);
  }
  return s;
}

std::string TransformChain::to_string() const {
  std::ostringstream os;
  os << endpoint_from.name();
  for (const TransformCase& link : links) {
    os << " -[" << link.name << ", " << realization::to_string(link.claimed)
       << "]-> " << link.to.name();
  }
  os << "  (overall: " << realization::to_string(claimed()) << ")";
  return os.str();
}

std::optional<TransformChain> find_transform_chain(const Model& from,
                                                   const Model& to) {
  // Max-bottleneck shortest path over the theorem graph: Bellman-Ford
  // style relaxation on 24 nodes; `best[m]` is the strongest bottleneck
  // from `from` to m, `via[m]` the last link used.
  constexpr int kUnreachable = -1;
  constexpr int kInfiniteHops = 1 << 20;
  std::array<int, Model::kCount> best;
  std::array<int, Model::kCount> hops;
  best.fill(kUnreachable);
  hops.fill(kInfiniteHops);
  std::array<std::optional<TransformCase>, Model::kCount> via;

  best[static_cast<std::size_t>(from.index())] = level(Strength::kExact);
  hops[static_cast<std::size_t>(from.index())] = 0;

  const auto& cases = all_transform_cases();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const TransformCase& c : cases) {
      const std::size_t si = static_cast<std::size_t>(c.from.index());
      const std::size_t di = static_cast<std::size_t>(c.to.index());
      if (best[si] == kUnreachable) {
        continue;
      }
      const int through = std::min(best[si], level(c.claimed));
      // Lexicographic (bottleneck desc, hops asc): the hop tie-break
      // keeps the predecessor graph acyclic.
      if (through > best[di] ||
          (through == best[di] && hops[si] + 1 < hops[di])) {
        best[di] = through;
        hops[di] = hops[si] + 1;
        via[di] = c;
        changed = true;
      }
    }
  }

  if (best[static_cast<std::size_t>(to.index())] == kUnreachable) {
    return std::nullopt;
  }

  TransformChain chain;
  chain.endpoint_from = from;
  chain.endpoint_to = to;
  // Walk back through `via`.
  std::vector<TransformCase> reversed;
  Model at = to;
  while (!(at == from)) {
    const auto& link = via[static_cast<std::size_t>(at.index())];
    CR_ASSERT(link.has_value(), "broken predecessor chain");
    reversed.push_back(*link);
    at = link->from;
  }
  chain.links.assign(reversed.rbegin(), reversed.rend());
  return chain;
}

model::ActivationScript apply_chain(const TransformChain& chain,
                                    const spp::Instance& instance,
                                    const trace::Recording& recording) {
  if (chain.links.empty()) {
    model::ActivationScript out;
    out.reserve(recording.steps.size());
    for (const trace::RecordedStep& rs : recording.steps) {
      out.push_back(rs.step);
    }
    return out;
  }

  model::ActivationScript script;
  const trace::Recording* current = &recording;
  std::optional<trace::Recording> owned;
  for (std::size_t i = 0; i < chain.links.size(); ++i) {
    const TransformCase& link = chain.links[i];
    script = apply_transform(link, instance, *current);
    if (i + 1 < chain.links.size()) {
      owned.emplace(trace::record_script(instance, script, link.to));
      current = &*owned;
    }
  }
  return script;
}

}  // namespace commroute::realization
