// Machine-checked facts extending the paper's knowledge base.
//
// The paper leaves the UEO, UEF, U1A, UMA, and UEA columns of Figure 4
// (and the corresponding Figure 3 cells) largely blank. Our exhaustive
// model checker resolves them: DISAGREE oscillates under R1O but provably
// cannot oscillate under any of those five unreliable models (the full
// reachable configuration space — a few hundred states — is explored
// without hitting any bound, and no fair SCC with a changing assignment
// exists). Hence none of the five preserves R1O's oscillations:
//
//     hi(R1O, B) = -1   for B in {UEO, UEF, U1A, UMA, UEA}.
//
// Closing these five new facts together with the paper's foundational
// ones resolves 70 of the 115 blank cells of Figures 3 and 4 to -1 (any
// model that realizes R1O at all cannot be realized by the five). The 45
// still-open cells all relate members of the strong E/A family to one
// another, where DISAGREE cannot separate. verify_machine_facts()
// re-runs the checker proofs.
#pragma once

#include <vector>

#include "realization/closure.hpp"
#include "realization/facts.hpp"

namespace commroute::realization {

/// The five checker-derived upper bounds described above.
const std::vector<Fact>& machine_checked_facts();

/// Re-establishes the facts from scratch: DISAGREE oscillates under R1O,
/// and exhaustively cannot under each of the five models. Returns false
/// (never throws) if any check fails — e.g. under engine changes.
bool verify_machine_facts();

/// Closure of foundational + machine-checked facts.
RealizationTable extended_closure();

/// Number of fully unknown (blank) cells in the 24x24 table outside the
/// diagonal.
std::size_t count_unknown_cells(const RealizationTable& table);

}  // namespace commroute::realization
