// Constructive realization transforms: executable versions of the
// positive proofs of Sec. 3.2.
//
// Each transform takes a recorded execution in a source model and emits an
// activation script for a target model whose induced trace realizes the
// source trace in the claimed sense:
//   Prop. 3.3(1..4) — identity embeddings (the same script is legal in the
//                     stronger model); exact.
//   Prop. 3.4       — wMS -> wES: pad each step with f = 0 reads on the
//                     unprocessed channels; exact.
//   Thm. 3.5        — wMy -> w1y: split each multi-channel step into
//                     single-channel steps, ordered so the channel of the
//                     newly selected path goes first and the channel of
//                     the previously selected path goes last; repetition.
//   Prop. 3.6       — R1S -> R1O: lockstep simulation with "flagged"
//                     messages marking the final announcement of each
//                     batch (subsequence); U1S -> U1O: split an f = k read
//                     into k one-message reads dropping all but the last
//                     delivered one (repetition).
//   Thm. 3.7        — U1O -> R1S: dropped reads become f = 0 reads and a
//                     delivered read consumes all previously skipped
//                     messages; exact.
#pragma once

#include <string>
#include <vector>

#include "model/model.hpp"
#include "realization/relation.hpp"
#include "trace/recording.hpp"

namespace commroute::realization {

enum class TransformRule {
  kIdentity,          ///< Prop. 3.3: script unchanged
  kPadEmptyReads,     ///< Prop. 3.4: add f = 0 reads to reach X = all
  kExpandMulti,       ///< Thm. 3.5: one step per processed channel
  kFlagBatches,       ///< Prop. 3.6 (reliable): R1S -> R1O
  kSplitDropAllButLast,  ///< Prop. 3.6 (unreliable): U1S -> U1O
  kAccumulateSkips,   ///< Thm. 3.7: U1O -> R1S
};

struct TransformCase {
  std::string name;     ///< the theorem it implements
  model::Model from;    ///< source model (the recording's model)
  model::Model to;      ///< target model (the emitted script's model)
  Strength claimed;     ///< relation the transform guarantees
  TransformRule rule;
};

/// Every (source, target) instantiation of the Sec. 3.2 theorems.
std::vector<TransformCase> all_transform_cases();

/// Applies `c.rule` to a recording made in model `c.from`; the returned
/// script is legal in `c.to` and induces a trace realizing the source
/// trace in sense `c.claimed`.
model::ActivationScript apply_transform(const TransformCase& c,
                                        const spp::Instance& instance,
                                        const trace::Recording& recording);

}  // namespace commroute::realization
