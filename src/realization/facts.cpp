#include "realization/facts.hpp"

namespace commroute::realization {

namespace {

using model::MessageMode;
using model::Model;
using model::NeighborMode;
using model::Reliability;

Model make(Reliability w, NeighborMode x, MessageMode y) {
  return Model{w, x, y};
}

std::vector<Fact> build_facts() {
  std::vector<Fact> facts;
  const auto lower = [&](Model a, Model b, Strength s,
                         const std::string& source) {
    facts.push_back(Fact{a, b, FactKind::kLowerBound, s, source});
  };
  const auto upper = [&](Model a, Model b, Strength s,
                         const std::string& source) {
    facts.push_back(Fact{a, b, FactKind::kUpperBound, s, source});
  };

  const std::vector<Reliability> reliabilities{Reliability::kReliable,
                                               Reliability::kUnreliable};
  const std::vector<NeighborMode> neighbor_modes{
      NeighborMode::kOne, NeighborMode::kMultiple, NeighborMode::kEvery};
  const std::vector<MessageMode> message_modes{
      MessageMode::kOne, MessageMode::kSome, MessageMode::kForced,
      MessageMode::kAll};

  // Reflexivity.
  for (const Model& m : Model::all()) {
    lower(m, m, Strength::kExact, "reflexivity");
  }

  // Prop. 3.3(1): Uxy exactly realizes Rxy.
  for (const NeighborMode x : neighbor_modes) {
    for (const MessageMode y : message_modes) {
      lower(make(Reliability::kReliable, x, y),
            make(Reliability::kUnreliable, x, y), Strength::kExact,
            "Prop. 3.3(1)");
    }
  }

  for (const Reliability w : reliabilities) {
    for (const NeighborMode x : neighbor_modes) {
      // Prop. 3.3(2): wxS exactly realizes wxF.
      lower(make(w, x, MessageMode::kForced), make(w, x, MessageMode::kSome),
            Strength::kExact, "Prop. 3.3(2)");
      // Prop. 3.3(3): wxF exactly realizes wxO and wxA.
      lower(make(w, x, MessageMode::kOne), make(w, x, MessageMode::kForced),
            Strength::kExact, "Prop. 3.3(3)");
      lower(make(w, x, MessageMode::kAll), make(w, x, MessageMode::kForced),
            Strength::kExact, "Prop. 3.3(3)");
    }
    for (const MessageMode y : message_modes) {
      // Prop. 3.3(4): wMy exactly realizes w1y and wEy.
      lower(make(w, NeighborMode::kOne, y),
            make(w, NeighborMode::kMultiple, y), Strength::kExact,
            "Prop. 3.3(4)");
      lower(make(w, NeighborMode::kEvery, y),
            make(w, NeighborMode::kMultiple, y), Strength::kExact,
            "Prop. 3.3(4)");
      // Thm. 3.5: w1y realizes wMy with repetition.
      lower(make(w, NeighborMode::kMultiple, y),
            make(w, NeighborMode::kOne, y), Strength::kRepetition,
            "Thm. 3.5");
    }
    // Prop. 3.4: wES exactly realizes wMS.
    lower(make(w, NeighborMode::kMultiple, MessageMode::kSome),
          make(w, NeighborMode::kEvery, MessageMode::kSome),
          Strength::kExact, "Prop. 3.4");
  }

  const Model r1o = Model::parse("R1O");
  const Model r1s = Model::parse("R1S");
  const Model u1o = Model::parse("U1O");
  const Model u1s = Model::parse("U1S");
  const Model reo = Model::parse("REO");
  const Model ref = Model::parse("REF");
  const Model rea = Model::parse("REA");

  // Prop. 3.6: R1O realizes R1S as a subsequence; U1O realizes U1S with
  // repetition.
  lower(r1s, r1o, Strength::kSubsequence, "Prop. 3.6");
  lower(u1s, u1o, Strength::kRepetition, "Prop. 3.6");

  // Thm. 3.7: R1S exactly realizes U1O.
  lower(u1o, r1s, Strength::kExact, "Thm. 3.7");

  // Thm. 3.8: R1O's oscillations are not preserved by REO, REF, R1A, RMA,
  // REA (witness: DISAGREE, Ex. A.1).
  for (const char* name : {"REO", "REF", "R1A", "RMA", "REA"}) {
    upper(r1o, Model::parse(name), Strength::kNotPreserving, "Thm. 3.8");
  }

  // Thm. 3.9: REO's and REF's oscillations are not preserved by the
  // polling models (witness: Fig. 6, Ex. A.2).
  for (const char* name : {"R1A", "RMA", "REA"}) {
    upper(reo, Model::parse(name), Strength::kNotPreserving, "Thm. 3.9");
    upper(ref, Model::parse(name), Strength::kNotPreserving, "Thm. 3.9");
  }

  // Prop. 3.10: REO cannot be exactly realized in R1O (Ex. A.3).
  upper(reo, r1o, Strength::kRepetition, "Prop. 3.10");
  // Prop. 3.11: REA cannot be realized with repetition in R1O (Ex. A.4).
  upper(rea, r1o, Strength::kSubsequence, "Prop. 3.11");
  // Prop. 3.12: REA cannot be exactly realized by R1S (Ex. A.5).
  upper(rea, r1s, Strength::kRepetition, "Prop. 3.12");
  // Prop. 3.13: REO cannot be exactly realized by R1S (Ex. A.5's sequence
  // is also an REO sequence).
  upper(reo, r1s, Strength::kRepetition, "Prop. 3.13");

  return facts;
}

}  // namespace

const std::vector<Fact>& foundational_facts() {
  static const std::vector<Fact> facts = build_facts();
  return facts;
}

}  // namespace commroute::realization
