#include "realization/paper_data.hpp"

#include <array>
#include <vector>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace commroute::realization {

namespace {

using model::Model;

// Cells use ';' separators so blanks survive; tokens: 4 3 2 -1 >=k <=k
// k,m  -  (diagonal) and empty (unknown). Transcribed from the paper.

// Figure 3 columns: R1O RMO REO R1S RMS RES R1F RMF REF R1A RMA REA.
constexpr const char* kFig3Rows[24] = {
    /* R1O */ "-;4;-1;4;4;4;4;4;-1;-1;-1;-1",
    /* RMO */ "3;-;-1;3;4;4;3;4;-1;-1;-1;-1",
    /* REO */ "3;4;-;3;4;4;3;4;4;-1;-1;-1",
    /* R1S */ "2;2;-1;-;4;4;>=2;>=2;-1;-1;-1;-1",
    /* RMS */ "2;2;-1;3;-;4;2,3;>=2;-1;-1;-1;-1",
    /* RES */ "2;2;-1;3;4;-;2,3;>=2;-1;-1;-1;-1",
    /* R1F */ "2;2;-1;4;4;4;-;4;-1;-1;-1;-1",
    /* RMF */ "2;2;-1;3;4;4;3;-;-1;-1;-1;-1",
    /* REF */ "2;2;<=2;3;4;4;3;4;-;-1;-1;-1",
    /* R1A */ "2;2;<=2;4;4;4;4;4;;-;4;",
    /* RMA */ "2;2;<=2;3;4;4;3;4;;3;-;",
    /* REA */ "2;2;<=2;3;4;4;3;4;4;3;4;-",
    /* U1O */ ">=2;>=2;-1;4;4;4;>=2;>=2;-1;-1;-1;-1",
    /* UMO */ "2,3;>=2;-1;3;>=3;>=3;2,3;>=2;-1;-1;-1;-1",
    /* UEO */ "2,3;>=2;;3;>=3;>=3;2,3;>=2;;-1;-1;-1",
    /* U1S */ "2;2;-1;>=3;>=3;>=3;>=2;>=2;-1;-1;-1;-1",
    /* UMS */ "2;2;-1;3;>=3;>=3;2,3;>=2;-1;-1;-1;-1",
    /* UES */ "2;2;-1;3;>=3;>=3;2,3;>=2;-1;-1;-1;-1",
    /* U1F */ "2;2;-1;>=3;>=3;>=3;>=2;>=2;-1;-1;-1;-1",
    /* UMF */ "2;2;-1;3;>=3;>=3;2,3;>=2;-1;-1;-1;-1",
    /* UEF */ "2;2;<=2;3;>=3;>=3;2,3;>=2;;-1;-1;-1",
    /* U1A */ "2;2;<=2;>=3;>=3;>=3;>=2;>=2;;;;",
    /* UMA */ "2;2;<=2;3;>=3;>=3;2,3;>=2;;<=3;;",
    /* UEA */ "2;2;<=2;3;>=3;>=3;2,3;>=2;;<=3;;",
};

// Figure 4 columns: U1O UMO UEO U1S UMS UES U1F UMF UEF U1A UMA UEA.
constexpr const char* kFig4Rows[24] = {
    /* R1O */ "4;4;;4;4;4;4;4;;;;",
    /* RMO */ "3;4;;>=3;4;4;>=3;4;;;;",
    /* REO */ "3;4;4;>=3;4;4;>=3;4;4;;;",
    /* R1S */ ">=3;>=3;;4;4;4;>=3;>=3;;;;",
    /* RMS */ "3;>=3;;>=3;4;4;>=3;>=3;;;;",
    /* RES */ "3;>=3;;>=3;4;4;>=3;>=3;;;;",
    /* R1F */ ">=3;>=3;;4;4;4;4;4;;;;",
    /* RMF */ "3;>=3;;>=3;4;4;>=3;4;;;;",
    /* REF */ "3;>=3;;>=3;4;4;>=3;4;4;;;",
    /* R1A */ ">=3;>=3;;4;4;4;4;4;;4;4;",
    /* RMA */ "3;>=3;;>=3;4;4;>=3;4;;>=3;4;",
    /* REA */ "3;>=3;;>=3;4;4;>=3;4;4;>=3;4;4",
    /* U1O */ "-;4;;4;4;4;4;4;;;;",
    /* UMO */ "3;-;;>=3;4;4;>=3;4;;;;",
    /* UEO */ "3;4;-;>=3;4;4;>=3;4;4;;;",
    /* U1S */ ">=3;>=3;;-;4;4;>=3;>=3;;;;",
    /* UMS */ "3;>=3;;>=3;-;4;>=3;>=3;;;;",
    /* UES */ "3;>=3;;>=3;4;-;>=3;>=3;;;;",
    /* U1F */ ">=3;>=3;;4;4;4;-;4;;;;",
    /* UMF */ "3;>=3;;>=3;4;4;>=3;-;;;;",
    /* UEF */ "3;>=3;;>=3;4;4;>=3;4;-;;;",
    /* U1A */ ">=3;>=3;;4;4;4;4;4;;-;4;",
    /* UMA */ "3;>=3;;>=3;4;4;>=3;4;;>=3;-;",
    /* UEA */ "3;>=3;;>=3;4;4;>=3;4;4;>=3;4;-",
};

/// Paper figure row/column order: O, S, F, A message modes; 1, M, E
/// neighbors within each; reliable block before unreliable. This is
/// exactly Model::index() order, so index() doubles as the row number.
std::vector<std::string> split_cells(const char* row) {
  // Cannot use split_trimmed: empty cells are significant.
  std::vector<std::string> cells;
  std::string current;
  for (const char* p = row;; ++p) {
    if (*p == ';' || *p == '\0') {
      cells.emplace_back(trim(current));
      current.clear();
      if (*p == '\0') {
        break;
      }
    } else {
      current += *p;
    }
  }
  return cells;
}

RelationBound lookup(const char* const rows[24], const Model& realized,
                     int column) {
  const std::vector<std::string> cells =
      split_cells(rows[realized.index()]);
  CR_REQUIRE(cells.size() == 12, "malformed paper matrix row for " +
                                     realized.name());
  return parse_paper_notation(cells[static_cast<std::size_t>(column)]);
}

}  // namespace

RelationBound paper_fig3(const Model& realized, const Model& realizer) {
  CR_REQUIRE(realizer.reliable(), "figure 3 columns are reliable models");
  return lookup(kFig3Rows, realized, realizer.index());
}

RelationBound paper_fig4(const Model& realized, const Model& realizer) {
  CR_REQUIRE(!realizer.reliable(),
             "figure 4 columns are unreliable models");
  return lookup(kFig4Rows, realized, realizer.index() - 12);
}

RelationBound paper_bound(const Model& realized, const Model& realizer) {
  return realizer.reliable() ? paper_fig3(realized, realizer)
                             : paper_fig4(realized, realizer);
}

}  // namespace commroute::realization
