// The published realization matrices (Figures 3 and 4 of the paper),
// transcribed verbatim for comparison against the computed closure.
//
// Rows: all 24 models in the paper's order (R1O, RMO, REO, R1S, RMS, RES,
// R1F, RMF, REF, R1A, RMA, REA, then the U-counterparts). Figure 3's
// columns are the 12 reliable models; Figure 4's columns are the 12
// unreliable models. Cell (row A, column B) states what the paper proved
// about B's ability to realize A.
#pragma once

#include "model/model.hpp"
#include "realization/relation.hpp"

namespace commroute::realization {

/// The interval the paper publishes for (realized=row, realizer=column).
/// `realizer` must be reliable for figure 3 and unreliable for figure 4;
/// both figures accept all 24 models as rows.
RelationBound paper_fig3(const model::Model& realized,
                         const model::Model& realizer);
RelationBound paper_fig4(const model::Model& realized,
                         const model::Model& realizer);

/// Uniform accessor across both figures: dispatches on the realizer's
/// reliability.
RelationBound paper_bound(const model::Model& realized,
                          const model::Model& realizer);

}  // namespace commroute::realization
