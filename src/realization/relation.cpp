#include "realization/relation.hpp"

#include "support/strings.hpp"

namespace commroute::realization {

std::string to_string(Strength s) {
  switch (s) {
    case Strength::kNotPreserving:
      return "not-oscillation-preserving";
    case Strength::kOscillation:
      return "oscillation-preserving";
    case Strength::kSubsequence:
      return "subsequence";
    case Strength::kRepetition:
      return "repetition";
    case Strength::kExact:
      return "exact";
  }
  throw InvariantError("bad Strength");
}

bool RelationBound::tighten_lo(Strength s, const std::string& source) {
  if (level(s) <= level(lo)) {
    return false;
  }
  CR_REQUIRE(level(s) <= level(hi),
             "contradictory bounds: lower " + std::to_string(level(s)) +
                 " (" + source + ") above upper " +
                 std::to_string(level(hi)) + " (" + hi_source + ")");
  lo = s;
  lo_source = source;
  return true;
}

bool RelationBound::tighten_hi(Strength s, const std::string& source) {
  if (level(s) >= level(hi)) {
    return false;
  }
  CR_REQUIRE(level(s) >= level(lo),
             "contradictory bounds: upper " + std::to_string(level(s)) +
                 " (" + source + ") below lower " +
                 std::to_string(level(lo)) + " (" + lo_source + ")");
  hi = s;
  hi_source = source;
  return true;
}

std::string RelationBound::paper_notation() const {
  const int l = level(lo);
  const int h = level(hi);
  if (l == h) {
    return (l == 0) ? "-1" : std::to_string(l);
  }
  if (l == 0 && h == 4) {
    return "";
  }
  if (h == 4) {
    return ">=" + std::to_string(l);
  }
  if (l == 0) {
    return "<=" + std::to_string(h);
  }
  return std::to_string(l) + "," + std::to_string(h);
}

RelationBound parse_paper_notation(const std::string& cell) {
  const std::string text{trim(cell)};
  RelationBound bound;
  if (text.empty()) {
    return bound;  // [0, 4]
  }
  if (text == "-" || text == "—") {
    bound.lo = bound.hi = Strength::kExact;
    return bound;
  }
  if (text == "-1") {
    bound.lo = bound.hi = Strength::kNotPreserving;
    return bound;
  }
  const auto parse_level = [&](const std::string& digits) {
    CR_REQUIRE(digits.size() == 1 && digits[0] >= '0' && digits[0] <= '4',
               "bad strength digit in cell '" + cell + "'");
    return strength_from_level(digits[0] - '0');
  };
  if (starts_with(text, ">=")) {
    bound.lo = parse_level(text.substr(2));
    return bound;
  }
  if (starts_with(text, "<=")) {
    bound.hi = parse_level(text.substr(2));
    return bound;
  }
  const auto comma = text.find(',');
  if (comma != std::string::npos) {
    bound.lo = parse_level(text.substr(0, comma));
    bound.hi = parse_level(text.substr(comma + 1));
    CR_REQUIRE(level(bound.lo) <= level(bound.hi),
               "inverted interval in cell '" + cell + "'");
    return bound;
  }
  bound.lo = bound.hi = parse_level(text);
  return bound;
}

}  // namespace commroute::realization
