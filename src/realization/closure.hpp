// Transitivity closure over realization facts (Figures 1 and 2).
//
// Let r(A, B) be the (unknown, true) strongest sense in which model B
// realizes model A, and [lo, hi] the proven interval. Three rules close
// the fact database (Sec. 3.4):
//
//  P  (Fig. 1)  r(A,C) >= min(r(A,B), r(B,C)):
//               lo[A][C] <- max(lo[A][C], min(lo[A][B], lo[B][C]))
//  N1 (Fig. 2, left; "push the tail forward")
//               if lo[A][B] > hi[A][C] then hi[B][C] <- min(hi[B][C],
//               hi[A][C]):  B realizes A strongly but C cannot realize A,
//               so C cannot realize B either.
//  N2 (Fig. 2, right; "pull the head backward")
//               if lo[B][C] > hi[A][C] then hi[A][B] <- min(hi[A][B],
//               hi[A][C]):  C realizes B strongly but cannot realize A,
//               so B cannot realize A either (else compose through B).
//
// Iterating the rules to a fixpoint from the foundational facts
// regenerates the published matrices of Figures 3 and 4 (see
// realization/matrix.hpp and bench_fig3/4).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "model/model.hpp"
#include "realization/facts.hpp"
#include "realization/relation.hpp"

namespace commroute::realization {

/// The 24x24 table of proven realization bounds; entry (A, B) answers
/// "how strongly can B realize A's executions?".
class RealizationTable {
 public:
  /// Empty table: everything unknown except reflexivity is NOT assumed.
  RealizationTable();

  /// Builds the closure of the given facts (defaults to the paper's
  /// foundational fact database).
  static RealizationTable closure(
      const std::vector<Fact>& facts = foundational_facts());

  const RelationBound& cell(const model::Model& realized,
                            const model::Model& realizer) const;

  /// Applies one fact; returns true if anything changed.
  bool apply(const Fact& fact);

  /// Runs rules P / N1 / N2 to a fixpoint; returns the number of
  /// tightenings performed.
  std::size_t close();

  /// Full derivation report for one pair: bound, notation, provenance.
  std::string explain(const model::Model& realized,
                      const model::Model& realizer) const;

 private:
  std::array<std::array<RelationBound, model::Model::kCount>,
             model::Model::kCount>
      cells_;

  RelationBound& at(const model::Model& realized,
                    const model::Model& realizer);
};

}  // namespace commroute::realization
