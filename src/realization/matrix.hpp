// Rendering and comparison of realization matrices (Figures 3 and 4).
#pragma once

#include <string>
#include <vector>

#include "realization/closure.hpp"
#include "realization/paper_data.hpp"

namespace commroute::realization {

/// Which figure's column block to render/compare.
enum class Figure { kFig3Reliable, kFig4Unreliable };

/// Renders the 24x12 matrix of `table` in the paper's cell notation
/// (diagonal printed as "-").
std::string render_matrix(const RealizationTable& table, Figure figure);

/// Renders the published matrix for reference.
std::string render_paper_matrix(Figure figure);

/// One cell-level discrepancy between the computed closure and the paper.
struct CellDiff {
  model::Model realized;
  model::Model realizer;
  RelationBound computed;
  RelationBound published;
  /// Classification:
  ///   "tighter"       computed interval strictly inside the published one
  ///                   (we derived more than the paper lists)
  ///   "looser"        published strictly inside computed (we failed to
  ///                   re-derive a published bound)
  ///   "incomparable"  overlapping but neither contains the other
  ///   "contradiction" disjoint intervals
  std::string kind;
};

struct MatrixComparison {
  std::size_t cells = 0;
  std::size_t equal = 0;
  std::vector<CellDiff> diffs;

  bool has_contradiction() const;
  bool has_looser() const;
  std::string summary() const;
};

/// Compares the computed table against the published figure.
MatrixComparison compare_with_paper(const RealizationTable& table,
                                    Figure figure);

}  // namespace commroute::realization
