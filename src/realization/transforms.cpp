#include "realization/transforms.hpp"

#include <algorithm>
#include <unordered_map>

#include "engine/executor.hpp"
#include "support/error.hpp"

namespace commroute::realization {

using model::ActivationStep;
using model::MessageMode;
using model::Model;
using model::NeighborMode;
using model::ReadSpec;
using model::Reliability;

namespace {

/// Some transforms drop source steps that consumed nothing. One such step
/// must not be dropped: the destination's first activation, whose only
/// effect is announcing (d). This emits a stand-in activation of the
/// destination that is legal in the target model. It may consume messages
/// from a channel *into* the destination, which is harmless: the
/// destination never selects based on received routes, so neither the
/// assignment trace nor any other node's behavior can observe it.
model::ActivationStep destination_standin(const spp::Instance& instance,
                                          const Model& target,
                                          ChannelIdx preferred) {
  const NodeId d = instance.destination();
  ChannelIdx c = preferred;
  if (c == kNoChannel) {
    c = instance.graph().in_channels(d).front();
  }
  std::optional<std::uint32_t> f;
  switch (target.messages) {
    case MessageMode::kOne:
      f = 1u;
      break;
    case MessageMode::kSome:
      f = 0u;  // consume nothing at all
      break;
    case MessageMode::kForced:
      f = 1u;
      break;
    case MessageMode::kAll:
      f = std::nullopt;
      break;
  }
  ActivationStep step;
  step.nodes = {d};
  step.reads = {ReadSpec{c, f, {}}};
  return step;
}

// ---- Prop. 3.4: wMS -> wES -------------------------------------------------

model::ActivationScript pad_empty_reads(const spp::Instance& instance,
                                        const trace::Recording& recording) {
  model::ActivationScript out;
  out.reserve(recording.steps.size());
  for (const trace::RecordedStep& rs : recording.steps) {
    ActivationStep step = rs.step;
    const NodeId v = step.node();
    for (const ChannelIdx c : instance.graph().in_channels(v)) {
      const bool present =
          std::any_of(step.reads.begin(), step.reads.end(),
                      [c](const ReadSpec& r) { return r.channel == c; });
      if (!present) {
        step.reads.push_back(ReadSpec{c, 0u, {}});
      }
    }
    out.push_back(std::move(step));
  }
  return out;
}

// ---- Thm. 3.5: wMy -> w1y --------------------------------------------------

model::ActivationScript expand_multi(const spp::Instance& instance,
                                     const Model& target,
                                     const trace::Recording& recording) {
  const Graph& g = instance.graph();
  model::ActivationScript out;

  for (std::size_t t = 0; t < recording.steps.size(); ++t) {
    const ActivationStep& step = recording.steps[t].step;
    const NodeId v = step.node();
    if (step.reads.empty()) {
      // An empty-X step changes no assignment; drop it — unless it was the
      // destination's first activation, whose announcement must survive.
      if (!recording.steps[t].effect.sent.empty()) {
        CR_ASSERT(v == instance.destination(),
                  "only the destination can announce without reading");
        out.push_back(destination_standin(instance, target, kNoChannel));
      }
      continue;
    }

    const Path& old_path = recording.trace.at(t)[v];       // P
    const Path& new_path = recording.trace.at(t + 1)[v];   // Q
    const ChannelIdx new_channel =
        (new_path.size() >= 2) ? g.channel(new_path.next_hop(), v)
                               : kNoChannel;
    const ChannelIdx old_channel =
        (old_path.size() >= 2) ? g.channel(old_path.next_hop(), v)
                               : kNoChannel;

    // Order the reads: channel of Q first, channel of P last; when they
    // coincide, first if Q is preferred to P, last otherwise.
    std::vector<ReadSpec> ordered = step.reads;
    std::stable_sort(
        ordered.begin(), ordered.end(),
        [&](const ReadSpec& a, const ReadSpec& b) {
          const auto priority = [&](const ReadSpec& r) -> int {
            if (new_channel == old_channel) {
              if (r.channel != new_channel || new_channel == kNoChannel) {
                return 1;
              }
              if (new_path == old_path) {
                return 1;
              }
              // Same channel furnishing both: first on improvement.
              const bool improved =
                  old_path.empty() ||
                  (!new_path.empty() &&
                   instance.prefers(v, new_path, old_path));
              return improved ? 0 : 2;
            }
            if (r.channel == new_channel) {
              return 0;
            }
            if (r.channel == old_channel) {
              return 2;
            }
            return 1;
          };
          return priority(a) < priority(b);
        });

    for (const ReadSpec& read : ordered) {
      ActivationStep single;
      single.nodes = {v};
      single.reads = {read};
      out.push_back(std::move(single));
    }
  }
  return out;
}

// ---- Prop. 3.6 (unreliable): U1S -> U1O -----------------------------------

model::ActivationScript split_drop_all_but_last(
    const spp::Instance& instance, const trace::Recording& recording) {
  const Model u1o = Model::parse("U1O");
  model::ActivationScript out;
  for (const trace::RecordedStep& rs : recording.steps) {
    const ActivationStep& step = rs.step;
    CR_REQUIRE(step.reads.size() == 1, "U1S steps read exactly one channel");
    const ReadSpec& read = step.reads[0];
    const engine::ReadEffect& effect = rs.effect.reads[0];
    const std::uint32_t processed = effect.processed;
    if (processed == 0) {
      // Nothing was consumed: drop the step unless it announced (the
      // destination's first activation).
      if (!rs.effect.sent.empty()) {
        CR_ASSERT(step.node() == instance.destination(),
                  "only the destination can announce without consuming");
        out.push_back(destination_standin(instance, u1o, read.channel));
      }
      continue;
    }
    // Largest processed index not in g: the message U1S delivered.
    std::uint32_t delivered_index = 0;  // 0 = everything was dropped
    for (std::uint32_t idx = processed; idx >= 1; --idx) {
      if (!std::binary_search(read.drops.begin(), read.drops.end(), idx)) {
        delivered_index = idx;
        break;
      }
    }
    for (std::uint32_t idx = 1; idx <= processed; ++idx) {
      ActivationStep single;
      single.nodes = step.nodes;
      ReadSpec r{read.channel, 1u, {}};
      if (idx != delivered_index) {
        r.drops = {1};
      }
      single.reads = {std::move(r)};
      out.push_back(std::move(single));
    }
  }
  return out;
}

// ---- Thm. 3.7: U1O -> R1S --------------------------------------------------

model::ActivationScript accumulate_skips(const spp::Instance& instance,
                                         const trace::Recording& recording) {
  std::vector<std::uint32_t> pending(instance.graph().channel_count(), 0);
  model::ActivationScript out;
  for (const trace::RecordedStep& rs : recording.steps) {
    const ActivationStep& step = rs.step;
    CR_REQUIRE(step.reads.size() == 1, "U1O steps read exactly one channel");
    const ReadSpec& read = step.reads[0];
    const engine::ReadEffect& effect = rs.effect.reads[0];

    ActivationStep replacement;
    replacement.nodes = step.nodes;
    if (effect.processed == 0) {
      // Empty channel: an attempt that consumes nothing.
      replacement.reads = {ReadSpec{read.channel, 0u, {}}};
    } else if (effect.dropped > 0) {
      // The single processed message was dropped: leave it in the R1S
      // channel for the next delivered read to consume.
      ++pending[read.channel];
      replacement.reads = {ReadSpec{read.channel, 0u, {}}};
    } else {
      const std::uint32_t consume = pending[read.channel] + 1;
      pending[read.channel] = 0;
      replacement.reads = {ReadSpec{read.channel, consume, {}}};
    }
    out.push_back(std::move(replacement));
  }
  return out;
}

// ---- Prop. 3.6 (reliable): R1S -> R1O --------------------------------------

constexpr std::uint64_t kFlagTag = 1;

model::ActivationScript flag_batches(const spp::Instance& instance,
                                     const trace::Recording& recording) {
  const Graph& g = instance.graph();
  engine::NetworkState sim(instance);  // the R1O system, simulated
  model::ActivationScript out;

  for (const trace::RecordedStep& rs : recording.steps) {
    const ActivationStep& step = rs.step;
    const NodeId v = step.node();
    CR_REQUIRE(step.reads.size() == 1, "R1S steps read exactly one channel");
    const ReadSpec& read = step.reads[0];
    const ChannelIdx c = read.channel;
    const std::uint32_t i = rs.effect.reads[0].processed;

    const bool into_destination = (v == instance.destination());

    if (read.count.has_value() && *read.count == 0) {
      // f = 0: the paper's construction deletes the step — except the
      // destination's first activation, whose announcement must survive.
      if (rs.effect.sent.empty()) {
        continue;
      }
      CR_ASSERT(into_destination,
                "only the destination can announce on an f = 0 read");
      // Fall through with k = 0: one stand-in mini-step is emitted below.
    }

    const engine::Channel& channel = sim.channel(c);
    const std::size_t m = channel.size();

    std::size_t k = 0;
    if (read.count.has_value() && *read.count == 0) {
      k = 0;
    } else if (into_destination) {
      // Channels into the destination never influence any assignment (the
      // destination always selects itself), so flag bookkeeping is
      // unnecessary; consuming roughly as much as the R1S system keeps
      // the queue drained.
      k = std::min<std::size_t>(i, m);
    } else {
      std::size_t flags = 0;
      for (std::size_t idx = 0; idx < m; ++idx) {
        if (channel.at(idx).tag == kFlagTag) {
          ++flags;
        }
      }
      if (i == 0) {
        CR_ASSERT(flags == 0,
                  "R1S processed nothing but flagged messages are queued");
        k = m;  // consume trailing unflagged groups (they re-sync rho)
      } else {
        CR_ASSERT(flags >= i, "fewer flagged messages than R1S processed");
        std::size_t seen = 0;
        for (std::size_t idx = 0; idx < m; ++idx) {
          if (channel.at(idx).tag == kFlagTag && ++seen == i) {
            k = idx + 1;
            break;
          }
        }
      }
    }

    // Remember out-channel tails to locate this batch's announcements.
    std::unordered_map<ChannelIdx, std::size_t> out_sizes;
    for (const ChannelIdx oc : g.out_channels(v)) {
      out_sizes[oc] = sim.channel(oc).size();
    }

    const std::size_t mini_steps = std::max<std::size_t>(k, 1);
    for (std::size_t s = 0; s < mini_steps; ++s) {
      ActivationStep single;
      single.nodes = {v};
      single.reads = {ReadSpec{c, 1u, {}}};
      engine::execute_step(sim, single);
      out.push_back(std::move(single));
    }

    // Flag the final announcement of the batch iff the R1S system
    // announced at this step (covers both announce-on-change and the
    // destination's first self-announcement). The batch's last appended
    // message carries the batch-final assignment, which equals the R1S
    // announcement by the lockstep invariant.
    for (const engine::SentMessage& sent : rs.effect.sent) {
      engine::Channel& och = sim.mutable_channel(sent.channel);
      CR_ASSERT(och.size() > out_sizes[sent.channel],
                "lockstep violated: R1S announced but the simulated R1O "
                "batch did not");
      CR_ASSERT(och.at(och.size() - 1).path == sent.message.path,
                "lockstep violated: final R1O announcement differs from "
                "the R1S announcement");
      och.at_mutable(och.size() - 1).tag = kFlagTag;
    }
  }
  return out;
}

}  // namespace

std::vector<TransformCase> all_transform_cases() {
  std::vector<TransformCase> cases;
  const std::vector<Reliability> ws{Reliability::kReliable,
                                    Reliability::kUnreliable};
  const std::vector<NeighborMode> xs{NeighborMode::kOne,
                                     NeighborMode::kMultiple,
                                     NeighborMode::kEvery};
  const std::vector<MessageMode> ys{MessageMode::kOne, MessageMode::kSome,
                                    MessageMode::kForced, MessageMode::kAll};
  const auto make = [](Reliability w, NeighborMode x, MessageMode y) {
    return Model{w, x, y};
  };

  // Prop. 3.3(1): Rxy -> Uxy.
  for (const NeighborMode x : xs) {
    for (const MessageMode y : ys) {
      cases.push_back({"Prop. 3.3(1)", make(Reliability::kReliable, x, y),
                       make(Reliability::kUnreliable, x, y),
                       Strength::kExact, TransformRule::kIdentity});
    }
  }
  for (const Reliability w : ws) {
    for (const NeighborMode x : xs) {
      // Prop. 3.3(2): wxF -> wxS.
      cases.push_back({"Prop. 3.3(2)", make(w, x, MessageMode::kForced),
                       make(w, x, MessageMode::kSome), Strength::kExact,
                       TransformRule::kIdentity});
      // Prop. 3.3(3): wxO -> wxF and wxA -> wxF.
      cases.push_back({"Prop. 3.3(3)", make(w, x, MessageMode::kOne),
                       make(w, x, MessageMode::kForced), Strength::kExact,
                       TransformRule::kIdentity});
      cases.push_back({"Prop. 3.3(3)", make(w, x, MessageMode::kAll),
                       make(w, x, MessageMode::kForced), Strength::kExact,
                       TransformRule::kIdentity});
    }
    for (const MessageMode y : ys) {
      // Prop. 3.3(4): w1y -> wMy and wEy -> wMy.
      cases.push_back({"Prop. 3.3(4)", make(w, NeighborMode::kOne, y),
                       make(w, NeighborMode::kMultiple, y), Strength::kExact,
                       TransformRule::kIdentity});
      cases.push_back({"Prop. 3.3(4)", make(w, NeighborMode::kEvery, y),
                       make(w, NeighborMode::kMultiple, y), Strength::kExact,
                       TransformRule::kIdentity});
      // Thm. 3.5: wMy -> w1y.
      cases.push_back({"Thm. 3.5", make(w, NeighborMode::kMultiple, y),
                       make(w, NeighborMode::kOne, y), Strength::kRepetition,
                       TransformRule::kExpandMulti});
    }
    // Prop. 3.4: wMS -> wES.
    cases.push_back({"Prop. 3.4",
                     make(w, NeighborMode::kMultiple, MessageMode::kSome),
                     make(w, NeighborMode::kEvery, MessageMode::kSome),
                     Strength::kExact, TransformRule::kPadEmptyReads});
  }
  // Prop. 3.6: R1S -> R1O (subsequence) and U1S -> U1O (repetition).
  cases.push_back({"Prop. 3.6", Model::parse("R1S"), Model::parse("R1O"),
                   Strength::kSubsequence, TransformRule::kFlagBatches});
  cases.push_back({"Prop. 3.6", Model::parse("U1S"), Model::parse("U1O"),
                   Strength::kRepetition,
                   TransformRule::kSplitDropAllButLast});
  // Thm. 3.7: U1O -> R1S.
  cases.push_back({"Thm. 3.7", Model::parse("U1O"), Model::parse("R1S"),
                   Strength::kExact, TransformRule::kAccumulateSkips});
  return cases;
}

model::ActivationScript apply_transform(const TransformCase& c,
                                        const spp::Instance& instance,
                                        const trace::Recording& recording) {
  switch (c.rule) {
    case TransformRule::kIdentity: {
      model::ActivationScript out;
      out.reserve(recording.steps.size());
      for (const trace::RecordedStep& rs : recording.steps) {
        out.push_back(rs.step);
      }
      return out;
    }
    case TransformRule::kPadEmptyReads:
      return pad_empty_reads(instance, recording);
    case TransformRule::kExpandMulti:
      return expand_multi(instance, c.to, recording);
    case TransformRule::kFlagBatches:
      return flag_batches(instance, recording);
    case TransformRule::kSplitDropAllButLast:
      return split_drop_all_but_last(instance, recording);
    case TransformRule::kAccumulateSkips:
      return accumulate_skips(instance, recording);
  }
  throw InvariantError("bad TransformRule");
}

}  // namespace commroute::realization
