#include "realization/matrix.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "support/table.hpp"

namespace commroute::realization {

namespace {

using model::Model;

std::vector<Model> figure_columns(Figure figure) {
  std::vector<Model> columns;
  for (const Model& m : Model::all()) {
    if ((figure == Figure::kFig3Reliable) == m.reliable()) {
      columns.push_back(m);
    }
  }
  return columns;
}

std::string cell_text(const RelationBound& bound, bool diagonal) {
  if (diagonal) {
    return "-";
  }
  const std::string notation = bound.paper_notation();
  return notation.empty() ? "." : notation;
}

std::string render(Figure figure,
                   const std::function<RelationBound(const Model&,
                                                     const Model&)>& lookup) {
  const std::vector<Model> columns = figure_columns(figure);
  TextTable table;
  std::vector<std::string> header{"A \\ B"};
  for (const Model& b : columns) {
    header.push_back(b.name());
  }
  table.set_header(std::move(header));
  table.set_align(Align::kCenter);
  for (const Model& a : Model::all()) {
    std::vector<std::string> row{a.name()};
    for (const Model& b : columns) {
      row.push_back(cell_text(lookup(a, b), a == b));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace

std::string render_matrix(const RealizationTable& table, Figure figure) {
  return render(figure, [&table](const Model& a, const Model& b) {
    return table.cell(a, b);
  });
}

std::string render_paper_matrix(Figure figure) {
  return render(figure, [](const Model& a, const Model& b) {
    return paper_bound(a, b);
  });
}

bool MatrixComparison::has_contradiction() const {
  return std::any_of(diffs.begin(), diffs.end(), [](const CellDiff& d) {
    return d.kind == "contradiction";
  });
}

bool MatrixComparison::has_looser() const {
  return std::any_of(diffs.begin(), diffs.end(), [](const CellDiff& d) {
    return d.kind == "looser" || d.kind == "incomparable";
  });
}

std::string MatrixComparison::summary() const {
  std::size_t tighter = 0, looser = 0, incomparable = 0, contradiction = 0;
  for (const CellDiff& d : diffs) {
    if (d.kind == "tighter") ++tighter;
    if (d.kind == "looser") ++looser;
    if (d.kind == "incomparable") ++incomparable;
    if (d.kind == "contradiction") ++contradiction;
  }
  std::ostringstream os;
  os << equal << "/" << cells << " cells identical, " << tighter
     << " tighter than published, " << looser << " looser, "
     << incomparable << " incomparable, " << contradiction
     << " contradictions";
  return os.str();
}

MatrixComparison compare_with_paper(const RealizationTable& table,
                                    Figure figure) {
  MatrixComparison comparison;
  const std::vector<Model> columns = figure_columns(figure);
  for (const Model& a : Model::all()) {
    for (const Model& b : columns) {
      if (a == b) {
        continue;  // diagonal is definitional
      }
      ++comparison.cells;
      const RelationBound computed = table.cell(a, b);
      const RelationBound published = paper_bound(a, b);
      if (computed.lo == published.lo && computed.hi == published.hi) {
        ++comparison.equal;
        continue;
      }
      CellDiff diff{a, b, computed, published, ""};
      const bool pub_contains_comp = published.contains(computed);
      const bool comp_contains_pub = computed.contains(published);
      if (!computed.overlaps(published)) {
        diff.kind = "contradiction";
      } else if (pub_contains_comp) {
        diff.kind = "tighter";
      } else if (comp_contains_pub) {
        diff.kind = "looser";
      } else {
        diff.kind = "incomparable";
      }
      comparison.diffs.push_back(std::move(diff));
    }
  }
  return comparison;
}

}  // namespace commroute::realization
