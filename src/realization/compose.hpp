// Composition of realization transforms.
//
// The positive theorems of Sec. 3.2 are edges in a graph over the 24
// models; composing them along a path realizes executions of any model in
// any other reachable model, at the weakest strength along the path
// (Sec. 3.4's rule P, constructively). find_transform_chain computes the
// max-bottleneck path, so its strength matches the closure's lower bound
// for every pair — the algebraic and constructive layers validate each
// other (see test_compose).
#pragma once

#include <optional>
#include <vector>

#include "realization/transforms.hpp"

namespace commroute::realization {

/// A path through the theorem graph; applying the links in order realizes
/// `from()`-executions in `to()` at strength claimed().
struct TransformChain {
  std::vector<TransformCase> links;  ///< empty = identity (from == to)
  model::Model endpoint_from;
  model::Model endpoint_to;

  model::Model from() const { return endpoint_from; }
  model::Model to() const { return endpoint_to; }

  /// min over the links' claimed strengths (kExact when empty).
  Strength claimed() const;

  std::string to_string() const;
};

/// Strongest (max-bottleneck) chain realizing `from` in `to`, or nullopt
/// when no chain of positive theorems connects them (e.g. realizing R1O
/// in REA is impossible — Thm. 3.8).
std::optional<TransformChain> find_transform_chain(const model::Model& from,
                                                   const model::Model& to);

/// Applies the chain link by link, re-recording the intermediate
/// executions; the returned script is legal in chain.to() and induces a
/// trace realizing the source trace at strength >= chain.claimed().
model::ActivationScript apply_chain(const TransformChain& chain,
                                    const spp::Instance& instance,
                                    const trace::Recording& recording);

}  // namespace commroute::realization
