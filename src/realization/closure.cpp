#include "realization/closure.hpp"

#include <sstream>

#include "support/error.hpp"

namespace commroute::realization {

using model::Model;

RealizationTable::RealizationTable() = default;

RelationBound& RealizationTable::at(const Model& realized,
                                    const Model& realizer) {
  return cells_[static_cast<std::size_t>(realized.index())]
               [static_cast<std::size_t>(realizer.index())];
}

const RelationBound& RealizationTable::cell(const Model& realized,
                                            const Model& realizer) const {
  return cells_[static_cast<std::size_t>(realized.index())]
               [static_cast<std::size_t>(realizer.index())];
}

bool RealizationTable::apply(const Fact& fact) {
  RelationBound& bound = at(fact.realized, fact.realizer);
  if (fact.kind == FactKind::kLowerBound) {
    return bound.tighten_lo(fact.strength, fact.source);
  }
  return bound.tighten_hi(fact.strength, fact.source);
}

std::size_t RealizationTable::close() {
  const std::vector<Model>& models = Model::all();
  std::size_t tightened = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Model& a : models) {
      for (const Model& b : models) {
        const RelationBound ab = cell(a, b);
        for (const Model& c : models) {
          const RelationBound bc = cell(b, c);
          const RelationBound ac = cell(a, c);

          // P: lo[A][C] >= min(lo[A][B], lo[B][C]).
          const Strength via = min_strength(ab.lo, bc.lo);
          if (level(via) > level(ac.lo)) {
            if (at(a, c).tighten_lo(
                    via, "transitivity P via " + b.name() + " [" +
                             ab.lo_source + " ; " + bc.lo_source + "]")) {
              changed = true;
              ++tightened;
            }
          }

          // N1: if lo[A][B] > hi[A][C] then hi[B][C] <= hi[A][C].
          if (level(ab.lo) > level(ac.hi) &&
              level(cell(b, c).hi) > level(ac.hi)) {
            if (at(b, c).tighten_hi(
                    ac.hi, "rule N1 via " + a.name() + " [" +
                               ab.lo_source + " ; " + ac.hi_source + "]")) {
              changed = true;
              ++tightened;
            }
          }

          // N2: if lo[B][C] > hi[A][C] then hi[A][B] <= hi[A][C].
          if (level(bc.lo) > level(ac.hi) &&
              level(cell(a, b).hi) > level(ac.hi)) {
            if (at(a, b).tighten_hi(
                    ac.hi, "rule N2 via " + c.name() + " [" +
                               bc.lo_source + " ; " + ac.hi_source + "]")) {
              changed = true;
              ++tightened;
            }
          }
        }
      }
    }
  }
  return tightened;
}

RealizationTable RealizationTable::closure(const std::vector<Fact>& facts) {
  RealizationTable table;
  for (const Fact& fact : facts) {
    table.apply(fact);
  }
  table.close();
  return table;
}

std::string RealizationTable::explain(const Model& realized,
                                      const Model& realizer) const {
  const RelationBound& bound = cell(realized, realizer);
  std::ostringstream os;
  os << "Can " << realizer.name() << " realize the executions of "
     << realized.name() << "?\n";
  os << "  interval: [" << level(bound.lo) << ", " << level(bound.hi)
     << "]  (paper cell: '"
     << (bound.paper_notation().empty() ? "blank" : bound.paper_notation())
     << "')\n";
  os << "  lower bound " << to_string(bound.lo) << ": "
     << (bound.lo_source.empty() ? "trivial (level 0)" : bound.lo_source)
     << "\n";
  os << "  upper bound " << to_string(bound.hi) << ": "
     << (bound.hi_source.empty() ? "trivial (level 4)" : bound.hi_source)
     << "\n";
  return os.str();
}

}  // namespace commroute::realization
