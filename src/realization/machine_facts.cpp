#include "realization/machine_facts.hpp"

#include "checker/explorer.hpp"
#include "spp/gadgets.hpp"

namespace commroute::realization {

namespace {

constexpr const char* kFiveModels[] = {"UEO", "UEF", "U1A", "UMA", "UEA"};

}  // namespace

const std::vector<Fact>& machine_checked_facts() {
  static const std::vector<Fact> facts = [] {
    std::vector<Fact> out;
    for (const char* name : kFiveModels) {
      out.push_back(Fact{model::Model::parse("R1O"),
                         model::Model::parse(name),
                         FactKind::kUpperBound,
                         Strength::kNotPreserving,
                         "machine-checked (DISAGREE separation)"});
    }
    return out;
  }();
  return facts;
}

bool verify_machine_facts() {
  const spp::Instance disagree = spp::disagree();
  const checker::ExploreOptions options{.max_channel_length = 3,
                                        .max_states = 500000};

  const auto weak = checker::explore(
      disagree, model::Model::parse("R1O"), options);
  if (!weak.oscillation_found) {
    return false;
  }
  for (const char* name : kFiveModels) {
    const auto strong =
        checker::explore(disagree, model::Model::parse(name), options);
    if (strong.oscillation_found || !strong.exhaustive) {
      return false;
    }
  }
  return true;
}

RealizationTable extended_closure() {
  std::vector<Fact> facts = foundational_facts();
  const std::vector<Fact>& machine = machine_checked_facts();
  facts.insert(facts.end(), machine.begin(), machine.end());
  return RealizationTable::closure(facts);
}

std::size_t count_unknown_cells(const RealizationTable& table) {
  std::size_t unknown = 0;
  for (const model::Model& a : model::Model::all()) {
    for (const model::Model& b : model::Model::all()) {
      if (a == b) {
        continue;
      }
      if (table.cell(a, b).unknown()) {
        ++unknown;
      }
    }
  }
  return unknown;
}

}  // namespace commroute::realization
