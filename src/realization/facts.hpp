// The paper's foundational realization results as a fact database.
//
// Sec. 3.2 (positive, lower bounds):
//   Prop. 3.3(1)  Uxy exactly realizes Rxy
//   Prop. 3.3(2)  wxS exactly realizes wxF
//   Prop. 3.3(3)  wxF exactly realizes wxO and wxA
//   Prop. 3.3(4)  wMy exactly realizes w1y and wEy
//   Prop. 3.4     wES exactly realizes wMS
//   Thm. 3.5      w1y realizes wMy with repetition
//   Prop. 3.6     R1O realizes R1S as a subsequence;
//                 U1O realizes U1S with repetition
//   Thm. 3.7      R1S exactly realizes U1O
// Sec. 3.3 (negative, upper bounds):
//   Thm. 3.8      REO, REF, R1A, RMA, REA do not preserve R1O's oscillations
//   Thm. 3.9      R1A, RMA, REA do not preserve REO's / REF's oscillations
//   Prop. 3.10    R1O cannot exactly realize REO
//   Prop. 3.11    R1O cannot realize REA with repetition
//   Prop. 3.12    R1S cannot exactly realize REA
//   Prop. 3.13    R1S cannot exactly realize REO
// plus reflexivity (every model exactly realizes itself).
#pragma once

#include <string>
#include <vector>

#include "model/model.hpp"
#include "realization/relation.hpp"

namespace commroute::realization {

enum class FactKind {
  kLowerBound,  ///< realizer realizes realized at >= strength
  kUpperBound,  ///< realizer realizes realized at <= strength
};

struct Fact {
  model::Model realized;  ///< A: the model whose executions are realized
  model::Model realizer;  ///< B: the model realizing them
  FactKind kind = FactKind::kLowerBound;
  Strength strength = Strength::kExact;
  std::string source;  ///< e.g. "Prop. 3.3(1)"
};

/// All foundational facts listed above, including reflexivity.
const std::vector<Fact>& foundational_facts();

}  // namespace commroute::realization
