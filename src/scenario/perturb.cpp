#include "scenario/perturb.hpp"

#include <algorithm>
#include <utility>

#include "bgp/policy.hpp"
#include "obs/json.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace commroute::scenario {

namespace {

// Mutable copy of every node's ranking, edited in place and rebuilt into
// an Instance at the end (the graph and export policy never change).
std::vector<std::vector<Path>> permitted_copy(const spp::Instance& in) {
  std::vector<std::vector<Path>> perms(in.node_count());
  for (NodeId v = 0; v < in.node_count(); ++v) {
    perms[v] = in.permitted(v);
  }
  return perms;
}

spp::Instance rebuild(const spp::Instance& in,
                      std::vector<std::vector<Path>> perms) {
  return spp::Instance(in.graph(), in.destination(), std::move(perms),
                       in.export_policy_ptr());
}

std::size_t find_path(const std::vector<Path>& perms, const Path& p) {
  for (std::size_t i = 0; i < perms.size(); ++i) {
    if (perms[i] == p) return i;
  }
  return perms.size();
}

// Nodes where a ranking edit is possible: never the destination (its
// single trivial path is structural), and for swaps/deletes at least two
// permitted paths (deleting a node's last path would change reachability
// semantics, not just preference).
std::vector<NodeId> editable_nodes(const spp::Instance& in,
                                   const std::vector<std::vector<Path>>& perms) {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < in.node_count(); ++v) {
    if (v == in.destination()) continue;
    if (perms[v].size() >= 2) nodes.push_back(v);
  }
  return nodes;
}

// For kGaoRexfordViolation: a node is eligible when some customer-learned
// path outranks some peer/provider-learned path — swapping the two breaks
// GR2 while keeping both paths permitted. Returns (customer rank,
// worse-class rank) for the first such pair, most-preferred customer
// route first.
struct GrSite {
  NodeId node = kNoNode;
  std::size_t customer_rank = 0;
  std::size_t worse_rank = 0;
};

std::vector<GrSite> gr_violation_sites(const spp::Instance& in,
                                       const bgp::AsTopology& topo,
                                       const std::vector<std::vector<Path>>& perms) {
  std::vector<GrSite> sites;
  for (NodeId v = 0; v < in.node_count(); ++v) {
    if (v == in.destination()) continue;
    const auto& list = perms[v];
    // First customer-learned rank.
    std::size_t customer = list.size();
    for (std::size_t r = 0; r < list.size(); ++r) {
      if (list[r].size() < 2) continue;
      if (bgp::classify(topo, v, list[r].next_hop()) ==
          bgp::RouteClass::kCustomerRoute) {
        customer = r;
        break;
      }
    }
    if (customer == list.size()) continue;
    // First strictly-lower-ranked peer/provider route.
    for (std::size_t r = customer + 1; r < list.size(); ++r) {
      if (list[r].size() < 2) continue;
      if (bgp::classify(topo, v, list[r].next_hop()) !=
          bgp::RouteClass::kCustomerRoute) {
        sites.push_back(GrSite{v, customer, r});
        break;
      }
    }
  }
  return sites;
}

const char* op_name(PerturbEdit::Op op) {
  return op == PerturbEdit::Op::kSwap ? "swap" : "delete";
}

}  // namespace

std::string to_string(PerturbKind kind) {
  switch (kind) {
    case PerturbKind::kTieBreakFlip:
      return "tiebreak";
    case PerturbKind::kRankSwap:
      return "rankswap";
    case PerturbKind::kPathDelete:
      return "delete";
    case PerturbKind::kGaoRexfordViolation:
      return "grviolation";
  }
  return "unknown";
}

std::string PerturbSpec::label() const {
  return to_string(kind) + ":" + std::to_string(count);
}

PerturbSpec parse_perturb_spec(const std::string& text) {
  PerturbSpec spec;
  std::string kind = text;
  const auto colon = text.find(':');
  if (colon != std::string::npos) {
    kind = text.substr(0, colon);
    const std::string count = text.substr(colon + 1);
    try {
      spec.count = static_cast<std::size_t>(std::stoull(count));
    } catch (const std::exception&) {
      throw ParseError("perturbation spec has malformed count: '" + text + "'");
    }
    if (spec.count == 0) {
      throw ParseError("perturbation spec count must be positive: '" + text +
                       "'");
    }
  }
  if (kind == "tiebreak") {
    spec.kind = PerturbKind::kTieBreakFlip;
  } else if (kind == "rankswap") {
    spec.kind = PerturbKind::kRankSwap;
  } else if (kind == "delete") {
    spec.kind = PerturbKind::kPathDelete;
  } else if (kind == "grviolation") {
    spec.kind = PerturbKind::kGaoRexfordViolation;
  } else {
    throw ParseError(
        "unknown perturbation kind '" + kind +
        "' (expected tiebreak | rankswap | delete | grviolation)");
  }
  return spec;
}

std::string PerturbRecord::to_json(const spp::Instance& instance) const {
  std::string edits_json = "[";
  for (std::size_t i = 0; i < edits.size(); ++i) {
    const PerturbEdit& e = edits[i];
    if (i > 0) edits_json += ",";
    obs::JsonWriter w;
    w.field("op", op_name(e.op));
    w.field("node", instance.graph().name(e.node));
    w.field("a", instance.path_name(e.a));
    if (e.op == PerturbEdit::Op::kSwap) {
      w.field("b", instance.path_name(e.b));
    }
    edits_json += w.str();
  }
  edits_json += "]";
  obs::JsonWriter w;
  w.field("kind", scenario::to_string(kind));
  w.field("seed", static_cast<std::uint64_t>(seed));
  w.field("requested", static_cast<std::uint64_t>(requested));
  w.field("applied", static_cast<std::uint64_t>(edits.size()));
  w.raw_field("edits", edits_json);
  return w.str();
}

PerturbResult perturb(const spp::Instance& instance, const PerturbSpec& spec,
                      std::uint64_t seed) {
  if (spec.kind == PerturbKind::kGaoRexfordViolation) {
    CR_REQUIRE(spec.topology != nullptr,
               "PerturbKind::kGaoRexfordViolation requires PerturbSpec::"
               "topology");
    CR_REQUIRE(spec.topology->as_count() == instance.node_count(),
               "PerturbSpec::topology AS count (" +
                   std::to_string(spec.topology->as_count()) +
                   ") does not match instance (" +
                   std::to_string(instance.node_count()) + ")");
  }

  // Decorrelate streams per kind so e.g. delete:1 and tiebreak:1 under
  // the same seed do not edit the same node.
  Rng rng = Rng(seed).fork(to_string(spec.kind));

  auto perms = permitted_copy(instance);
  PerturbRecord record;
  record.kind = spec.kind;
  record.seed = seed;
  record.requested = spec.count;

  for (std::size_t attempt = 0; attempt < spec.count; ++attempt) {
    PerturbEdit edit;
    switch (spec.kind) {
      case PerturbKind::kTieBreakFlip: {
        const auto nodes = editable_nodes(instance, perms);
        if (nodes.empty()) break;
        const NodeId v = rng.pick(nodes);
        auto& list = perms[v];
        const std::size_t r =
            static_cast<std::size_t>(rng.below(list.size() - 1));
        edit.op = PerturbEdit::Op::kSwap;
        edit.node = v;
        edit.a = list[r];
        edit.b = list[r + 1];
        std::swap(list[r], list[r + 1]);
        record.edits.push_back(std::move(edit));
        break;
      }
      case PerturbKind::kRankSwap: {
        const auto nodes = editable_nodes(instance, perms);
        if (nodes.empty()) break;
        const NodeId v = rng.pick(nodes);
        auto& list = perms[v];
        const std::size_t i =
            static_cast<std::size_t>(rng.below(list.size()));
        const std::size_t window = std::max<std::size_t>(spec.window, 1);
        const std::size_t lo = i > window ? i - window : 0;
        const std::size_t hi = std::min(i + window, list.size() - 1);
        // Draw j from [lo, hi] \ {i}; skipping i keeps the edit real.
        std::size_t j =
            lo + static_cast<std::size_t>(rng.below(hi - lo));  // hi > lo here
        if (j >= i) ++j;
        edit.op = PerturbEdit::Op::kSwap;
        edit.node = v;
        edit.a = list[std::min(i, j)];
        edit.b = list[std::max(i, j)];
        std::swap(list[i], list[j]);
        record.edits.push_back(std::move(edit));
        break;
      }
      case PerturbKind::kPathDelete: {
        const auto nodes = editable_nodes(instance, perms);
        if (nodes.empty()) break;
        const NodeId v = rng.pick(nodes);
        auto& list = perms[v];
        const std::size_t r =
            static_cast<std::size_t>(rng.below(list.size()));
        edit.op = PerturbEdit::Op::kDelete;
        edit.node = v;
        edit.a = list[r];
        list.erase(list.begin() + static_cast<std::ptrdiff_t>(r));
        record.edits.push_back(std::move(edit));
        break;
      }
      case PerturbKind::kGaoRexfordViolation: {
        const auto sites = gr_violation_sites(instance, *spec.topology, perms);
        if (sites.empty()) break;
        const GrSite& site =
            sites[static_cast<std::size_t>(rng.below(sites.size()))];
        auto& list = perms[site.node];
        edit.op = PerturbEdit::Op::kSwap;
        edit.node = site.node;
        edit.a = list[site.customer_rank];
        edit.b = list[site.worse_rank];
        std::swap(list[site.customer_rank], list[site.worse_rank]);
        record.edits.push_back(std::move(edit));
        break;
      }
    }
  }

  return PerturbResult{rebuild(instance, std::move(perms)),
                       std::move(record)};
}

spp::Instance apply_edits(const spp::Instance& instance,
                          const std::vector<PerturbEdit>& edits,
                          std::size_t* applied) {
  auto perms = permitted_copy(instance);
  std::size_t done = 0;
  for (const PerturbEdit& e : edits) {
    CR_REQUIRE(e.node < perms.size(),
               "PerturbEdit::node out of range for instance");
    auto& list = perms[e.node];
    const std::size_t ia = find_path(list, e.a);
    if (e.op == PerturbEdit::Op::kDelete) {
      if (ia == list.size() || list.size() < 2) continue;
      list.erase(list.begin() + static_cast<std::ptrdiff_t>(ia));
      ++done;
    } else {
      const std::size_t ib = find_path(list, e.b);
      if (ia == list.size() || ib == list.size()) continue;
      std::swap(list[ia], list[ib]);
      ++done;
    }
  }
  if (applied != nullptr) *applied = done;
  return rebuild(instance, std::move(perms));
}

}  // namespace commroute::scenario
