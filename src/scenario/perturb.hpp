// Deterministic ranking perturbations (the decision-process half of the
// scenario subsystem — docs/SCENARIOS.md).
//
// Godfrey's "BGP Stability is Precarious" observation is that essentially
// any change to a node's decision process can turn a convergent
// configuration divergent. A PerturbSpec names one family of such
// changes; perturb() applies it as a pure function of (instance, spec,
// seed), returning the edited instance together with a provenance record
// of exactly which paths moved or vanished. Records are JSONL-able and
// replayable: apply_edits() re-applies any subset of a record's edits to
// the original instance, which is what the adversarial search uses to
// shrink a breaking perturbation to a minimal edit set.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bgp/topology.hpp"
#include "spp/instance.hpp"

namespace commroute::scenario {

/// Families of ranking perturbations.
enum class PerturbKind : std::uint8_t {
  /// Swap two adjacent ranks at one node — the smallest possible
  /// preference change (a tie-break going the other way).
  kTieBreakFlip,
  /// Swap two ranks at most `window` apart at one node.
  kRankSwap,
  /// Delete one permitted path (never a node's last one).
  kPathDelete,
  /// Promote a peer/provider-learned route above the node's best
  /// customer-learned route — a targeted GR2 violation (bgp::policy).
  /// Requires PerturbSpec::topology.
  kGaoRexfordViolation,
};

std::string to_string(PerturbKind kind);

struct PerturbSpec {
  PerturbKind kind = PerturbKind::kTieBreakFlip;
  /// Number of edits to attempt. Fewer may apply when the instance runs
  /// out of eligible sites; the record says how many did.
  std::size_t count = 1;
  /// Maximum rank distance for kRankSwap.
  std::size_t window = 2;
  /// AS topology for kGaoRexfordViolation (route classes come from
  /// bgp::classify). Node ids must match the instance (the compiled
  /// instances of bgp::compile_gao_rexford carry ids over 1:1).
  std::shared_ptr<const bgp::AsTopology> topology;

  /// Compact axis label, e.g. "tiebreak:2" — stable, CSV-safe.
  std::string label() const;
};

/// Parses a label back into a spec: "<kind>[:<count>]" with kind one of
/// tiebreak | rankswap | delete | grviolation. Throws ParseError on
/// unknown kinds or malformed counts. (kGaoRexfordViolation specs still
/// need `topology` set by the caller.)
PerturbSpec parse_perturb_spec(const std::string& text);

/// One applied edit, identified by path content (not rank indices), so
/// any subset re-applies unambiguously to the original instance.
struct PerturbEdit {
  enum class Op : std::uint8_t {
    kSwap,    ///< exchange the ranks of `a` and `b` at `node`
    kDelete,  ///< remove `a` from `node`'s permitted paths
  };
  Op op = Op::kSwap;
  NodeId node = kNoNode;
  Path a;
  Path b;  ///< kSwap only
};

/// Provenance of one perturb() call.
struct PerturbRecord {
  PerturbKind kind = PerturbKind::kTieBreakFlip;
  std::uint64_t seed = 0;
  std::size_t requested = 0;  ///< PerturbSpec::count
  std::vector<PerturbEdit> edits;

  /// One-line JSON object; paths and nodes render with the instance's
  /// symbolic names, so records are readable and diffable:
  /// {"kind":"tiebreak","seed":7,"requested":2,"applied":2,
  ///  "edits":[{"op":"swap","node":"x","a":"x y d","b":"x d"}]}
  std::string to_json(const spp::Instance& instance) const;
};

struct PerturbResult {
  spp::Instance instance;
  PerturbRecord record;
};

/// Applies `spec` to `instance` under `seed`. Pure: equal arguments give
/// byte-identical results. The export policy is carried over unchanged.
/// Throws PreconditionError when kGaoRexfordViolation is requested
/// without a topology (or with one whose node count mismatches).
PerturbResult perturb(const spp::Instance& instance, const PerturbSpec& spec,
                      std::uint64_t seed);

/// Re-applies a subset of recorded edits to the original instance.
/// Edits that no longer apply (a path already deleted by an earlier
/// edit in the subset, or absent) are skipped deterministically;
/// `applied` (when non-null) receives the number that took effect.
spp::Instance apply_edits(const spp::Instance& instance,
                          const std::vector<PerturbEdit>& edits,
                          std::size_t* applied = nullptr);

}  // namespace commroute::scenario
