// Timed runtime faults (the dynamic half of the scenario subsystem —
// docs/SCENARIOS.md).
//
// A FaultSchedule is an ordered list of timed fault events injected into
// a sim::run via the DES event queue: link outages, session resets that
// flush in-flight state, node reboots that lose pi, and latency/loss
// regime shifts. Schedules are data (parse/format round-trip through a
// one-line text syntax), so they travel inside recordings (schema v3)
// and replay deterministically. apply_fault() is the single source of
// truth for what a fault does to a NetworkState; the sim's injector and
// trace::replay_recording both call it, which is why faulted recordings
// replay divergence-free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/state.hpp"
#include "sim/link_model.hpp"
#include "spp/instance.hpp"

namespace commroute::scenario {

enum class FaultKind : std::uint8_t {
  kLinkDown,      ///< link {a, b} stops carrying messages
  kLinkUp,        ///< link {a, b} recovers
  kSessionReset,  ///< session {a, b}: both channels flushed, rho/export reset
  kNodeReboot,    ///< node a loses pi, its sessions reset
  kRegimeShift,   ///< link {a, b} (or all links when a == kNoNode) switches
                  ///< to `regime`
};

std::string to_string(FaultKind kind);

/// One timed fault.
struct FaultEvent {
  std::uint64_t at_us = 0;
  FaultKind kind = FaultKind::kSessionReset;
  /// First endpoint; the rebooted node for kNodeReboot; kNoNode for a
  /// global kRegimeShift.
  NodeId a = kNoNode;
  /// Second endpoint (kNoNode for kNodeReboot / global kRegimeShift).
  NodeId b = kNoNode;
  /// Target link model for kRegimeShift.
  sim::LinkModel regime;

  /// Time-less textual form with symbolic names, e.g. "link-down u v",
  /// "reboot v", "regime u v dist=fixed lat=500 jit=0 loss=0 burst=1",
  /// "regime * * ..." for a global shift. parse_fault inverts it.
  std::string text(const spp::Instance& instance) const;
};

/// Parses FaultEvent::text output (at_us stays 0). Throws ParseError on
/// unknown kinds, unknown node names, or malformed regime parameters.
FaultEvent parse_fault(const std::string& text,
                       const spp::Instance& instance);

/// An ordered fault schedule. Events sort by (at_us, insertion order) so
/// the injection order is deterministic.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(std::vector<FaultEvent> events);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Time of the last event; 0 when empty. Reconvergence after faults is
  /// measured from this instant (SimResult::last_fault_us).
  std::uint64_t last_at_us() const {
    return events_.empty() ? 0 : events_.back().at_us;
  }

  /// "1000 link-down u v; 2500 reboot v" — parse_fault_schedule inverts.
  std::string format(const spp::Instance& instance) const;

 private:
  std::vector<FaultEvent> events_;
};

/// Parses format() output: ';'-separated "<at_us> <fault text>" entries.
FaultSchedule parse_fault_schedule(const std::string& text,
                                   const spp::Instance& instance);

/// Generator spec for random schedules — a value type usable as a
/// campaign axis (the instance-specific NodeIds only appear once
/// random_fault_schedule instantiates it against a concrete instance).
struct FaultScheduleSpec {
  std::size_t link_flaps = 0;      ///< down/up pairs
  std::size_t session_resets = 0;
  std::size_t reboots = 0;
  std::size_t regime_shifts = 0;   ///< global shifts to `regime`
  /// Fault instants are drawn uniformly from [0, window_us].
  std::uint64_t window_us = 50000;
  /// A flap's link-up fires this long after its link-down.
  std::uint64_t flap_duration_us = 5000;
  /// Regime applied by kRegimeShift events.
  sim::LinkModel regime;

  /// Compact axis label: '+'-joined non-zero parts, e.g. "flap2+reset1";
  /// "none" when empty. Stable and CSV-safe.
  std::string label() const;
};

/// Parses a label back into a spec ("flap2+reset1+reboot1+regime1";
/// "none" gives the empty spec). Window, durations, and the regime model
/// keep their defaults. Throws ParseError on unknown parts.
FaultScheduleSpec parse_fault_spec(const std::string& label);

/// Draws a concrete schedule for `instance`: uniformly random edges /
/// non-destination nodes / instants, pure in (instance, spec, seed).
/// Seeds are deliberately independent of any communication model, so all
/// 24 models of a campaign see the identical schedule.
FaultSchedule random_fault_schedule(const spp::Instance& instance,
                                    const FaultScheduleSpec& spec,
                                    std::uint64_t seed);

/// What a fault did to the network state — the channels it emptied and
/// the nodes whose sessions it touched. The sim injector uses `touched`
/// to schedule follow-up activations and `flushed` to keep its in-flight
/// mirror (and the causality recorder's) in lockstep with the engine.
struct FaultStateEffect {
  bool state_changed = false;
  std::vector<ChannelIdx> flushed;
  std::vector<NodeId> touched;
};

/// Applies the state-mutating part of `fault` to `state`: session resets
/// and node reboots mutate pi/rho/channels/last-exported; link and
/// regime faults only affect timed delivery, so they return an empty
/// effect (their consequences are baked into the induced steps). Reboot
/// of the destination is rejected (its trivial path is structural).
FaultStateEffect apply_fault(engine::NetworkState& state,
                             const FaultEvent& fault);

/// The channels `fault` flushes, in apply_fault's order — purely
/// topological, so mirrors without a NetworkState (the causality
/// builder's ring path) can stay in lockstep. Empty for timed-delivery
/// faults.
std::vector<ChannelIdx> fault_flushed_channels(const spp::Instance& instance,
                                               const FaultEvent& fault);

}  // namespace commroute::scenario
