// Adversarial robustness search (the third pillar of the scenario
// subsystem — docs/SCENARIOS.md).
//
// Godfrey's precariousness claim made operational: given an instance
// that provably converges under a model (checker::explore finds no fair
// oscillation), find a small ranking perturbation that breaks it.
// find_breaking_perturbation sweeps perturbation families × seeds,
// checks each perturbed instance with the model checker, greedily
// shrinks the first breaking edit set to a locally minimal one (every
// single remaining edit is necessary), and extracts a replayable
// oscillation witness for the broken instance. Everything is
// deterministic in (instance, model, options): the sweep order, the
// per-attempt seeds (support::Rng::fork_seed), and the checker verdicts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "checker/explorer.hpp"
#include "checker/minimize.hpp"
#include "model/model.hpp"
#include "scenario/perturb.hpp"
#include "spp/instance.hpp"

namespace commroute::scenario {

struct BreakSearchOptions {
  /// Perturbation families to sweep, in order. Empty = the default
  /// ladder: tiebreak, rankswap, delete, each at count 1 then 2
  /// (kGaoRexfordViolation is never defaulted — it needs a topology).
  std::vector<PerturbSpec> specs;
  /// Seeds tried per family before moving to the next.
  std::size_t seeds_per_spec = 8;
  /// Base seed; per-attempt seeds fork from it deterministically.
  std::uint64_t seed = 1;
  /// Bounds for every checker::explore call. extract_witness is managed
  /// internally (off while probing, on for the final witness run).
  checker::ExploreOptions explore;
  /// Additionally run checker::minimize_oscillating_instance on the
  /// broken instance (delta-debugging its permitted paths, on top of
  /// the already-minimal edit set).
  bool minimize = false;
};

struct BreakSearchResult {
  /// A breaking perturbation was found within the sweep budget.
  bool found = false;
  /// checker::explore calls spent (the cost driver).
  std::uint64_t explorations = 0;
  /// Provenance of the break (valid iff found): `record.edits` is the
  /// shrunken, locally minimal edit set — removing any single edit
  /// restores convergence within the explore bounds.
  PerturbRecord record;
  /// The broken instance (apply_edits(base, record.edits)).
  std::optional<spp::Instance> instance;
  /// Replayable oscillation witness for `instance` under the model:
  /// play prefix then loop cycle forever (checker::ExploreResult
  /// witness contract).
  model::ActivationScript witness_prefix;
  model::ActivationScript witness_cycle;
  std::size_t witness_scc_size = 0;
  /// Present iff BreakSearchOptions::minimize and found: the broken
  /// instance delta-debugged to a path-minimal oscillating core.
  std::optional<checker::MinimizeResult> minimized;
};

/// Requires that `instance` does NOT oscillate under `m` within the
/// explore bounds (throws PreconditionError otherwise — there is
/// nothing to break). Returns the first (family, seed) whose perturbed
/// instance oscillates, with the edit set shrunk and a witness attached;
/// `found == false` when the whole sweep stays convergent.
BreakSearchResult find_breaking_perturbation(
    const spp::Instance& instance, const model::Model& m,
    const BreakSearchOptions& options = {});

}  // namespace commroute::scenario
