#include "scenario/fault.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <utility>

#include "obs/json.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace commroute::scenario {

namespace {

// Undirected edges as (lo, hi) node pairs in channel-index order — the
// deterministic edge enumeration the random generator draws from.
std::vector<std::pair<NodeId, NodeId>> edge_list(const Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (ChannelIdx c = 0; c < g.channel_count(); ++c) {
    const ChannelId id = g.channel_id(c);
    if (id.from < id.to) {
      edges.emplace_back(id.from, id.to);
    }
  }
  return edges;
}

std::string regime_text(const sim::LinkModel& link) {
  return "dist=" + sim::to_string(link.dist) +
         " lat=" + std::to_string(link.latency_us) +
         " jit=" + std::to_string(link.jitter_us) +
         " loss=" + obs::json_number(link.loss_prob) +
         " burst=" + obs::json_number(link.burst_mean);
}

sim::LinkModel parse_regime(const std::vector<std::string>& tokens,
                            std::size_t start, const std::string& text) {
  sim::LinkModel link;
  for (std::size_t i = start; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      throw ParseError("fault: regime parameter '" + tok +
                       "' is not key=value in '" + text + "'");
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    try {
      if (key == "dist") {
        link.dist = sim::parse_latency_dist(val);
      } else if (key == "lat") {
        link.latency_us = std::stoull(val);
      } else if (key == "jit") {
        link.jitter_us = std::stoull(val);
      } else if (key == "loss") {
        link.loss_prob = std::stod(val);
      } else if (key == "burst") {
        link.burst_mean = std::stod(val);
      } else {
        throw ParseError("fault: unknown regime parameter '" + key +
                         "' in '" + text + "'");
      }
    } catch (const ParseError&) {
      throw;
    } catch (const std::exception&) {
      throw ParseError("fault: malformed regime value '" + tok + "' in '" +
                       text + "'");
    }
  }
  return link;
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkUp:
      return "link-up";
    case FaultKind::kSessionReset:
      return "session-reset";
    case FaultKind::kNodeReboot:
      return "reboot";
    case FaultKind::kRegimeShift:
      return "regime";
  }
  return "unknown";
}

std::string FaultEvent::text(const spp::Instance& instance) const {
  const Graph& g = instance.graph();
  switch (kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
    case FaultKind::kSessionReset:
      return to_string(kind) + " " + g.name(a) + " " + g.name(b);
    case FaultKind::kNodeReboot:
      return to_string(kind) + " " + g.name(a);
    case FaultKind::kRegimeShift: {
      const std::string where =
          a == kNoNode ? "* *" : g.name(a) + " " + g.name(b);
      return to_string(kind) + " " + where + " " + regime_text(regime);
    }
  }
  throw InvariantError("bad FaultKind");
}

FaultEvent parse_fault(const std::string& text,
                       const spp::Instance& instance) {
  const std::vector<std::string> tokens = split_trimmed(text, ' ');
  if (tokens.empty()) {
    throw ParseError("fault: empty fault text");
  }
  const std::string& kind = tokens[0];
  const auto need = [&](std::size_t n) {
    if (tokens.size() < n) {
      throw ParseError("fault: '" + text + "' is missing arguments");
    }
  };
  const auto node = [&](std::size_t i) {
    if (!instance.graph().has_node(tokens[i])) {
      throw ParseError("fault: unknown node '" + tokens[i] + "' in '" +
                       text + "'");
    }
    return instance.graph().node(tokens[i]);
  };
  FaultEvent ev;
  if (kind == "link-down" || kind == "link-up" || kind == "session-reset") {
    need(3);
    ev.kind = kind == "link-down"     ? FaultKind::kLinkDown
              : kind == "link-up"     ? FaultKind::kLinkUp
                                      : FaultKind::kSessionReset;
    ev.a = node(1);
    ev.b = node(2);
  } else if (kind == "reboot") {
    need(2);
    ev.kind = FaultKind::kNodeReboot;
    ev.a = node(1);
  } else if (kind == "regime") {
    need(3);
    ev.kind = FaultKind::kRegimeShift;
    if (tokens[1] == "*") {
      if (tokens[2] != "*") {
        throw ParseError("fault: global regime must name '* *' in '" +
                         text + "'");
      }
    } else {
      ev.a = node(1);
      ev.b = node(2);
    }
    ev.regime = parse_regime(tokens, 3, text);
  } else {
    throw ParseError(
        "fault: unknown kind '" + kind +
        "' (expected link-down | link-up | session-reset | reboot | "
        "regime)");
  }
  if (ev.a != kNoNode && ev.b != kNoNode) {
    if (!instance.graph().has_edge(ev.a, ev.b)) {
      throw ParseError("fault: '" + text + "' names a non-edge");
    }
  }
  return ev;
}

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at_us < y.at_us;
                   });
}

std::string FaultSchedule::format(const spp::Instance& instance) const {
  std::string out;
  for (const FaultEvent& ev : events_) {
    if (!out.empty()) {
      out += "; ";
    }
    out += std::to_string(ev.at_us) + " " + ev.text(instance);
  }
  return out;
}

FaultSchedule parse_fault_schedule(const std::string& text,
                                   const spp::Instance& instance) {
  std::vector<FaultEvent> events;
  std::stringstream ss(text);
  std::string entry;
  while (std::getline(ss, entry, ';')) {
    const std::string trimmed{trim(entry)};
    if (trimmed.empty()) {
      continue;
    }
    const auto space = trimmed.find(' ');
    if (space == std::string::npos) {
      throw ParseError("fault schedule: entry '" + trimmed +
                       "' has no fault after the timestamp");
    }
    FaultEvent ev;
    try {
      ev = parse_fault(trimmed.substr(space + 1), instance);
      ev.at_us = std::stoull(trimmed.substr(0, space));
    } catch (const ParseError&) {
      throw;
    } catch (const std::exception&) {
      throw ParseError("fault schedule: malformed timestamp in '" + trimmed +
                       "'");
    }
    events.push_back(std::move(ev));
  }
  return FaultSchedule(std::move(events));
}

std::string FaultScheduleSpec::label() const {
  std::string out;
  const auto part = [&](const char* name, std::size_t n) {
    if (n == 0) {
      return;
    }
    if (!out.empty()) {
      out += '+';
    }
    out += name + std::to_string(n);
  };
  part("flap", link_flaps);
  part("reset", session_resets);
  part("reboot", reboots);
  part("regime", regime_shifts);
  return out.empty() ? "none" : out;
}

FaultScheduleSpec parse_fault_spec(const std::string& label) {
  FaultScheduleSpec spec;
  if (label == "none" || label.empty()) {
    return spec;
  }
  std::stringstream ss(label);
  std::string part;
  while (std::getline(ss, part, '+')) {
    std::size_t digits = part.size();
    while (digits > 0 && std::isdigit(static_cast<unsigned char>(
                             part[digits - 1])) != 0) {
      --digits;
    }
    const std::string name = part.substr(0, digits);
    std::size_t count = 1;
    if (digits < part.size()) {
      try {
        count = static_cast<std::size_t>(std::stoull(part.substr(digits)));
      } catch (const std::exception&) {
        throw ParseError("fault spec: malformed count in '" + part + "'");
      }
    }
    if (name == "flap") {
      spec.link_flaps = count;
    } else if (name == "reset") {
      spec.session_resets = count;
    } else if (name == "reboot") {
      spec.reboots = count;
    } else if (name == "regime") {
      spec.regime_shifts = count;
    } else {
      throw ParseError("fault spec: unknown part '" + part + "' in '" +
                       label + "' (expected flapN | resetN | rebootN | "
                       "regimeN joined by '+')");
    }
  }
  return spec;
}

FaultSchedule random_fault_schedule(const spp::Instance& instance,
                                    const FaultScheduleSpec& spec,
                                    std::uint64_t seed) {
  const Graph& g = instance.graph();
  const auto edges = edge_list(g);
  std::vector<NodeId> rebootable;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v != instance.destination() && !g.in_channels(v).empty()) {
      rebootable.push_back(v);
    }
  }
  Rng rng = Rng(seed).fork("fault-schedule");
  const auto at = [&]() {
    return static_cast<std::uint64_t>(rng.below(spec.window_us + 1));
  };

  std::vector<FaultEvent> events;
  for (std::size_t i = 0; i < spec.link_flaps && !edges.empty(); ++i) {
    const auto& [u, v] = rng.pick(edges);
    FaultEvent down;
    down.at_us = at();
    down.kind = FaultKind::kLinkDown;
    down.a = u;
    down.b = v;
    FaultEvent up = down;
    up.at_us = down.at_us + spec.flap_duration_us;
    up.kind = FaultKind::kLinkUp;
    events.push_back(down);
    events.push_back(up);
  }
  for (std::size_t i = 0; i < spec.session_resets && !edges.empty(); ++i) {
    const auto& [u, v] = rng.pick(edges);
    FaultEvent ev;
    ev.at_us = at();
    ev.kind = FaultKind::kSessionReset;
    ev.a = u;
    ev.b = v;
    events.push_back(ev);
  }
  for (std::size_t i = 0; i < spec.reboots && !rebootable.empty(); ++i) {
    FaultEvent ev;
    ev.at_us = at();
    ev.kind = FaultKind::kNodeReboot;
    ev.a = rng.pick(rebootable);
    events.push_back(ev);
  }
  for (std::size_t i = 0; i < spec.regime_shifts; ++i) {
    FaultEvent ev;
    ev.at_us = at();
    ev.kind = FaultKind::kRegimeShift;
    ev.regime = spec.regime;
    events.push_back(ev);
  }
  return FaultSchedule(std::move(events));
}

std::vector<ChannelIdx> fault_flushed_channels(const spp::Instance& instance,
                                               const FaultEvent& fault) {
  const Graph& g = instance.graph();
  switch (fault.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
    case FaultKind::kRegimeShift:
      return {};
    case FaultKind::kSessionReset:
      CR_REQUIRE(g.has_edge(fault.a, fault.b),
                 "session-reset fault names a non-edge");
      return {g.channel(fault.a, fault.b), g.channel(fault.b, fault.a)};
    case FaultKind::kNodeReboot: {
      CR_REQUIRE(fault.a < g.node_count(), "reboot fault: node out of range");
      CR_REQUIRE(fault.a != instance.destination(),
                 "reboot fault: rebooting the destination is not supported "
                 "(its trivial path is structural)");
      std::vector<ChannelIdx> flushed;
      for (const ChannelIdx c : g.in_channels(fault.a)) {
        flushed.push_back(c);
      }
      for (const ChannelIdx c : g.out_channels(fault.a)) {
        flushed.push_back(c);
      }
      return flushed;
    }
  }
  throw InvariantError("bad FaultKind");
}

FaultStateEffect apply_fault(engine::NetworkState& state,
                             const FaultEvent& fault) {
  FaultStateEffect effect;
  const spp::Instance& inst = state.instance();
  const Graph& g = inst.graph();
  effect.flushed = fault_flushed_channels(inst, fault);
  switch (fault.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
    case FaultKind::kRegimeShift:
      // Timed-delivery faults: no NetworkState effect (the sim injector
      // realizes them through arrival times and loss marks).
      return effect;
    case FaultKind::kSessionReset:
      // A session reset loses everything in flight in both directions
      // and both ends' per-session memory: what they learned (rho) and
      // what they believe they announced (last exported) — so each end
      // re-announces its current assignment when it next activates.
      effect.touched = {fault.a, fault.b};
      break;
    case FaultKind::kNodeReboot:
      // The node loses pi and every session it participates in resets.
      // Its own rho (in-channels) is erased; neighbors keep their rho —
      // what they learned survives until the rebooted node re-announces
      // (or withdraws) after coming back up.
      state.set_assignment(fault.a, Path::epsilon());
      effect.touched.push_back(fault.a);
      for (const NodeId u : g.neighbors(fault.a)) {
        effect.touched.push_back(u);
      }
      break;
  }
  for (const ChannelIdx c : effect.flushed) {
    engine::Channel& ch = state.mutable_channel(c);
    ch.pop_front_n(ch.size());
    // rho resets on the reader's side of the session: both directions of
    // a session reset, and a rebooted node's in-channels (the node
    // forgot what it learned); a neighbor's memory of the rebooted
    // node's announcements survives on its own in-channels — which are
    // the rebooted node's out-channels.
    if (fault.kind == FaultKind::kSessionReset ||
        g.channel_id(c).to == fault.a) {
      state.set_known(c, Path::epsilon());
    }
    state.reset_last_exported(c);
  }
  effect.state_changed = true;
  return effect;
}

}  // namespace commroute::scenario
