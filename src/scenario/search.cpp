#include "scenario/search.hpp"

#include <utility>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace commroute::scenario {

namespace {

std::vector<PerturbSpec> default_specs() {
  std::vector<PerturbSpec> specs;
  for (const PerturbKind kind :
       {PerturbKind::kTieBreakFlip, PerturbKind::kRankSwap,
        PerturbKind::kPathDelete}) {
    for (const std::size_t count : {std::size_t{1}, std::size_t{2}}) {
      PerturbSpec spec;
      spec.kind = kind;
      spec.count = count;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

}  // namespace

BreakSearchResult find_breaking_perturbation(
    const spp::Instance& instance, const model::Model& m,
    const BreakSearchOptions& options) {
  checker::ExploreOptions probe = options.explore;
  probe.extract_witness = false;

  BreakSearchResult result;
  const checker::ExploreResult base = checker::explore(instance, m, probe);
  ++result.explorations;
  CR_REQUIRE(!base.oscillation_found,
             "find_breaking_perturbation: the base instance already "
             "oscillates under " + m.name() + " — there is nothing to break");

  const std::vector<PerturbSpec> specs =
      options.specs.empty() ? default_specs() : options.specs;

  for (std::size_t s = 0; s < specs.size(); ++s) {
    const PerturbSpec& spec = specs[s];
    const std::uint64_t spec_seed = Rng::fork_seed(options.seed, s);
    for (std::size_t k = 0; k < options.seeds_per_spec; ++k) {
      const std::uint64_t seed = Rng::fork_seed(spec_seed, k);
      PerturbResult perturbed = perturb(instance, spec, seed);
      if (perturbed.record.edits.empty()) {
        continue;  // no eligible site — smaller instance than the family
      }
      const checker::ExploreResult attempt =
          checker::explore(perturbed.instance, m, probe);
      ++result.explorations;
      if (!attempt.oscillation_found) {
        continue;
      }

      // Greedy shrink: drop edits one at a time while the oscillation
      // survives. Terminates at a local minimum — every remaining edit
      // is necessary (within the explore bounds).
      std::vector<PerturbEdit> edits = perturbed.record.edits;
      for (std::size_t i = 0; i < edits.size() && edits.size() > 1;) {
        std::vector<PerturbEdit> trial = edits;
        trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
        std::size_t applied = 0;
        const spp::Instance candidate =
            apply_edits(instance, trial, &applied);
        bool still_breaks = false;
        if (applied > 0) {
          still_breaks =
              checker::explore(candidate, m, probe).oscillation_found;
          ++result.explorations;
        }  // applied == 0 would re-check the stable base: skip it
        if (still_breaks) {
          edits = std::move(trial);  // dropped; retry the same position
        } else {
          ++i;  // necessary; keep it
        }
      }

      // Final run with witness extraction on the shrunken instance.
      checker::ExploreOptions witness_opts = probe;
      witness_opts.extract_witness = true;
      std::size_t applied = 0;
      spp::Instance broken = apply_edits(instance, edits, &applied);
      CR_ASSERT(applied == edits.size(),
                "breaking-edit subset no longer applies to the base");
      checker::ExploreResult witness =
          checker::explore(broken, m, witness_opts);
      ++result.explorations;
      CR_ASSERT(witness.oscillation_found,
                "shrunken perturbation lost the oscillation");

      result.found = true;
      result.record = std::move(perturbed.record);
      result.record.edits = std::move(edits);
      result.witness_prefix = std::move(witness.witness_prefix);
      result.witness_cycle = std::move(witness.witness_cycle);
      result.witness_scc_size = witness.witness_scc_size;
      if (options.minimize) {
        result.minimized =
            checker::minimize_oscillating_instance(broken, m, probe);
      }
      result.instance = std::move(broken);
      return result;
    }
  }
  return result;
}

}  // namespace commroute::scenario
