#include "sim/link_model.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace commroute::sim {

std::string to_string(LatencyDist dist) {
  switch (dist) {
    case LatencyDist::kFixed:
      return "fixed";
    case LatencyDist::kUniform:
      return "uniform";
    case LatencyDist::kExponential:
      return "exp";
  }
  throw InvariantError("bad LatencyDist");
}

LatencyDist parse_latency_dist(const std::string& name) {
  if (name == "fixed") {
    return LatencyDist::kFixed;
  }
  if (name == "uniform") {
    return LatencyDist::kUniform;
  }
  if (name == "exp" || name == "exponential") {
    return LatencyDist::kExponential;
  }
  throw ParseError("unknown latency distribution: " + name +
                   " (expected fixed|uniform|exp)");
}

std::uint64_t LinkModel::sample_latency(Rng& rng) const {
  std::uint64_t sample = 0;
  switch (dist) {
    case LatencyDist::kFixed:
      sample = latency_us;
      break;
    case LatencyDist::kUniform:
      return latency_us + (jitter_us > 0 ? rng.below(jitter_us + 1) : 0);
    case LatencyDist::kExponential: {
      const double mean = static_cast<double>(latency_us);
      sample = static_cast<std::uint64_t>(
          std::llround(rng.exponential(mean)));
      break;
    }
  }
  if (jitter_us > 0) {
    sample += rng.below(jitter_us + 1);
  }
  return sample;
}

std::string LinkModel::describe() const {
  std::ostringstream os;
  os << to_string(dist) << "(" << latency_us << "us)";
  if (jitter_us > 0) {
    os << "+j" << jitter_us;
  }
  if (loss_prob > 0.0) {
    os << " loss=" << loss_prob;
    if (burst_mean > 1.0) {
      os << " burst=" << burst_mean;
    }
  }
  return os.str();
}

LossProcess::LossProcess(const LinkModel& link)
    : loss_prob_(link.loss_prob) {
  CR_REQUIRE(loss_prob_ >= 0.0 && loss_prob_ < 1.0,
             "loss_prob must be in [0, 1)");
  if (loss_prob_ > 0.0 && link.burst_mean > 1.0) {
    burst_ = true;
    // Gilbert-Elliott: mean bad-run length L gives p(bad->good) = 1/L;
    // the detailed-balance condition pi_bad * p_bg = pi_good * p_gb with
    // stationary pi_bad = loss_prob then fixes p(good->bad).
    p_bad_to_good_ = 1.0 / link.burst_mean;
    p_good_to_bad_ =
        std::min(1.0, p_bad_to_good_ * loss_prob_ / (1.0 - loss_prob_));
  }
}

bool LossProcess::sample(Rng& rng) {
  if (loss_prob_ <= 0.0) {
    return false;
  }
  if (!burst_) {
    return rng.chance(loss_prob_);
  }
  bad_ = bad_ ? !rng.chance(p_bad_to_good_) : rng.chance(p_good_to_bad_);
  return bad_;
}

}  // namespace commroute::sim
