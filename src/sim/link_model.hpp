// Timed delivery conditions: per-channel link models (latency, jitter,
// loss) and per-node processing models (processing delay, MRAI-style
// batching).
//
// A LinkModel turns the abstract FIFO channel of Sec. 2.1 into a timed
// link: every message sampled a latency when it is sent, and — on
// Unreliable communication models only — may be marked lost, in which
// case the induced activation step drops it via the g-component of the
// Def. 2.2 quadruple. FIFO order is preserved by clamping arrival times
// to be non-decreasing per channel.
//
// All sampling draws from an explicitly seeded support::Rng in a fixed
// order, so the timed execution is reproducible from its seed.
#pragma once

#include <cstdint>
#include <string>

#include "support/rng.hpp"

namespace commroute::sim {

/// Latency distribution of a link.
enum class LatencyDist : std::uint8_t {
  kFixed,        ///< exactly latency_us
  kUniform,      ///< uniform in [latency_us, latency_us + jitter_us]
  kExponential,  ///< exponential with mean latency_us
};

std::string to_string(LatencyDist dist);
LatencyDist parse_latency_dist(const std::string& name);

/// Timed behavior of one directed channel.
struct LinkModel {
  LatencyDist dist = LatencyDist::kFixed;
  /// Base latency: the fixed value, the uniform lower bound, or the
  /// exponential mean, in virtual microseconds.
  std::uint64_t latency_us = 1000;
  /// Additive uniform jitter in [0, jitter_us]. For kUniform this is the
  /// width of the interval; for kFixed / kExponential it is added on top
  /// of the base sample.
  std::uint64_t jitter_us = 0;
  /// Stationary loss probability. Must be 0 for Reliable models (the
  /// sim rejects a lossy link under a Reliable model) and < 1 always.
  double loss_prob = 0.0;
  /// Mean length of a loss burst in messages. 1.0 = iid (Bernoulli)
  /// loss; > 1 switches the channel to a two-state Gilbert-Elliott
  /// chain with the same stationary loss_prob.
  double burst_mean = 1.0;

  /// One latency sample in virtual microseconds.
  std::uint64_t sample_latency(Rng& rng) const;

  /// Compact human-readable description, e.g. "fixed(1000us)+j200
  /// loss=0.1".
  std::string describe() const;
};

/// Per-channel loss state. iid when burst_mean <= 1; otherwise a
/// Gilbert-Elliott good/bad chain whose stationary bad probability is
/// loss_prob and whose mean bad-run length is burst_mean. A loss_prob
/// of 0 never consumes randomness, so lossless configurations share RNG
/// streams with reliable ones.
class LossProcess {
 public:
  explicit LossProcess(const LinkModel& link);

  /// Samples whether the next message on this channel is lost.
  bool sample(Rng& rng);

 private:
  double loss_prob_;
  bool burst_ = false;
  double p_good_to_bad_ = 0.0;
  double p_bad_to_good_ = 1.0;
  bool bad_ = false;
};

/// Timed behavior of one node's update processing.
struct NodeModel {
  /// Delay between a triggering arrival and the activation it schedules
  /// (CPU / route-selection time), in virtual microseconds.
  std::uint64_t proc_delay_us = 100;
  /// Minimum virtual time between two activations of the same node — an
  /// MRAI-style batching timer: arrivals landing inside the interval are
  /// coalesced into the next activation. 0 disables batching.
  std::uint64_t mrai_us = 0;
};

}  // namespace commroute::sim
