// Virtual-time simulation runner: derives activation sequences from
// timed link and node models instead of an abstract scheduler.
//
// The paper's executions are sequences of activation quadruples
// (U, X, f, g) (Def. 2.2) with no notion of *when* messages arrive.
// sim::run gives every message a sampled link latency and every node a
// processing-delay / batching model, runs a discrete-event loop over a
// deterministic virtual clock, and groups the resulting delivery events
// into steps that are legal in a chosen communication model:
//
//   * the channels a node processes (X) are those whose messages have
//     virtually arrived, shaped to the model's neighbor dimension;
//   * the per-channel message counts (f) cover exactly the arrived
//     prefix, shaped to the model's message dimension (polling models
//     wait until a channel has fully arrived before draining it);
//   * lost messages (Unreliable models only) become drop indices (g).
//
// The induced steps execute on the ordinary engine — sim::run wraps
// engine::run with RunOptions::enforce_model set, so every induced step
// is validated against Def. 2.4, and the whole runner stack (strong-
// quiescence convergence, flight recorder, obs) is reused unchanged. A
// flight-recorded sim run therefore replays byte-identically through
// trace::replay_recording / `commroute-obs replay`.
//
// Determinism contract: a SimResult is a pure function of (instance,
// SimOptions) — all randomness flows through one seeded support::Rng in
// a fixed consumption order, ties in the event queue break by sequence
// number, and no wall-clock value enters any sim field (see
// docs/SIMULATION.md).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/runner.hpp"
#include "model/model.hpp"
#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "sim/link_model.hpp"
#include "spp/instance.hpp"

namespace commroute::scenario {
class FaultSchedule;
}

namespace commroute::sim {

struct SimOptions {
  /// Communication model the induced steps must be legal in. Loss may
  /// be configured only when this model is Unreliable.
  model::Model model;
  /// Link model applied to every channel, unless overridden.
  LinkModel link;
  /// Per-channel link overrides (channel index, model).
  std::vector<std::pair<ChannelIdx, LinkModel>> link_overrides;
  /// Node model applied to every node, unless overridden.
  NodeModel node;
  /// Per-node overrides (node id, model).
  std::vector<std::pair<NodeId, NodeModel>> node_overrides;
  /// Seed for all latency/loss sampling.
  std::uint64_t seed = 1;
  /// Step budget, as in engine::RunOptions.
  std::uint64_t max_steps = 20000;
  /// Virtual-time budget in microseconds; when the clock passes it the
  /// run stops with Outcome::kExhausted. 0 = unlimited.
  std::uint64_t max_virtual_us = 0;
  /// Flight recorder forwarded to engine::run — a kFull capture of a
  /// sim run is a replayable recording of the induced sequence.
  engine::FlightRecorderOptions flight;
  /// Attached, sim::run traces sim.run > engine.run > ... spans plus
  /// per-event sim.event / sim.deliver spans, observes the
  /// sim.virtual_time_us histogram, publishes sim.* counters, and emits
  /// one "sim_summary" event (virtual-time fields only — a sim_summary
  /// is byte-stable for a fixed seed).
  obs::Instrumentation obs;
  bool emit_step_events = false;
  /// Build the happens-before DAG of the induced run (forwarded to
  /// engine::RunOptions::causality). Under the sim every activation is
  /// stamped with its virtual time, so SimResult::critical_path_us is
  /// the provable latency lower bound for this seed: no execution of
  /// this dependency structure can converge earlier.
  bool causality = false;
  /// Forwarded to engine::RunOptions::budget. kSketched keeps sim
  /// memory independent of nodes x steps: the trace, step_time_us, and
  /// last_flap_us vectors are suppressed (last_change_us then stays 0 —
  /// exact flap timing is what the budget trades away), and the bounded
  /// summaries take their place: run.flap_topk / run.activation_topk
  /// from the engine plus SimResult::latency_hist.
  obs::ObsBudget budget = obs::ObsBudget::kFull;
  /// Forwarded to engine::RunOptions::progress / obs_memory.
  obs::ProgressEstimator* progress = nullptr;
  obs::TrackedBytes* obs_memory = nullptr;
  /// Timed fault schedule (scenario/fault.hpp) injected through the DES
  /// event queue: link down/up, session resets, node reboots, regime
  /// shifts. Borrowed; must outlive the call. A quiescent network keeps
  /// running while faults are pending, and every applied fault lands in
  /// the flight recording (schema v3) and the causality DAG. Under a
  /// Reliable model every link-down must be followed by a link-up on the
  /// same edge (a permanent partition would need drops), and regime
  /// shifts must not introduce loss; both are rejected up front.
  const scenario::FaultSchedule* faults = nullptr;
};

/// Result of a timed run: the ordinary step-based RunResult plus the
/// virtual-time view of the same execution.
struct SimResult {
  engine::RunResult run;

  /// Virtual time of the last executed step — the virtual convergence
  /// time when run.outcome == kConverged (the network is quiescent from
  /// this instant on).
  std::uint64_t virtual_end_us = 0;
  /// Virtual time of the last step that changed any assignment.
  std::uint64_t last_change_us = 0;
  /// Per node: virtual time of the last step that changed pi_v
  /// (the node's last route flap; 0 = pi_v never changed). Empty under
  /// ObsBudget::kSketched.
  std::vector<std::uint64_t> last_flap_us;
  /// Virtual timestamp of each executed step, parallel to the steps of
  /// run.trace (step t executed at step_time_us[t-1]). Empty under
  /// ObsBudget::kSketched.
  std::vector<std::uint64_t> step_time_us;
  /// Populated under ObsBudget::kSketched: log-bucketed distribution of
  /// every sampled per-message link latency (bounded replacement for
  /// the per-sample view the latency_* scalars only summarize).
  obs::LogHistogram latency_hist;
  /// Virtual length of the critical dependency chain to convergence
  /// (SimOptions::causality only, else 0): the timestamp of the chain's
  /// terminal activation, whose roots are boot activations at t = 0.
  /// Equals last_change_us by construction — the convergence time IS
  /// the completion time of the longest causal chain.
  std::uint64_t critical_path_us = 0;

  std::uint64_t events_processed = 0;   ///< DES events popped
  std::uint64_t messages_delivered = 0;  ///< processed and not lost
  std::uint64_t messages_lost = 0;       ///< processed but dropped (g)
  /// Faults applied (SimOptions::faults) and the virtual time of the
  /// last one (0 when none fired).
  std::uint64_t faults_applied = 0;
  std::uint64_t last_fault_us = 0;
  /// Event-queue depth high-watermark and its byte estimate (counts ×
  /// sizeof(Event)) — deterministic like every other sim field.
  std::uint64_t queue_peak_events = 0;
  std::uint64_t queue_peak_bytes = 0;
  /// Latency aggregates over every sampled message (delivered or lost).
  std::uint64_t latency_samples = 0;
  std::uint64_t latency_sum_us = 0;
  std::uint64_t latency_min_us = 0;
  std::uint64_t latency_max_us = 0;

  double mean_latency_us() const {
    return latency_samples == 0 ? 0.0
                                : static_cast<double>(latency_sum_us) /
                                      static_cast<double>(latency_samples);
  }

  /// Virtual time from the last applied fault to the last assignment
  /// change — the reconvergence time of a faulted run. 0 when no fault
  /// fired or the network never changed after the final fault.
  std::uint64_t reconverge_us() const {
    if (faults_applied == 0) {
      return 0;
    }
    return last_change_us > last_fault_us ? last_change_us - last_fault_us
                                          : 0;
  }

  /// The sim_summary JSON object: outcome, steps, and every virtual-
  /// time/message field above (no wall-clock values, so the string is
  /// byte-identical across runs with the same options).
  std::string to_json() const;

  /// Parses a to_json() string back into the summary fields (run.outcome
  /// and run.steps are restored; the trace and other engine-side state
  /// are not serialized). Throws ParseError on malformed input.
  static SimResult from_json(const std::string& json);
};

/// Runs the timed simulation. Throws PreconditionError when a lossy
/// link is configured under a Reliable model (drops are not expressible
/// there), or when an induced step fails model validation (which would
/// indicate a sim bug — every induced step passes through
/// model::require_step_allowed).
SimResult run(const spp::Instance& instance, const SimOptions& options);

}  // namespace commroute::sim
