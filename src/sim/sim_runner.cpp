#include "sim/sim_runner.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>

#include "engine/fault_hook.hpp"
#include "engine/scheduler.hpp"
#include "engine/state.hpp"
#include "model/activation.hpp"
#include "obs/json.hpp"
#include "scenario/fault.hpp"
#include "support/error.hpp"

namespace commroute::sim {

namespace {

/// One message traversing a channel, mirrored from the engine's queue.
struct InFlight {
  VirtualTime arrival = 0;
  bool lost = false;
};

void check_link(const LinkModel& link, const model::Model& m,
                const std::string& where) {
  CR_REQUIRE(link.loss_prob >= 0.0 && link.loss_prob < 1.0,
             where + ": loss_prob must be in [0, 1)");
  CR_REQUIRE(link.loss_prob == 0.0 || !m.reliable(),
             where + ": lossy links require an Unreliable model (got " +
                 m.name() + "; drops are not expressible in Reliable "
                            "models per Def. 2.4)");
}

/// engine::Scheduler that derives steps from the discrete-event loop.
///
/// The scheduler mirrors every engine channel with a deque of arrival
/// times: new messages appearing at a channel's tail since the previous
/// next() call are the sends of the last executed step, stamped with the
/// step's virtual time plus a sampled link latency (clamped to preserve
/// FIFO order). Arrival events schedule node activations (after the
/// node's processing delay, batched by its MRAI timer); activation
/// events are shaped into a step that is legal in the configured model
/// and touches only virtually-arrived messages, deferring the
/// activation when the model's read shape would reach beyond them.
class SimScheduler final : public engine::Scheduler,
                           public engine::FaultHook {
 public:
  SimScheduler(const spp::Instance& instance, const SimOptions& options)
      : inst_(&instance),
        opts_(&options),
        rng_(options.seed),
        sketched_(options.budget == obs::ObsBudget::kSketched) {
    const Graph& g = instance.graph();
    links_.assign(g.channel_count(), options.link);
    for (const auto& [c, link] : options.link_overrides) {
      CR_REQUIRE(c < g.channel_count(),
                 "link override: channel " + std::to_string(c) +
                     " out of range");
      links_[c] = link;
    }
    loss_.reserve(g.channel_count());
    for (ChannelIdx c = 0; c < g.channel_count(); ++c) {
      loss_.emplace_back(links_[c]);
    }
    nodes_.assign(g.node_count(), options.node);
    for (const auto& [v, node] : options.node_overrides) {
      CR_REQUIRE(v < g.node_count(),
                 "node override: node " + std::to_string(v) +
                     " out of range");
      nodes_[v] = node;
    }
    inflight_.resize(g.channel_count());
    last_arrival_.assign(g.channel_count(), 0);
    activation_scheduled_.assign(g.node_count(), 0);
    last_activation_.assign(g.node_count(), 0);
    cursor_.assign(g.node_count(), 0);
    down_.assign(g.channel_count(), 0);
    down_until_.assign(g.channel_count(), 0);
    // Boot: every connected node activates once at t = 0. This fires the
    // destination's first self-announcement (Def. 2.3 step 4) — without
    // it no message ever enters the network.
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (!g.in_channels(v).empty()) {
        Event boot;
        boot.time = 0;
        boot.kind = Event::Kind::kActivate;
        boot.node = v;
        queue_.push(boot);
        activation_scheduled_[v] = 1;
      }
    }
    // Fault events go in after the boots, so a fault at t = 0 fires
    // against a booted network (ties break by sequence number).
    if (options.faults != nullptr) {
      init_faults(*options.faults);
    }
  }

  // -- engine::FaultHook ----------------------------------------------------

  void bind(engine::NetworkState* state) override { state_ = state; }

  bool pending() const override { return faults_pending_ > 0; }

  std::vector<engine::AppliedFault> drain_applied() override {
    std::vector<engine::AppliedFault> out;
    out.swap(applied_);
    return out;
  }

  model::ActivationStep next(const engine::NetworkState& state) override {
    sync_sends(state);
    for (;;) {
      // The run loop only calls next() when the network is not strongly
      // quiescent: either messages are in flight (their arrival events
      // are queued) or an activation is pending. Either way the queue
      // cannot be empty.
      CR_ASSERT(!queue_.empty(), "sim event queue drained before quiescence");
      const Event ev = queue_.pop();
      clock_.advance_to(ev.time);
      ++events_processed_;
      if (ev.kind == Event::Kind::kArrival) {
        obs::Span deliver = opts_->obs.span("sim.deliver");
        if (deliver.enabled()) {
          deliver.attr("channel", inst_->graph().channel_name(ev.channel))
              .attr("t_us", ev.time);
        }
        schedule_activation(inst_->graph().channel_id(ev.channel).to);
        continue;
      }
      if (ev.kind == Event::Kind::kFault) {
        apply_fault_event(ev.node);  // `node` carries the fault index
        continue;
      }
      obs::Span act = opts_->obs.span("sim.event");
      if (act.enabled()) {
        act.attr("node", inst_->graph().name(ev.node)).attr("t_us", ev.time);
      }
      activation_scheduled_[ev.node] = 0;
      std::optional<model::ActivationStep> step = build_step(ev.node);
      if (!step.has_value()) {
        continue;  // deferred: a later kActivate event was queued
      }
      if (!sketched_) {
        // O(steps) memory — the sketched budget drops the vector and
        // keeps only last_step_time_ (= virtual_end_us).
        step_time_us_.push_back(clock_.now());
      }
      last_step_time_ = clock_.now();
      return std::move(*step);
    }
  }

  bool exhausted() const override {
    return opts_->max_virtual_us > 0 &&
           clock_.now() >= opts_->max_virtual_us;
  }

  std::optional<std::uint64_t> virtual_time_us() const override {
    return last_step_time_;  // timestamp of the step next() just built
  }

  // signature() stays nullopt: the sim's configuration includes the
  // event queue and RNG stream, which a state hash cannot capture, so
  // sound cycle detection is unavailable (sim::run sets
  // RunOptions::detect_cycles = false accordingly).

  VirtualTime now() const { return clock_.now(); }
  VirtualTime last_step_time() const { return last_step_time_; }
  const std::vector<VirtualTime>& step_times() const { return step_time_us_; }
  const obs::LogHistogram& latency_hist() const { return latency_hist_; }
  std::uint64_t events_processed() const { return events_processed_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t messages_lost() const { return messages_lost_; }
  std::uint64_t latency_samples() const { return latency_samples_; }
  std::uint64_t latency_sum_us() const { return latency_sum_us_; }
  std::uint64_t latency_min_us() const { return latency_min_us_; }
  std::uint64_t latency_max_us() const { return latency_max_us_; }
  std::size_t queue_peak_events() const { return queue_.peak_size(); }
  std::size_t queue_peak_bytes() const { return queue_.peak_bytes(); }
  std::uint64_t faults_applied() const { return faults_applied_; }
  VirtualTime last_fault_us() const { return last_fault_us_; }

 private:
  /// Detects the sends of the previously executed step: any message
  /// beyond our mirror of a channel's queue is new. Channels are scanned
  /// in index order so RNG consumption is deterministic.
  void sync_sends(const engine::NetworkState& state) {
    const Graph& g = inst_->graph();
    for (ChannelIdx c = 0; c < g.channel_count(); ++c) {
      const std::size_t mirrored = inflight_[c].size();
      const std::size_t actual = state.channel(c).size();
      CR_ASSERT(actual >= mirrored, "sim channel mirror ahead of engine");
      for (std::size_t i = mirrored; i < actual; ++i) {
        const std::uint64_t latency = links_[c].sample_latency(rng_);
        bool lost = loss_[c].sample(rng_);
        // FIFO clamp: a fast sample never overtakes the previous message.
        VirtualTime arrival =
            std::max(last_arrival_[c], last_step_time_ + latency);
        if (down_[c] != 0) {
          if (opts_->model.reliable()) {
            // A Reliable link cannot drop: the send waits out the outage
            // (init_faults guarantees a matching link-up exists).
            arrival = std::max(arrival, down_until_[c]);
          } else {
            lost = true;  // sent into the cut — dropped at the reader (g)
          }
        }
        last_arrival_[c] = arrival;
        inflight_[c].push_back(InFlight{arrival, lost});
        Event ev;
        ev.time = arrival;
        ev.kind = Event::Kind::kArrival;
        ev.channel = c;
        queue_.push(ev);
        if (sketched_) {
          latency_hist_.observe(latency);
        }
        ++latency_samples_;
        latency_sum_us_ += latency;
        latency_min_us_ = latency_samples_ == 1
                              ? latency
                              : std::min(latency_min_us_, latency);
        latency_max_us_ = std::max(latency_max_us_, latency);
      }
    }
  }

  /// Queues a processing activation for v unless one is already pending.
  /// The activation time respects the node's processing delay and MRAI
  /// batching timer (arrivals inside the interval coalesce).
  void schedule_activation(NodeId v) {
    if (activation_scheduled_[v] != 0) {
      return;
    }
    VirtualTime t = clock_.now() + nodes_[v].proc_delay_us;
    if (nodes_[v].mrai_us > 0) {
      t = std::max(t, last_activation_[v] + nodes_[v].mrai_us);
    }
    push_activation(v, t);
  }

  void push_activation(NodeId v, VirtualTime t) {
    Event ev;
    ev.time = t;
    ev.kind = Event::Kind::kActivate;
    ev.node = v;
    queue_.push(ev);
    activation_scheduled_[v] = 1;
  }

  /// Validates the fault schedule against the model and queues one
  /// kFault event per entry (`node` = index into fault_events_).
  void init_faults(const scenario::FaultSchedule& schedule) {
    fault_events_ = schedule.events();
    down_up_time_.assign(fault_events_.size(), 0);
    for (std::size_t i = 0; i < fault_events_.size(); ++i) {
      const scenario::FaultEvent& f = fault_events_[i];
      if (f.kind == scenario::FaultKind::kRegimeShift) {
        check_link(f.regime, opts_->model, "fault regime shift");
      }
      if (f.kind == scenario::FaultKind::kNodeReboot) {
        CR_REQUIRE(f.a != inst_->destination(),
                   "fault schedule: rebooting the destination is not "
                   "supported (its trivial path is structural)");
      }
      if (f.kind == scenario::FaultKind::kLinkDown) {
        // Schedule events are sorted by time, so the first matching
        // link-up after this entry is the end of the outage.
        for (std::size_t j = i + 1; j < fault_events_.size(); ++j) {
          const scenario::FaultEvent& u = fault_events_[j];
          if (u.kind == scenario::FaultKind::kLinkUp &&
              ((u.a == f.a && u.b == f.b) || (u.a == f.b && u.b == f.a))) {
            down_up_time_[i] = u.at_us;
            break;
          }
        }
        CR_REQUIRE(down_up_time_[i] > 0 || !opts_->model.reliable(),
                   "fault schedule: link-down without a later link-up is a "
                   "permanent partition, which only Unreliable models can "
                   "express (got " + opts_->model.name() + ")");
      }
      Event ev;
      ev.time = f.at_us;
      ev.kind = Event::Kind::kFault;
      ev.node = static_cast<NodeId>(i);
      queue_.push(ev);
    }
    faults_pending_ = fault_events_.size();
  }

  /// Fires fault #index at the current virtual instant: mutates the
  /// bound engine state (session resets / reboots), the delivery state
  /// (link outages / regimes), and wakes the affected nodes so the event
  /// queue never drains dry while the run must continue.
  void apply_fault_event(std::size_t index) {
    CR_ASSERT(state_ != nullptr, "sim fault fired before the hook was bound");
    const scenario::FaultEvent& f = fault_events_[index];
    const Graph& g = inst_->graph();
    engine::AppliedFault applied;
    applied.text = f.text(*inst_);
    applied.t_us = clock_.now();
    const auto wake = [&](NodeId v) {
      if (!g.in_channels(v).empty()) {
        schedule_activation(v);
      }
    };
    switch (f.kind) {
      case scenario::FaultKind::kLinkDown:
        for (const ChannelIdx c :
             {g.channel(f.a, f.b), g.channel(f.b, f.a)}) {
          down_[c] = 1;
          down_until_[c] = down_up_time_[index];
          if (opts_->model.reliable()) {
            // Unarrived in-flight messages wait out the outage; the
            // clamp is monotone, so FIFO order inside the deque holds.
            for (InFlight& m : inflight_[c]) {
              if (m.arrival > clock_.now() && m.arrival < down_until_[c]) {
                m.arrival = down_until_[c];
                Event ev;
                ev.time = m.arrival;
                ev.kind = Event::Kind::kArrival;
                ev.channel = c;
                queue_.push(ev);  // the stale earlier arrival is harmless
              }
            }
            if (!inflight_[c].empty()) {
              last_arrival_[c] =
                  std::max(last_arrival_[c], inflight_[c].back().arrival);
            }
          } else {
            // The cut destroys what is still on the wire: unarrived
            // messages become drops at the reader (g).
            for (InFlight& m : inflight_[c]) {
              if (m.arrival > clock_.now()) {
                m.lost = true;
              }
            }
          }
          wake(g.channel_id(c).to);
        }
        break;
      case scenario::FaultKind::kLinkUp:
        for (const ChannelIdx c :
             {g.channel(f.a, f.b), g.channel(f.b, f.a)}) {
          down_[c] = 0;
          wake(g.channel_id(c).to);
        }
        break;
      case scenario::FaultKind::kSessionReset:
      case scenario::FaultKind::kNodeReboot: {
        const scenario::FaultStateEffect eff =
            scenario::apply_fault(*state_, f);
        for (const ChannelIdx c : eff.flushed) {
          // The engine channel was emptied; drop our mirror with it
          // (stale kArrival events only trigger no-op activations).
          // last_arrival_ is kept: post-fault sends stay FIFO-safe.
          inflight_[c].clear();
          applied.flushed_channels.push_back(c);
        }
        for (const NodeId v : eff.touched) {
          wake(v);
        }
        break;
      }
      case scenario::FaultKind::kRegimeShift:
        if (f.a == kNoNode) {
          for (ChannelIdx c = 0; c < g.channel_count(); ++c) {
            links_[c] = f.regime;
            loss_[c] = LossProcess(links_[c]);
          }
          // A regime shift wakes nothing by itself; arm one connected
          // node so the queue cannot drain dry while the run continues
          // (its empty-read step is legal in every model — boots are).
          for (NodeId v = 0; v < g.node_count(); ++v) {
            if (!g.in_channels(v).empty()) {
              wake(v);
              break;
            }
          }
        } else {
          for (const ChannelIdx c :
               {g.channel(f.a, f.b), g.channel(f.b, f.a)}) {
            links_[c] = f.regime;
            loss_[c] = LossProcess(links_[c]);
            wake(g.channel_id(c).to);
          }
        }
        break;
    }
    --faults_pending_;
    ++faults_applied_;
    last_fault_us_ = clock_.now();
    applied_.push_back(std::move(applied));
  }

  /// Messages of channel c that have virtually arrived by now.
  std::size_t arrived_count(ChannelIdx c) const {
    const std::deque<InFlight>& q = inflight_[c];
    std::size_t n = 0;
    while (n < q.size() && q[n].arrival <= clock_.now()) {
      ++n;
    }
    return n;
  }

  /// True when the model's induced read on c would touch only arrived
  /// messages. 1-message and forced reads (O / F) need the front to have
  /// arrived (or the channel to be empty); polling reads (A) drain
  /// everything, so they wait for the channel to have *fully* arrived;
  /// some-reads (S) take exactly the arrived prefix and are always legal.
  bool channel_ready(ChannelIdx c) const {
    const std::size_t m = inflight_[c].size();
    switch (opts_->model.messages) {
      case model::MessageMode::kSome:
        return true;
      case model::MessageMode::kAll:
        return arrived_count(c) == m;
      case model::MessageMode::kOne:
      case model::MessageMode::kForced:
        return m == 0 || arrived_count(c) > 0;
    }
    throw InvariantError("bad MessageMode");
  }

  /// Virtual instant at which a currently not-ready channel becomes
  /// ready (given its present contents): the front arrival for O / F,
  /// the back arrival for A.
  VirtualTime ready_at(ChannelIdx c) const {
    const std::deque<InFlight>& q = inflight_[c];
    CR_ASSERT(!q.empty(), "ready_at on ready channel");
    return opts_->model.messages == model::MessageMode::kAll
               ? q.back().arrival
               : q.front().arrival;
  }

  /// Shapes v's activation into a legal step of the configured model, or
  /// defers it (returning nullopt after queueing a later activation)
  /// when the model's read shape would touch unarrived messages.
  std::optional<model::ActivationStep> build_step(NodeId v) {
    const Graph& g = inst_->graph();
    const std::vector<ChannelIdx>& in = g.in_channels(v);
    CR_ASSERT(!in.empty(), "sim activated an isolated node");

    std::vector<ChannelIdx> chosen;
    switch (opts_->model.neighbors) {
      case model::NeighborMode::kEvery: {
        // E models read every in-channel in one step; if any channel is
        // not ready, wait until the last of them is.
        VirtualTime defer = 0;
        for (const ChannelIdx c : in) {
          if (!channel_ready(c)) {
            defer = std::max(defer, ready_at(c));
          }
        }
        if (defer > 0) {
          CR_ASSERT(defer > clock_.now(), "sim deferral does not progress");
          push_activation(v, defer);
          return std::nullopt;
        }
        chosen = in;
        break;
      }
      case model::NeighborMode::kMultiple: {
        // M models choose any subset: take every ready channel with an
        // arrived message. An empty choice is legal (boot steps).
        for (const ChannelIdx c : in) {
          if (channel_ready(c) && arrived_count(c) > 0) {
            chosen.push_back(c);
          }
        }
        break;
      }
      case model::NeighborMode::kOne: {
        // 1-neighbor models process a single channel. Prefer a ready
        // channel with an arrived message (rotating a per-node cursor
        // for fairness), else any empty channel (a no-op read that still
        // lets the node announce), else defer to the earliest instant
        // some channel becomes ready.
        const std::size_t n = in.size();
        std::size_t pick = n;
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t i = (cursor_[v] + k) % n;
          if (channel_ready(in[i]) && arrived_count(in[i]) > 0) {
            pick = i;
            break;
          }
        }
        if (pick == n) {
          for (std::size_t k = 0; k < n; ++k) {
            const std::size_t i = (cursor_[v] + k) % n;
            if (inflight_[in[i]].empty()) {
              pick = i;
              break;
            }
          }
        }
        if (pick == n) {
          VirtualTime defer = std::numeric_limits<VirtualTime>::max();
          for (const ChannelIdx c : in) {
            defer = std::min(defer, ready_at(c));
          }
          CR_ASSERT(defer > clock_.now(), "sim deferral does not progress");
          push_activation(v, defer);
          return std::nullopt;
        }
        chosen.push_back(in[pick]);
        cursor_[v] = (pick + 1) % n;
        break;
      }
    }

    model::ActivationStep step;
    step.nodes.push_back(v);
    for (const ChannelIdx c : chosen) {
      const std::size_t m = inflight_[c].size();
      const std::size_t a = arrived_count(c);
      model::ReadSpec read;
      read.channel = c;
      std::size_t processed = 0;
      switch (opts_->model.messages) {
        case model::MessageMode::kOne:
          read.count = 1;
          processed = std::min<std::size_t>(1, m);
          break;
        case model::MessageMode::kSome:
          read.count = static_cast<std::uint32_t>(a);
          processed = a;
          break;
        case model::MessageMode::kForced:
          // f >= 1; channel_ready guarantees a > 0 whenever m > 0.
          read.count = static_cast<std::uint32_t>(std::max<std::size_t>(a, 1));
          processed = std::min<std::size_t>(std::max<std::size_t>(a, 1), m);
          break;
        case model::MessageMode::kAll:
          read.count = std::nullopt;  // f = infinity
          processed = m;              // channel_ready guarantees a == m
          break;
      }
      for (std::size_t j = 0; j < processed; ++j) {
        if (inflight_[c][j].lost) {
          read.drops.push_back(static_cast<std::uint32_t>(j + 1));
        }
      }
      step.reads.push_back(std::move(read));
      for (std::size_t j = 0; j < processed; ++j) {
        if (inflight_[c][j].lost) {
          ++messages_lost_;
        } else {
          ++messages_delivered_;
        }
      }
      inflight_[c].erase(inflight_[c].begin(),
                         inflight_[c].begin() +
                             static_cast<std::ptrdiff_t>(processed));
    }

    last_activation_[v] = clock_.now();
    // Arrived messages the step did not consume (e.g. a 1-neighbor model
    // drained only one of several ready channels) must not be stranded:
    // re-arm the node so a later activation serves them.
    for (const ChannelIdx c : in) {
      if (arrived_count(c) > 0) {
        schedule_activation(v);
        break;
      }
    }
    return step;
  }

  const spp::Instance* inst_;
  const SimOptions* opts_;
  Rng rng_;
  EventQueue queue_;
  VirtualClock clock_;
  std::vector<LinkModel> links_;
  std::vector<LossProcess> loss_;
  std::vector<NodeModel> nodes_;
  std::vector<std::deque<InFlight>> inflight_;
  std::vector<VirtualTime> last_arrival_;
  std::vector<char> activation_scheduled_;
  std::vector<VirtualTime> last_activation_;
  std::vector<std::size_t> cursor_;
  // Fault injection (engine::FaultHook).
  engine::NetworkState* state_ = nullptr;
  std::vector<scenario::FaultEvent> fault_events_;
  std::vector<VirtualTime> down_up_time_;  ///< per link-down: its link-up
  std::vector<char> down_;                 ///< per channel: link is down
  std::vector<VirtualTime> down_until_;    ///< per channel: outage end
  std::vector<engine::AppliedFault> applied_;
  std::size_t faults_pending_ = 0;
  std::uint64_t faults_applied_ = 0;
  VirtualTime last_fault_us_ = 0;
  bool sketched_;
  obs::LogHistogram latency_hist_;
  VirtualTime last_step_time_ = 0;
  std::vector<VirtualTime> step_time_us_;
  std::uint64_t events_processed_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_lost_ = 0;
  std::uint64_t latency_samples_ = 0;
  std::uint64_t latency_sum_us_ = 0;
  std::uint64_t latency_min_us_ = 0;
  std::uint64_t latency_max_us_ = 0;
};

}  // namespace

SimResult run(const spp::Instance& instance, const SimOptions& options) {
  check_link(options.link, options.model, "SimOptions::link");
  for (const auto& [c, link] : options.link_overrides) {
    check_link(link, options.model,
               "link override for channel " + std::to_string(c));
  }

  obs::Span sim_span = options.obs.span("sim.run");

  const bool sketched = options.budget == obs::ObsBudget::kSketched;
  SimScheduler scheduler(instance, options);
  engine::RunOptions ropts;
  ropts.max_steps = options.max_steps;
  // Flap timing needs the pi-sequence; the sketched budget gives it up
  // (engine::run suppresses the trace under kSketched anyway).
  ropts.record_trace = true;
  // The sim's configuration includes its event queue and RNG stream,
  // which no scheduler signature can capture — run without (sound)
  // cycle detection rather than advertise it.
  ropts.detect_cycles = false;
  ropts.enforce_model = options.model;
  ropts.obs = options.obs;
  ropts.emit_step_events = options.emit_step_events;
  ropts.causality = options.causality;
  ropts.flight = options.flight;
  ropts.budget = options.budget;
  ropts.progress = options.progress;
  ropts.obs_memory = options.obs_memory;
  const bool faulted =
      options.faults != nullptr && !options.faults->empty();
  if (faulted) {
    ropts.fault_hook = &scheduler;
  }
  if (ropts.flight.mode != engine::FlightRecorderOptions::Mode::kOff) {
    if (ropts.flight.scheduler.empty()) {
      ropts.flight.scheduler = "sim";
    }
    if (ropts.flight.seed == 0) {
      ropts.flight.seed = options.seed;
    }
  }

  SimResult result;
  result.run = engine::run(instance, scheduler, ropts);

  result.step_time_us = scheduler.step_times();
  result.virtual_end_us = scheduler.last_step_time();
  if (sketched) {
    result.latency_hist = scheduler.latency_hist();
  }
  result.events_processed = scheduler.events_processed();
  result.messages_delivered = scheduler.messages_delivered();
  result.messages_lost = scheduler.messages_lost();
  result.latency_samples = scheduler.latency_samples();
  result.latency_sum_us = scheduler.latency_sum_us();
  result.latency_min_us = scheduler.latency_min_us();
  result.latency_max_us = scheduler.latency_max_us();
  result.queue_peak_events = scheduler.queue_peak_events();
  result.queue_peak_bytes = scheduler.queue_peak_bytes();
  result.faults_applied = scheduler.faults_applied();
  result.last_fault_us = scheduler.last_fault_us();
  if (result.run.causality.has_value()) {
    result.critical_path_us = result.run.causality->critical_path_us();
  }

  // Flap times from the recorded pi-sequence: trace entry t is the state
  // after step t (entry 0 = initial), executed at step_time_us[t - 1].
  // Skipped under the sketched budget (no trace, no step_time_us) —
  // run.flap_topk carries the bounded per-node flap counts instead.
  const trace::Trace& tr = result.run.trace;
  if (!sketched) {
    result.last_flap_us.assign(instance.node_count(), 0);
  }
  CR_ASSERT(sketched || tr.size() == result.step_time_us.size() + 1,
            "sim trace / step-time length mismatch");
  for (std::size_t t = 1; t < tr.size(); ++t) {
    const trace::Assignment& prev = tr.at(t - 1);
    const trace::Assignment& cur = tr.at(t);
    bool changed = false;
    for (NodeId v = 0; v < instance.node_count(); ++v) {
      if (prev[v] != cur[v]) {
        result.last_flap_us[v] = result.step_time_us[t - 1];
        changed = true;
      }
    }
    if (changed) {
      result.last_change_us = result.step_time_us[t - 1];
    }
  }

  if (options.obs.attached()) {
    if (sim_span.enabled()) {
      sim_span.attr("model", options.model.name())
          .attr("seed", options.seed)
          .attr("outcome", engine::to_string(result.run.outcome))
          .attr("virtual_end_us", result.virtual_end_us);
      sim_span.finish();
    }
    if (obs::Histogram* h = options.obs.histogram(
            "sim.virtual_time_us", obs::exponential_buckets(64, 4.0, 12))) {
      h->observe(result.virtual_end_us);
    }
    if (options.obs.metrics != nullptr) {
      obs::Registry& m = *options.obs.metrics;
      m.counter("sim.runs").add();
      m.counter("sim.steps").add(result.run.steps);
      m.counter("sim.events").add(result.events_processed);
      m.counter("sim.messages_delivered").add(result.messages_delivered);
      m.counter("sim.messages_lost").add(result.messages_lost);
      m.gauge("sim.virtual_end_us").record_max(result.virtual_end_us);
      m.gauge("sim.queue_peak_events").record_max(result.queue_peak_events);
      m.gauge("sim.queue_peak_bytes").record_max(result.queue_peak_bytes);
    }
    if (options.obs.sink != nullptr) {
      // Virtual-time fields only: a sim_summary is byte-stable across
      // runs with identical options (the determinism acceptance check).
      obs::Event ev("sim_summary");
      ev.field("model", options.model.name())
          .field("seed", options.seed)
          .field("outcome", engine::to_string(result.run.outcome))
          .field("steps", result.run.steps)
          .field("virtual_end_us", result.virtual_end_us)
          .field("last_change_us", result.last_change_us)
          .field("events", result.events_processed)
          .field("messages_sent", result.run.messages_sent)
          .field("messages_delivered", result.messages_delivered)
          .field("messages_lost", result.messages_lost)
          .field("queue_peak_events", result.queue_peak_events)
          .field("queue_peak_bytes", result.queue_peak_bytes)
          .field("mean_latency_us", result.mean_latency_us());
      if (options.causality) {
        ev.field("critical_path_len", result.run.critical_path_len)
            .field("critical_path_us", result.critical_path_us);
      }
      if (faulted) {
        // Gated like the causality fields: fault-free sim_summary lines
        // keep their exact pre-scenario bytes.
        ev.field("faults_applied", result.faults_applied)
            .field("last_fault_us", result.last_fault_us)
            .field("reconverge_us", result.reconverge_us());
      }
      if (sketched) {
        // Gated so full-mode sim_summary lines keep their exact
        // pre-budget bytes. All sketch JSON is virtual-time / count
        // derived, hence as byte-stable as the rest of the event.
        ev.field("obs_budget", obs::to_string(options.budget))
            .raw_field("latency_hist", result.latency_hist.to_json())
            .raw_field("flap_topk", result.run.flap_topk.to_json());
      }
      options.obs.sink->emit(ev);
    }
  }
  return result;
}

std::string SimResult::to_json() const {
  obs::JsonWriter w;
  w.field("type", "sim_summary")
      .field("outcome", engine::to_string(run.outcome))
      .field("steps", run.steps)
      .field("virtual_end_us", virtual_end_us)
      .field("last_change_us", last_change_us)
      .field("events_processed", events_processed)
      .field("messages_sent", run.messages_sent)
      .field("messages_delivered", messages_delivered)
      .field("messages_lost", messages_lost)
      .field("latency_samples", latency_samples)
      .field("latency_sum_us", latency_sum_us)
      .field("latency_min_us", latency_min_us)
      .field("latency_max_us", latency_max_us)
      .field("queue_peak_events", queue_peak_events)
      .field("queue_peak_bytes", queue_peak_bytes)
      .field("critical_path_len", run.critical_path_len)
      .field("critical_path_us", critical_path_us);
  if (faults_applied > 0) {
    // Faulted runs only — fault-free documents keep their exact schema.
    w.field("faults_applied", faults_applied)
        .field("last_fault_us", last_fault_us);
  }
  std::string flaps = "[";
  for (std::size_t i = 0; i < last_flap_us.size(); ++i) {
    if (i > 0) {
      flaps += ',';
    }
    flaps += std::to_string(last_flap_us[i]);
  }
  flaps += ']';
  w.raw_field("last_flap_us", flaps);
  if (latency_hist.count() > 0) {
    // Sketched runs only — full-mode documents keep their exact schema.
    w.raw_field("latency_hist", latency_hist.to_json());
  }
  return w.str();
}

SimResult SimResult::from_json(const std::string& json) {
  const std::optional<obs::JsonValue> parsed = obs::json_parse(json);
  if (!parsed.has_value() || !parsed->is_object()) {
    throw ParseError("sim_summary: not a JSON object");
  }
  const auto u64 = [&](const std::string& key) {
    const obs::JsonValue* v = parsed->find(key);
    if (v == nullptr || !v->is_number()) {
      throw ParseError("sim_summary: missing numeric field \"" + key + "\"");
    }
    return static_cast<std::uint64_t>(v->as_number());
  };

  SimResult r;
  const obs::JsonValue* outcome = parsed->find("outcome");
  if (outcome == nullptr || !outcome->is_string()) {
    throw ParseError("sim_summary: missing string field \"outcome\"");
  }
  const std::optional<engine::Outcome> parsed_outcome =
      engine::outcome_from_string(outcome->as_string());
  if (!parsed_outcome.has_value()) {
    throw ParseError("sim_summary: unknown outcome \"" +
                     outcome->as_string() + "\"");
  }
  r.run.outcome = *parsed_outcome;
  r.run.steps = u64("steps");
  r.virtual_end_us = u64("virtual_end_us");
  r.last_change_us = u64("last_change_us");
  r.events_processed = u64("events_processed");
  r.run.messages_sent = u64("messages_sent");
  r.messages_delivered = u64("messages_delivered");
  r.messages_lost = u64("messages_lost");
  r.latency_samples = u64("latency_samples");
  r.latency_sum_us = u64("latency_sum_us");
  r.latency_min_us = u64("latency_min_us");
  r.latency_max_us = u64("latency_max_us");
  // Queue-depth fields postdate the first sim_summary schema; default to
  // 0 when reading older documents.
  const auto u64_or_zero = [&](const std::string& key) -> std::uint64_t {
    const obs::JsonValue* v = parsed->find(key);
    return (v != nullptr && v->is_number())
               ? static_cast<std::uint64_t>(v->as_number())
               : 0;
  };
  r.queue_peak_events = u64_or_zero("queue_peak_events");
  r.queue_peak_bytes = u64_or_zero("queue_peak_bytes");
  // Causality fields postdate the queue fields; same compatibility rule.
  r.run.critical_path_len = u64_or_zero("critical_path_len");
  r.critical_path_us = u64_or_zero("critical_path_us");
  // Fault fields appear on faulted runs only (schema v3 era).
  r.faults_applied = u64_or_zero("faults_applied");
  r.last_fault_us = u64_or_zero("last_fault_us");
  const obs::JsonValue* flaps = parsed->find("last_flap_us");
  if (flaps == nullptr || !flaps->is_array()) {
    throw ParseError("sim_summary: missing array field \"last_flap_us\"");
  }
  for (const obs::JsonValue& f : flaps->as_array()) {
    if (!f.is_number()) {
      throw ParseError("sim_summary: last_flap_us entries must be numbers");
    }
    r.last_flap_us.push_back(static_cast<std::uint64_t>(f.as_number()));
  }
  return r;
}

}  // namespace commroute::sim
