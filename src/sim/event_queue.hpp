// Virtual-time discrete-event core: a monotonic virtual clock and a
// deterministic event queue.
//
// The simulation subsystem (docs/SIMULATION.md) measures executions in
// *virtual microseconds* rather than abstract steps. All ordering is
// (timestamp, sequence number): two events scheduled for the same
// virtual instant fire in scheduling order, so a run is a pure function
// of the instance, the sim options, and the seed — no wall clock, no
// iteration-order dependence (cf. the ROOT-Sim-style DES approach of
// Coudert et al., arXiv:1304.4750).
#pragma once

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "core/graph.hpp"
#include "support/error.hpp"

namespace commroute::sim {

/// Virtual time in microseconds since the start of the simulation.
using VirtualTime = std::uint64_t;

/// One scheduled occurrence.
struct Event {
  enum class Kind : std::uint8_t {
    kArrival,   ///< a message reaches the receiving end of `channel`
    kActivate,  ///< `node` runs one processing activation
    kFault,     ///< a scheduled fault fires (scenario subsystem)
  };

  VirtualTime time = 0;
  /// Assigned by the queue at push time; ties on `time` break by `seq`.
  std::uint64_t seq = 0;
  Kind kind = Kind::kActivate;
  ChannelIdx channel = kNoChannel;  ///< valid for kArrival
  /// Valid for kActivate; for kFault it carries the index into the
  /// injector's fault list instead (reused to keep sizeof(Event) at 32,
  /// which queue_peak_bytes depends on).
  NodeId node = kNoNode;
};

/// Min-queue over (time, seq). Deterministic: pop order is a pure
/// function of the push sequence, independent of heap internals.
class EventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Schedules `event` (its `seq` is overwritten with the next sequence
  /// number) and returns the assigned sequence number.
  std::uint64_t push(Event event) {
    event.seq = next_seq_++;
    const std::uint64_t seq = event.seq;
    heap_.push(event);
    peak_size_ = std::max(peak_size_, heap_.size());
    return seq;
  }

  /// Smallest (time, seq) event without removing it. Requires non-empty.
  const Event& peek() const {
    CR_REQUIRE(!heap_.empty(), "EventQueue::peek on empty queue");
    return heap_.top();
  }

  /// Removes and returns the smallest (time, seq) event. Requires
  /// non-empty.
  Event pop() {
    CR_REQUIRE(!heap_.empty(), "EventQueue::pop on empty queue");
    Event event = heap_.top();
    heap_.pop();
    return event;
  }

  /// Total events ever scheduled (the next sequence number).
  std::uint64_t scheduled() const { return next_seq_; }

  /// High-water mark of the queue depth (deterministic: a pure function
  /// of the push/pop sequence).
  std::size_t peak_size() const { return peak_size_; }

  /// Deterministic byte estimates of the pending / peak queue contents
  /// (element counts × sizeof(Event), never heap capacity).
  std::size_t estimated_bytes() const { return heap_.size() * sizeof(Event); }
  std::size_t peak_bytes() const { return peak_size_ * sizeof(Event); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_size_ = 0;
};

/// Monotonic virtual clock, advanced only by the event loop.
class VirtualClock {
 public:
  VirtualTime now() const { return now_; }

  /// Moves the clock forward to `t` (a no-op when t == now()). Virtual
  /// time never runs backwards; the event queue's ordering guarantees
  /// the loop only ever advances.
  void advance_to(VirtualTime t) {
    CR_REQUIRE(t >= now_, "VirtualClock::advance_to into the past");
    now_ = t;
  }

 private:
  VirtualTime now_ = 0;
};

}  // namespace commroute::sim
