// Error handling primitives for commroute.
//
// The library signals contract violations and malformed inputs with
// exceptions derived from commroute::Error (C++ Core Guidelines I.10, E.2).
// CR_REQUIRE is used for precondition checks on public interfaces;
// CR_ASSERT for internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace commroute {

/// Base class of all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated (a library bug).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// Thrown when parsing user-supplied text (model names, paths) fails.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_invariant(const char* expr, const char* file,
                                  int line, const std::string& msg);

}  // namespace commroute

#define CR_REQUIRE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::commroute::throw_precondition(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                      \
  } while (false)

#define CR_ASSERT(expr, msg)                                               \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::commroute::throw_invariant(#expr, __FILE__, __LINE__, (msg));      \
    }                                                                      \
  } while (false)
