// Minimal ASCII table renderer used by benches and examples to print the
// paper's tables (activation-sequence traces, realization matrices).
#pragma once

#include <string>
#include <vector>

namespace commroute {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight, kCenter };

/// A simple monospace table: add a header row, then body rows; render()
/// pads every column to its widest cell.
class TextTable {
 public:
  /// Sets the header row; resets any previously added rows' width cache.
  void set_header(std::vector<std::string> header);

  /// Appends a body row. Rows may have fewer cells than the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Default alignment applied to all columns (header is centered).
  void set_align(Align align) { align_ = align; }

  /// Renders the full table, one trailing newline included.
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  Align align_ = Align::kLeft;
};

}  // namespace commroute
