// Small string utilities used throughout the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace commroute {

/// Split `text` on `sep`, trimming ASCII whitespace from each piece and
/// dropping empty pieces.
std::vector<std::string> split_trimmed(std::string_view text, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// RFC-4180 CSV field: returns `field` unchanged when it contains no
/// comma, double quote, CR, or LF; otherwise wraps it in double quotes
/// with embedded quotes doubled.
std::string csv_quote(std::string_view field);

/// Parses an RFC-4180 document (quoted fields, doubled quotes, embedded
/// newlines inside quotes) into records of fields. Accepts both LF and
/// CRLF record separators; a trailing newline does not produce an empty
/// record. Throws ParseError on an unterminated quoted field.
std::vector<std::vector<std::string>> csv_parse(std::string_view text);

/// Makes `name` safe to embed in a filename: every character outside
/// [A-Za-z0-9._-] becomes '_', and an empty input becomes "_". Note the
/// mapping is lossy (distinct names can collide); de-collide at the
/// call site.
std::string sanitize_path_component(std::string_view name);

}  // namespace commroute
