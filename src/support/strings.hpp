// Small string utilities used throughout the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace commroute {

/// Split `text` on `sep`, trimming ASCII whitespace from each piece and
/// dropping empty pieces.
std::vector<std::string> split_trimmed(std::string_view text, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace commroute
