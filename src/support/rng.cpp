#include "support/rng.hpp"

#include <cmath>

namespace commroute {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  CR_REQUIRE(bound > 0, "Rng::below requires positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  CR_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::exponential(double mean) {
  CR_REQUIRE(mean > 0.0, "Rng::exponential requires positive mean");
  // Inverse transform on 1 - U in (0, 1]; log1p(-u) = log(1 - u) is
  // exact at u = 0 and never sees log(0).
  return -mean * std::log1p(-uniform());
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

std::uint64_t Rng::fork_seed(std::uint64_t seed, std::uint64_t tag) {
  // Two splitmix64 rounds: the first mixes the seed alone, the second
  // mixes the advanced state xor the tag. Either input changing in one
  // bit avalanches the child seed; (seed, tag) -> child is pure.
  std::uint64_t x = seed;
  const std::uint64_t a = splitmix64(x);
  x ^= tag;
  const std::uint64_t b = splitmix64(x);
  return a ^ b;
}

Rng Rng::fork(std::uint64_t tag) const { return Rng(fork_seed(seed_, tag)); }

Rng Rng::fork(std::string_view tag) const {
  // FNV-1a, the same byte hash used for campaign row-seed derivation.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return fork(h);
}

}  // namespace commroute
