#include "support/strings.hpp"

#include <cctype>

#include "support/error.hpp"

namespace commroute {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> split_trimmed(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    const std::size_t end = (pos == std::string_view::npos) ? text.size() : pos;
    const std::string_view piece = trim(text.substr(start, end - start));
    if (!piece.empty()) {
      out.emplace_back(piece);
    }
    if (pos == std::string_view::npos) {
      break;
    }
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += pieces[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string csv_quote(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::vector<std::string>> csv_parse(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool quoted = false;
  bool field_started = false;  // current record has at least one field
  std::size_t i = 0;
  const auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = true;
  };
  const auto end_record = [&] {
    if (field_started || !field.empty()) {
      end_field();
      records.push_back(std::move(record));
      record.clear();
      field_started = false;
    }
  };
  while (i < text.size()) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          quoted = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
      field_started = true;
      ++i;
    } else if (c == ',') {
      end_field();
      ++i;
    } else if (c == '\n' || c == '\r') {
      end_record();
      // Swallow one CRLF pair as a single separator.
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') {
        ++i;
      }
      ++i;
    } else {
      field += c;
      field_started = true;
      ++i;
    }
  }
  CR_REQUIRE(!quoted, "csv_parse: unterminated quoted field");
  end_record();
  return records;
}

std::string sanitize_path_component(std::string_view name) {
  if (name.empty()) {
    return "_";
  }
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool safe = std::isalnum(static_cast<unsigned char>(c)) ||
                      c == '.' || c == '_' || c == '-';
    out += safe ? c : '_';
  }
  return out;
}

}  // namespace commroute
