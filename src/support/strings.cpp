#include "support/strings.hpp"

#include <cctype>

namespace commroute {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> split_trimmed(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    const std::size_t end = (pos == std::string_view::npos) ? text.size() : pos;
    const std::string_view piece = trim(text.substr(start, end - start));
    if (!piece.empty()) {
      out.emplace_back(piece);
    }
    if (pos == std::string_view::npos) {
      break;
    }
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += pieces[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace commroute
