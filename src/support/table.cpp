#include "support/table.hpp"

#include <algorithm>
#include <sstream>

namespace commroute {

namespace {

std::string pad(const std::string& text, std::size_t width, Align align) {
  if (text.size() >= width) {
    return text;
  }
  const std::size_t space = width - text.size();
  switch (align) {
    case Align::kLeft:
      return text + std::string(space, ' ');
    case Align::kRight:
      return std::string(space, ' ') + text;
    case Align::kCenter: {
      const std::size_t left = space / 2;
      return std::string(left, ' ') + text + std::string(space - left, ' ');
    }
  }
  return text;
}

}  // namespace

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) {
    columns = std::max(columns, row.cells.size());
  }
  std::vector<std::size_t> widths(columns, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) {
    measure(row.cells);
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells, Align align) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string& text = (i < cells.size()) ? cells[i] : std::string();
      os << (i == 0 ? "" : "  ") << pad(text, widths[i], align);
    }
    os << '\n';
  };
  auto emit_separator = [&] {
    std::size_t total = 0;
    for (std::size_t i = 0; i < columns; ++i) {
      total += widths[i] + (i == 0 ? 0 : 2);
    }
    os << std::string(total, '-') << '\n';
  };

  if (!header_.empty()) {
    emit(header_, Align::kCenter);
    emit_separator();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      emit_separator();
    } else {
      emit(row.cells, align_);
    }
  }
  return os.str();
}

}  // namespace commroute
