// Deterministic random number generation.
//
// All stochastic components of the library (randomized fair schedulers,
// random instance generators, property tests) draw from an explicitly
// seeded Rng so that every run is reproducible from its seed.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace commroute {

/// xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniform double in [0, 1).
  double uniform();

  /// Exponentially distributed double with the given mean (rate
  /// 1/mean). Requires mean > 0. Consumes exactly one draw, so streams
  /// stay aligned across latency distributions.
  double exponential(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    CR_REQUIRE(!v.empty(), "Rng::pick on empty vector");
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derive an independent child generator (for parallel structures).
  /// Consumes one draw, so the child depends on the parent's stream
  /// position. For position-independent derivation use fork().
  Rng split();

  /// Derive a decorrelated sub-stream keyed by (seed, tag): splitmix64
  /// mixes the construction seed and the tag into a child seed. Pure in
  /// (seed, tag) — it neither consumes parent draws nor depends on how
  /// many the parent has made, so `rng.fork(kFaultTag)` yields the same
  /// stream no matter where it is called. Distinct tags give
  /// decorrelated streams without manual seed arithmetic.
  Rng fork(std::uint64_t tag) const;

  /// String-tag convenience: FNV-1a hashes the tag first. fork("sim")
  /// and fork("perturb") are decorrelated even for seeds 0 and 1.
  Rng fork(std::string_view tag) const;

  /// The child seed fork() constructs from; exposed so non-Rng
  /// consumers (e.g. campaign row-seed derivation) can reuse the exact
  /// algorithm. Golden-value tests pin this mapping.
  static std::uint64_t fork_seed(std::uint64_t seed, std::uint64_t tag);

  /// The seed this generator was constructed with (fork() keys off it).
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
};

}  // namespace commroute
