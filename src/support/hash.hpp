// Hash-combining utilities (header-only).
//
// Used by the model checker to hash full network states and by containers
// keyed on paths and channels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace commroute {

/// Mixes `value` into `seed` (boost::hash_combine style, 64-bit constants).
inline void hash_combine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
}

/// Hashes any value with std::hash and mixes it into `seed`.
template <typename T>
void hash_combine_value(std::size_t& seed, const T& value) {
  hash_combine(seed, std::hash<T>{}(value));
}

/// Hashes an iterable range element-wise, including its length.
template <typename Range>
std::size_t hash_range(const Range& range) {
  std::size_t seed = 0x51afd7ed558ccd6dULL;
  std::size_t count = 0;
  for (const auto& element : range) {
    hash_combine_value(seed, element);
    ++count;
  }
  hash_combine(seed, count);
  return seed;
}

}  // namespace commroute
