#include "study/checker_campaign.hpp"

#include <sstream>

#include "support/error.hpp"

namespace commroute::study {

std::size_t CheckerMatrixResult::oscillating() const {
  std::size_t n = 0;
  for (const CheckerMatrixCell& cell : cells) {
    n += cell.result.oscillation_found ? 1 : 0;
  }
  return n;
}

std::size_t CheckerMatrixResult::proven_safe() const {
  std::size_t n = 0;
  for (const CheckerMatrixCell& cell : cells) {
    n += cell.result.proves_no_oscillation() ? 1 : 0;
  }
  return n;
}

std::string CheckerMatrixResult::to_csv() const {
  std::ostringstream os;
  os << "instance,model,oscillation_found,exhaustive,states,transitions,"
        "dedup_hits,frontier_peak,scc_prune_passes,state_cap_hit,"
        "channel_bound_hit,memory_limit_hit,bound_skipped_expansions,"
        "quiescent_outcomes,witness_scc_size,tracked_peak_bytes\n";
  for (const CheckerMatrixCell& cell : cells) {
    const checker::ExploreResult& r = cell.result;
    os << cell.instance << ',' << cell.model.name() << ','
       << (r.oscillation_found ? 1 : 0) << ',' << (r.exhaustive ? 1 : 0)
       << ',' << r.states << ',' << r.transitions << ',' << r.dedup_hits
       << ',' << r.frontier_peak << ',' << r.scc_prune_passes << ','
       << (r.state_cap_hit ? 1 : 0) << ',' << (r.channel_bound_hit ? 1 : 0)
       << ',' << (r.memory_limit_hit ? 1 : 0) << ','
       << r.bound_skipped_expansions << ','
       << r.quiescent_assignments.size() << ',' << r.witness_scc_size
       << ',' << r.tracked_peak_bytes << '\n';
  }
  return os.str();
}

CheckerMatrixResult run_checker_matrix(const CheckerMatrixSpec& spec) {
  CR_REQUIRE(!spec.instances.empty(),
             "run_checker_matrix: no instances given");
  const std::vector<model::Model>& models =
      spec.models.empty() ? model::Model::all() : spec.models;

  CheckerMatrixResult result;
  result.cells.reserve(spec.instances.size() * models.size());
  for (const auto& [name, instance] : spec.instances) {
    CR_REQUIRE(instance != nullptr,
               "run_checker_matrix: null instance '" + name + "'");
    for (const model::Model& m : models) {
      CheckerMatrixCell cell;
      cell.instance = name;
      cell.model = m;
      cell.result = checker::explore(*instance, m, spec.explore);
      result.cells.push_back(std::move(cell));
    }
  }
  return result;
}

}  // namespace commroute::study
