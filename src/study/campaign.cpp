#include "study/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "engine/scheduler.hpp"
#include "obs/json.hpp"
#include "obs/resource.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/sim_runner.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace commroute::study {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kRandomFair:
      return "random-fair";
    case SchedulerKind::kSynchronous:
      return "synchronous";
    case SchedulerKind::kEventDriven:
      return "event-driven";
    case SchedulerKind::kSim:
      return "sim";
  }
  throw InvariantError("bad SchedulerKind");
}

double CampaignResult::outcome_rate(engine::Outcome outcome) const {
  if (rows.empty()) {
    return 0.0;
  }
  std::size_t hits = 0;
  for (const CampaignRow& row : rows) {
    if (row.outcome == outcome) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(rows.size());
}

std::uint64_t CampaignResult::median_steps(
    const std::function<bool(const CampaignRow&)>& pred) const {
  std::vector<std::uint64_t> steps;
  for (const CampaignRow& row : rows) {
    if (pred(row)) {
      steps.push_back(row.steps);
    }
  }
  if (steps.empty()) {
    return 0;
  }
  std::sort(steps.begin(), steps.end());
  return steps[steps.size() / 2];
}

std::string CampaignResult::to_csv() const {
  std::ostringstream out;
  // New columns append at the end: CI's thread-width byte diff strips
  // wall_ms by position (column 11).
  out << "instance,model,scheduler,seed,outcome,steps,messages_sent,"
         "messages_dropped,max_channel_occupancy,peak_channel_bytes,"
         "wall_ms,recording_path,"
         "sim_latency_us,sim_loss,virtual_us,last_change_us,"
         "critical_path_len,critical_path_us,"
         "perturb,perturb_edits,fault_schedule,faults_applied,"
         "reconverge_us\n";
  for (const CampaignRow& row : rows) {
    char wall[32];
    std::snprintf(wall, sizeof wall, "%.3f", row.wall_ms);
    char loss[32];
    std::snprintf(loss, sizeof loss, "%g", row.sim_loss);
    out << csv_quote(row.instance) << ',' << csv_quote(row.model.name())
        << ',' << to_string(row.scheduler) << ',' << row.seed << ','
        << engine::to_string(row.outcome) << ',' << row.steps << ','
        << row.messages_sent << ',' << row.messages_dropped << ','
        << row.max_channel_occupancy << ',' << row.peak_channel_bytes
        << ',' << wall << ','
        << csv_quote(row.recording_path) << ',' << row.sim_latency_us
        << ',' << loss << ',' << row.virtual_us << ','
        << row.last_change_us << ',' << row.critical_path_len << ','
        << row.critical_path_us << ',' << csv_quote(row.perturb) << ','
        << row.perturb_edits << ',' << csv_quote(row.fault_schedule)
        << ',' << row.faults_applied << ',' << row.reconverge_us << '\n';
  }
  return out.str();
}

namespace {

obs::JsonWriter row_json(const CampaignRow& row) {
  obs::JsonWriter w;
  w.field("instance", row.instance)
      .field("model", row.model.name())
      .field("scheduler", to_string(row.scheduler))
      .field("seed", row.seed)
      .field("outcome", engine::to_string(row.outcome))
      .field("steps", row.steps)
      .field("messages_sent", row.messages_sent)
      .field("messages_dropped", row.messages_dropped)
      .field("max_channel_occupancy",
             static_cast<std::uint64_t>(row.max_channel_occupancy))
      .field("peak_channel_bytes",
             static_cast<std::uint64_t>(row.peak_channel_bytes))
      .field("wall_ms", row.wall_ms)
      .field("recording_path", row.recording_path)
      .field("sim_latency_us", row.sim_latency_us)
      .field("sim_loss", row.sim_loss)
      .field("virtual_us", row.virtual_us)
      .field("last_change_us", row.last_change_us)
      .field("critical_path_len", row.critical_path_len)
      .field("critical_path_us", row.critical_path_us)
      .field("perturb", row.perturb)
      .field("perturb_edits", row.perturb_edits)
      .field("fault_schedule", row.fault_schedule)
      .field("faults_applied", row.faults_applied)
      .field("reconverge_us", row.reconverge_us);
  return w;
}

}  // namespace

std::string CampaignResult::to_json() const {
  std::string rows_json = "[";
  double total_wall_ms = 0.0;
  std::uint64_t total_steps = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) {
      rows_json += ',';
    }
    rows_json += row_json(rows[i]).str();
    total_wall_ms += rows[i].wall_ms;
    total_steps += rows[i].steps;
  }
  rows_json += ']';

  obs::JsonWriter summary;
  summary.field("rows", static_cast<std::uint64_t>(rows.size()))
      .field("total_steps", total_steps)
      .field("total_wall_ms", total_wall_ms)
      .field("converged_rate", outcome_rate(engine::Outcome::kConverged))
      .field("oscillating_rate",
             outcome_rate(engine::Outcome::kOscillating))
      .field("exhausted_rate", outcome_rate(engine::Outcome::kExhausted));

  obs::JsonWriter top;
  top.raw_field("rows", rows_json);
  top.raw_field("summary", summary.str());
  return top.str();
}

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t derive_row_seed(std::string_view instance, int model_index,
                              SchedulerKind scheduler, std::uint64_t seed) {
  // FNV-1a over the instance name, then splitmix64-finalized absorption
  // of the remaining coordinates. Every coordinate perturbs the whole
  // state, so (seed, model) pairs never collide across instances or
  // schedulers the way the old `seed * 7919 + model` derivation did.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : instance) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  h = mix64(h ^ static_cast<std::uint64_t>(model_index));
  h = mix64(h ^ (static_cast<std::uint64_t>(scheduler) << 32));
  h = mix64(h ^ seed);
  return h;
}

namespace {

/// One instance coordinate of the sweep: the unperturbed base or a
/// materialized perturbation variant. Variant instances live in a deque
/// owned by run_campaign, so the borrowed pointer stays stable.
struct InstanceVariant {
  std::string name;
  const spp::Instance* inst = nullptr;
  std::string perturb = "none";
  std::uint64_t perturb_edits = 0;
};

/// One pre-enumerated row of the sweep. Everything execution needs is
/// resolved up front (including the recording path), so rows can run on
/// any worker in any order without coordination.
struct RowTask {
  std::string instance;
  const spp::Instance* inst = nullptr;
  model::Model model;
  SchedulerKind kind = SchedulerKind::kRoundRobin;
  std::uint64_t seed = 0;
  std::string flush_path;  ///< "" = flight recorder off for this row
  /// kSim rows: index into the (possibly defaulted) sim-point axis and
  /// the resolved link model.
  int sim_point = -1;
  sim::LinkModel link;
  /// Perturbation coordinate of the row's instance variant.
  std::string perturb = "none";
  std::uint64_t perturb_edits = 0;
  /// Fault-schedule coordinate (kSim rows only; borrowed from the
  /// spec's axis, instantiated per row in run_sim_row).
  const scenario::FaultScheduleSpec* fault_spec = nullptr;
  std::string fault_label = "none";
};

/// The instance-name coordinate fed to derive_row_seed for a kSim row:
/// the sim point is folded in so distinct latency/loss points get
/// decorrelated sampling streams.
std::string sim_seed_key(const std::string& instance, int sim_point) {
  return instance + "#sim" + std::to_string(sim_point);
}

/// Enumerates the cross product in deterministic (instance, model,
/// scheduler, seed) order — the order rows, CSV lines, and campaign_row
/// events appear in regardless of thread count. Recording filenames are
/// built from sanitized components and de-collided with an index suffix
/// (sanitization is lossy: "a/b" and "a_b" both map to "a_b").
std::vector<RowTask> enumerate_rows(const CampaignSpec& spec,
                                    const std::vector<InstanceVariant>& variants) {
  std::vector<RowTask> tasks;
  std::set<std::string> used_names;
  // The kSim sweep axis: explicit points, or one default link model.
  std::vector<sim::LinkModel> sim_points = spec.sim_points;
  if (sim_points.empty()) {
    sim_points.push_back(sim::LinkModel{});
  }
  for (const InstanceVariant& variant : variants) {
    for (const model::Model& m : spec.models) {
      for (const SchedulerKind kind : spec.schedulers) {
        if (kind == SchedulerKind::kEventDriven &&
            !m.is_message_passing()) {
          continue;  // the event-driven scheduler emits f = 1 reads only
        }
        const bool randomized = (kind == SchedulerKind::kRandomFair ||
                                 kind == SchedulerKind::kSim);
        const std::uint64_t runs = randomized ? spec.seeds : 1;
        const std::size_t points =
            kind == SchedulerKind::kSim ? sim_points.size() : 1;
        // The fault axis multiplies kSim rows only; every other
        // scheduler gets the single implicit "none" cell.
        const bool fault_axis =
            kind == SchedulerKind::kSim && !spec.fault_schedules.empty();
        const std::size_t fault_cells =
            fault_axis ? spec.fault_schedules.size() : 1;
        for (std::size_t fcell = 0; fcell < fault_cells; ++fcell) {
          const scenario::FaultScheduleSpec* fspec =
              fault_axis ? &spec.fault_schedules[fcell] : nullptr;
          if (fspec != nullptr && m.reliable() &&
              fspec->regime_shifts > 0 && fspec->regime.loss_prob > 0.0) {
            continue;  // a lossy regime is not expressible when Reliable
          }
          for (std::size_t point = 0; point < points; ++point) {
            if (kind == SchedulerKind::kSim && m.reliable() &&
                sim_points[point].loss_prob > 0.0) {
              continue;  // drops are not expressible in Reliable models
            }
            for (std::uint64_t seed = 0; seed < runs; ++seed) {
              RowTask task;
              task.instance = variant.name;
              task.inst = variant.inst;
              task.model = m;
              task.kind = kind;
              task.seed = seed;
              task.perturb = variant.perturb;
              task.perturb_edits = variant.perturb_edits;
              task.fault_spec = fspec;
              if (fspec != nullptr) {
                task.fault_label = fspec->label();
              }
              if (kind == SchedulerKind::kSim) {
                task.sim_point = static_cast<int>(point);
                task.link = sim_points[point];
              }
              if (!spec.recording_dir.empty()) {
                std::string base =
                    sanitize_path_component(variant.name) + "_" +
                    sanitize_path_component(m.name()) + "_" +
                    sanitize_path_component(to_string(kind)) + "_" +
                    std::to_string(seed);
                if (task.fault_label != "none") {
                  base += "_" + sanitize_path_component(task.fault_label);
                }
                std::string candidate = base;
                for (int suffix = 2; !used_names.insert(candidate).second;
                     ++suffix) {
                  candidate = base + "." + std::to_string(suffix);
                }
                task.flush_path =
                    (std::filesystem::path(spec.recording_dir) /
                     (candidate + ".recording.jsonl"))
                        .string();
              }
              tasks.push_back(std::move(task));
            }
          }
        }
      }
    }
  }
  return tasks;
}

/// Executes one row. `obs` is the executing worker's instrumentation
/// shard (or the campaign-level handle on the serial path); the event
/// sink is deliberately absent here — campaign_row events are emitted by
/// the driver in enumeration order.
/// Executes one kSim row through sim::run (the engine options — flight
/// recorder, model enforcement, obs shard — are assembled by sim::run
/// itself from SimOptions).
CampaignRow run_sim_row(const CampaignSpec& spec, const RowTask& task,
                        const obs::Instrumentation& obs) {
  sim::SimOptions sopts;
  sopts.model = task.model;
  sopts.link = task.link;
  sopts.node = spec.sim_node;
  sopts.seed = derive_row_seed(sim_seed_key(task.instance, task.sim_point),
                               task.model.index(), task.kind, task.seed);
  sopts.max_steps = spec.max_steps;
  sopts.causality = spec.causality;
  sopts.budget = spec.budget;
  sopts.obs.metrics = obs.metrics;
  sopts.obs.spans = obs.spans;
  if (!task.flush_path.empty()) {
    sopts.flight.mode = spec.recording_ring == 0
                            ? engine::FlightRecorderOptions::Mode::kFull
                            : engine::FlightRecorderOptions::Mode::kRing;
    sopts.flight.ring_capacity = spec.recording_ring;
    sopts.flight.instance_name = task.instance;
    sopts.flight.scheduler = to_string(task.kind);
    sopts.flight.seed = task.seed;
    sopts.flight.flush_path = task.flush_path;
  }
  // The fault axis: instantiate the row's schedule spec against this
  // instance. The seed folds in (instance variant, fault label, seed)
  // only — no model or sim-point coordinate — so every model in a
  // campaign cell replays the byte-identical schedule.
  scenario::FaultSchedule schedule;
  if (task.fault_spec != nullptr) {
    schedule = scenario::random_fault_schedule(
        *task.inst, *task.fault_spec,
        derive_row_seed(task.instance + "~fault:" + task.fault_label,
                        /*model_index=*/-1, SchedulerKind::kSim,
                        task.seed));
    sopts.faults = &schedule;
  }

  const auto row_start = std::chrono::steady_clock::now();
  obs::Span row_span = obs.span("campaign.row");
  if (row_span.enabled()) {
    row_span.attr("instance", task.instance)
        .attr("model", task.model.name())
        .attr("scheduler", to_string(task.kind))
        .attr("seed", task.seed)
        .attr("sim_latency_us", task.link.latency_us)
        .attr("sim_loss", task.link.loss_prob);
  }
  const sim::SimResult sres = sim::run(*task.inst, sopts);
  row_span.finish();
  CampaignRow row;
  row.instance = task.instance;
  row.model = task.model;
  row.scheduler = task.kind;
  row.seed = task.seed;
  row.outcome = sres.run.outcome;
  row.steps = sres.run.steps;
  row.messages_sent = sres.run.messages_sent;
  row.messages_dropped = sres.run.messages_dropped;
  row.max_channel_occupancy = sres.run.max_channel_occupancy;
  row.peak_channel_bytes = sres.run.peak_channel_bytes;
  row.recording_path = sres.run.recording_path;
  row.sim_latency_us = task.link.latency_us;
  row.sim_loss = task.link.loss_prob;
  row.virtual_us = sres.virtual_end_us;
  row.last_change_us = sres.last_change_us;
  row.critical_path_len = sres.run.critical_path_len;
  row.critical_path_us = sres.critical_path_us;
  row.perturb = task.perturb;
  row.perturb_edits = task.perturb_edits;
  row.fault_schedule = task.fault_label;
  row.faults_applied = sres.faults_applied;
  row.reconverge_us = sres.reconverge_us();
  row.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - row_start)
                    .count();
  if (obs.metrics != nullptr) {
    obs::Registry& metrics = *obs.metrics;
    metrics.counter("campaign.rows").add();
    metrics.counter("campaign.steps").add(row.steps);
    metrics.counter("campaign.wall_us")
        .add(static_cast<std::uint64_t>(row.wall_ms * 1000.0));
  }
  return row;
}

CampaignRow run_one_row(const CampaignSpec& spec, const RowTask& task,
                        const obs::Instrumentation& obs) {
  if (task.kind == SchedulerKind::kSim) {
    return run_sim_row(spec, task, obs);
  }
  std::unique_ptr<engine::Scheduler> scheduler;
  engine::RunOptions options;
  options.max_steps = spec.max_steps;
  options.record_trace = false;
  options.causality = spec.causality;
  options.budget = spec.budget;
  // Engine aggregates accumulate in the worker's registry shard and
  // engine spans nest under the row span; both merge into the
  // campaign-level handles after the sweep.
  options.obs.metrics = obs.metrics;
  options.obs.spans = obs.spans;
  if (!task.flush_path.empty()) {
    options.flight.mode = spec.recording_ring == 0
                              ? engine::FlightRecorderOptions::Mode::kFull
                              : engine::FlightRecorderOptions::Mode::kRing;
    options.flight.ring_capacity = spec.recording_ring;
    options.flight.instance_name = task.instance;
    options.flight.scheduler = to_string(task.kind);
    options.flight.seed = task.seed;
    options.flight.flush_path = task.flush_path;
  }
  switch (task.kind) {
    case SchedulerKind::kRoundRobin:
      scheduler = std::make_unique<engine::RoundRobinScheduler>(task.model,
                                                                *task.inst);
      options.enforce_model = task.model;
      break;
    case SchedulerKind::kRandomFair:
      scheduler = std::make_unique<engine::RandomFairScheduler>(
          task.model, *task.inst,
          Rng(derive_row_seed(task.instance, task.model.index(), task.kind,
                              task.seed)),
          engine::RandomFairOptions{
              .drop_prob = task.model.reliable() ? 0.0 : spec.drop_prob,
              .sweep_period = 16});
      options.enforce_model = task.model;
      break;
    case SchedulerKind::kSynchronous:
      scheduler = std::make_unique<engine::SynchronousScheduler>(
          task.model, *task.inst);
      break;
    case SchedulerKind::kEventDriven:
      scheduler =
          std::make_unique<engine::EventDrivenScheduler>(*task.inst);
      options.enforce_model = task.model;
      break;
    case SchedulerKind::kSim:
      throw InvariantError("kSim rows are dispatched to run_sim_row");
  }

  const auto row_start = std::chrono::steady_clock::now();
  obs::Span row_span = obs.span("campaign.row");
  if (row_span.enabled()) {
    row_span.attr("instance", task.instance)
        .attr("model", task.model.name())
        .attr("scheduler", to_string(task.kind))
        .attr("seed", task.seed);
  }
  const engine::RunResult run = engine::run(*task.inst, *scheduler, options);
  row_span.finish();
  CampaignRow row;
  row.instance = task.instance;
  row.model = task.model;
  row.scheduler = task.kind;
  row.seed = task.seed;
  row.outcome = run.outcome;
  row.steps = run.steps;
  row.messages_sent = run.messages_sent;
  row.messages_dropped = run.messages_dropped;
  row.max_channel_occupancy = run.max_channel_occupancy;
  row.peak_channel_bytes = run.peak_channel_bytes;
  row.recording_path = run.recording_path;
  row.critical_path_len = run.critical_path_len;
  row.perturb = task.perturb;
  row.perturb_edits = task.perturb_edits;
  row.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - row_start)
                    .count();
  if (obs.metrics != nullptr) {
    obs::Registry& metrics = *obs.metrics;
    metrics.counter("campaign.rows").add();
    metrics.counter("campaign.steps").add(row.steps);
    metrics.counter("campaign.wall_us")
        .add(static_cast<std::uint64_t>(row.wall_ms * 1000.0));
  }
  return row;
}

void emit_row_event(obs::EventSink& sink, const CampaignRow& row) {
  obs::Event ev("campaign_row");
  ev.raw_field("row", row_json(row).str());
  sink.emit(ev);
}

/// End-of-sweep pool telemetry: one "pool_summary" event into the
/// telemetry side channel and pool.* aggregates into the campaign
/// registry. All values are wall-clock derived, hence quarantined the
/// same way wall_ms is (never byte-compared).
void publish_pool_stats(const CampaignSpec& spec,
                        const runtime::PoolStats& stats) {
  if (spec.telemetry_sink != nullptr) {
    obs::Event ev("pool_summary");
    ev.field("workers", static_cast<std::uint64_t>(stats.workers))
        .field("tasks_executed", stats.tasks_executed)
        .field("busy_us", stats.busy_us)
        .field("idle_us", stats.idle_us)
        .field("utilization", stats.utilization())
        .field("queue_depth_peak",
               static_cast<std::uint64_t>(stats.queue_depth_peak));
    std::string per_worker = "[";
    for (std::size_t w = 0; w < stats.per_worker.size(); ++w) {
      const runtime::WorkerStats& ws = stats.per_worker[w];
      obs::JsonWriter entry;
      entry.field("worker", static_cast<std::uint64_t>(w))
          .field("tasks", ws.tasks)
          .field("busy_us", ws.busy_us)
          .field("idle_us", ws.idle_us);
      if (w > 0) {
        per_worker += ',';
      }
      per_worker += entry.str();
    }
    per_worker += ']';
    ev.raw_field("per_worker", per_worker);
    spec.telemetry_sink->emit(ev);
  }
  if (spec.obs.metrics != nullptr) {
    obs::Registry& m = *spec.obs.metrics;
    m.counter("pool.tasks_executed").add(stats.tasks_executed);
    m.counter("pool.busy_us").add(stats.busy_us);
    m.counter("pool.idle_us").add(stats.idle_us);
    m.gauge("pool.queue_depth_peak").record_max(stats.queue_depth_peak);
    m.gauge("pool.utilization_pct")
        .record_max(static_cast<std::uint64_t>(stats.utilization() * 100.0));
  }
}

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec) {
  CR_REQUIRE(!spec.instances.empty(), "campaign needs instances");
  CR_REQUIRE(!spec.models.empty(), "campaign needs models");
  CR_REQUIRE(!spec.schedulers.empty(), "campaign needs schedulers");

  if (!spec.recording_dir.empty()) {
    std::filesystem::create_directories(spec.recording_dir);
  }

  CampaignResult result;

  // Materialize the perturbation axis up front: each (instance, spec, p)
  // variant is a real edited instance that lives for the whole sweep (a
  // deque keeps the borrowed RowTask pointers stable). The perturb seed
  // is a pure function of (instance name, label, p) — never the model or
  // scheduler — so a (model x perturbation) matrix compares models on
  // the byte-identical edited instance.
  std::deque<spp::Instance> perturbed_storage;
  std::vector<InstanceVariant> variants;
  const std::uint64_t perturb_seeds =
      std::max<std::uint64_t>(spec.perturb_seeds, 1);
  for (const auto& [name, instance] : spec.instances) {
    CR_REQUIRE(instance != nullptr, "null instance in campaign spec");
    variants.push_back(InstanceVariant{name, instance, "none", 0});
    for (const scenario::PerturbSpec& pspec : spec.perturbations) {
      const std::string label = pspec.label();
      for (std::uint64_t p = 0; p < perturb_seeds; ++p) {
        const std::uint64_t pseed = derive_row_seed(
            name + "~" + label, /*model_index=*/-1,
            SchedulerKind::kRoundRobin, p);
        scenario::PerturbResult pr = scenario::perturb(*instance, pspec, pseed);
        const std::string vname =
            name + "~" + label + "#" + std::to_string(p);
        result.provenance.push_back(PerturbProvenance{
            vname, name, label, pseed, pr.record.edits.size(),
            pr.record.to_json(*instance)});
        perturbed_storage.push_back(std::move(pr.instance));
        variants.push_back(InstanceVariant{vname, &perturbed_storage.back(),
                                           label,
                                           result.provenance.back().applied});
      }
    }
  }

  const std::vector<RowTask> tasks = enumerate_rows(spec, variants);
  result.rows.resize(tasks.size());

  obs::Span campaign_span = spec.obs.span("campaign.run");
  const std::size_t threads =
      std::min(runtime::resolve_threads(spec.threads),
               std::max<std::size_t>(tasks.size(), 1));

  // Sweep-level progress (rows done/total, EWMA row rate -> ETA),
  // surfaced through the telemetry side channel as progress_snapshot
  // events. The estimator is mutex-guarded, so parallel workers update
  // it directly. Wall-clock derived like RSS — never in the
  // deterministic event stream.
  std::optional<obs::ProgressEstimator> progress;
  if (spec.telemetry_sink != nullptr) {
    progress.emplace("campaign.rows");
    progress->update(0, tasks.size());
  }

  if (threads <= 1) {
    // Serial path: rows run on the calling thread against the
    // campaign-level instrumentation directly (spans nest under
    // campaign.run, no shards to merge). The telemetry sampler (when
    // attached) watches process RSS only — there is no pool to probe.
    std::optional<obs::TelemetrySampler> sampler;
    if (spec.telemetry_sink != nullptr) {
      obs::TelemetrySampler::Options topts;
      topts.interval_ms = spec.telemetry_interval_ms;
      sampler.emplace(*spec.telemetry_sink, topts);
      sampler->add_progress(&*progress);
      sampler->start();
    }
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      result.rows[i] = run_one_row(spec, tasks[i], spec.obs);
      if (progress.has_value()) {
        progress->update(i + 1, tasks.size());
      }
      if (spec.obs.sink != nullptr) {
        emit_row_event(*spec.obs.sink, result.rows[i]);
      }
    }
    if (sampler.has_value()) {
      sampler->stop();
    }
  } else {
    runtime::ThreadPool pool(threads);
    const std::size_t workers = std::min(pool.size(), tasks.size());
    // Per-worker instrumentation shards: each worker owns a registry
    // and span collector, so the engine hot path never contends on (or
    // races through) the campaign-level handles. Shards merge below in
    // worker order; every combiner is commutative, so the merged
    // aggregates do not depend on which worker ran which row.
    struct Shard {
      obs::Registry metrics;
      obs::SpanCollector spans;
    };
    std::vector<Shard> shards(workers);

    // The shared sink is serialized (SynchronizedSink) and fed in
    // enumeration order: whichever worker completes the row that fills
    // the gap at `next_emit` drains the ready prefix, so a tailing
    // reader sees exactly the serial event stream.
    std::optional<obs::SynchronizedSink> sync_sink;
    if (spec.obs.sink != nullptr) {
      sync_sink.emplace(*spec.obs.sink);
    }
    std::mutex emit_mutex;
    std::size_t next_emit = 0;
    std::vector<char> ready(tasks.size(), 0);

    // Telemetry sampler with live pool probes (queue depth, tasks
    // executed). Declared after `pool` so it is stopped/destroyed first;
    // probes run on the sampler thread against the pool's thread-safe
    // accessors.
    std::optional<obs::TelemetrySampler> sampler;
    if (spec.telemetry_sink != nullptr) {
      obs::TelemetrySampler::Options topts;
      topts.interval_ms = spec.telemetry_interval_ms;
      sampler.emplace(*spec.telemetry_sink, topts);
      sampler->add_probe("pool.queue_depth",
                         [&pool] { return pool.queue_depth(); });
      sampler->add_probe("pool.tasks_executed", [&pool] {
        return pool.stats().tasks_executed;
      });
      sampler->add_probe("pool.busy_us",
                         [&pool] { return pool.stats().busy_us; });
      sampler->add_progress(&*progress);
      sampler->start();
    }

    std::atomic<std::size_t> completed{0};
    runtime::parallel_for_each(
        pool, tasks.size(), [&](std::size_t worker, std::size_t i) {
          Shard& shard = shards[worker];
          obs::Instrumentation shard_obs;
          if (spec.obs.metrics != nullptr) {
            shard_obs.metrics = &shard.metrics;
          }
          if (spec.obs.spans != nullptr) {
            shard_obs.spans = &shard.spans;
          }
          result.rows[i] = run_one_row(spec, tasks[i], shard_obs);
          if (progress.has_value()) {
            progress->update(
                completed.fetch_add(1, std::memory_order_relaxed) + 1,
                tasks.size());
          }
          if (sync_sink.has_value()) {
            std::lock_guard<std::mutex> lock(emit_mutex);
            ready[i] = 1;
            while (next_emit < tasks.size() && ready[next_emit] != 0) {
              emit_row_event(*sync_sink, result.rows[next_emit]);
              ++next_emit;
            }
          }
        });

    for (Shard& shard : shards) {
      if (spec.obs.metrics != nullptr) {
        spec.obs.metrics->merge_from(shard.metrics);
      }
      if (spec.obs.spans != nullptr) {
        spec.obs.spans->merge_from(shard.spans);
      }
    }

    if (sampler.has_value()) {
      sampler->stop();
    }
    publish_pool_stats(spec, pool.stats());
  }

  if (spec.obs.sink != nullptr) {
    obs::Event ev("campaign_summary");
    ev.field("rows", static_cast<std::uint64_t>(result.rows.size()))
        .field("converged_rate",
               result.outcome_rate(engine::Outcome::kConverged))
        .field("oscillating_rate",
               result.outcome_rate(engine::Outcome::kOscillating))
        .field("exhausted_rate",
               result.outcome_rate(engine::Outcome::kExhausted));
    spec.obs.sink->emit(ev);
  }

  if (spec.budget == obs::ObsBudget::kSketched &&
      spec.obs.sink != nullptr) {
    // Sweep-level sketches, computed from the finished rows in
    // enumeration order — a pure function of the deterministic row
    // fields, so the event is byte-identical at any thread width.
    obs::LogHistogram steps_hist;
    obs::LogHistogram messages_hist;
    obs::TopK instance_steps(16);
    std::string instances = "[";
    std::size_t instance_index = 0;
    for (const auto& [name, inst] : spec.instances) {
      (void)inst;
      if (instance_index > 0) {
        instances += ',';
      }
      instances += '"' + obs::json_escape(name) + '"';
      ++instance_index;
    }
    instances += ']';
    for (const CampaignRow& row : result.rows) {
      steps_hist.observe(row.steps);
      messages_hist.observe(row.messages_sent);
      // Perturbation variants fold into their base instance's bucket
      // (variant names are "<base>~<label>#<p>").
      const std::string base_name =
          row.instance.substr(0, row.instance.find('~'));
      for (std::size_t i = 0; i < spec.instances.size(); ++i) {
        if (spec.instances[i].first == base_name) {
          instance_steps.add(i, row.steps);
          break;
        }
      }
    }
    obs::Event ev("campaign_sketch");
    ev.field("obs_budget", obs::to_string(spec.budget))
        .field("rows", static_cast<std::uint64_t>(result.rows.size()))
        .raw_field("steps_hist", steps_hist.to_json())
        .raw_field("messages_hist", messages_hist.to_json())
        .raw_field("instance_steps_topk", instance_steps.to_json())
        .raw_field("instances", instances);
    spec.obs.sink->emit(ev);
  }
  return result;
}

}  // namespace commroute::study
