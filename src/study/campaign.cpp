#include "study/campaign.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "engine/scheduler.hpp"
#include "support/error.hpp"

namespace commroute::study {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kRandomFair:
      return "random-fair";
    case SchedulerKind::kSynchronous:
      return "synchronous";
    case SchedulerKind::kEventDriven:
      return "event-driven";
  }
  throw InvariantError("bad SchedulerKind");
}

double CampaignResult::outcome_rate(engine::Outcome outcome) const {
  if (rows.empty()) {
    return 0.0;
  }
  std::size_t hits = 0;
  for (const CampaignRow& row : rows) {
    if (row.outcome == outcome) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(rows.size());
}

std::uint64_t CampaignResult::median_steps(
    const std::function<bool(const CampaignRow&)>& pred) const {
  std::vector<std::uint64_t> steps;
  for (const CampaignRow& row : rows) {
    if (pred(row)) {
      steps.push_back(row.steps);
    }
  }
  if (steps.empty()) {
    return 0;
  }
  std::sort(steps.begin(), steps.end());
  return steps[steps.size() / 2];
}

std::string CampaignResult::to_csv() const {
  std::ostringstream out;
  out << "instance,model,scheduler,seed,outcome,steps,messages_sent,"
         "messages_dropped,max_channel_occupancy\n";
  for (const CampaignRow& row : rows) {
    out << row.instance << ',' << row.model.name() << ','
        << to_string(row.scheduler) << ',' << row.seed << ','
        << engine::to_string(row.outcome) << ',' << row.steps << ','
        << row.messages_sent << ',' << row.messages_dropped << ','
        << row.max_channel_occupancy << '\n';
  }
  return out.str();
}

CampaignResult run_campaign(const CampaignSpec& spec) {
  CR_REQUIRE(!spec.instances.empty(), "campaign needs instances");
  CR_REQUIRE(!spec.models.empty(), "campaign needs models");
  CR_REQUIRE(!spec.schedulers.empty(), "campaign needs schedulers");

  CampaignResult result;
  for (const auto& [name, instance] : spec.instances) {
    CR_REQUIRE(instance != nullptr, "null instance in campaign spec");
    for (const model::Model& m : spec.models) {
      for (const SchedulerKind kind : spec.schedulers) {
        if (kind == SchedulerKind::kEventDriven &&
            !m.is_message_passing()) {
          continue;  // the event-driven scheduler emits f = 1 reads only
        }
        const bool randomized = (kind == SchedulerKind::kRandomFair);
        const std::uint64_t runs = randomized ? spec.seeds : 1;
        for (std::uint64_t seed = 0; seed < runs; ++seed) {
          std::unique_ptr<engine::Scheduler> scheduler;
          engine::RunOptions options;
          options.max_steps = spec.max_steps;
          options.record_trace = false;
          switch (kind) {
            case SchedulerKind::kRoundRobin:
              scheduler = std::make_unique<engine::RoundRobinScheduler>(
                  m, *instance);
              options.enforce_model = m;
              break;
            case SchedulerKind::kRandomFair:
              scheduler = std::make_unique<engine::RandomFairScheduler>(
                  m, *instance, Rng(seed * 7919 + m.index()),
                  engine::RandomFairOptions{
                      .drop_prob = m.reliable() ? 0.0 : spec.drop_prob,
                      .sweep_period = 16});
              options.enforce_model = m;
              break;
            case SchedulerKind::kSynchronous:
              scheduler = std::make_unique<engine::SynchronousScheduler>(
                  m, *instance);
              break;
            case SchedulerKind::kEventDriven:
              scheduler = std::make_unique<engine::EventDrivenScheduler>(
                  *instance);
              options.enforce_model = m;
              break;
          }

          const engine::RunResult run =
              engine::run(*instance, *scheduler, options);
          CampaignRow row;
          row.instance = name;
          row.model = m;
          row.scheduler = kind;
          row.seed = seed;
          row.outcome = run.outcome;
          row.steps = run.steps;
          row.messages_sent = run.messages_sent;
          row.messages_dropped = run.messages_dropped;
          row.max_channel_occupancy = run.max_channel_occupancy;
          result.rows.push_back(std::move(row));
        }
      }
    }
  }
  return result;
}

}  // namespace commroute::study
