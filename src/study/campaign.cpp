#include "study/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>

#include "engine/scheduler.hpp"
#include "obs/json.hpp"
#include "support/error.hpp"

namespace commroute::study {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kRandomFair:
      return "random-fair";
    case SchedulerKind::kSynchronous:
      return "synchronous";
    case SchedulerKind::kEventDriven:
      return "event-driven";
  }
  throw InvariantError("bad SchedulerKind");
}

double CampaignResult::outcome_rate(engine::Outcome outcome) const {
  if (rows.empty()) {
    return 0.0;
  }
  std::size_t hits = 0;
  for (const CampaignRow& row : rows) {
    if (row.outcome == outcome) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(rows.size());
}

std::uint64_t CampaignResult::median_steps(
    const std::function<bool(const CampaignRow&)>& pred) const {
  std::vector<std::uint64_t> steps;
  for (const CampaignRow& row : rows) {
    if (pred(row)) {
      steps.push_back(row.steps);
    }
  }
  if (steps.empty()) {
    return 0;
  }
  std::sort(steps.begin(), steps.end());
  return steps[steps.size() / 2];
}

std::string CampaignResult::to_csv() const {
  std::ostringstream out;
  out << "instance,model,scheduler,seed,outcome,steps,messages_sent,"
         "messages_dropped,max_channel_occupancy,wall_ms,recording_path\n";
  for (const CampaignRow& row : rows) {
    char wall[32];
    std::snprintf(wall, sizeof wall, "%.3f", row.wall_ms);
    out << row.instance << ',' << row.model.name() << ','
        << to_string(row.scheduler) << ',' << row.seed << ','
        << engine::to_string(row.outcome) << ',' << row.steps << ','
        << row.messages_sent << ',' << row.messages_dropped << ','
        << row.max_channel_occupancy << ',' << wall << ','
        << row.recording_path << '\n';
  }
  return out.str();
}

namespace {

obs::JsonWriter row_json(const CampaignRow& row) {
  obs::JsonWriter w;
  w.field("instance", row.instance)
      .field("model", row.model.name())
      .field("scheduler", to_string(row.scheduler))
      .field("seed", row.seed)
      .field("outcome", engine::to_string(row.outcome))
      .field("steps", row.steps)
      .field("messages_sent", row.messages_sent)
      .field("messages_dropped", row.messages_dropped)
      .field("max_channel_occupancy",
             static_cast<std::uint64_t>(row.max_channel_occupancy))
      .field("wall_ms", row.wall_ms)
      .field("recording_path", row.recording_path);
  return w;
}

}  // namespace

std::string CampaignResult::to_json() const {
  std::string rows_json = "[";
  double total_wall_ms = 0.0;
  std::uint64_t total_steps = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) {
      rows_json += ',';
    }
    rows_json += row_json(rows[i]).str();
    total_wall_ms += rows[i].wall_ms;
    total_steps += rows[i].steps;
  }
  rows_json += ']';

  obs::JsonWriter summary;
  summary.field("rows", static_cast<std::uint64_t>(rows.size()))
      .field("total_steps", total_steps)
      .field("total_wall_ms", total_wall_ms)
      .field("converged_rate", outcome_rate(engine::Outcome::kConverged))
      .field("oscillating_rate",
             outcome_rate(engine::Outcome::kOscillating))
      .field("exhausted_rate", outcome_rate(engine::Outcome::kExhausted));

  obs::JsonWriter top;
  top.raw_field("rows", rows_json);
  top.raw_field("summary", summary.str());
  return top.str();
}

CampaignResult run_campaign(const CampaignSpec& spec) {
  CR_REQUIRE(!spec.instances.empty(), "campaign needs instances");
  CR_REQUIRE(!spec.models.empty(), "campaign needs models");
  CR_REQUIRE(!spec.schedulers.empty(), "campaign needs schedulers");

  CampaignResult result;
  if (!spec.recording_dir.empty()) {
    std::filesystem::create_directories(spec.recording_dir);
  }
  obs::Span campaign_span = spec.obs.span("campaign.run");
  for (const auto& [name, instance] : spec.instances) {
    CR_REQUIRE(instance != nullptr, "null instance in campaign spec");
    for (const model::Model& m : spec.models) {
      for (const SchedulerKind kind : spec.schedulers) {
        if (kind == SchedulerKind::kEventDriven &&
            !m.is_message_passing()) {
          continue;  // the event-driven scheduler emits f = 1 reads only
        }
        const bool randomized = (kind == SchedulerKind::kRandomFair);
        const std::uint64_t runs = randomized ? spec.seeds : 1;
        for (std::uint64_t seed = 0; seed < runs; ++seed) {
          std::unique_ptr<engine::Scheduler> scheduler;
          engine::RunOptions options;
          options.max_steps = spec.max_steps;
          options.record_trace = false;
          // Engine aggregates accumulate in the campaign's registry and
          // engine spans nest under the row span; the sink stays
          // campaign-level (one event per row, not per run).
          options.obs.metrics = spec.obs.metrics;
          options.obs.spans = spec.obs.spans;
          if (!spec.recording_dir.empty()) {
            options.flight.mode =
                spec.recording_ring == 0
                    ? engine::FlightRecorderOptions::Mode::kFull
                    : engine::FlightRecorderOptions::Mode::kRing;
            options.flight.ring_capacity = spec.recording_ring;
            options.flight.instance_name = name;
            options.flight.scheduler = to_string(kind);
            options.flight.seed = seed;
            options.flight.flush_path =
                (std::filesystem::path(spec.recording_dir) /
                 (name + "_" + m.name() + "_" + to_string(kind) + "_" +
                  std::to_string(seed) + ".recording.jsonl"))
                    .string();
          }
          switch (kind) {
            case SchedulerKind::kRoundRobin:
              scheduler = std::make_unique<engine::RoundRobinScheduler>(
                  m, *instance);
              options.enforce_model = m;
              break;
            case SchedulerKind::kRandomFair:
              scheduler = std::make_unique<engine::RandomFairScheduler>(
                  m, *instance, Rng(seed * 7919 + m.index()),
                  engine::RandomFairOptions{
                      .drop_prob = m.reliable() ? 0.0 : spec.drop_prob,
                      .sweep_period = 16});
              options.enforce_model = m;
              break;
            case SchedulerKind::kSynchronous:
              scheduler = std::make_unique<engine::SynchronousScheduler>(
                  m, *instance);
              break;
            case SchedulerKind::kEventDriven:
              scheduler = std::make_unique<engine::EventDrivenScheduler>(
                  *instance);
              options.enforce_model = m;
              break;
          }

          const auto row_start = std::chrono::steady_clock::now();
          obs::Span row_span = spec.obs.span("campaign.row");
          if (row_span.enabled()) {
            row_span.attr("instance", name)
                .attr("model", m.name())
                .attr("scheduler", to_string(kind))
                .attr("seed", seed);
          }
          const engine::RunResult run =
              engine::run(*instance, *scheduler, options);
          row_span.finish();
          CampaignRow row;
          row.instance = name;
          row.model = m;
          row.scheduler = kind;
          row.seed = seed;
          row.outcome = run.outcome;
          row.steps = run.steps;
          row.messages_sent = run.messages_sent;
          row.messages_dropped = run.messages_dropped;
          row.max_channel_occupancy = run.max_channel_occupancy;
          row.recording_path = run.recording_path;
          row.wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - row_start)
                            .count();
          if (spec.obs.sink != nullptr) {
            obs::Event ev("campaign_row");
            ev.raw_field("row", row_json(row).str());
            spec.obs.sink->emit(ev);
          }
          if (spec.obs.metrics != nullptr) {
            obs::Registry& metrics = *spec.obs.metrics;
            metrics.counter("campaign.rows").add();
            metrics.counter("campaign.steps").add(row.steps);
            metrics.counter("campaign.wall_us")
                .add(static_cast<std::uint64_t>(row.wall_ms * 1000.0));
          }
          result.rows.push_back(std::move(row));
        }
      }
    }
  }
  if (spec.obs.sink != nullptr) {
    obs::Event ev("campaign_summary");
    ev.field("rows", static_cast<std::uint64_t>(result.rows.size()))
        .field("converged_rate",
               result.outcome_rate(engine::Outcome::kConverged))
        .field("oscillating_rate",
               result.outcome_rate(engine::Outcome::kOscillating))
        .field("exhausted_rate",
               result.outcome_rate(engine::Outcome::kExhausted));
    spec.obs.sink->emit(ev);
  }
  return result;
}

}  // namespace commroute::study
