// Experiment campaigns: declarative sweeps over instances x models x
// schedulers x seeds, with aggregate statistics and CSV export. This is
// the driver behind the convergence-cost benches and the recommended way
// to run your own studies on top of the library.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/runner.hpp"
#include "model/model.hpp"
#include "obs/obs.hpp"
#include "scenario/fault.hpp"
#include "scenario/perturb.hpp"
#include "sim/link_model.hpp"
#include "spp/instance.hpp"

namespace commroute::study {

/// Scheduler families a campaign can sweep over.
enum class SchedulerKind {
  kRoundRobin,   ///< deterministic fair
  kRandomFair,   ///< randomized fair (per-seed)
  kSynchronous,  ///< U = V rounds (Def. 2.6 kEvery)
  kEventDriven,  ///< serve queued messages FIFO-ish (wxO models only)
  kSim,          ///< virtual-time DES (sim::run; sweeps sim_points)
};

std::string to_string(SchedulerKind kind);

struct CampaignSpec {
  /// Instances by name. Instances are borrowed; they must outlive run().
  std::vector<std::pair<std::string, const spp::Instance*>> instances;
  std::vector<model::Model> models;
  std::vector<SchedulerKind> schedulers;
  std::uint64_t seeds = 5;          ///< per randomized configuration
  std::uint64_t max_steps = 50000;
  double drop_prob = 0.2;           ///< for unreliable random schedules
  /// Link-model sweep axis for SchedulerKind::kSim rows: each point
  /// multiplies the (instance, model, seed) cross product. Points with
  /// loss_prob > 0 are skipped for Reliable models (drops are not
  /// expressible there). Empty + kSim requested = one default LinkModel.
  std::vector<sim::LinkModel> sim_points;
  /// Node processing model shared by all kSim rows.
  sim::NodeModel sim_node;
  /// Ranking-perturbation axis (scenario/perturb.hpp): each spec
  /// materializes `perturb_seeds` edited variants of every instance up
  /// front, named "<instance>~<label>#<p>", which then sweep the full
  /// model x scheduler cross product alongside the unperturbed base
  /// (CSV column `perturb` = "none" for base rows). Perturb seeds
  /// derive from (instance, label, p) only — never from the model or
  /// scheduler — so every cell of a (model x perturbation) matrix sees
  /// the byte-identical edited instance. Empty = no perturbation axis.
  std::vector<scenario::PerturbSpec> perturbations;
  /// Variants materialized per (instance, perturbation spec); clamped
  /// to at least 1 when `perturbations` is non-empty.
  std::uint64_t perturb_seeds = 1;
  /// Fault-schedule axis for kSim rows (scenario/fault.hpp): each spec
  /// is instantiated per row via scenario::random_fault_schedule with a
  /// seed derived from (instance, label, seed) — model-independent, so
  /// all models of a campaign cell replay the identical schedule.
  /// Non-kSim rows always carry fault_schedule "none"; cells whose
  /// regime shift introduces loss are skipped for Reliable models, like
  /// lossy sim_points. Empty = no fault axis (single "none" cell).
  std::vector<scenario::FaultScheduleSpec> fault_schedules;
  /// Optional metrics registry / JSONL event sink / span collector.
  /// Attached, the driver emits one "campaign_row" event per completed
  /// row and a final "campaign_summary", publishes row/step/wall
  /// aggregates, and traces campaign.run > campaign.row > engine.run
  /// spans (the registry and span collector forward to each row's run).
  obs::Instrumentation obs;
  /// When non-empty, every row runs with the flight recorder armed and
  /// non-converged rows flush
  /// <dir>/<instance>_<model>_<scheduler>_<seed>.recording.jsonl, the
  /// path stamped into CampaignRow::recording_path (the directory is
  /// created if needed). Converged rows write nothing.
  std::string recording_dir;
  /// Ring capacity for the per-row flight recorder; 0 records the full
  /// run (replayable, but memory grows with max_steps).
  std::size_t recording_ring = 512;
  /// Resource-telemetry side channel: when attached, a TelemetrySampler
  /// emits periodic "telemetry_snapshot" events (RSS, pool queue depth,
  /// tasks executed) plus one final "pool_summary" on parallel sweeps.
  /// This sink is deliberately separate from `obs.sink`: snapshots carry
  /// RSS and wall-clock values, which would break the byte-identical
  /// determinism contract of the campaign event stream. Do not point
  /// both at the same file.
  obs::EventSink* telemetry_sink = nullptr;
  /// Snapshot cadence for the telemetry sampler.
  std::uint64_t telemetry_interval_ms = 250;
  /// Build each row's happens-before DAG (engine::RunOptions::causality)
  /// and export critical_path_len / critical_path_us columns. Like
  /// every other row field the values are deterministic: byte-identical
  /// CSV/JSON across thread widths.
  bool causality = false;
  /// Worker threads for the row sweep: 0 = hardware_concurrency(),
  /// 1 = serial (runs on the calling thread exactly like the historical
  /// driver). Rows are independent, so any thread count produces
  /// identical rows, CSV/JSON bytes (timing fields aside), campaign_row
  /// event order, and merged metric aggregates — see run_campaign.
  std::size_t threads = 0;
  /// Observability budget forwarded to every row (engine::RunOptions /
  /// sim::SimOptions::budget). Under kSketched the driver additionally
  /// emits one "campaign_sketch" event (steps/messages log-histograms,
  /// per-instance steps top-K) computed from the finished rows in
  /// enumeration order — byte-identical at any thread width, like the
  /// rest of the event stream. Row fields and CSV/JSON columns are
  /// unchanged by the knob.
  obs::ObsBudget budget = obs::ObsBudget::kFull;
};

/// One (instance, model, scheduler, seed) outcome.
struct CampaignRow {
  std::string instance;
  model::Model model;
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;
  std::uint64_t seed = 0;
  engine::Outcome outcome = engine::Outcome::kExhausted;
  std::uint64_t steps = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::size_t max_channel_occupancy = 0;
  /// Peak in-flight message bytes of this row's run (deterministic
  /// estimate — safe in byte-compared CSV/JSON, unlike wall_ms).
  std::size_t peak_channel_bytes = 0;
  double wall_ms = 0.0;  ///< wall time of this row's engine::run
  /// Flight-recorder artifact for this row ("" when none was flushed).
  std::string recording_path;
  /// kSim rows only (0 otherwise): the swept link-model point and the
  /// virtual-time view of the run.
  std::uint64_t sim_latency_us = 0;
  double sim_loss = 0.0;
  std::uint64_t virtual_us = 0;      ///< virtual time of the last step
  std::uint64_t last_change_us = 0;  ///< virtual time of the last flap
  /// CampaignSpec::causality only (0 otherwise): longest dependency
  /// chain to the last assignment change, in activations, and — kSim
  /// rows — in virtual microseconds (== last_change_us, the causal
  /// explanation of that number).
  std::uint64_t critical_path_len = 0;
  std::uint64_t critical_path_us = 0;
  /// Perturbation-axis label of this row's instance variant ("none" =
  /// the unperturbed base) and how many edits actually applied to it.
  std::string perturb = "none";
  std::uint64_t perturb_edits = 0;
  /// Fault-schedule axis label ("none" = no faults; always "none" for
  /// non-kSim rows), the faults that fired, and the virtual time from
  /// the last fault to the last assignment change (the row's
  /// reconvergence time; 0 when no fault fired).
  std::string fault_schedule = "none";
  std::uint64_t faults_applied = 0;
  std::uint64_t reconverge_us = 0;
};

/// Provenance of one materialized perturbation variant.
struct PerturbProvenance {
  std::string variant;       ///< "<instance>~<label>#<p>"
  std::string base;          ///< source instance name
  std::string label;         ///< PerturbSpec::label()
  std::uint64_t seed = 0;    ///< the scenario::perturb seed
  std::size_t applied = 0;   ///< edits that took effect
  std::string record_json;   ///< PerturbRecord::to_json JSONL line
};

struct CampaignResult {
  std::vector<CampaignRow> rows;
  /// One entry per materialized perturbation variant, in enumeration
  /// order (empty without a perturbation axis). Deterministic like the
  /// rows: a pure function of (instances, perturbations, perturb_seeds).
  std::vector<PerturbProvenance> provenance;

  /// Fraction of rows with the given outcome.
  double outcome_rate(engine::Outcome outcome) const;

  /// Median steps over rows matching a predicate (0 when none match).
  std::uint64_t median_steps(
      const std::function<bool(const CampaignRow&)>& pred) const;

  /// CSV with a header row; one line per CampaignRow.
  std::string to_csv() const;

  /// Machine-readable export: {"rows":[...],"summary":{...}} with one
  /// object per CampaignRow (all columns of the CSV plus wall_ms) and
  /// aggregate outcome rates.
  std::string to_json() const;
};

/// Stream seed for one (instance, model, scheduler, seed) row: a
/// splitmix64-style hash over all four coordinates, so distinct rows
/// get decorrelated RNG streams (two instances never replay the same
/// random-fair schedule) while reruns of the same row stay bit-for-bit
/// reproducible.
std::uint64_t derive_row_seed(std::string_view instance, int model_index,
                              SchedulerKind scheduler, std::uint64_t seed);

/// Runs the full cross product. Event-driven configurations are skipped
/// for non-wxO models (they cannot be legal there); synchronous and
/// round-robin run once per configuration regardless of `seeds`.
///
/// Rows are enumerated up front in deterministic (instance, model,
/// scheduler, seed) order and executed across `spec.threads` workers.
/// Regardless of thread count the result is deterministic: rows land in
/// enumeration order, campaign_row events are emitted in that order as
/// the completed prefix grows, and per-worker metric/span shards are
/// merged into `spec.obs` at the end (counters add, gauges max,
/// histograms add — all order-independent). Only wall-clock fields
/// (wall_ms, *.wall_us) vary between runs.
CampaignResult run_campaign(const CampaignSpec& spec);

}  // namespace commroute::study
