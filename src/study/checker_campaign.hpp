// Checker matrix campaigns: sweep instances x communication models
// through checker::explore and export the verdict matrix as CSV — the
// driver behind the paper's Fig. 3/4 tables. Unlike study::run_campaign
// (which samples schedules), every cell here is a *verdict*: oscillation
// possible / safe, with the bounds that qualify it.
//
// Parallelism lives inside each cell: CheckerMatrixSpec::explore carries
// ExploreOptions::threads / searcher, and cells run in spec order on the
// calling thread so the CSV, the per-cell events, and the merged metrics
// are byte-identical at any thread count (the explorer's own
// determinism contract).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "checker/explorer.hpp"
#include "model/model.hpp"
#include "spp/instance.hpp"

namespace commroute::study {

struct CheckerMatrixSpec {
  /// Instances by name. Borrowed; they must outlive run_checker_matrix.
  std::vector<std::pair<std::string, const spp::Instance*>> instances;
  /// Models to check; empty means all 24 in Fig. 3/4 row order.
  std::vector<model::Model> models;
  /// Per-cell exploration options, shared by every cell — including
  /// `threads`, `searcher`, bounds, and the obs handle (the explorer
  /// emits its usual checker_summary per cell into it).
  checker::ExploreOptions explore;
};

/// One (instance, model) verdict.
struct CheckerMatrixCell {
  std::string instance;
  model::Model model;
  checker::ExploreResult result;
};

struct CheckerMatrixResult {
  std::vector<CheckerMatrixCell> cells;

  /// Number of cells with an oscillation verdict.
  std::size_t oscillating() const;
  /// Number of cells whose negative verdict is a proof (exhaustive).
  std::size_t proven_safe() const;

  /// CSV with a header row; one line per cell, spec order. Every column
  /// is deterministic (no wall-clock fields), so the bytes are identical
  /// at any ExploreOptions::threads.
  std::string to_csv() const;
};

/// Runs the full instances x models product in spec order.
CheckerMatrixResult run_checker_matrix(const CheckerMatrixSpec& spec);

}  // namespace commroute::study
