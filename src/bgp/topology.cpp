#include "bgp/topology.hpp"

#include "support/error.hpp"

namespace commroute::bgp {

std::string to_string(Relationship r) {
  switch (r) {
    case Relationship::kCustomer:
      return "customer";
    case Relationship::kProvider:
      return "provider";
    case Relationship::kPeer:
      return "peer";
  }
  throw InvariantError("bad Relationship");
}

Relationship reverse(Relationship r) {
  switch (r) {
    case Relationship::kCustomer:
      return Relationship::kProvider;
    case Relationship::kProvider:
      return Relationship::kCustomer;
    case Relationship::kPeer:
      return Relationship::kPeer;
  }
  throw InvariantError("bad Relationship");
}

NodeId AsTopology::add_as(const std::string& name) {
  CR_REQUIRE(!name.empty(), "AS name must be non-empty");
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  const NodeId v = static_cast<NodeId>(names_.size());
  names_.push_back(name);
  by_name_.emplace(name, v);
  adjacency_.emplace_back();
  return v;
}

void AsTopology::add_link(NodeId a, NodeId b, Relationship a_view) {
  CR_REQUIRE(a != b, "self-links are not allowed");
  CR_REQUIRE(!relationship(a, b).has_value(),
             "duplicate link between " + name(a) + " and " + name(b));
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  rel_.emplace(key(a, b), a_view);
  rel_.emplace(key(b, a), reverse(a_view));
  links_.push_back(Link{a, b, a_view});
}

void AsTopology::add_customer_provider(const std::string& customer,
                                       const std::string& provider) {
  const NodeId c = add_as(customer);
  const NodeId p = add_as(provider);
  add_link(c, p, Relationship::kProvider);  // c sees p as its provider
}

void AsTopology::add_peering(const std::string& a, const std::string& b) {
  const NodeId va = add_as(a);
  const NodeId vb = add_as(b);
  add_link(va, vb, Relationship::kPeer);
}

const std::string& AsTopology::name(NodeId v) const {
  CR_REQUIRE(v < names_.size(), "AS out of range");
  return names_[v];
}

NodeId AsTopology::as(const std::string& name) const {
  const auto it = by_name_.find(name);
  CR_REQUIRE(it != by_name_.end(), "unknown AS: " + name);
  return it->second;
}

bool AsTopology::has_as(const std::string& name) const {
  return by_name_.count(name) != 0;
}

const std::vector<NodeId>& AsTopology::neighbors(NodeId v) const {
  CR_REQUIRE(v < adjacency_.size(), "AS out of range");
  return adjacency_[v];
}

std::optional<Relationship> AsTopology::relationship(NodeId u,
                                                     NodeId v) const {
  const auto it = rel_.find(key(u, v));
  if (it == rel_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool AsTopology::provider_dag_acyclic() const {
  // DFS over customer -> provider edges.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(as_count(), Color::kWhite);

  const auto dfs = [&](auto&& self, NodeId v) -> bool {
    color[v] = Color::kGray;
    for (const NodeId u : neighbors(v)) {
      if (relationship(v, u) != Relationship::kProvider) {
        continue;  // follow edges from customer v to provider u only
      }
      if (color[u] == Color::kGray) {
        return false;
      }
      if (color[u] == Color::kWhite && !self(self, u)) {
        return false;
      }
    }
    color[v] = Color::kBlack;
    return true;
  };

  for (NodeId v = 0; v < as_count(); ++v) {
    if (color[v] == Color::kWhite && !dfs(dfs, v)) {
      return false;
    }
  }
  return true;
}

}  // namespace commroute::bgp
