#include "bgp/random_topology.hpp"

#include <cmath>
#include <string>

#include "support/error.hpp"

namespace commroute::bgp {

namespace {

// Probabilities outside [0, 1] would be silently clamped by
// Rng::chance (NaN compares false, so it degrades to "never"); reject
// them loudly with the offending value in the diagnostic instead.
void require_probability(double p, const char* name) {
  CR_REQUIRE(std::isfinite(p) && p >= 0.0 && p <= 1.0,
             std::string("RandomTopologyParams::") + name +
                 " must be a probability in [0, 1], got " +
                 std::to_string(p));
}

}  // namespace

std::shared_ptr<AsTopology> random_as_topology(
    Rng& rng, const RandomTopologyParams& params) {
  CR_REQUIRE(params.as_count >= 2,
             "RandomTopologyParams::as_count must be >= 2 (one provider "
             "tier plus at least one customer), got " +
                 std::to_string(params.as_count));
  require_probability(params.extra_provider_prob, "extra_provider_prob");
  require_probability(params.peering_prob, "peering_prob");
  auto topo = std::make_shared<AsTopology>();
  std::vector<std::string> names;
  names.reserve(params.as_count);
  for (std::size_t i = 0; i < params.as_count; ++i) {
    names.push_back("as" + std::to_string(i));
    topo->add_as(names.back());
  }

  // Backbone: everyone below the top tier buys transit from someone above.
  for (std::size_t i = 1; i < params.as_count; ++i) {
    const std::size_t provider = static_cast<std::size_t>(rng.below(i));
    topo->add_customer_provider(names[i], names[provider]);
  }

  // Multihoming and peering.
  for (std::size_t i = 0; i < params.as_count; ++i) {
    for (std::size_t j = i + 1; j < params.as_count; ++j) {
      if (topo->relationship(static_cast<NodeId>(i),
                             static_cast<NodeId>(j))
              .has_value()) {
        continue;
      }
      if (rng.chance(params.extra_provider_prob)) {
        topo->add_customer_provider(names[j], names[i]);
      } else if (rng.chance(params.peering_prob)) {
        topo->add_peering(names[i], names[j]);
      }
    }
  }
  return topo;
}

}  // namespace commroute::bgp
