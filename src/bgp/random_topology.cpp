#include "bgp/random_topology.hpp"

#include "support/error.hpp"

namespace commroute::bgp {

std::shared_ptr<AsTopology> random_as_topology(
    Rng& rng, const RandomTopologyParams& params) {
  CR_REQUIRE(params.as_count >= 2, "need at least two ASes");
  auto topo = std::make_shared<AsTopology>();
  std::vector<std::string> names;
  names.reserve(params.as_count);
  for (std::size_t i = 0; i < params.as_count; ++i) {
    names.push_back("as" + std::to_string(i));
    topo->add_as(names.back());
  }

  // Backbone: everyone below the top tier buys transit from someone above.
  for (std::size_t i = 1; i < params.as_count; ++i) {
    const std::size_t provider = static_cast<std::size_t>(rng.below(i));
    topo->add_customer_provider(names[i], names[provider]);
  }

  // Multihoming and peering.
  for (std::size_t i = 0; i < params.as_count; ++i) {
    for (std::size_t j = i + 1; j < params.as_count; ++j) {
      if (topo->relationship(static_cast<NodeId>(i),
                             static_cast<NodeId>(j))
              .has_value()) {
        continue;
      }
      if (rng.chance(params.extra_provider_prob)) {
        topo->add_customer_provider(names[j], names[i]);
      } else if (rng.chance(params.peering_prob)) {
        topo->add_peering(names[i], names[j]);
      }
    }
  }
  return topo;
}

}  // namespace commroute::bgp
