// Compilation of Gao-Rexford BGP configurations into SPP instances.
//
// The SPP instance's permitted paths are exactly the valley-free,
// hop-by-hop-exportable AS paths to the destination, ranked by the
// Gao-Rexford preference order; an ExportPolicy enforcing GR3 is attached
// so the engine's announcement step filters like a real BGP speaker.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "bgp/policy.hpp"
#include "bgp/topology.hpp"
#include "spp/instance.hpp"

namespace commroute::bgp {

struct CompileOptions {
  std::size_t max_path_len = 6;        ///< max AS hops per permitted path
  std::size_t max_paths_per_node = 16; ///< keep the best k paths
};

/// SPP export policy enforcing GR3 at announcement time.
class GaoRexfordExport final : public spp::ExportPolicy {
 public:
  explicit GaoRexfordExport(std::shared_ptr<const AsTopology> topo)
      : topo_(std::move(topo)) {}

  bool allows(const Graph& graph, NodeId from, NodeId to,
              const Path& path) const override;

 private:
  std::shared_ptr<const AsTopology> topo_;
};

/// Compiles `topo` with destination AS `destination` into an SPP
/// instance. Node ids and names carry over 1:1. Throws if GR1 (provider
/// acyclicity) is violated.
spp::Instance compile_gao_rexford(std::shared_ptr<const AsTopology> topo,
                                  const std::string& destination,
                                  const CompileOptions& options = {});

/// Real BGP computes routes per prefix; with per-destination policies the
/// computations are independent, so a full routing configuration is one
/// SPP instance per originating AS. Returns them in AS-index order.
std::vector<spp::Instance> compile_all_destinations(
    std::shared_ptr<const AsTopology> topo,
    const CompileOptions& options = {});

}  // namespace commroute::bgp
