#include "bgp/policy.hpp"

#include <tuple>

#include "support/error.hpp"

namespace commroute::bgp {

RouteClass classify(const AsTopology& topo, NodeId at, NodeId from) {
  const auto rel = topo.relationship(at, from);
  CR_REQUIRE(rel.has_value(), "classify() on non-adjacent ASes");
  switch (*rel) {
    case Relationship::kCustomer:
      return RouteClass::kCustomerRoute;
    case Relationship::kPeer:
      return RouteClass::kPeerRoute;
    case Relationship::kProvider:
      return RouteClass::kProviderRoute;
  }
  throw InvariantError("bad Relationship");
}

bool gao_rexford_export(const AsTopology& topo, NodeId from, NodeId to,
                        NodeId learned_from) {
  if (learned_from == from) {
    return true;  // own (originated) routes go to everyone
  }
  // Customer routes go to everyone; other routes only to customers.
  if (classify(topo, from, learned_from) == RouteClass::kCustomerRoute) {
    return true;
  }
  return topo.relationship(from, to) == Relationship::kCustomer;
}

bool gao_rexford_permits(const AsTopology& topo, const Path& p) {
  // Walk the path from the destination backwards: each intermediate AS
  // v_i must be willing to export the suffix (learned from v_{i+1}) to
  // v_{i-1}.
  for (std::size_t i = p.size() - 1; i >= 1; --i) {
    const NodeId announcer = p.at(i);
    const NodeId receiver = p.at(i - 1);
    if (!topo.relationship(announcer, receiver).has_value()) {
      return false;  // not even adjacent
    }
    const NodeId learned_from =
        (i + 1 < p.size()) ? p.at(i + 1) : announcer;
    if (!gao_rexford_export(topo, announcer, receiver, learned_from)) {
      return false;
    }
  }
  return true;
}

bool RoutePreference::operator<(const RoutePreference& o) const {
  return std::tuple(static_cast<int>(route_class), path_length, next_hop) <
         std::tuple(static_cast<int>(o.route_class), o.path_length,
                    o.next_hop);
}

RoutePreference preference_of(const AsTopology& topo, const Path& p) {
  CR_REQUIRE(p.size() >= 2, "preference_of needs a route with a next hop");
  RoutePreference pref;
  pref.route_class = classify(topo, p.source(), p.next_hop());
  pref.path_length = p.size();
  pref.next_hop = p.next_hop();
  return pref;
}

}  // namespace commroute::bgp
