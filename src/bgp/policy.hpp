// Gao-Rexford routing policies over an AS topology.
//
// The three Gao-Rexford conditions [Gao & Rexford, ToN 2001] guarantee
// BGP convergence without global coordination:
//   GR1  the customer->provider digraph is acyclic;
//   GR2  prefer customer-learned routes over peer-learned over
//        provider-learned;
//   GR3  export customer routes to everyone, but peer/provider routes
//        only to customers (valley-free routing).
// Instances compiled under these policies are dispute-wheel free, so every
// fair execution converges in every communication model of the taxonomy —
// which the tests verify empirically.
#pragma once

#include <optional>

#include "bgp/topology.hpp"
#include "core/path.hpp"

namespace commroute::bgp {

/// Preference class of a route by the relationship with the neighbor it
/// was learned from; lower is better (GR2).
enum class RouteClass : std::uint8_t {
  kCustomerRoute = 0,
  kPeerRoute = 1,
  kProviderRoute = 2,
};

/// Classifies a route at `at` learned from `from` (both adjacent).
RouteClass classify(const AsTopology& topo, NodeId at, NodeId from);

/// GR3 export rule: may `from` announce to neighbor `to` a route it
/// learned from `learned_from`? (Origin routes pass learned_from == from.)
bool gao_rexford_export(const AsTopology& topo, NodeId from, NodeId to,
                        NodeId learned_from);

/// True if the AS path `p` (source first, destination last) is valley-free
/// and exportable hop by hop under GR3, i.e. every intermediate AS is
/// willing to propagate it.
bool gao_rexford_permits(const AsTopology& topo, const Path& p);

/// Total preference order for routes at one AS (lower tuple = better):
/// (route class, AS-path length, next-hop index). Deterministic and
/// strict across different next hops, as SPP ranking requires.
struct RoutePreference {
  RouteClass route_class = RouteClass::kProviderRoute;
  std::size_t path_length = 0;
  NodeId next_hop = kNoNode;

  bool operator<(const RoutePreference& o) const;
};

/// Preference of path `p` at its source. Requires p.size() >= 2.
RoutePreference preference_of(const AsTopology& topo, const Path& p);

}  // namespace commroute::bgp
