#include "bgp/compile.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace commroute::bgp {

bool GaoRexfordExport::allows(const Graph&, NodeId from, NodeId to,
                              const Path& path) const {
  if (path.empty()) {
    return true;  // withdrawals always propagate
  }
  // `path` is from's current route: from, next_hop, ..., destination.
  const NodeId learned_from =
      (path.size() >= 2) ? path.next_hop() : from;
  return gao_rexford_export(*topo_, from, to, learned_from);
}

namespace {

/// All simple AS paths from v to d with at most max_len hops that are
/// valley-free and exportable along the way.
std::vector<Path> permitted_paths(const AsTopology& topo, NodeId v,
                                  NodeId d, std::size_t max_len) {
  std::vector<Path> out;
  std::vector<NodeId> current{v};
  std::vector<bool> used(topo.as_count(), false);
  used[v] = true;

  const auto dfs = [&](auto&& self, NodeId at) -> void {
    if (at == d) {
      Path p(current);
      if (gao_rexford_permits(topo, p)) {
        out.push_back(std::move(p));
      }
      return;
    }
    if (current.size() > max_len) {
      return;
    }
    std::vector<NodeId> nbrs = topo.neighbors(at);
    std::sort(nbrs.begin(), nbrs.end());
    for (const NodeId next : nbrs) {
      if (used[next]) {
        continue;
      }
      used[next] = true;
      current.push_back(next);
      self(self, next);
      current.pop_back();
      used[next] = false;
    }
  };
  dfs(dfs, v);
  return out;
}

}  // namespace

spp::Instance compile_gao_rexford(std::shared_ptr<const AsTopology> topo,
                                  const std::string& destination,
                                  const CompileOptions& options) {
  CR_REQUIRE(topo != nullptr, "topology must not be null");
  CR_REQUIRE(topo->provider_dag_acyclic(),
             "GR1 violated: customer-provider cycle in topology");
  const NodeId d = topo->as(destination);

  // The SPP graph mirrors the AS graph (same indices and names).
  std::vector<std::string> names;
  names.reserve(topo->as_count());
  for (NodeId v = 0; v < topo->as_count(); ++v) {
    names.push_back(topo->name(v));
  }
  Graph graph(std::move(names));
  for (const AsTopology::Link& link : topo->links()) {
    graph.add_edge(link.a, link.b);
  }

  std::vector<std::vector<Path>> permitted(topo->as_count());
  for (NodeId v = 0; v < topo->as_count(); ++v) {
    if (v == d) {
      continue;
    }
    std::vector<Path> paths =
        permitted_paths(*topo, v, d, options.max_path_len);
    std::sort(paths.begin(), paths.end(),
              [&](const Path& a, const Path& b) {
                return preference_of(*topo, a) < preference_of(*topo, b);
              });
    if (paths.size() > options.max_paths_per_node) {
      paths.resize(options.max_paths_per_node);
    }
    permitted[v] = std::move(paths);
  }

  return spp::Instance(std::move(graph), d, std::move(permitted),
                       std::make_shared<GaoRexfordExport>(std::move(topo)));
}

std::vector<spp::Instance> compile_all_destinations(
    std::shared_ptr<const AsTopology> topo, const CompileOptions& options) {
  CR_REQUIRE(topo != nullptr, "topology must not be null");
  std::vector<spp::Instance> instances;
  instances.reserve(topo->as_count());
  for (NodeId d = 0; d < topo->as_count(); ++d) {
    instances.push_back(
        compile_gao_rexford(topo, topo->name(d), options));
  }
  return instances;
}

}  // namespace commroute::bgp
