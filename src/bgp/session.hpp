// Mapping BGP session configuration onto the communication-model
// taxonomy (Secs. 2.3 and 4 of the paper).
//
// The BGP specification (RFC 4271) leaves update collection
// underspecified; different deployment choices land on different points
// of the taxonomy:
//   * transport:      TCP gives reliable channels (R); datagram-style
//                     transports (as in some BGP-like protocols) give U;
//   * route refresh:  RFC 2918 lets a speaker poll a neighbor's current
//                     state — processing a channel then behaves like
//                     reading *all* queued updates (A);
//   * update handling: per-update event processing reads one message at a
//                     time (O); draining the Adj-RIB-In queue reads any
//                     backlog (S); a batch timer that always consumes at
//                     least the head update is F;
//   * peer scope:     an event loop touches one peer per iteration (1), a
//                     scheduler may serve several (M), and a full table
//                     refresh touches every peer (E).
#pragma once

#include <string>

#include "model/model.hpp"

namespace commroute::bgp {

enum class Transport : std::uint8_t {
  kTcp,       ///< reliable delivery
  kDatagram,  ///< updates may be lost
};

enum class UpdateProcessing : std::uint8_t {
  kPerUpdate,    ///< one message per processed peer (O)
  kDrainQueue,   ///< read whatever is queued, possibly nothing (S)
  kBatchAtLeastOne,  ///< consume at least the head update (F)
  kRouteRefresh,     ///< poll the peer's current state (A)
};

enum class PeerScope : std::uint8_t {
  kSinglePeer,    ///< one peer per iteration (1)
  kSomePeers,     ///< scheduler-chosen subset (M)
  kAllPeers,      ///< full refresh (E)
};

struct SessionConfig {
  Transport transport = Transport::kTcp;
  PeerScope peers = PeerScope::kSomePeers;
  UpdateProcessing processing = UpdateProcessing::kDrainQueue;

  std::string describe() const;
};

/// The taxonomy model this configuration operates under. The default
/// SessionConfig maps to RMS — the queueing model the paper identifies as
/// the natural reading of conformant BGP-over-TCP.
model::Model model_for(const SessionConfig& config);

/// Inverse mapping: a representative configuration for each model.
SessionConfig config_for(const model::Model& m);

}  // namespace commroute::bgp
