// AS-level topologies with business relationships.
//
// The paper's taxonomy models BGP's update processing; this substrate
// grounds the abstract SPP instances in BGP reality: autonomous systems
// connected by customer-provider or peer-peer links, with Gao-Rexford
// routing policies (bgp/policy.hpp) compiled into SPP instances
// (bgp/compile.hpp). It also documents how the taxonomy's dimensions map
// to BGP configuration:
//   reliability R/U  — BGP-over-TCP vs. datagram transports;
//   messages A       — the Route Refresh capability (RFC 2918): polling a
//                      neighbor's current state;
//   messages O/S     — event-driven processing vs. draining the Adj-RIB-In
//                      queue, i.e. different update-batching settings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/path.hpp"

namespace commroute::bgp {

/// u's view of its relationship with neighbor v.
enum class Relationship : std::uint8_t {
  kCustomer,  ///< v is u's customer (v pays u)
  kProvider,  ///< v is u's provider (u pays v)
  kPeer,      ///< settlement-free peering
};

std::string to_string(Relationship r);

/// Flips the perspective: my customer sees me as its provider.
Relationship reverse(Relationship r);

/// An AS-level topology; ASes are named, links are labeled with the
/// relationship as seen from each endpoint.
class AsTopology {
 public:
  /// Declares an AS (idempotent); returns its dense index.
  NodeId add_as(const std::string& name);

  /// Adds a customer-provider link.
  void add_customer_provider(const std::string& customer,
                             const std::string& provider);

  /// Adds a settlement-free peering link.
  void add_peering(const std::string& a, const std::string& b);

  std::size_t as_count() const { return names_.size(); }
  const std::string& name(NodeId v) const;
  NodeId as(const std::string& name) const;
  bool has_as(const std::string& name) const;

  const std::vector<NodeId>& neighbors(NodeId v) const;

  /// u's view of neighbor v; nullopt if not adjacent.
  std::optional<Relationship> relationship(NodeId u, NodeId v) const;

  /// True if the customer->provider digraph is acyclic (first Gao-Rexford
  /// condition; a provider cycle would mean someone is their own indirect
  /// customer).
  bool provider_dag_acyclic() const;

  /// All undirected links as (a, b) with a's view of b.
  struct Link {
    NodeId a;
    NodeId b;
    Relationship a_view_of_b;
  };
  const std::vector<Link>& links() const { return links_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::unordered_map<std::uint64_t, Relationship> rel_;
  std::vector<Link> links_;

  static std::uint64_t key(NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
  void add_link(NodeId a, NodeId b, Relationship a_view);
};

}  // namespace commroute::bgp
