// Random Internet-like AS topologies.
//
// Generates hierarchies satisfying GR1 by construction: ASes are ordered
// by tier (index 0 highest); customer-provider links always point from a
// higher index (customer) to a lower index (provider), so the provider
// digraph is acyclic. Optional peering links connect arbitrary pairs.
#pragma once

#include <memory>

#include "bgp/topology.hpp"
#include "support/rng.hpp"

namespace commroute::bgp {

struct RandomTopologyParams {
  std::size_t as_count = 8;
  double extra_provider_prob = 0.25;  ///< multihoming probability per pair
  double peering_prob = 0.15;         ///< peering probability per pair
};

/// Random GR1-compliant topology; AS names are "as0".."asN-1" and every
/// AS except as0 has at least one provider with a smaller index.
std::shared_ptr<AsTopology> random_as_topology(
    Rng& rng, const RandomTopologyParams& params = {});

}  // namespace commroute::bgp
