#include "bgp/session.hpp"

#include <sstream>

#include "support/error.hpp"

namespace commroute::bgp {

std::string SessionConfig::describe() const {
  std::ostringstream os;
  os << (transport == Transport::kTcp ? "BGP-over-TCP" : "datagram BGP");
  switch (peers) {
    case PeerScope::kSinglePeer:
      os << ", one peer per iteration";
      break;
    case PeerScope::kSomePeers:
      os << ", scheduler-chosen peers";
      break;
    case PeerScope::kAllPeers:
      os << ", all peers per iteration";
      break;
  }
  switch (processing) {
    case UpdateProcessing::kPerUpdate:
      os << ", per-update processing";
      break;
    case UpdateProcessing::kDrainQueue:
      os << ", Adj-RIB-In queue draining";
      break;
    case UpdateProcessing::kBatchAtLeastOne:
      os << ", batched processing (>= 1 update)";
      break;
    case UpdateProcessing::kRouteRefresh:
      os << ", route refresh (RFC 2918)";
      break;
  }
  return os.str();
}

model::Model model_for(const SessionConfig& config) {
  model::Model m;
  m.reliability = (config.transport == Transport::kTcp)
                      ? model::Reliability::kReliable
                      : model::Reliability::kUnreliable;
  switch (config.peers) {
    case PeerScope::kSinglePeer:
      m.neighbors = model::NeighborMode::kOne;
      break;
    case PeerScope::kSomePeers:
      m.neighbors = model::NeighborMode::kMultiple;
      break;
    case PeerScope::kAllPeers:
      m.neighbors = model::NeighborMode::kEvery;
      break;
  }
  switch (config.processing) {
    case UpdateProcessing::kPerUpdate:
      m.messages = model::MessageMode::kOne;
      break;
    case UpdateProcessing::kDrainQueue:
      m.messages = model::MessageMode::kSome;
      break;
    case UpdateProcessing::kBatchAtLeastOne:
      m.messages = model::MessageMode::kForced;
      break;
    case UpdateProcessing::kRouteRefresh:
      m.messages = model::MessageMode::kAll;
      break;
  }
  return m;
}

SessionConfig config_for(const model::Model& m) {
  SessionConfig config;
  config.transport = m.reliable() ? Transport::kTcp : Transport::kDatagram;
  switch (m.neighbors) {
    case model::NeighborMode::kOne:
      config.peers = PeerScope::kSinglePeer;
      break;
    case model::NeighborMode::kMultiple:
      config.peers = PeerScope::kSomePeers;
      break;
    case model::NeighborMode::kEvery:
      config.peers = PeerScope::kAllPeers;
      break;
  }
  switch (m.messages) {
    case model::MessageMode::kOne:
      config.processing = UpdateProcessing::kPerUpdate;
      break;
    case model::MessageMode::kSome:
      config.processing = UpdateProcessing::kDrainQueue;
      break;
    case model::MessageMode::kForced:
      config.processing = UpdateProcessing::kBatchAtLeastOne;
      break;
    case model::MessageMode::kAll:
      config.processing = UpdateProcessing::kRouteRefresh;
      break;
  }
  return config;
}

}  // namespace commroute::bgp
