// Fixed-size worker pool for embarrassingly-parallel drivers (the
// campaign runner, future sharded checkers). Tasks are plain
// std::function thunks served FIFO by a fixed set of worker threads;
// parallel_for_each layers dynamic index claiming, dense worker ids,
// ordered result collection (the caller writes results[i]), and
// first-failure exception propagation on top.
//
// Determinism contract: the pool itself never reorders *results* — any
// ordering an algorithm needs is expressed by indexing into caller-owned
// storage, so output bytes never depend on which worker ran which index.
// Pool telemetry (stats(), queue_depth()) is wall-clock-derived and
// therefore quarantined like wall_ms: it may feed telemetry snapshots
// and metric registries, never byte-compared outputs.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace commroute::runtime {

/// Telemetry for one worker thread. busy_us counts time inside tasks,
/// idle_us time spent parked on the queue; both are wall-clock derived
/// (timing-variant — see the quarantine note above).
struct WorkerStats {
  std::uint64_t tasks = 0;
  std::uint64_t busy_us = 0;
  std::uint64_t idle_us = 0;
};

/// Merged pool telemetry: the per-worker shards summed commutatively
/// (the same discipline as obs::Registry::merge_from), plus the queue
/// depth high-watermark observed at submit time.
struct PoolStats {
  std::size_t workers = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t busy_us = 0;
  std::uint64_t idle_us = 0;
  std::size_t queue_depth_peak = 0;
  std::vector<WorkerStats> per_worker;

  /// Fraction of worker wall time spent inside tasks, in [0, 1].
  double utilization() const {
    const std::uint64_t total = busy_us + idle_us;
    return total == 0 ? 0.0
                      : static_cast<double>(busy_us) /
                            static_cast<double>(total);
  }
};

/// A fixed set of worker threads serving a FIFO queue of thunks.
/// submit() never blocks; the destructor drains the queue, then joins.
class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (at least
  /// one worker either way).
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Runs every queued task, joins the workers, then rethrows the first
  /// task exception (if any) that was not already consumed by
  /// rethrow_pending() — unless the destructor itself runs during stack
  /// unwinding, in which case the stored exception is dropped rather
  /// than calling std::terminate.
  ~ThreadPool() noexcept(false);

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. A throwing task does not kill the worker: the
  /// first escaping exception is recorded and rethrown from
  /// rethrow_pending() or the destructor; later ones are swallowed.
  /// (parallel_for_each still does its own per-index capture and never
  /// lets exceptions reach this layer.)
  void submit(std::function<void()> task);

  /// Rethrows the first exception that escaped a submitted task, or
  /// returns quietly if none did. Clears the stored exception either
  /// way, so the destructor will not rethrow it again.
  void rethrow_pending();

  /// Tasks currently queued (not yet claimed by a worker). Safe to call
  /// from any thread; used as a telemetry probe.
  std::size_t queue_depth() const;

  /// Point-in-time telemetry snapshot. Safe to call from any thread,
  /// including while tasks run (per-worker counters are relaxed
  /// atomics; in-flight tasks are not yet counted).
  PoolStats stats() const;

 private:
  /// Per-worker telemetry shard. Relaxed atomics: single writer (the
  /// owning worker), concurrent readers (stats(), the sampler thread).
  struct Shard {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_us{0};
    std::atomic<std::uint64_t> idle_us{0};
  };

  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;
  std::vector<Shard> shards_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::size_t queue_depth_peak_ = 0;
  std::exception_ptr first_error_;
};

/// Resolves `threads` the way the parallel drivers do: 0 means
/// hardware_concurrency(), and the result is clamped to at least 1.
std::size_t resolve_threads(std::size_t threads);

/// Runs `fn(worker, index)` for every index in [0, count), distributing
/// indices dynamically across min(pool.size(), count) tasks, and blocks
/// until all indices finished. `worker` is a dense id in
/// [0, min(pool.size(), count)) identifying the claiming task — use it
/// to index per-worker shards (statistics, registries) that are merged
/// deterministically after the call returns.
///
/// Exception safety: the first failing index (lowest index wins among
/// concurrent failures) aborts further claiming; already-claimed indices
/// run to completion, then the stored exception is rethrown on the
/// calling thread.
template <typename Fn>
void parallel_for_each(ThreadPool& pool, std::size_t count, Fn&& fn) {
  if (count == 0) {
    return;
  }
  struct Shared {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t next = 0;
    std::size_t running = 0;
    bool abort = false;
    std::exception_ptr error;
    std::size_t error_index = 0;
  };
  Shared shared;
  const std::size_t workers = std::min(pool.size(), count);
  shared.running = workers;

  auto drain = [&shared, count, &fn](std::size_t worker) {
    for (;;) {
      std::size_t index;
      {
        std::lock_guard<std::mutex> lock(shared.mutex);
        if (shared.abort || shared.next >= count) {
          break;
        }
        index = shared.next++;
      }
      try {
        fn(worker, index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared.mutex);
        if (shared.error == nullptr || index < shared.error_index) {
          shared.error = std::current_exception();
          shared.error_index = index;
        }
        shared.abort = true;
      }
    }
    std::lock_guard<std::mutex> lock(shared.mutex);
    if (--shared.running == 0) {
      shared.done.notify_all();
    }
  };

  for (std::size_t w = 1; w < workers; ++w) {
    pool.submit([&drain, w] { drain(w); });
  }
  // The calling thread doubles as worker 0, so a one-thread pool (or a
  // pool busy with other work) still makes progress.
  drain(0);

  std::unique_lock<std::mutex> lock(shared.mutex);
  shared.done.wait(lock, [&shared] { return shared.running == 0; });
  if (shared.error != nullptr) {
    std::rethrow_exception(shared.error);
  }
}

}  // namespace commroute::runtime
