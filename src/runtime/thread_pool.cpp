#include "runtime/thread_pool.hpp"

#include <chrono>
#include <utility>

namespace commroute::runtime {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t micros_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

std::size_t resolve_threads(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
  }
  return std::max<std::size_t>(threads, 1);
}

ThreadPool::ThreadPool(std::size_t threads)
    : shards_(resolve_threads(threads)) {
  const std::size_t count = shards_.size();
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() noexcept(false) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  // Surface a task failure nobody collected — but never compete with an
  // in-flight exception (that would terminate).
  if (first_error_ != nullptr && std::uncaught_exceptions() == 0) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    std::rethrow_exception(error);
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    queue_depth_peak_ = std::max(queue_depth_peak_, queue_.size());
  }
  cv_.notify_one();
}

void ThreadPool::rethrow_pending() {
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

PoolStats ThreadPool::stats() const {
  PoolStats stats;
  stats.workers = shards_.size();
  stats.per_worker.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    WorkerStats w;
    w.tasks = shard.tasks.load(std::memory_order_relaxed);
    w.busy_us = shard.busy_us.load(std::memory_order_relaxed);
    w.idle_us = shard.idle_us.load(std::memory_order_relaxed);
    stats.tasks_executed += w.tasks;
    stats.busy_us += w.busy_us;
    stats.idle_us += w.idle_us;
    stats.per_worker.push_back(w);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.queue_depth_peak = queue_depth_peak_;
  }
  return stats;
}

void ThreadPool::worker_loop(std::size_t worker) {
  Shard& shard = shards_[worker];
  Clock::time_point idle_since = Clock::now();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        shard.idle_us.fetch_add(micros_between(idle_since, Clock::now()),
                                std::memory_order_relaxed);
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const Clock::time_point start = Clock::now();
    shard.idle_us.fetch_add(micros_between(idle_since, start),
                            std::memory_order_relaxed);
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) {
        first_error_ = std::current_exception();
      }
    }
    const Clock::time_point end = Clock::now();
    shard.busy_us.fetch_add(micros_between(start, end),
                            std::memory_order_relaxed);
    shard.tasks.fetch_add(1, std::memory_order_relaxed);
    idle_since = end;
  }
}

}  // namespace commroute::runtime
