#include "runtime/thread_pool.hpp"

namespace commroute::runtime {

std::size_t resolve_threads(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
  }
  return std::max<std::size_t>(threads, 1);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolve_threads(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace commroute::runtime
