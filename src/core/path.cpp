#include "core/path.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/error.hpp"

namespace commroute {

NodeId Path::source() const {
  CR_REQUIRE(!nodes_.empty(), "source() of epsilon");
  return nodes_.front();
}

NodeId Path::destination() const {
  CR_REQUIRE(!nodes_.empty(), "destination() of epsilon");
  return nodes_.back();
}

NodeId Path::next_hop() const {
  if (nodes_.size() < 2) {
    return kNoNode;
  }
  return nodes_[1];
}

bool Path::contains(NodeId v) const {
  return std::find(nodes_.begin(), nodes_.end(), v) != nodes_.end();
}

bool Path::is_simple() const {
  std::unordered_set<NodeId> seen;
  for (const NodeId v : nodes_) {
    if (!seen.insert(v).second) {
      return false;
    }
  }
  return true;
}

Path Path::extended_by(NodeId v) const {
  CR_REQUIRE(!nodes_.empty(), "cannot extend epsilon");
  std::vector<NodeId> out;
  out.reserve(nodes_.size() + 1);
  out.push_back(v);
  out.insert(out.end(), nodes_.begin(), nodes_.end());
  return Path(std::move(out));
}

Path Path::tail() const {
  CR_REQUIRE(!nodes_.empty(), "tail() of epsilon");
  return Path(std::vector<NodeId>(nodes_.begin() + 1, nodes_.end()));
}

bool Path::has_suffix(const Path& suffix) const {
  if (suffix.size() > size()) {
    return false;
  }
  return std::equal(suffix.nodes_.begin(), suffix.nodes_.end(),
                    nodes_.end() - static_cast<std::ptrdiff_t>(suffix.size()));
}

std::string Path::to_string() const {
  if (nodes_.empty()) {
    return "(eps)";
  }
  std::string out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) {
      out += '>';
    }
    out += std::to_string(nodes_[i]);
  }
  return out;
}

}  // namespace commroute
