// Undirected instance graphs with dense directed-channel indexing.
//
// Every undirected edge {u, v} induces two directed communication channels
// (u, v) and (v, u) per Sec. 2.1 of the paper. Channels carry a dense
// ChannelIdx so the engine can store channel contents in flat vectors.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/path.hpp"
#include "support/hash.hpp"

namespace commroute {

/// Dense index of a directed channel within one Graph.
using ChannelIdx = std::uint32_t;

/// Sentinel for "no channel".
inline constexpr ChannelIdx kNoChannel = static_cast<ChannelIdx>(-1);

/// A directed channel endpoint pair: messages flow from `from` to `to`.
struct ChannelId {
  NodeId from = kNoNode;
  NodeId to = kNoNode;

  bool operator==(const ChannelId& o) const {
    return from == o.from && to == o.to;
  }
  bool operator!=(const ChannelId& o) const { return !(*this == o); }
};

/// Undirected graph over nodes 0..n-1 with symbolic names.
class Graph {
 public:
  /// Creates a graph with `node_names.size()` nodes. Names must be unique
  /// and non-empty.
  explicit Graph(std::vector<std::string> node_names);

  std::size_t node_count() const { return names_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  std::size_t channel_count() const { return channels_.size(); }

  /// Adds the undirected edge {u, v}; creates channels (u,v) and (v,u).
  /// Requires distinct existing nodes and no duplicate edge.
  void add_edge(NodeId u, NodeId v);

  /// True if {u, v} is an edge.
  bool has_edge(NodeId u, NodeId v) const;

  /// Neighbors of v in insertion order.
  const std::vector<NodeId>& neighbors(NodeId v) const;

  /// Channels (u, v) for all neighbors u of v — the in-channels read by v.
  const std::vector<ChannelIdx>& in_channels(NodeId v) const;

  /// Channels (v, u) for all neighbors u of v — where v writes updates.
  const std::vector<ChannelIdx>& out_channels(NodeId v) const;

  /// Dense index of channel (from, to). Requires the edge to exist.
  ChannelIdx channel(NodeId from, NodeId to) const;

  /// Endpoints of a channel index.
  ChannelId channel_id(ChannelIdx c) const;

  /// Node name lookups.
  const std::string& name(NodeId v) const;
  NodeId node(const std::string& name) const;
  bool has_node(const std::string& name) const;

  /// Renders a channel as "u->v" with symbolic names.
  std::string channel_name(ChannelIdx c) const;

  /// True if every consecutive pair on `p` is an edge.
  bool supports_path(const Path& p) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<ChannelId> channels_;
  std::unordered_map<std::uint64_t, ChannelIdx> channel_index_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::vector<ChannelIdx>> in_channels_;
  std::vector<std::vector<ChannelIdx>> out_channels_;

  static std::uint64_t key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
};

}  // namespace commroute

namespace std {
template <>
struct hash<commroute::ChannelId> {
  std::size_t operator()(const commroute::ChannelId& c) const {
    std::size_t seed = 0;
    commroute::hash_combine_value(seed, c.from);
    commroute::hash_combine_value(seed, c.to);
    return seed;
  }
};
}  // namespace std
