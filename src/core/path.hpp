// Route objects: simple paths from a source node to the destination.
//
// A Path is the payload of every protocol message and the value of every
// node's path assignment pi_v(t). The empty path (epsilon in the paper)
// denotes "no route" and doubles as the withdrawal message.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "support/hash.hpp"

namespace commroute {

/// Dense node identifier within one instance. Node 0..n-1.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// A (possibly empty) path: the sequence of nodes from the path's source
/// to the destination, source first. The empty path is epsilon.
class Path {
 public:
  Path() = default;
  Path(std::initializer_list<NodeId> nodes) : nodes_(nodes) {}
  explicit Path(std::vector<NodeId> nodes) : nodes_(std::move(nodes)) {}

  /// The empty path (no route / withdrawal).
  static Path epsilon() { return Path(); }

  bool empty() const { return nodes_.empty(); }
  std::size_t size() const { return nodes_.size(); }

  /// First node (the path's source). Requires non-empty.
  NodeId source() const;

  /// Last node (the destination). Requires non-empty.
  NodeId destination() const;

  /// Second node, i.e. the next hop from the source; kNoNode for the
  /// one-node path and for epsilon.
  NodeId next_hop() const;

  NodeId at(std::size_t i) const { return nodes_.at(i); }
  const std::vector<NodeId>& nodes() const { return nodes_; }

  /// True if `v` occurs anywhere on the path.
  bool contains(NodeId v) const;

  /// True if no node repeats.
  bool is_simple() const;

  /// Returns the path v . this (prepends v). Requires non-empty `this`
  /// or allows extending epsilon? Extending epsilon is not meaningful;
  /// requires non-empty.
  Path extended_by(NodeId v) const;

  /// Drops the first node, returning the tail path (what the next hop
  /// announced). Requires non-empty.
  Path tail() const;

  /// True if `suffix` is a suffix of this path (as a node sequence).
  bool has_suffix(const Path& suffix) const;

  bool operator==(const Path& other) const { return nodes_ == other.nodes_; }
  bool operator!=(const Path& other) const { return !(*this == other); }
  bool operator<(const Path& other) const { return nodes_ < other.nodes_; }

  /// Debug rendering with raw node numbers, e.g. "0>2>1"; epsilon prints
  /// as "(eps)". Instances render symbolic names via Instance::path_name.
  std::string to_string() const;

 private:
  std::vector<NodeId> nodes_;
};

}  // namespace commroute

namespace std {
template <>
struct hash<commroute::Path> {
  std::size_t operator()(const commroute::Path& p) const {
    return commroute::hash_range(p.nodes());
  }
};
}  // namespace std
