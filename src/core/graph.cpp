#include "core/graph.hpp"

#include "support/error.hpp"

namespace commroute {

Graph::Graph(std::vector<std::string> node_names)
    : names_(std::move(node_names)) {
  CR_REQUIRE(!names_.empty(), "graph needs at least one node");
  adjacency_.resize(names_.size());
  in_channels_.resize(names_.size());
  out_channels_.resize(names_.size());
  for (NodeId v = 0; v < names_.size(); ++v) {
    CR_REQUIRE(!names_[v].empty(), "node names must be non-empty");
    const bool inserted = by_name_.emplace(names_[v], v).second;
    CR_REQUIRE(inserted, "duplicate node name: " + names_[v]);
  }
}

void Graph::add_edge(NodeId u, NodeId v) {
  CR_REQUIRE(u < node_count() && v < node_count(), "edge endpoint out of range");
  CR_REQUIRE(u != v, "self-loops are not allowed");
  CR_REQUIRE(!has_edge(u, v), "duplicate edge");
  edges_.emplace_back(u, v);
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);

  const auto add_channel = [&](NodeId from, NodeId to) {
    const ChannelIdx idx = static_cast<ChannelIdx>(channels_.size());
    channels_.push_back(ChannelId{from, to});
    channel_index_.emplace(key(from, to), idx);
    out_channels_[from].push_back(idx);
    in_channels_[to].push_back(idx);
  };
  add_channel(u, v);
  add_channel(v, u);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  return channel_index_.count(key(u, v)) != 0;
}

const std::vector<NodeId>& Graph::neighbors(NodeId v) const {
  CR_REQUIRE(v < node_count(), "node out of range");
  return adjacency_[v];
}

const std::vector<ChannelIdx>& Graph::in_channels(NodeId v) const {
  CR_REQUIRE(v < node_count(), "node out of range");
  return in_channels_[v];
}

const std::vector<ChannelIdx>& Graph::out_channels(NodeId v) const {
  CR_REQUIRE(v < node_count(), "node out of range");
  return out_channels_[v];
}

ChannelIdx Graph::channel(NodeId from, NodeId to) const {
  const auto it = channel_index_.find(key(from, to));
  CR_REQUIRE(it != channel_index_.end(),
             "no channel " + name(from) + "->" + name(to));
  return it->second;
}

ChannelId Graph::channel_id(ChannelIdx c) const {
  CR_REQUIRE(c < channels_.size(), "channel index out of range");
  return channels_[c];
}

const std::string& Graph::name(NodeId v) const {
  CR_REQUIRE(v < node_count(), "node out of range");
  return names_[v];
}

NodeId Graph::node(const std::string& name) const {
  const auto it = by_name_.find(name);
  CR_REQUIRE(it != by_name_.end(), "unknown node name: " + name);
  return it->second;
}

bool Graph::has_node(const std::string& name) const {
  return by_name_.count(name) != 0;
}

std::string Graph::channel_name(ChannelIdx c) const {
  const ChannelId id = channel_id(c);
  return name(id.from) + "->" + name(id.to);
}

bool Graph::supports_path(const Path& p) const {
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    if (!has_edge(p.at(i), p.at(i + 1))) {
      return false;
    }
  }
  return true;
}

}  // namespace commroute
