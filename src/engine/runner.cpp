#include "engine/runner.hpp"

#include <chrono>
#include <deque>
#include <unordered_map>

#include "engine/executor.hpp"
#include "support/error.hpp"

namespace commroute::engine {

namespace {

/// Bounded capture of the executed steps for the flight recorder: a ring
/// of (step, pi-after, I/O) entries whose window-initial assignment
/// advances as old entries fall off.
class FlightRecorder {
 public:
  FlightRecorder(const FlightRecorderOptions& options,
                 trace::Assignment initial)
      : options_(options), window_initial_(std::move(initial)) {}

  void capture(const model::ActivationStep& step, const StepEffect& effect,
               const NetworkState& state,
               std::optional<std::uint64_t> t_us) {
    Entry entry;
    entry.step = step;
    entry.pi = state.assignments();
    for (const SentMessage& sent : effect.sent) {
      entry.io.sent.push_back(sent.channel);
    }
    for (const ReadEffect& read : effect.reads) {
      entry.io.reads.push_back(
          trace::StepIo::Read{read.channel, read.processed, read.dropped});
    }
    for (const NodeEffect& node : effect.nodes) {
      entry.io.selected.push_back(node.selected_from);
    }
    if (window_.empty()) {
      timed_ = t_us.has_value();
    }
    entry.t_us = t_us.value_or(0);
    window_.push_back(std::move(entry));
    if (options_.mode == FlightRecorderOptions::Mode::kRing &&
        window_.size() > options_.ring_capacity) {
      window_initial_ = std::move(window_.front().pi);
      ++first_step_;
      window_.pop_front();
    }
  }

  /// `before` is the global index of the first step executed after the
  /// fault. Faults whose step fell off the ring are pruned at finish().
  void record_fault(const std::string& text, std::uint64_t t_us,
                    std::uint64_t before) {
    faults_.push_back(trace::RecordedFault{before, text, t_us});
  }

  trace::RecordingDoc finish(const RunOptions& options,
                             Outcome outcome) && {
    trace::RecordingDoc doc;
    doc.meta.instance_name = options_.instance_name;
    doc.meta.scheduler = options_.scheduler;
    doc.meta.seed = options_.seed;
    if (options.enforce_model.has_value()) {
      doc.meta.model = options.enforce_model->name();
    }
    doc.meta.outcome = to_string(outcome);
    doc.meta.first_step = first_step_;
    doc.initial = std::move(window_initial_);
    doc.steps.reserve(window_.size());
    doc.assignments.reserve(window_.size());
    doc.io.reserve(window_.size());
    if (timed_) {
      doc.step_time_us.reserve(window_.size());
    }
    for (Entry& entry : window_) {
      doc.steps.push_back(std::move(entry.step));
      doc.assignments.push_back(std::move(entry.pi));
      doc.io.push_back(std::move(entry.io));
      if (timed_) {
        doc.step_time_us.push_back(entry.t_us);
      }
    }
    for (trace::RecordedFault& fault : faults_) {
      if (fault.before >= first_step_) {  // still inside the ring window
        doc.faults.push_back(std::move(fault));
      }
    }
    return doc;
  }

 private:
  struct Entry {
    model::ActivationStep step;
    trace::Assignment pi;
    trace::StepIo io;
    std::uint64_t t_us = 0;
  };
  const FlightRecorderOptions& options_;
  trace::Assignment window_initial_;
  std::deque<Entry> window_;
  std::vector<trace::RecordedFault> faults_;
  std::uint64_t first_step_ = 1;
  bool timed_ = false;  ///< the scheduler exposed virtual timestamps
};

}  // namespace

std::string to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kConverged:
      return "converged";
    case Outcome::kOscillating:
      return "oscillating";
    case Outcome::kExhausted:
      return "exhausted";
  }
  throw InvariantError("bad Outcome");
}

std::optional<Outcome> outcome_from_string(std::string_view name) {
  if (name == "converged") {
    return Outcome::kConverged;
  }
  if (name == "oscillating") {
    return Outcome::kOscillating;
  }
  if (name == "exhausted") {
    return Outcome::kExhausted;
  }
  return std::nullopt;
}

bool strongly_quiescent(const NetworkState& state) {
  if (!state.quiescent()) {
    return false;
  }
  // No pending announcement: activating any node must not produce a send.
  const spp::Instance& inst = state.instance();
  const Graph& g = inst.graph();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const Path& pi_v = state.assignment(v);
    for (const ChannelIdx out : g.out_channels(v)) {
      const NodeId u = g.channel_id(out).to;
      const Path export_value =
          (!pi_v.empty() && inst.export_allows(v, u, pi_v))
              ? pi_v
              : Path::epsilon();
      const std::optional<Path>& last = state.last_exported(out);
      const bool would_send = last.has_value()
                                  ? (*last != export_value)
                                  : !export_value.empty();
      if (would_send) {
        return false;
      }
    }
  }
  return true;
}

RunResult run(const spp::Instance& instance, Scheduler& scheduler,
              const RunOptions& options) {
  const bool observed = options.obs.attached();
  const auto run_start = observed ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
  obs::Span run_span = options.obs.span("engine.run");
  NetworkState state(instance);
  model::FairnessMonitor fairness(instance.graph().channel_count());

  // Budget plumbing: kSketched suppresses the structures whose memory
  // grows with nodes x steps (trace, node_activations) and fills the
  // bounded RunResult sketches instead. Byte accounting is deterministic
  // (element counts only) and monotone, so obs_bytes doubles as a peak.
  const bool sketched = options.budget == obs::ObsBudget::kSketched;
  const bool record_trace = options.record_trace && !sketched;
  const bool account_obs = options.obs_memory != nullptr;
  auto assignment_bytes = [&state]() {
    std::uint64_t b = 0;
    for (const Path& p : state.assignments()) {
      b += sizeof(Path) + p.size() * sizeof(NodeId);
    }
    return b;
  };

  const bool recording =
      options.flight.mode != FlightRecorderOptions::Mode::kOff;
  std::optional<FlightRecorder> recorder;
  if (recording) {
    CR_REQUIRE(options.flight.mode != FlightRecorderOptions::Mode::kRing ||
                   options.flight.ring_capacity > 0,
               "flight recorder ring capacity must be positive");
    recorder.emplace(options.flight, state.assignments());
  }
  std::optional<obs::CausalityRecorder> causal;
  if (options.causality) {
    causal.emplace(instance);
  }
  FaultHook* const hook = options.fault_hook;
  if (hook != nullptr) {
    hook->bind(&state);
  }

  RunResult result;
  auto account = [&](std::uint64_t bytes) {
    result.obs_bytes += bytes;
    if (options.obs_memory != nullptr) {
      options.obs_memory->add(bytes);
    }
  };
  // Sketch growth is accounted by delta so the TrackedBytes gauge stays
  // live for a sampler without rescanning the sketches every step.
  std::uint64_t sketch_bytes_seen = 0;
  auto refresh_sketch_bytes = [&]() {
    const std::uint64_t now = result.flap_topk.estimated_bytes() +
                              result.activation_topk.estimated_bytes();
    if (now > sketch_bytes_seen) {
      account(now - sketch_bytes_seen);
      sketch_bytes_seen = now;
    }
  };
  if (!sketched) {
    result.node_activations.assign(instance.node_count(), 0);
    if (account_obs) {
      account(instance.node_count() * sizeof(std::uint64_t));
    }
  }
  if (record_trace) {
    result.trace = trace::Trace(state.assignments());
    if (account_obs) {
      account(assignment_bytes());
    }
  }

  // For sound cycle detection: configuration = (state, signature).
  struct Seen {
    NetworkState state;
    std::uint64_t signature;
    std::uint64_t step;
    std::size_t changes_before;  ///< assignment changes before this step
  };
  std::unordered_map<std::size_t, std::vector<Seen>> seen;
  std::size_t total_changes = 0;
  std::uint64_t last_change_step = 0;

  const bool can_detect_cycles =
      options.detect_cycles && scheduler.signature().has_value();
  result.cycle_detection = can_detect_cycles;
  if (options.detect_cycles && !can_detect_cycles) {
    // Requested but unavailable (signature-less scheduler, e.g. the
    // RandomFairScheduler): record it so kExhausted rows can be told
    // apart from "could never have detected a cycle".
    if (options.obs.metrics != nullptr) {
      // kSum + add: per-shard occurrences accumulate across runs and
      // across Registry::merge_from, so a campaign-level registry counts
      // how many rows ran blind instead of silently max-merging to 1.
      options.obs.metrics
          ->gauge("engine.cycle_detection_disabled", obs::GaugeMerge::kSum)
          .add(1);
    }
    if (options.obs.sink != nullptr) {
      obs::Event ev("cycle_detection_disabled");
      ev.field("reason", "scheduler has no signature")
          .field("max_steps", options.max_steps);
      options.obs.sink->emit(ev);
    }
  }

  auto remember = [&](const NetworkState& s) {
    const auto sig = scheduler.signature();
    if (!sig.has_value()) {
      return;
    }
    std::size_t key = s.hash();
    hash_combine_value(key, *sig);
    seen[key].push_back(Seen{s, *sig, result.steps, total_changes});
  };

  auto find_repeat = [&](const NetworkState& s) -> const Seen* {
    const auto sig = scheduler.signature();
    if (!sig.has_value()) {
      return nullptr;
    }
    std::size_t key = s.hash();
    hash_combine_value(key, *sig);
    const auto it = seen.find(key);
    if (it == seen.end()) {
      return nullptr;
    }
    for (const Seen& candidate : it->second) {
      if (candidate.signature == *sig && candidate.state == s) {
        return &candidate;
      }
    }
    return nullptr;
  };

  if (can_detect_cycles) {
    remember(state);
  }

  while (result.steps < options.max_steps) {
    // A quiescent network with faults still scheduled has not converged:
    // the next fault can wake it back up.
    if (strongly_quiescent(state) && (hook == nullptr || !hook->pending())) {
      result.outcome = Outcome::kConverged;
      break;
    }
    if (scheduler.exhausted()) {
      break;  // kExhausted
    }

    obs::Span step_span = options.obs.span("engine.step");
    const model::ActivationStep step = scheduler.next(state);
    if (hook != nullptr) {
      // Faults applied inside next() happen before the step it returned.
      for (AppliedFault& fault : hook->drain_applied()) {
        ++result.faults_applied;
        if (recording) {
          recorder->record_fault(fault.text, fault.t_us, result.steps + 1);
        }
        if (causal.has_value()) {
          for (const ChannelIdx c : fault.flushed_channels) {
            causal->flush_channel(c);
          }
          causal->record_fault(std::move(fault.text), fault.t_us);
        }
      }
    }
    if (options.enforce_model.has_value()) {
      model::require_step_allowed(*options.enforce_model, instance, step);
    }

    fairness.begin_step();
    const StepEffect effect =
        execute_step(state, step, options.obs.spans);
    ++result.steps;
    if (step_span.enabled()) {
      step_span.attr("step", result.steps);
    }

    for (const ReadEffect& read : effect.reads) {
      fairness.attempt(read.channel);
      if (read.dropped > 0) {
        fairness.drop(read.channel);
      }
      if (read.delivered) {
        fairness.deliver(read.channel);
      }
      result.messages_dropped += read.dropped;
    }
    result.messages_sent += effect.sent.size();
    bool any_changed = false;
    for (const NodeEffect& node : effect.nodes) {
      if (sketched) {
        result.activation_topk.add(node.node);
      } else {
        ++result.node_activations[node.node];
      }
      if (node.changed) {
        ++total_changes;
        any_changed = true;
        if (sketched) {
          result.flap_topk.add(node.node);
        }
      }
    }
    if (any_changed) {
      last_change_step = result.steps;
    }
    const NetworkState::ChannelUsage usage = state.channel_usage();
    result.max_channel_occupancy =
        std::max(result.max_channel_occupancy, usage.max_length);
    result.peak_channel_bytes =
        std::max(result.peak_channel_bytes, usage.bytes);

    if (options.obs.sink != nullptr && options.emit_step_events) {
      obs::Event ev("engine_step");
      ev.field("step", result.steps)
          .field("nodes", static_cast<std::uint64_t>(effect.nodes.size()))
          .field("sent", static_cast<std::uint64_t>(effect.sent.size()))
          .field("reads", static_cast<std::uint64_t>(effect.reads.size()))
          .field("changed", any_changed);
      options.obs.sink->emit(ev);
    }

    if (record_trace) {
      result.trace.record(state.assignments());
      if (account_obs) {
        account(assignment_bytes());
      }
    }
    if ((result.steps & 63u) == 0) {
      if (options.progress != nullptr) {
        options.progress->update(result.steps, options.max_steps);
        options.progress->set_detail(result.steps - last_change_step);
      }
      if (sketched) {
        refresh_sketch_bytes();
      }
    }
    if (recording || causal.has_value()) {
      const std::optional<std::uint64_t> t_us = scheduler.virtual_time_us();
      if (recording) {
        recorder->capture(step, effect, state, t_us);
      }
      if (causal.has_value()) {
        causal->record(step, effect, result.steps, t_us);
      }
    }

    if (can_detect_cycles) {
      if (const Seen* repeat = find_repeat(state)) {
        result.cycle_start = repeat->step;
        result.cycle_length = result.steps - repeat->step;
        result.outcome = (total_changes > repeat->changes_before)
                             ? Outcome::kOscillating
                             : Outcome::kConverged;
        break;
      }
      remember(state);
    }
  }

  result.final_assignment = state.assignments();
  result.max_attempt_gap = fairness.max_attempt_gap();
  result.outstanding_drops = fairness.outstanding_drops();

  if (sketched) {
    refresh_sketch_bytes();
  }
  if (options.progress != nullptr) {
    options.progress->update(result.steps, options.max_steps);
    options.progress->set_detail(result.steps - last_change_step);
  }

  if (causal.has_value()) {
    result.causality = std::move(*causal).finish();
    result.critical_path_len = result.causality->critical_path_len();
  }

  if (recording) {
    result.recording = std::move(*recorder).finish(options, result.outcome);
    const bool flush = !options.flight.flush_path.empty() &&
                       (options.flight.flush_always ||
                        result.outcome != Outcome::kConverged);
    if (flush) {
      obs::Span flush_span = options.obs.span("engine.flush_recording");
      trace::save_recording(options.flight.flush_path, instance,
                            *result.recording);
      result.recording_path = options.flight.flush_path;
      flush_span.finish();
      if (options.obs.metrics != nullptr) {
        options.obs.metrics->counter("engine.recordings_flushed").add();
      }
      if (options.obs.sink != nullptr) {
        obs::Event ev("recording_flushed");
        ev.field("path", result.recording_path)
            .field("outcome", to_string(result.outcome))
            .field("first_step", result.recording->meta.first_step)
            .field("steps", static_cast<std::uint64_t>(
                                result.recording->steps.size()));
        options.obs.sink->emit(ev);
      }
    }
  }

  if (observed) {
    const std::uint64_t wall_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - run_start)
            .count());
    if (run_span.enabled()) {
      run_span.attr("outcome", to_string(result.outcome))
          .attr("steps", result.steps);
      run_span.finish();
    }
    if (obs::Histogram* h = options.obs.histogram(
            "engine.run_us", obs::exponential_buckets(16, 4.0, 10))) {
      h->observe(wall_us);
    }
    if (options.obs.metrics != nullptr) {
      obs::Registry& m = *options.obs.metrics;
      m.counter("engine.runs").add();
      m.counter("engine.steps").add(result.steps);
      m.counter("engine.messages_sent").add(result.messages_sent);
      m.counter("engine.messages_dropped").add(result.messages_dropped);
      m.counter("engine.wall_us").add(wall_us);
      m.gauge("engine.max_channel_occupancy")
          .record_max(result.max_channel_occupancy);
      m.gauge("engine.peak_channel_bytes")
          .record_max(result.peak_channel_bytes);
      m.histogram("engine.run_steps", obs::exponential_buckets(16, 4.0, 8))
          .observe(result.steps);
      if (options.causality) {
        m.gauge("engine.critical_path_len")
            .record_max(result.critical_path_len);
      }
      if (account_obs || sketched) {
        m.gauge("engine.obs_bytes").record_max(result.obs_bytes);
      }
    }
    if (options.obs.sink != nullptr) {
      obs::Event ev("engine_run");
      ev.field("outcome", to_string(result.outcome))
          .field("steps", result.steps)
          .field("messages_sent", result.messages_sent)
          .field("messages_dropped", result.messages_dropped)
          .field("max_channel_occupancy",
                 static_cast<std::uint64_t>(result.max_channel_occupancy))
          .field("peak_channel_bytes",
                 static_cast<std::uint64_t>(result.peak_channel_bytes))
          .field("cycle_start", result.cycle_start)
          .field("cycle_length", result.cycle_length)
          .field("cycle_detection", result.cycle_detection)
          .field("wall_us", wall_us);
      if (options.causality) {
        // Only when armed: existing consumers' engine_run bytes are
        // unchanged and the field never reads as "0 = no chain".
        ev.field("critical_path_len", result.critical_path_len);
      }
      if (sketched) {
        // Same gating rule: only sketched runs carry the sketch fields,
        // so full-mode engine_run lines are byte-for-byte what they
        // were before the budget knob existed.
        ev.field("obs_budget", obs::to_string(options.budget))
            .field("obs_bytes", result.obs_bytes)
            .raw_field("flap_topk", result.flap_topk.to_json())
            .raw_field("activation_topk", result.activation_topk.to_json());
      }
      options.obs.sink->emit(ev);
    }
  }
  return result;
}

}  // namespace commroute::engine
