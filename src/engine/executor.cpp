#include "engine/executor.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace commroute::engine {

namespace {

/// Phase 1 for one channel: remove i = min(f, m) messages (all when
/// f = all), deliver the last non-dropped one into rho.
ReadEffect process_read(NetworkState& state, const model::ReadSpec& read) {
  ReadEffect effect;
  effect.channel = read.channel;

  Channel& channel = state.mutable_channel(read.channel);
  const std::size_t m = channel.size();
  const std::size_t i =
      read.count.has_value() ? std::min<std::size_t>(*read.count, m) : m;
  effect.processed = static_cast<std::uint32_t>(i);
  if (i == 0) {
    return effect;
  }

  // Largest index in {1..i} \ g, if any (indices are 1-based).
  std::size_t last_kept = 0;  // 0 = none
  std::size_t dropped_within_i = 0;
  {
    auto drop_it = read.drops.begin();
    for (std::size_t idx = 1; idx <= i; ++idx) {
      while (drop_it != read.drops.end() && *drop_it < idx) {
        ++drop_it;
      }
      const bool dropped = (drop_it != read.drops.end() && *drop_it == idx);
      if (dropped) {
        ++dropped_within_i;
      } else {
        last_kept = idx;
      }
    }
  }
  effect.dropped = static_cast<std::uint32_t>(dropped_within_i);

  if (last_kept != 0) {
    effect.delivered = true;
    effect.new_known = channel.at(last_kept - 1).path;
    state.set_known(read.channel, effect.new_known);
  }
  channel.pop_front_n(i);
  return effect;
}

/// Phase 2 for one node: best permitted extension of the known routes.
NodeEffect select(NetworkState& state, NodeId v) {
  const spp::Instance& inst = state.instance();
  const Graph& g = inst.graph();

  NodeEffect effect;
  effect.node = v;
  effect.old_assignment = state.assignment(v);

  if (v == inst.destination()) {
    effect.new_assignment = Path{v};
  } else {
    Path best = Path::epsilon();
    std::optional<spp::Rank> best_rank;
    ChannelIdx best_channel = kNoChannel;
    for (const ChannelIdx c : g.in_channels(v)) {
      const Path& announced = state.known(c);
      if (announced.empty() || announced.contains(v)) {
        continue;
      }
      const Path candidate = announced.extended_by(v);
      const auto r = inst.rank(v, candidate);
      if (!r.has_value()) {
        continue;
      }
      if (!best_rank.has_value() || *r < *best_rank) {
        best = candidate;
        best_rank = r;
        best_channel = c;
      }
    }
    effect.new_assignment = best;
    effect.selected_from = best_channel;
  }

  effect.changed = (effect.new_assignment != effect.old_assignment);
  state.set_assignment(v, effect.new_assignment);
  return effect;
}

/// Phase 3 for one node: write the export value to each out-channel whose
/// last exported value differs. With allow-all export this reduces to the
/// paper's announce-on-change rule plus the first announcement.
void announce(NetworkState& state, const NodeEffect& node_effect,
              std::vector<SentMessage>& sent) {
  const spp::Instance& inst = state.instance();
  const Graph& g = inst.graph();
  const NodeId v = node_effect.node;
  const Path& pi_v = node_effect.new_assignment;

  for (const ChannelIdx out : g.out_channels(v)) {
    const NodeId u = g.channel_id(out).to;
    const Path export_value =
        (!pi_v.empty() && inst.export_allows(v, u, pi_v)) ? pi_v
                                                          : Path::epsilon();
    const std::optional<Path>& last = state.last_exported(out);
    const bool should_send =
        last.has_value() ? (*last != export_value) : !export_value.empty();
    if (!should_send) {
      continue;
    }
    Message message{export_value, 0};
    state.mutable_channel(out).push(message);
    state.set_last_exported(out, export_value);
    sent.push_back(SentMessage{out, std::move(message)});
  }
}

}  // namespace

StepEffect execute_step(NetworkState& state,
                        const model::ActivationStep& step,
                        obs::SpanCollector* spans) {
  model::validate_step(state.instance(), step);

  StepEffect effect;
  effect.reads.reserve(step.reads.size());
  for (const model::ReadSpec& read : step.reads) {
    effect.reads.push_back(process_read(state, read));
  }
  effect.nodes.reserve(step.nodes.size());
  for (const NodeId v : step.nodes) {
    obs::Span activate = obs::begin_span(spans, "engine.activate");
    effect.nodes.push_back(select(state, v));
    if (activate.enabled()) {
      activate.attr("node", static_cast<std::uint64_t>(v))
          .attr("changed", effect.nodes.back().changed);
    }
  }
  for (const NodeEffect& node_effect : effect.nodes) {
    announce(state, node_effect, effect.sent);
  }
  return effect;
}

}  // namespace commroute::engine
