// Fault-injection hook for the run loop.
//
// The engine knows nothing about fault semantics; it only needs three
// things from an injector: a pointer to the live state (faults mutate it
// between steps, from inside Scheduler::next), whether more faults are
// still scheduled (a quiescent network must keep running until the last
// fault has fired), and which faults were applied since the last step
// (so the flight recorder and causality DAG can place them in the
// execution order). scenario's sim injector implements this; the engine
// stays dependency-free of the scenario subsystem.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph.hpp"

namespace commroute::engine {

class NetworkState;

/// One fault that fired, as the run loop sees it: a self-describing text
/// (scenario fault syntax), its virtual time, and the channels it
/// emptied (so channel-mirroring observers can stay in lockstep).
struct AppliedFault {
  std::string text;
  std::uint64_t t_us = 0;
  std::vector<ChannelIdx> flushed_channels;
};

/// Implemented by fault injectors (typically the same object as the
/// Scheduler). run() binds the live state before the first step; the
/// injector applies due faults to it from inside next().
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Receives the run's live state. Called once, before the first
  /// next(); the pointer stays valid for the whole run.
  virtual void bind(NetworkState* state) = 0;

  /// True while fault events are still scheduled. A strongly quiescent
  /// state does not end the run while this holds — the pending fault can
  /// (and usually will) wake the network back up.
  virtual bool pending() const = 0;

  /// Faults applied since the last call, in application order. The run
  /// loop drains this after every next() and logs the entries into the
  /// flight recording / causality DAG as happening before the step that
  /// next() returned.
  virtual std::vector<AppliedFault> drain_applied() = 0;
};

}  // namespace commroute::engine
