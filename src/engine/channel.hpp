// FIFO communication channels.
//
// A channel holds the update messages written by its sender and not yet
// processed by its receiver. Channels are FIFO (Sec. 2.1); only the
// receiving end removes messages, and unreliable models may drop some of
// the removed messages instead of processing them.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "core/path.hpp"
#include "support/hash.hpp"

namespace commroute::engine {

/// One update message: the announced path (epsilon = withdrawal) plus an
/// engine-invisible tag. Tags never influence protocol semantics; the
/// realization transforms use them for bookkeeping (e.g. the "flagged"
/// messages in the proof of Prop. 3.6).
struct Message {
  Path path;
  std::uint64_t tag = 0;

  bool operator==(const Message& o) const {
    return path == o.path && tag == o.tag;
  }
};

/// FIFO queue of messages. Index 0 is the oldest message (the paper's
/// "first message").
class Channel {
 public:
  bool empty() const { return messages_.empty(); }
  std::size_t size() const { return messages_.size(); }

  /// i-th oldest message, 0-based. Requires i < size(); violations
  /// throw PreconditionError with a diagnostic (scheduler/sim bugs fail
  /// loudly instead of surfacing as std::out_of_range deep in a run).
  const Message& at(std::size_t i) const;

  /// Mutable access, used only to adjust engine-invisible tags. Same
  /// precondition as at().
  Message& at_mutable(std::size_t i);

  void push(Message m) {
    bytes_ += message_bytes(m);
    messages_.push_back(std::move(m));
  }

  /// Removes the oldest message.
  void pop_front();

  /// Removes the `n` oldest messages. Requires n <= size(); violations
  /// throw PreconditionError.
  void pop_front_n(std::size_t n);

  const std::deque<Message>& messages() const { return messages_; }

  /// Deterministic estimate of the bytes held by the in-flight messages:
  /// element counts × sizeof (never capacity, so identical workloads
  /// report identical values). Excludes the empty-channel overhead — the
  /// signal of interest is message payload, not container bookkeeping.
  /// Maintained incrementally on push/pop, so reading it every engine
  /// step is O(1). Tag edits via at_mutable never change a message's
  /// footprint (the path is untouched), so the counter stays exact.
  std::size_t estimated_bytes() const { return bytes_; }

  bool operator==(const Channel& o) const {
    return messages_ == o.messages_;
  }

  std::size_t hash() const;

 private:
  static std::size_t message_bytes(const Message& m) {
    return sizeof(Message) + m.path.size() * sizeof(NodeId);
  }

  std::deque<Message> messages_;
  std::size_t bytes_ = 0;
};

}  // namespace commroute::engine

namespace std {
template <>
struct hash<commroute::engine::Message> {
  std::size_t operator()(const commroute::engine::Message& m) const {
    std::size_t seed = std::hash<commroute::Path>{}(m.path);
    commroute::hash_combine_value(seed, m.tag);
    return seed;
  }
};
}  // namespace std
