#include "engine/scheduler.hpp"

#include <algorithm>

#include "engine/state.hpp"
#include "support/error.hpp"

namespace commroute::engine {

using model::ActivationStep;
using model::MessageMode;
using model::Model;
using model::NeighborMode;
using model::ReadSpec;
using model::Reliability;

// ---- ScriptedScheduler ----------------------------------------------------

ScriptedScheduler::ScriptedScheduler(model::ActivationScript script,
                                     std::optional<std::size_t> loop_from)
    : script_(std::move(script)), loop_from_(loop_from) {
  CR_REQUIRE(!script_.empty(), "script must be non-empty");
  if (loop_from_.has_value()) {
    CR_REQUIRE(*loop_from_ < script_.size(),
               "loop_from out of script range");
  }
}

ActivationStep ScriptedScheduler::next(const NetworkState&) {
  CR_REQUIRE(position_ < script_.size(), "script exhausted");
  ActivationStep step = script_[position_];
  ++position_;
  if (position_ == script_.size() && loop_from_.has_value()) {
    position_ = *loop_from_;
  }
  return step;
}

std::optional<std::uint64_t> ScriptedScheduler::signature() const {
  return position_;
}

bool ScriptedScheduler::exhausted() const {
  return !loop_from_.has_value() && position_ >= script_.size();
}

std::optional<std::size_t> ScriptedScheduler::remaining() const {
  if (loop_from_.has_value()) {
    return std::nullopt;
  }
  return script_.size() - position_;
}

// ---- RoundRobinScheduler --------------------------------------------------

RoundRobinScheduler::RoundRobinScheduler(Model m,
                                         const spp::Instance& instance)
    : model_(m), instance_(&instance) {
  const Graph& g = instance.graph();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (model_.neighbors == NeighborMode::kOne) {
      for (const ChannelIdx c : g.in_channels(v)) {
        order_.push_back(Slot{v, c});
      }
    } else {
      order_.push_back(Slot{v, kNoChannel});
    }
  }
  CR_ASSERT(!order_.empty(), "round-robin order cannot be empty");
}

ActivationStep RoundRobinScheduler::next(const NetworkState&) {
  const Slot& slot = order_[position_];
  position_ = (position_ + 1) % order_.size();

  // f choice: the most permissive legal value ("read everything you may").
  const std::optional<std::uint32_t> count =
      (model_.messages == MessageMode::kOne)
          ? std::optional<std::uint32_t>(1u)
          : std::nullopt;

  ActivationStep step;
  step.nodes = {slot.node};
  if (slot.channel != kNoChannel) {
    step.reads.push_back(ReadSpec{slot.channel, count, {}});
  } else {
    for (const ChannelIdx c : instance_->graph().in_channels(slot.node)) {
      step.reads.push_back(ReadSpec{c, count, {}});
    }
  }
  return step;
}

std::optional<std::uint64_t> RoundRobinScheduler::signature() const {
  return position_;
}

// ---- SynchronousScheduler ---------------------------------------------------

namespace {

std::uint64_t lcm_u64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a, y = b;
  while (y != 0) {
    const std::uint64_t t = x % y;
    x = y;
    y = t;
  }
  return (a / x) * b;
}

}  // namespace

SynchronousScheduler::SynchronousScheduler(Model base,
                                           const spp::Instance& instance)
    : base_(base), instance_(&instance) {
  if (base_.neighbors == NeighborMode::kOne) {
    for (NodeId v = 0; v < instance.node_count(); ++v) {
      period_ = lcm_u64(period_,
                        instance.graph().in_channels(v).size());
    }
  }
}

ActivationStep SynchronousScheduler::next(const NetworkState&) {
  const Graph& g = instance_->graph();
  const std::optional<std::uint32_t> count =
      (base_.messages == MessageMode::kOne)
          ? std::optional<std::uint32_t>(1u)
          : std::nullopt;

  ActivationStep step;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    step.nodes.push_back(v);
    const auto& in = g.in_channels(v);
    if (base_.neighbors == NeighborMode::kOne) {
      const std::size_t pick =
          static_cast<std::size_t>(round_ % in.size());
      step.reads.push_back(ReadSpec{in[pick], count, {}});
    } else {
      for (const ChannelIdx c : in) {
        step.reads.push_back(ReadSpec{c, count, {}});
      }
    }
  }
  ++round_;
  return step;
}

std::optional<std::uint64_t> SynchronousScheduler::signature() const {
  return round_ % period_;
}

// ---- MultiNodeRandomScheduler -----------------------------------------------

MultiNodeRandomScheduler::MultiNodeRandomScheduler(
    Model base, const spp::Instance& instance, Rng rng, double node_prob,
    std::uint64_t sweep_period)
    : base_(base),
      instance_(&instance),
      rng_(rng),
      node_prob_(node_prob),
      sweep_period_(sweep_period) {
  CR_REQUIRE(sweep_period_ > 0, "sweep_period must be positive");
}

ActivationStep MultiNodeRandomScheduler::step_for_nodes(
    const std::vector<NodeId>& nodes) {
  const Graph& g = instance_->graph();
  const std::optional<std::uint32_t> count =
      (base_.messages == MessageMode::kOne)
          ? std::optional<std::uint32_t>(1u)
          : std::nullopt;
  ActivationStep step;
  step.nodes = nodes;
  for (const NodeId v : nodes) {
    const auto& in = g.in_channels(v);
    switch (base_.neighbors) {
      case NeighborMode::kOne:
        step.reads.push_back(ReadSpec{
            in[static_cast<std::size_t>(rng_.below(in.size()))], count,
            {}});
        break;
      case NeighborMode::kEvery:
        for (const ChannelIdx c : in) {
          step.reads.push_back(ReadSpec{c, count, {}});
        }
        break;
      case NeighborMode::kMultiple:
        for (const ChannelIdx c : in) {
          if (rng_.chance(0.5)) {
            step.reads.push_back(ReadSpec{c, count, {}});
          }
        }
        break;
    }
  }
  return step;
}

ActivationStep MultiNodeRandomScheduler::next(const NetworkState&) {
  const Graph& g = instance_->graph();
  ++steps_;
  std::vector<NodeId> nodes;
  if (steps_ % sweep_period_ == 0) {
    // Fairness backstop: activate everyone. For 1-neighbor base models
    // each node's channel rotates across sweeps, covering all channels
    // over time; otherwise every channel is read in the sweep itself.
    ActivationStep step;
    const std::optional<std::uint32_t> count =
        (base_.messages == MessageMode::kOne)
            ? std::optional<std::uint32_t>(1u)
            : std::nullopt;
    const std::uint64_t round = steps_ / sweep_period_;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      step.nodes.push_back(v);
      const auto& in = g.in_channels(v);
      if (base_.neighbors == NeighborMode::kOne) {
        step.reads.push_back(
            ReadSpec{in[static_cast<std::size_t>(round % in.size())],
                     count,
                     {}});
      } else {
        for (const ChannelIdx c : in) {
          step.reads.push_back(ReadSpec{c, count, {}});
        }
      }
    }
    return step;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (rng_.chance(node_prob_)) {
      nodes.push_back(v);
    }
  }
  if (nodes.empty()) {
    nodes.push_back(static_cast<NodeId>(rng_.below(g.node_count())));
  }
  return step_for_nodes(nodes);
}

// ---- EventDrivenScheduler ---------------------------------------------------

EventDrivenScheduler::EventDrivenScheduler(const spp::Instance& instance)
    : instance_(&instance) {}

ActivationStep EventDrivenScheduler::next(const NetworkState& state) {
  const Graph& g = instance_->graph();
  const std::size_t channels = g.channel_count();

  // Serve the next non-empty channel after the cursor, FIFO-ish.
  for (std::size_t offset = 0; offset < channels; ++offset) {
    const ChannelIdx c = static_cast<ChannelIdx>(
        (channel_cursor_ + offset) % channels);
    if (!state.channel(c).empty()) {
      channel_cursor_ = (static_cast<std::uint64_t>(c) + 1) % channels;
      ActivationStep step;
      step.nodes = {g.channel_id(c).to};
      step.reads = {ReadSpec{c, 1u, {}}};
      return step;
    }
  }

  // Nothing in flight: rotate no-op activations (still read attempts, and
  // they trigger any pending first announcement).
  const NodeId v = static_cast<NodeId>(idle_cursor_ % g.node_count());
  idle_cursor_ = (idle_cursor_ + 1) % g.node_count();
  ActivationStep step;
  step.nodes = {v};
  step.reads = {ReadSpec{g.in_channels(v).front(), 1u, {}}};
  return step;
}

std::optional<std::uint64_t> EventDrivenScheduler::signature() const {
  return channel_cursor_ * (instance_->node_count() + 1) + idle_cursor_;
}

// ---- RandomFairScheduler --------------------------------------------------

RandomFairScheduler::RandomFairScheduler(Model m,
                                         const spp::Instance& instance,
                                         Rng rng, Options options)
    : model_(m), instance_(&instance), rng_(rng), options_(options) {
  CR_REQUIRE(options_.sweep_period > 0, "sweep_period must be positive");
}

ReadSpec RandomFairScheduler::make_read(const NetworkState& state,
                                        ChannelIdx c) {
  const std::size_t m = state.channel(c).size();

  std::optional<std::uint32_t> count;
  switch (model_.messages) {
    case MessageMode::kOne:
      count = 1u;
      break;
    case MessageMode::kAll:
      count = std::nullopt;
      break;
    case MessageMode::kForced:
      if (rng_.chance(0.25)) {
        count = std::nullopt;  // all
      } else {
        count = static_cast<std::uint32_t>(
            rng_.range(1, std::max<std::int64_t>(1, options_.max_f)));
      }
      break;
    case MessageMode::kSome:
      if (rng_.chance(0.25)) {
        count = std::nullopt;  // all
      } else {
        count = static_cast<std::uint32_t>(rng_.range(0, options_.max_f));
      }
      break;
  }

  ReadSpec read{c, count, {}};
  if (model_.reliability == Reliability::kUnreliable &&
      options_.drop_prob > 0.0) {
    // i = number of messages this read will actually process.
    const std::size_t i =
        count.has_value() ? std::min<std::size_t>(*count, m) : m;
    for (std::size_t idx = 1; idx <= i; ++idx) {
      // Never drop the newest message currently in the channel: every
      // dropped message then provably has a later non-dropped one,
      // satisfying the drop clause of Def. 2.4 unconditionally.
      if (idx == m) {
        continue;
      }
      if (rng_.chance(options_.drop_prob)) {
        read.drops.push_back(static_cast<std::uint32_t>(idx));
      }
    }
  }
  return read;
}

ActivationStep RandomFairScheduler::random_step(const NetworkState& state) {
  const Graph& g = instance_->graph();
  const NodeId v = static_cast<NodeId>(rng_.below(g.node_count()));
  const auto& in = g.in_channels(v);

  std::vector<ChannelIdx> chosen;
  switch (model_.neighbors) {
    case NeighborMode::kOne:
      chosen.push_back(in[static_cast<std::size_t>(rng_.below(in.size()))]);
      break;
    case NeighborMode::kEvery:
      chosen = in;
      break;
    case NeighborMode::kMultiple:
      for (const ChannelIdx c : in) {
        if (rng_.chance(options_.channel_prob)) {
          chosen.push_back(c);
        }
      }
      break;
  }

  ActivationStep step;
  step.nodes = {v};
  for (const ChannelIdx c : chosen) {
    step.reads.push_back(make_read(state, c));
  }
  return step;
}

void RandomFairScheduler::enqueue_sweep() {
  const Graph& g = instance_->graph();
  const std::optional<std::uint32_t> count =
      (model_.messages == MessageMode::kOne)
          ? std::optional<std::uint32_t>(1u)
          : std::nullopt;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (model_.neighbors == NeighborMode::kOne) {
      for (const ChannelIdx c : g.in_channels(v)) {
        ActivationStep step;
        step.nodes = {v};
        step.reads.push_back(ReadSpec{c, count, {}});
        pending_sweep_.push_back(std::move(step));
      }
    } else {
      ActivationStep step;
      step.nodes = {v};
      for (const ChannelIdx c : g.in_channels(v)) {
        step.reads.push_back(ReadSpec{c, count, {}});
      }
      pending_sweep_.push_back(std::move(step));
    }
  }
}

ActivationStep RandomFairScheduler::next(const NetworkState& state) {
  ++steps_;
  if (!pending_sweep_.empty()) {
    ActivationStep step = std::move(pending_sweep_.front());
    pending_sweep_.pop_front();
    return step;
  }
  if (steps_ % options_.sweep_period == 0) {
    enqueue_sweep();
  }
  return random_step(state);
}

}  // namespace commroute::engine
