#include "engine/state.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace commroute::engine {

NetworkState::NetworkState(const spp::Instance& instance)
    : instance_(&instance),
      pi_(instance.node_count()),
      rho_(instance.graph().channel_count()),
      channels_(instance.graph().channel_count()),
      exported_(instance.graph().channel_count()) {
  pi_[instance.destination()] = Path{instance.destination()};
}

const Path& NetworkState::assignment(NodeId v) const {
  CR_REQUIRE(v < pi_.size(), "node out of range");
  return pi_[v];
}

const Path& NetworkState::known(ChannelIdx c) const {
  CR_REQUIRE(c < rho_.size(), "channel out of range");
  return rho_[c];
}

const Channel& NetworkState::channel(ChannelIdx c) const {
  CR_REQUIRE(c < channels_.size(), "channel out of range");
  return channels_[c];
}

const std::optional<Path>& NetworkState::last_exported(ChannelIdx c) const {
  CR_REQUIRE(c < exported_.size(), "channel out of range");
  return exported_[c];
}

bool NetworkState::quiescent() const {
  for (const Channel& ch : channels_) {
    if (!ch.empty()) {
      return false;
    }
  }
  return true;
}

std::size_t NetworkState::messages_in_flight() const {
  std::size_t total = 0;
  for (const Channel& ch : channels_) {
    total += ch.size();
  }
  return total;
}

std::size_t NetworkState::max_channel_length() const {
  std::size_t longest = 0;
  for (const Channel& ch : channels_) {
    longest = std::max(longest, ch.size());
  }
  return longest;
}

NetworkState::ChannelUsage NetworkState::channel_usage() const {
  ChannelUsage usage;
  for (const Channel& ch : channels_) {
    usage.max_length = std::max(usage.max_length, ch.size());
    usage.bytes += ch.estimated_bytes();
  }
  return usage;
}

std::size_t NetworkState::estimated_bytes() const {
  std::size_t bytes = sizeof(NetworkState);
  for (const Path& p : pi_) {
    bytes += sizeof(Path) + p.size() * sizeof(NodeId);
  }
  for (const Path& p : rho_) {
    bytes += sizeof(Path) + p.size() * sizeof(NodeId);
  }
  for (const Channel& ch : channels_) {
    bytes += sizeof(Channel) + ch.estimated_bytes();
  }
  for (const std::optional<Path>& e : exported_) {
    bytes += sizeof(std::optional<Path>);
    if (e.has_value()) {
      bytes += e->size() * sizeof(NodeId);
    }
  }
  return bytes;
}

bool NetworkState::operator==(const NetworkState& o) const {
  return pi_ == o.pi_ && rho_ == o.rho_ && channels_ == o.channels_ &&
         exported_ == o.exported_;
}

std::size_t NetworkState::hash() const {
  std::size_t seed = hash_range(pi_);
  hash_combine(seed, hash_range(rho_));
  for (const Channel& ch : channels_) {
    hash_combine(seed, ch.hash());
  }
  for (const auto& e : exported_) {
    hash_combine(seed, e.has_value()
                           ? std::hash<Path>{}(*e) + 1
                           : static_cast<std::size_t>(0));
  }
  return seed;
}

std::string NetworkState::to_string() const {
  const spp::Instance& inst = *instance_;
  const Graph& g = inst.graph();
  std::ostringstream os;
  os << "pi:";
  for (NodeId v = 0; v < pi_.size(); ++v) {
    os << " " << g.name(v) << "=" << inst.path_name(pi_[v]);
  }
  os << "\nchannels:";
  bool any = false;
  for (ChannelIdx c = 0; c < channels_.size(); ++c) {
    if (channels_[c].empty()) {
      continue;
    }
    any = true;
    os << " " << g.channel_name(c) << "=[";
    for (std::size_t i = 0; i < channels_[c].size(); ++i) {
      os << (i ? "," : "") << inst.path_name(channels_[c].at(i).path);
    }
    os << "]";
  }
  if (!any) {
    os << " (all empty)";
  }
  os << "\nrho:";
  for (ChannelIdx c = 0; c < rho_.size(); ++c) {
    if (!rho_[c].empty()) {
      os << " " << g.channel_name(c) << "=" << inst.path_name(rho_[c]);
    }
  }
  os << "\n";
  return os.str();
}

void NetworkState::set_assignment(NodeId v, Path p) {
  CR_REQUIRE(v < pi_.size(), "node out of range");
  pi_[v] = std::move(p);
}

void NetworkState::set_known(ChannelIdx c, Path p) {
  CR_REQUIRE(c < rho_.size(), "channel out of range");
  rho_[c] = std::move(p);
}

Channel& NetworkState::mutable_channel(ChannelIdx c) {
  CR_REQUIRE(c < channels_.size(), "channel out of range");
  return channels_[c];
}

void NetworkState::set_last_exported(ChannelIdx c, Path p) {
  CR_REQUIRE(c < exported_.size(), "channel out of range");
  exported_[c] = std::move(p);
}

void NetworkState::reset_last_exported(ChannelIdx c) {
  CR_REQUIRE(c < exported_.size(), "channel out of range");
  exported_[c].reset();
}

}  // namespace commroute::engine
