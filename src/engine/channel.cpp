#include "engine/channel.hpp"

#include "support/error.hpp"

namespace commroute::engine {

void Channel::pop_front() {
  CR_REQUIRE(!messages_.empty(), "pop_front on empty channel");
  messages_.pop_front();
}

void Channel::pop_front_n(std::size_t n) {
  CR_REQUIRE(n <= messages_.size(), "pop_front_n beyond channel size");
  messages_.erase(messages_.begin(),
                  messages_.begin() + static_cast<std::ptrdiff_t>(n));
}

std::size_t Channel::hash() const {
  return hash_range(messages_);
}

}  // namespace commroute::engine
