#include "engine/channel.hpp"

#include "support/error.hpp"

namespace commroute::engine {

const Message& Channel::at(std::size_t i) const {
  CR_REQUIRE(i < messages_.size(),
             "Channel::at index " + std::to_string(i) +
                 " out of range (size " +
                 std::to_string(messages_.size()) + ")");
  return messages_[i];
}

Message& Channel::at_mutable(std::size_t i) {
  CR_REQUIRE(i < messages_.size(),
             "Channel::at_mutable index " + std::to_string(i) +
                 " out of range (size " +
                 std::to_string(messages_.size()) + ")");
  return messages_[i];
}

void Channel::pop_front() {
  CR_REQUIRE(!messages_.empty(), "pop_front on empty channel");
  bytes_ -= message_bytes(messages_.front());
  messages_.pop_front();
}

void Channel::pop_front_n(std::size_t n) {
  CR_REQUIRE(n <= messages_.size(),
             "Channel::pop_front_n(" + std::to_string(n) +
                 ") beyond channel size " +
                 std::to_string(messages_.size()));
  for (std::size_t i = 0; i < n; ++i) {
    bytes_ -= message_bytes(messages_[i]);
  }
  messages_.erase(messages_.begin(),
                  messages_.begin() + static_cast<std::ptrdiff_t>(n));
}

std::size_t Channel::hash() const {
  return hash_range(messages_);
}

}  // namespace commroute::engine
