// The run loop: drive an instance with a scheduler until convergence, a
// provable cycle, or a step budget is exhausted.
//
// Convergence is detected as *strong quiescence*: all channels empty and
// no node holds a pending (not yet exported) announcement. From such a
// state no activation step in any model can change any assignment, so the
// network has converged in the sense of Def. 2.5.
//
// Oscillation is detected soundly only for schedulers that expose a
// signature (scripted / round-robin): if the pair (network state,
// scheduler signature) repeats and an assignment changed in between, the
// execution provably cycles forever.
#pragma once

#include <cstdint>
#include <optional>

#include "engine/fault_hook.hpp"
#include "engine/scheduler.hpp"
#include "engine/state.hpp"
#include "model/fairness.hpp"
#include "obs/causality.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "obs/resource.hpp"
#include "obs/sketch.hpp"
#include "trace/recording_io.hpp"
#include "trace/trace.hpp"

namespace commroute::engine {

enum class Outcome {
  kConverged,    ///< strongly quiescent, or a provable cycle with constant pi
  kOscillating,  ///< provable cycle with changing pi
  kExhausted,    ///< step budget reached without a verdict
};

std::string to_string(Outcome outcome);

/// Inverse of to_string; nullopt for unknown names.
std::optional<Outcome> outcome_from_string(std::string_view name);

/// Flight recorder: durable capture of the executed activation sequence
/// and its pi-sequence, either in full or as a bounded ring of the last
/// N steps, auto-flushed to disk when the run fails to converge. Off by
/// default; the detached path adds one predicted branch per step.
struct FlightRecorderOptions {
  enum class Mode {
    kOff,   ///< no capture
    kRing,  ///< keep the last `ring_capacity` steps (forensics window)
    kFull,  ///< keep every step (replayable recording)
  };
  Mode mode = Mode::kOff;
  std::size_t ring_capacity = 256;
  /// When non-empty, the recording is written here (JSONL, see
  /// trace/recording_io.hpp) after the run — always with `flush_always`,
  /// otherwise only on a non-converged outcome.
  std::string flush_path;
  bool flush_always = false;
  /// Metadata stamped into the flushed header (model is taken from
  /// RunOptions::enforce_model when set).
  std::string instance_name;
  std::string scheduler;
  std::uint64_t seed = 0;
};

struct RunOptions {
  std::uint64_t max_steps = 20000;
  bool record_trace = true;
  bool detect_cycles = true;  ///< needs a scheduler with a signature
  /// Validate every step against this model (single-node rule included).
  std::optional<model::Model> enforce_model;
  /// Optional metrics registry / JSONL event sink / span collector.
  /// Detached (the default) adds nothing to the hot path; attached,
  /// run() publishes step/message/occupancy aggregates, emits an
  /// "engine_run" summary event, and traces engine.run > engine.step >
  /// engine.activate spans (export with obs::write_chrome_trace).
  obs::Instrumentation obs;
  /// With a sink attached, also emit one "engine_step" event per
  /// executed step (step effects: nodes touched, sends, reads, drops).
  bool emit_step_events = false;
  /// Build the happens-before DAG of the run (obs/causality.hpp):
  /// RunResult::causality is populated, critical_path_len computed, and
  /// — with obs attached — an engine.critical_path_len gauge plus a
  /// critical_path_len field on the engine_run event are published.
  /// Off (the default) costs one predicted branch per step.
  bool causality = false;
  /// Flight recorder (off by default; see FlightRecorderOptions).
  FlightRecorderOptions flight;
  /// How much memory observability may spend (obs/sketch.hpp). kFull
  /// keeps the exact per-step / per-node structures (trace,
  /// node_activations); kSketched suppresses both and instead fills the
  /// bounded RunResult sketches (flap_topk, activation_topk), keeping
  /// observability memory independent of nodes x steps.
  obs::ObsBudget budget = obs::ObsBudget::kFull;
  /// Online progress: when attached, run() reports done=steps /
  /// total=max_steps (plus steps-since-last-route-change as detail —
  /// the distance-to-convergence-bound signal) every 64 steps, for a
  /// TelemetrySampler to turn into progress_snapshot events. Borrowed;
  /// must outlive the call.
  obs::ProgressEstimator* progress = nullptr;
  /// Observability-memory accounting: when attached, run() adds its
  /// deterministic byte estimates (trace growth + node_activations in
  /// kFull; sketch sizes in kSketched) so the budget contract is
  /// measurable. Borrowed; deterministic (element counts, never
  /// capacity or clocks).
  obs::TrackedBytes* obs_memory = nullptr;
  /// Fault injection (scenario subsystem): bound to the state before the
  /// loop; quiescence does not end the run while faults are pending, and
  /// faults the scheduler applies inside next() are drained every step
  /// into the flight recorder and causality graph. Borrowed; must
  /// outlive the call.
  FaultHook* fault_hook = nullptr;
};

struct RunResult {
  Outcome outcome = Outcome::kExhausted;
  std::uint64_t steps = 0;
  trace::Trace trace;  ///< recorded iff RunOptions::record_trace
  std::vector<Path> final_assignment;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  /// Valid when outcome == kOscillating (or a constant-pi cycle folded
  /// into kConverged): the step at which the repeated configuration was
  /// first seen and the cycle length.
  std::uint64_t cycle_start = 0;
  std::uint64_t cycle_length = 0;
  /// True when cycle detection was actually armed for this run: it was
  /// requested (RunOptions::detect_cycles) AND the scheduler exposes a
  /// signature. False with detect_cycles on means kExhausted cannot be
  /// told apart from "oscillating but undetectable" (e.g. the
  /// RandomFairScheduler has no signature); run() then also publishes a
  /// cycle_detection_disabled gauge/event when instrumentation is
  /// attached, so campaign users can see which rows ran blind.
  bool cycle_detection = false;
  /// Fairness summary of the executed prefix.
  std::uint64_t max_attempt_gap = 0;
  std::size_t outstanding_drops = 0;
  /// Activations per node (how often each appeared in U). Empty under
  /// ObsBudget::kSketched — see activation_topk instead.
  std::vector<std::uint64_t> node_activations;
  /// Populated under ObsBudget::kSketched: the most-flapped nodes
  /// (assignment changes) and most-activated nodes, each bounded at 16
  /// entries regardless of instance size. Exact (not approximate)
  /// whenever at most 16 distinct nodes flapped / activated.
  obs::TopK flap_topk{16};
  obs::TopK activation_topk{16};
  /// Total observability bytes this run accounted (see
  /// RunOptions::obs_memory; 0 when accounting was off). Monotone over
  /// the run, so the total is also the peak.
  std::uint64_t obs_bytes = 0;
  /// High-water mark of any single channel's queue length.
  std::size_t max_channel_occupancy = 0;
  /// High-water mark of the total in-flight message bytes across all
  /// channels (deterministic estimate, see Channel::estimated_bytes).
  std::size_t peak_channel_bytes = 0;
  /// Present when the flight recorder was on: the recorded window
  /// (complete in kFull mode, the last N steps in kRing mode).
  std::optional<trace::RecordingDoc> recording;
  /// Where the recording was flushed ("" when it was not).
  std::string recording_path;
  /// Present iff RunOptions::causality: the happens-before DAG of the
  /// executed run (self-contained — outlives the instance).
  std::optional<obs::CausalityGraph> causality;
  /// Length of the longest dependency chain ending at the last
  /// assignment-changing activation (0 when causality was off or
  /// nothing changed) — the dependency-depth lower bound on the step
  /// count to convergence.
  std::uint64_t critical_path_len = 0;
  /// Faults the bound RunOptions::fault_hook applied during the run.
  std::uint64_t faults_applied = 0;
};

/// True when `state` is strongly quiescent (see file comment).
bool strongly_quiescent(const NetworkState& state);

/// Runs `scheduler` on a fresh state of `instance`.
///
/// Thread safety: run() keeps all mutable state (NetworkState, fairness
/// monitor, cycle table, flight recorder) in locals and only reads the
/// shared `instance`, so concurrent calls are safe provided each call
/// gets its own Scheduler and its own (or thread-safe) obs handles:
/// Registry is unsynchronized — parallel drivers attach per-worker
/// registry shards and merge (Registry::merge_from); SpanCollector is
/// internally locked; a shared EventSink must be wrapped in
/// obs::SynchronizedSink. Flight-recorder flush paths must be distinct
/// per concurrent call. This is the contract the parallel campaign
/// driver (study::run_campaign) builds on.
RunResult run(const spp::Instance& instance, Scheduler& scheduler,
              const RunOptions& options = {});

}  // namespace commroute::engine
