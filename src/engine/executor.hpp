// The iterative routing algorithm's step semantics (Def. 2.3).
//
// Given an activation step (U, X, f, g), execute_step performs, in order:
//   1. Reads:  for every channel c = (u, v) in X, process
//              i = min(f(c), m_c) messages (all of them when f = all);
//              rho_v(c) becomes the payload of the last non-dropped
//              processed message, if any; the i messages leave the channel.
//   2. Select: every v in U picks the most preferred permitted extension
//              v . rho_v((u, v)) over its neighbors u (epsilon when none
//              is feasible); the destination always selects (d).
//   3. Announce: every v in U whose export value toward a neighbor changed
//              writes it to the corresponding out-channel. With the
//              default allow-all export policy this is exactly the
//              paper's "announce iff pi_v(t) != pi_v(t-1)" rule, plus the
//              destination's first self-announcement.
//
// Note on the paper's step 2(b): the printed "i = max{f(c), m_c(t)}" is a
// typo for min (one cannot process more messages than are present); see
// DESIGN.md.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/state.hpp"
#include "model/activation.hpp"
#include "obs/spans.hpp"

namespace commroute::engine {

/// What happened on one processed channel.
struct ReadEffect {
  ChannelIdx channel = kNoChannel;
  std::uint32_t processed = 0;  ///< i = messages removed from the channel
  std::uint32_t dropped = 0;    ///< how many of those were dropped
  bool delivered = false;       ///< true if rho was (re)assigned
  Path new_known;               ///< rho after the read (valid if delivered)
};

/// What happened at one updating node.
struct NodeEffect {
  NodeId node = kNoNode;
  Path old_assignment;
  Path new_assignment;
  bool changed = false;
  /// In-channel whose rho furnished new_assignment (kNoChannel when the
  /// new assignment is epsilon or the node is the destination). Used by
  /// the Thm. 3.5 realization transform.
  ChannelIdx selected_from = kNoChannel;
};

/// One message written to a channel during announcements.
struct SentMessage {
  ChannelIdx channel = kNoChannel;
  Message message;
};

/// Complete effect of one activation step.
struct StepEffect {
  std::vector<ReadEffect> reads;
  std::vector<NodeEffect> nodes;
  std::vector<SentMessage> sent;
};

/// Executes one step, mutating `state`. The step must satisfy
/// model::validate_step for `state.instance()`; callers enforcing a model
/// should check model::step_allowed first. With a span collector
/// attached, each updating node's select+announce is traced as an
/// "engine.activate" span (null = free, the usual guard idiom).
StepEffect execute_step(NetworkState& state,
                        const model::ActivationStep& step,
                        obs::SpanCollector* spans = nullptr);

}  // namespace commroute::engine
