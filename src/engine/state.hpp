// Full network state (Def. 2.1 of the paper).
//
// Tracks, per step of an execution:
//   * pi_v  — each node's current path assignment,
//   * rho_v(c) — the payload of the last update successfully processed
//     from each channel (stored as the *announced* path; the receiving
//     node extends it by itself at selection time),
//   * channel contents,
//   * last value exported per channel (realizing the "announce only on
//     change" rule of Def. 2.3 step 4, including d's first announcement).
//
// NetworkState is a value type: copyable, hashable, equality-comparable,
// which is what the model checker enumerates.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "engine/channel.hpp"
#include "spp/instance.hpp"

namespace commroute::engine {

class NetworkState {
 public:
  /// Initial state: pi_d = (d), all other pi = epsilon, all rho = epsilon,
  /// all channels empty, nothing exported yet.
  explicit NetworkState(const spp::Instance& instance);

  const spp::Instance& instance() const { return *instance_; }

  /// pi_v: v's current path assignment.
  const Path& assignment(NodeId v) const;

  /// The full assignment vector (a copy).
  std::vector<Path> assignments() const { return pi_; }

  /// rho_v(c): announced path last processed from channel c (epsilon if
  /// none yet, or if the last update was a withdrawal).
  const Path& known(ChannelIdx c) const;

  const Channel& channel(ChannelIdx c) const;

  /// What the sender last wrote to channel c (nullopt = nothing yet).
  const std::optional<Path>& last_exported(ChannelIdx c) const;

  /// All channels empty: no execution step can change any assignment, so
  /// the run has converged to assignments().
  bool quiescent() const;

  /// Total messages currently in flight.
  std::size_t messages_in_flight() const;

  /// Length of the longest channel.
  std::size_t max_channel_length() const;

  /// Channel occupancy (longest channel) and in-flight message bytes,
  /// computed in one pass — the engine samples both every step.
  struct ChannelUsage {
    std::size_t max_length = 0;
    std::size_t bytes = 0;
  };
  ChannelUsage channel_usage() const;

  /// Deterministic full-footprint estimate of this state (object plus
  /// heap: assignments, rho, channels, exported paths). Element counts ×
  /// sizeof only — never capacity — so any two runs interning the same
  /// state account the same bytes. Feeds the checker's tracked-bytes
  /// accounting (obs::TrackedBytes).
  std::size_t estimated_bytes() const;

  bool operator==(const NetworkState& o) const;
  std::size_t hash() const;

  /// Multi-line debug rendering.
  std::string to_string() const;

  // -- Mutators (used by the executor; exposed for tests) ------------------

  void set_assignment(NodeId v, Path p);
  void set_known(ChannelIdx c, Path p);
  Channel& mutable_channel(ChannelIdx c);
  void set_last_exported(ChannelIdx c, Path p);
  /// Forgets what was exported on c (back to "nothing sent yet") — a
  /// session reset: the sender will re-announce its current assignment
  /// on its next activation (scenario::apply_fault).
  void reset_last_exported(ChannelIdx c);

 private:
  const spp::Instance* instance_;
  std::vector<Path> pi_;
  std::vector<Path> rho_;
  std::vector<Channel> channels_;
  std::vector<std::optional<Path>> exported_;
};

}  // namespace commroute::engine

namespace std {
template <>
struct hash<commroute::engine::NetworkState> {
  std::size_t operator()(const commroute::engine::NetworkState& s) const {
    return s.hash();
  }
};
}  // namespace std
