// Schedulers: generators of (fair) activation sequences for a model.
//
// A Scheduler produces the next activation step given the current state.
// Three implementations:
//   * ScriptedScheduler   — replays an explicit ActivationScript, with
//                           optional looping (used to exhibit the paper's
//                           hand-built oscillations);
//   * RoundRobinScheduler — deterministic, fair by construction: cycles
//                           through nodes (and through channels for
//                           1-neighbor models);
//   * RandomFairScheduler — randomized choices constrained to the model,
//                           with a periodic deterministic sweep to bound
//                           read-attempt gaps, and a drop discipline that
//                           never drops the newest message of a channel
//                           (which guarantees Def. 2.4's drop condition).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "model/activation.hpp"
#include "support/rng.hpp"

namespace commroute::engine {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Produces the next step. `state` may inform the choice (e.g. message
  /// counts for f / g selection) but schedulers must not mutate it.
  virtual model::ActivationStep next(const class NetworkState& state) = 0;

  /// A value that, together with the network state, determines all future
  /// scheduler behavior (e.g. position in a looped script). Runners use
  /// it for sound cycle detection; nullopt disables that detection.
  virtual std::optional<std::uint64_t> signature() const { return std::nullopt; }

  /// True when the scheduler cannot produce further steps (a finite,
  /// non-looping script that has been fully played).
  virtual bool exhausted() const { return false; }

  /// Virtual timestamp (microseconds) of the step most recently
  /// returned by next(), for schedulers that execute on a virtual clock
  /// (the sim's discrete-event scheduler). nullopt = untimed. The run
  /// loop stamps this into flight recordings ("t_us", schema v2) and
  /// the causal provenance graph, making the critical path a virtual-
  /// time latency bound.
  virtual std::optional<std::uint64_t> virtual_time_us() const {
    return std::nullopt;
  }
};

/// Replays a fixed script; optionally loops a suffix forever.
class ScriptedScheduler final : public Scheduler {
 public:
  /// Plays steps [0, script.size()). If loop_from has a value, after the
  /// script ends it replays steps [loop_from, script.size()) forever.
  explicit ScriptedScheduler(model::ActivationScript script,
                             std::optional<std::size_t> loop_from =
                                 std::nullopt);

  model::ActivationStep next(const NetworkState& state) override;
  std::optional<std::uint64_t> signature() const override;
  bool exhausted() const override;

  /// Steps remaining before the script is exhausted (no looping);
  /// nullopt when looping forever.
  std::optional<std::size_t> remaining() const;

 private:
  model::ActivationScript script_;
  std::optional<std::size_t> loop_from_;
  std::size_t position_ = 0;
};

/// Deterministic fair scheduler for any of the 24 models.
class RoundRobinScheduler final : public Scheduler {
 public:
  RoundRobinScheduler(model::Model m, const spp::Instance& instance);

  model::ActivationStep next(const NetworkState& state) override;
  std::optional<std::uint64_t> signature() const override;

  /// Steps per full sweep of all (node, channel-choice) pairs.
  std::size_t period() const { return order_.size(); }

 private:
  model::Model model_;
  const spp::Instance* instance_;
  // Precomputed cyclic order of (node, channel or all-channels) choices.
  struct Slot {
    NodeId node;
    ChannelIdx channel;  // kNoChannel = read per neighbor mode default
  };
  std::vector<Slot> order_;
  std::size_t position_ = 0;
};

/// Fully synchronous rounds (the NodesMode::kEvery dimension value of
/// Def. 2.6): every step activates every node. For 1-neighbor base models
/// each node cycles through its in-channels with aligned phases, which is
/// exactly the schedule of Ex. A.6 ("both poll d, then both poll each
/// other"). For M/E base models every node processes all its channels.
class SynchronousScheduler final : public Scheduler {
 public:
  SynchronousScheduler(model::Model base, const spp::Instance& instance);

  model::ActivationStep next(const NetworkState& state) override;
  std::optional<std::uint64_t> signature() const override;

  /// Rounds until the channel-choice pattern repeats.
  std::uint64_t period() const { return period_; }

 private:
  model::Model base_;
  const spp::Instance* instance_;
  std::uint64_t round_ = 0;
  std::uint64_t period_ = 1;
};

/// Random multi-node scheduler (the NodesMode::kUnrestricted dimension
/// value): each step activates a random non-empty node subset, each node
/// reading per the base model's rules. Includes a deterministic
/// synchronous sweep every `sweep_period` steps for fairness.
class MultiNodeRandomScheduler final : public Scheduler {
 public:
  MultiNodeRandomScheduler(model::Model base, const spp::Instance& instance,
                           Rng rng, double node_prob = 0.5,
                           std::uint64_t sweep_period = 32);

  model::ActivationStep next(const NetworkState& state) override;

 private:
  model::Model base_;
  const spp::Instance* instance_;
  Rng rng_;
  double node_prob_;
  std::uint64_t sweep_period_;
  std::uint64_t steps_ = 0;

  model::ActivationStep step_for_nodes(const std::vector<NodeId>& nodes);
};

/// Event-driven processing (Sec. 2.3.2): "nodes respond individually to
/// each incoming update". Serves non-empty channels in round-robin order
/// with one-message reads; when no message is in flight it rotates
/// through no-op node activations so pending first announcements (the
/// destination's) still fire and fairness attempts continue. Legal in the
/// wxO message-passing models.
class EventDrivenScheduler final : public Scheduler {
 public:
  explicit EventDrivenScheduler(const spp::Instance& instance);

  model::ActivationStep next(const NetworkState& state) override;
  std::optional<std::uint64_t> signature() const override;

 private:
  const spp::Instance* instance_;
  std::uint64_t channel_cursor_ = 0;
  std::uint64_t idle_cursor_ = 0;
};

/// Options for RandomFairScheduler.
struct RandomFairOptions {
  double drop_prob = 0.0;       ///< only used for unreliable models
  double channel_prob = 0.5;    ///< M models: inclusion probability
  std::uint32_t max_f = 3;      ///< S/F models: cap on random finite f
  std::uint64_t sweep_period = 64;  ///< deterministic sweep cadence
};

/// Randomized fair scheduler.
///
/// Note: exposes no signature(), so engine::run cannot soundly detect
/// cycles under it — a non-terminating random execution reports
/// kExhausted, never kOscillating. run() flags this via
/// RunResult::cycle_detection = false and, when instrumentation is
/// attached, a cycle_detection_disabled gauge/event.
class RandomFairScheduler final : public Scheduler {
 public:
  using Options = RandomFairOptions;

  RandomFairScheduler(model::Model m, const spp::Instance& instance,
                      Rng rng, Options options = {});

  model::ActivationStep next(const NetworkState& state) override;

 private:
  model::Model model_;
  const spp::Instance* instance_;
  Rng rng_;
  Options options_;
  std::uint64_t steps_ = 0;
  std::deque<model::ActivationStep> pending_sweep_;

  model::ActivationStep random_step(const NetworkState& state);
  void enqueue_sweep();
  model::ReadSpec make_read(const NetworkState& state, ChannelIdx c);
};

}  // namespace commroute::engine
