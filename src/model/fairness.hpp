// Fairness of activation sequences (Def. 2.4 of the paper).
//
// A fair activation sequence (a) has every node try to read each of its
// in-channels infinitely often and (b) follows every dropped message with
// a later message on the same channel that is not dropped. Infinite
// behavior cannot be observed directly, so this monitor tracks finite
// prefixes and reports the two finite analogues:
//   * the largest gap between consecutive read attempts per channel
//     (bounded gaps witness clause (a) for schedulers that cycle), and
//   * the number of drops not yet followed by a delivered message
//     (zero at the end of a run witnesses clause (b)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph.hpp"

namespace commroute::model {

class FairnessMonitor {
 public:
  explicit FairnessMonitor(std::size_t channel_count);

  /// Starts the next step (increments the step counter).
  void begin_step();

  /// Channel c was in X this step (a read attempt, even if empty).
  void attempt(ChannelIdx c);

  /// A message on c was processed and dropped this step.
  void drop(ChannelIdx c);

  /// A message on c was processed and not dropped this step.
  void deliver(ChannelIdx c);

  /// Steps observed so far.
  std::uint64_t steps() const { return step_; }

  /// True when every channel has been attempted at least once.
  bool all_channels_attempted() const;

  /// Largest gap (in steps) between consecutive attempts on any channel,
  /// including the gap from the start to the first attempt and from the
  /// last attempt to now. Channels never attempted yield the full run
  /// length.
  std::uint64_t max_attempt_gap() const;

  /// Drops not yet followed by a delivery on the same channel. A fair
  /// finite prefix of a converging run ends with zero.
  std::size_t outstanding_drops() const;

  /// True iff outstanding_drops() == 0.
  bool drop_condition_ok() const { return outstanding_drops() == 0; }

  /// Human-readable summary.
  std::string report(const Graph& graph) const;

 private:
  struct PerChannel {
    std::uint64_t attempts = 0;
    std::uint64_t last_attempt = 0;  ///< step index of last attempt
    std::uint64_t max_gap = 0;
    std::uint64_t pending_drops = 0;  ///< drops since last delivery
    std::uint64_t total_drops = 0;
    std::uint64_t total_deliveries = 0;
  };

  std::uint64_t step_ = 0;
  std::vector<PerChannel> channels_;
};

}  // namespace commroute::model
