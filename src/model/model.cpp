#include "model/model.hpp"

#include "support/error.hpp"

namespace commroute::model {

char symbol(Reliability r) {
  return r == Reliability::kReliable ? 'R' : 'U';
}

char symbol(NeighborMode n) {
  switch (n) {
    case NeighborMode::kOne:
      return '1';
    case NeighborMode::kMultiple:
      return 'M';
    case NeighborMode::kEvery:
      return 'E';
  }
  throw InvariantError("bad NeighborMode");
}

char symbol(MessageMode m) {
  switch (m) {
    case MessageMode::kOne:
      return 'O';
    case MessageMode::kSome:
      return 'S';
    case MessageMode::kForced:
      return 'F';
    case MessageMode::kAll:
      return 'A';
  }
  throw InvariantError("bad MessageMode");
}

std::string Model::name() const {
  return std::string{symbol(reliability), symbol(neighbors),
                     symbol(messages)};
}

Model Model::parse(std::string_view name) {
  if (name.size() != 3) {
    throw ParseError("model name must have 3 characters: '" +
                     std::string(name) + "'");
  }
  Model m;
  switch (name[0]) {
    case 'R':
      m.reliability = Reliability::kReliable;
      break;
    case 'U':
      m.reliability = Reliability::kUnreliable;
      break;
    default:
      throw ParseError("bad reliability symbol in '" + std::string(name) +
                       "' (want R or U)");
  }
  switch (name[1]) {
    case '1':
      m.neighbors = NeighborMode::kOne;
      break;
    case 'M':
      m.neighbors = NeighborMode::kMultiple;
      break;
    case 'E':
      m.neighbors = NeighborMode::kEvery;
      break;
    default:
      throw ParseError("bad neighbor symbol in '" + std::string(name) +
                       "' (want 1, M, or E)");
  }
  switch (name[2]) {
    case 'O':
      m.messages = MessageMode::kOne;
      break;
    case 'S':
      m.messages = MessageMode::kSome;
      break;
    case 'F':
      m.messages = MessageMode::kForced;
      break;
    case 'A':
      m.messages = MessageMode::kAll;
      break;
    default:
      throw ParseError("bad message symbol in '" + std::string(name) +
                       "' (want O, S, F, or A)");
  }
  return m;
}

int Model::index() const {
  return static_cast<int>(reliability) * 12 +
         static_cast<int>(messages) * 3 + static_cast<int>(neighbors);
}

Model Model::from_index(int index) {
  CR_REQUIRE(index >= 0 && index < kCount, "model index out of range");
  Model m;
  m.reliability = static_cast<Reliability>(index / 12);
  m.messages = static_cast<MessageMode>((index % 12) / 3);
  m.neighbors = static_cast<NeighborMode>(index % 3);
  return m;
}

const std::vector<Model>& Model::all() {
  static const std::vector<Model> models = [] {
    std::vector<Model> out;
    out.reserve(kCount);
    for (int i = 0; i < kCount; ++i) {
      out.push_back(from_index(i));
    }
    return out;
  }();
  return models;
}

}  // namespace commroute::model
