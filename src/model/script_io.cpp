#include "model/script_io.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace commroute::model {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ParseError("script line " + std::to_string(line) + ": " + what);
}

ReadSpec parse_read(const spp::Instance& instance, std::size_t line,
                    const std::string& text) {
  // "<from>-><to> f=<n|inf> [g={i,j}]"
  const auto tokens = split_trimmed(text, ' ');
  if (tokens.empty()) {
    fail(line, "empty read spec");
  }
  const auto arrow = tokens[0].find("->");
  if (arrow == std::string::npos) {
    fail(line, "read must start with '<from>-><to>': '" + tokens[0] + "'");
  }
  const std::string from = tokens[0].substr(0, arrow);
  const std::string to = tokens[0].substr(arrow + 2);
  if (!instance.graph().has_node(from) || !instance.graph().has_node(to)) {
    fail(line, "unknown node in channel '" + tokens[0] + "'");
  }

  ReadSpec read;
  read.channel = instance.graph().channel(instance.graph().node(from),
                                          instance.graph().node(to));
  bool have_f = false;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (starts_with(token, "f=")) {
      const std::string value = token.substr(2);
      if (value == "inf") {
        read.count = std::nullopt;
      } else {
        try {
          read.count = static_cast<std::uint32_t>(std::stoul(value));
        } catch (const std::exception&) {
          fail(line, "bad f value '" + value + "'");
        }
      }
      have_f = true;
    } else if (starts_with(token, "g={") && token.back() == '}') {
      for (const std::string& idx :
           split_trimmed(token.substr(3, token.size() - 4), ',')) {
        try {
          read.drops.push_back(
              static_cast<std::uint32_t>(std::stoul(idx)));
        } catch (const std::exception&) {
          fail(line, "bad drop index '" + idx + "'");
        }
      }
    } else {
      fail(line, "unknown read attribute '" + token + "'");
    }
  }
  if (!have_f) {
    fail(line, "read is missing f=");
  }
  return read;
}

}  // namespace

ActivationScript parse_script(const spp::Instance& instance,
                              const std::string& text) {
  ActivationScript script;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const auto hash = raw.find('#');
    const std::string line{
        trim(hash == std::string::npos ? raw : raw.substr(0, hash))};
    if (line.empty()) {
      continue;
    }
    const auto bar = line.find('|');
    if (bar == std::string::npos) {
      fail(line_number, "step must be '<nodes> | <reads>'");
    }

    ActivationStep step;
    for (const std::string& name :
         split_trimmed(line.substr(0, bar), ',')) {
      if (!instance.graph().has_node(name)) {
        fail(line_number, "unknown node '" + name + "'");
      }
      step.nodes.push_back(instance.graph().node(name));
    }
    std::sort(step.nodes.begin(), step.nodes.end());
    step.nodes.erase(std::unique(step.nodes.begin(), step.nodes.end()),
                     step.nodes.end());

    const std::string reads_text{trim(line.substr(bar + 1))};
    if (!reads_text.empty()) {
      for (const std::string& read_text :
           split_trimmed(reads_text, ';')) {
        step.reads.push_back(
            parse_read(instance, line_number, read_text));
      }
    }
    validate_step(instance, step);
    script.push_back(std::move(step));
  }
  return script;
}

std::string format_script(const spp::Instance& instance,
                          const ActivationScript& script) {
  const Graph& g = instance.graph();
  std::ostringstream out;
  for (const ActivationStep& step : script) {
    for (std::size_t i = 0; i < step.nodes.size(); ++i) {
      out << (i ? "," : "") << g.name(step.nodes[i]);
    }
    out << " |";
    for (std::size_t i = 0; i < step.reads.size(); ++i) {
      const ReadSpec& read = step.reads[i];
      out << (i ? " ; " : " ") << g.channel_name(read.channel) << " f=";
      if (read.count.has_value()) {
        out << *read.count;
      } else {
        out << "inf";
      }
      if (!read.drops.empty()) {
        out << " g={";
        for (std::size_t j = 0; j < read.drops.size(); ++j) {
          out << (j ? "," : "") << read.drops[j];
        }
        out << "}";
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace commroute::model
