#include "model/multi.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace commroute::model {

std::string to_string(NodesMode mode) {
  switch (mode) {
    case NodesMode::kOne:
      return "one";
    case NodesMode::kEvery:
      return "every";
    case NodesMode::kUnrestricted:
      return "unrestricted";
  }
  throw InvariantError("bad NodesMode");
}

std::string ExtendedModel::name() const {
  switch (nodes) {
    case NodesMode::kOne:
      return base.name();
    case NodesMode::kEvery:
      return "sync-" + base.name();
    case NodesMode::kUnrestricted:
      return "multi-" + base.name();
  }
  throw InvariantError("bad NodesMode");
}

ExtendedModel ExtendedModel::parse(std::string_view name) {
  ExtendedModel m;
  if (starts_with(name, "sync-")) {
    m.nodes = NodesMode::kEvery;
    m.base = Model::parse(name.substr(5));
  } else if (starts_with(name, "multi-")) {
    m.nodes = NodesMode::kUnrestricted;
    m.base = Model::parse(name.substr(6));
  } else {
    m.nodes = NodesMode::kOne;
    m.base = Model::parse(name);
  }
  return m;
}

bool extended_step_allowed(const ExtendedModel& m,
                           const spp::Instance& instance,
                           const ActivationStep& step, std::string* why) {
  // Base rules, with the single-node restriction lifted here.
  if (!step_allowed(m.base, instance, step, why,
                    /*require_single_node=*/false)) {
    return false;
  }
  switch (m.nodes) {
    case NodesMode::kOne:
      if (step.nodes.size() != 1) {
        if (why != nullptr) {
          *why = "model " + m.name() + " requires exactly one updating node";
        }
        return false;
      }
      break;
    case NodesMode::kEvery:
      if (step.nodes.size() != instance.node_count()) {
        if (why != nullptr) {
          *why = "model " + m.name() + " requires every node to update";
        }
        return false;
      }
      break;
    case NodesMode::kUnrestricted:
      break;  // any non-empty U (validate_step rejects empty U)
  }
  return true;
}

void require_extended_step_allowed(const ExtendedModel& m,
                                   const spp::Instance& instance,
                                   const ActivationStep& step) {
  std::string why;
  if (!extended_step_allowed(m, instance, step, &why)) {
    throw PreconditionError("step not allowed in " + m.name() + ": " + why +
                            " [" + step.to_string(instance) + "]");
  }
}

}  // namespace commroute::model
