// The "number of nodes updating" dimension (Def. 2.6).
//
// The paper's main taxonomy fixes exactly one updating node per step, but
// Def. 2.6 lists three options and Ex. A.6 shows the choice matters:
// multi-node polling can oscillate where single-node polling provably
// converges. An ExtendedModel pairs a base Model with a NodesMode:
//   kOne          |U| = 1 (the 24 models of Figs. 3/4);
//   kEvery        U = V (fully synchronous rounds);
//   kUnrestricted any non-empty U.
#pragma once

#include <string>

#include "model/activation.hpp"
#include "model/model.hpp"

namespace commroute::model {

enum class NodesMode : std::uint8_t {
  kOne = 0,
  kEvery = 1,
  kUnrestricted = 2,
};

std::string to_string(NodesMode mode);

/// A model from the full three-by-three-by-four-by-three space.
struct ExtendedModel {
  NodesMode nodes = NodesMode::kOne;
  Model base;

  /// "R1O" for single-node models, "sync-REA" / "multi-RMS" otherwise.
  std::string name() const;

  /// Parses "R1O", "sync-REA", "multi-RMS".
  static ExtendedModel parse(std::string_view name);

  bool operator==(const ExtendedModel& o) const {
    return nodes == o.nodes && base == o.base;
  }
};

/// Checks a step against an extended model: the base model's per-node
/// channel/message/reliability rules plus the U-cardinality rule.
bool extended_step_allowed(const ExtendedModel& m,
                           const spp::Instance& instance,
                           const ActivationStep& step,
                           std::string* why = nullptr);

void require_extended_step_allowed(const ExtendedModel& m,
                                   const spp::Instance& instance,
                                   const ActivationStep& step);

}  // namespace commroute::model
