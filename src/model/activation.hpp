// Activation-sequence elements (Def. 2.2 of the paper).
//
// One step of an execution is a quadruple (U, X, f, g):
//   U — the set of nodes that update,
//   X — the set of channels processed (each channel's receiving end in U),
//   f — messages to process per channel (a count, or "all"),
//   g — 1-based indices of the processed messages that are dropped.
// ActivationStep encodes the quadruple; f and g live inside per-channel
// ReadSpecs. The engine executes general steps (any |U|); the 24 models of
// the taxonomy additionally require |U| = 1 (checked by step_allowed).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/model.hpp"
#include "spp/instance.hpp"

namespace commroute::model {

/// Processing instruction for one channel: the pair (f(c), g(c)).
struct ReadSpec {
  ChannelIdx channel = kNoChannel;
  /// f(c): number of messages to process; nullopt means "all" (infinity).
  std::optional<std::uint32_t> count;
  /// g(c): sorted, unique, 1-based indices of processed messages to drop.
  std::vector<std::uint32_t> drops;
};

/// One activation-sequence element.
struct ActivationStep {
  /// U: updating nodes, sorted and unique. The taxonomy models use |U|=1.
  std::vector<NodeId> nodes;
  /// X with f and g folded in, at most one ReadSpec per channel.
  std::vector<ReadSpec> reads;

  /// Convenience for single-node steps.
  NodeId node() const;

  std::string to_string(const spp::Instance& instance) const;
};

/// An explicit finite activation sequence.
using ActivationScript = std::vector<ActivationStep>;

/// Validates the structural constraints of Def. 2.2 (independent of any
/// model): nodes exist and are sorted/unique, at most one read per
/// channel, every read's receiving end is in U, drops are sorted, unique,
/// >= 1, and contained in {1..f} when f is finite (empty when f == 0).
/// Throws PreconditionError with a diagnostic on violation.
void validate_step(const spp::Instance& instance, const ActivationStep& step);

/// Checks whether `step` is a legal step of `m` (after validate_step).
/// The taxonomy requires exactly one updating node unless
/// `require_single_node` is false (used for the Ex. A.6 multi-node
/// extension). If `why` is non-null it receives a diagnostic when the
/// result is false.
bool step_allowed(const Model& m, const spp::Instance& instance,
                  const ActivationStep& step, std::string* why = nullptr,
                  bool require_single_node = true);

/// Throws PreconditionError unless step_allowed.
void require_step_allowed(const Model& m, const spp::Instance& instance,
                          const ActivationStep& step,
                          bool require_single_node = true);

// ---- Step construction helpers -------------------------------------------

/// v polls all in-channels, processing all messages (the REA step shape).
ActivationStep poll_all_step(const spp::Instance& instance, NodeId v);

/// v processes all messages from the single channel (u, v).
ActivationStep poll_one_step(const spp::Instance& instance, NodeId v,
                             NodeId u);

/// v reads one message from (u, v); if `drop`, the message is dropped.
ActivationStep read_one_step(const spp::Instance& instance, NodeId v,
                             NodeId u, bool drop = false);

/// v reads one message from every in-channel (the REO / REF f=1 shape).
ActivationStep read_every_one_step(const spp::Instance& instance, NodeId v);

/// Single-node step from explicit ReadSpecs.
ActivationStep make_step(NodeId v, std::vector<ReadSpec> reads);

/// Multi-node step from explicit ReadSpecs (Ex. A.6 extension).
ActivationStep make_multi_step(std::vector<NodeId> nodes,
                               std::vector<ReadSpec> reads);

}  // namespace commroute::model
