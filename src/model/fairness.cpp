#include "model/fairness.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace commroute::model {

FairnessMonitor::FairnessMonitor(std::size_t channel_count)
    : channels_(channel_count) {}

void FairnessMonitor::begin_step() { ++step_; }

void FairnessMonitor::attempt(ChannelIdx c) {
  CR_REQUIRE(c < channels_.size(), "channel out of range");
  PerChannel& pc = channels_[c];
  const std::uint64_t gap = step_ - pc.last_attempt;
  pc.max_gap = std::max(pc.max_gap, gap);
  pc.last_attempt = step_;
  ++pc.attempts;
}

void FairnessMonitor::drop(ChannelIdx c) {
  CR_REQUIRE(c < channels_.size(), "channel out of range");
  ++channels_[c].pending_drops;
  ++channels_[c].total_drops;
}

void FairnessMonitor::deliver(ChannelIdx c) {
  CR_REQUIRE(c < channels_.size(), "channel out of range");
  channels_[c].pending_drops = 0;
  ++channels_[c].total_deliveries;
}

bool FairnessMonitor::all_channels_attempted() const {
  return std::all_of(channels_.begin(), channels_.end(),
                     [](const PerChannel& pc) { return pc.attempts > 0; });
}

std::uint64_t FairnessMonitor::max_attempt_gap() const {
  std::uint64_t worst = 0;
  for (const PerChannel& pc : channels_) {
    const std::uint64_t trailing = step_ - pc.last_attempt;
    worst = std::max({worst, pc.max_gap, trailing});
  }
  return worst;
}

std::size_t FairnessMonitor::outstanding_drops() const {
  std::size_t total = 0;
  for (const PerChannel& pc : channels_) {
    total += pc.pending_drops;
  }
  return total;
}

std::string FairnessMonitor::report(const Graph& graph) const {
  std::ostringstream os;
  os << "fairness after " << step_ << " steps: max attempt gap "
     << max_attempt_gap() << ", outstanding drops " << outstanding_drops()
     << "\n";
  for (ChannelIdx c = 0; c < channels_.size(); ++c) {
    const PerChannel& pc = channels_[c];
    os << "  " << graph.channel_name(c) << ": attempts " << pc.attempts
       << ", max gap " << std::max(pc.max_gap, step_ - pc.last_attempt)
       << ", drops " << pc.total_drops << " (" << pc.pending_drops
       << " pending), deliveries " << pc.total_deliveries << "\n";
  }
  return os.str();
}

}  // namespace commroute::model
