// The taxonomy of communication models (Sec. 2.2 of the paper).
//
// A model fixes three dimensions (given that exactly one node updates per
// step, as the paper assumes from Sec. 2.3 onwards):
//   reliability:  R (no message is ever dropped) / U (drops allowed);
//   neighbors:    1 (exactly one channel per activation) /
//                 M (any subset of channels) /
//                 E (every in-channel);
//   messages:     O (exactly one message per processed channel) /
//                 S (any number, including zero) /
//                 F (at least one; "forced") /
//                 A (all messages in the channel).
// Names concatenate the dimension symbols: R1O, RMS, UEA, ...
//
// Points of interest (Sec. 2.3): "polling" models are wxA (REA is the one
// used by prior hardness results), "message-passing" models are wxO, and
// the "queueing" models are RMS / UMS.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace commroute::model {

enum class Reliability : std::uint8_t { kReliable = 0, kUnreliable = 1 };
enum class NeighborMode : std::uint8_t { kOne = 0, kMultiple = 1, kEvery = 2 };
enum class MessageMode : std::uint8_t {
  kOne = 0,     // O
  kSome = 1,    // S
  kForced = 2,  // F
  kAll = 3      // A
};

char symbol(Reliability r);
char symbol(NeighborMode n);
char symbol(MessageMode m);

/// One of the 24 communication models.
struct Model {
  Reliability reliability = Reliability::kReliable;
  NeighborMode neighbors = NeighborMode::kOne;
  MessageMode messages = MessageMode::kOne;

  /// Three-letter name, e.g. "RMS".
  std::string name() const;

  /// Parses a three-letter name; throws ParseError on anything else.
  static Model parse(std::string_view name);

  /// Dense index in [0, 24): reliability-major, then message mode in the
  /// paper's row order (O, S, F, A), then neighbor mode (1, M, E). This is
  /// exactly the row order of Figures 3 and 4.
  int index() const;
  static Model from_index(int index);
  static constexpr int kCount = 24;

  /// All 24 models in index() order.
  static const std::vector<Model>& all();

  bool reliable() const { return reliability == Reliability::kReliable; }

  /// "Polling" model: every processed channel is fully drained (wxA).
  bool is_polling() const { return messages == MessageMode::kAll; }

  /// "Message-passing" model: one message per processed channel (wxO).
  bool is_message_passing() const { return messages == MessageMode::kOne; }

  /// "Queueing" model per Sec. 2.3.3: wMS.
  bool is_queueing() const {
    return neighbors == NeighborMode::kMultiple &&
           messages == MessageMode::kSome;
  }

  bool operator==(const Model& o) const {
    return reliability == o.reliability && neighbors == o.neighbors &&
           messages == o.messages;
  }
  bool operator!=(const Model& o) const { return !(*this == o); }
};

}  // namespace commroute::model
