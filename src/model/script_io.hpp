// Text serialization of activation scripts.
//
// One step per line; a step is `U | reads`, where U is a comma-separated
// node list and each read is `channel_from->channel_to f=<n|inf>
// [g={i,j,..}]`:
//
//   d | x->d f=1
//   x | d->x f=inf
//   x,y | d->x f=inf ; d->y f=inf          # multi-node step
//   u | v->u f=2 g={1}                     # unreliable read
//
// Comments with '#', blank lines ignored. Round-trips with
// format_script; used by commroute_sim --replay and for persisting
// checker-discovered oscillation witnesses.
#pragma once

#include <string>

#include "model/activation.hpp"

namespace commroute::model {

/// Parses a script; throws ParseError with line numbers on bad input and
/// PreconditionError if a step fails structural validation.
ActivationScript parse_script(const spp::Instance& instance,
                              const std::string& text);

/// Formats a script in the syntax above.
std::string format_script(const spp::Instance& instance,
                          const ActivationScript& script);

}  // namespace commroute::model
