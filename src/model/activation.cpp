#include "model/activation.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "support/error.hpp"

namespace commroute::model {

NodeId ActivationStep::node() const {
  CR_REQUIRE(nodes.size() == 1,
             "ActivationStep::node() on a multi-node step");
  return nodes.front();
}

std::string ActivationStep::to_string(const spp::Instance& instance) const {
  const Graph& g = instance.graph();
  std::ostringstream os;
  os << "U={";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    os << (i ? "," : "") << g.name(nodes[i]);
  }
  os << "} X={";
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const ReadSpec& r = reads[i];
    os << (i ? ", " : "") << g.channel_name(r.channel) << " f=";
    if (r.count.has_value()) {
      os << *r.count;
    } else {
      os << "inf";
    }
    if (!r.drops.empty()) {
      os << " g={";
      for (std::size_t j = 0; j < r.drops.size(); ++j) {
        os << (j ? "," : "") << r.drops[j];
      }
      os << "}";
    }
  }
  os << "}";
  return os.str();
}

void validate_step(const spp::Instance& instance,
                   const ActivationStep& step) {
  const Graph& g = instance.graph();
  CR_REQUIRE(!step.nodes.empty(), "U must be non-empty");
  CR_REQUIRE(std::is_sorted(step.nodes.begin(), step.nodes.end()) &&
                 std::adjacent_find(step.nodes.begin(), step.nodes.end()) ==
                     step.nodes.end(),
             "U must be sorted and duplicate-free");
  for (const NodeId v : step.nodes) {
    CR_REQUIRE(v < g.node_count(), "updating node out of range");
  }

  std::unordered_set<ChannelIdx> seen;
  for (const ReadSpec& r : step.reads) {
    CR_REQUIRE(r.channel < g.channel_count(), "channel out of range");
    CR_REQUIRE(seen.insert(r.channel).second,
               "duplicate channel in X: " + g.channel_name(r.channel));
    const ChannelId id = g.channel_id(r.channel);
    CR_REQUIRE(std::binary_search(step.nodes.begin(), step.nodes.end(),
                                  id.to),
               "receiving end of " + g.channel_name(r.channel) +
                   " is not updating");
    CR_REQUIRE(std::is_sorted(r.drops.begin(), r.drops.end()) &&
                   std::adjacent_find(r.drops.begin(), r.drops.end()) ==
                       r.drops.end(),
               "g must be sorted and duplicate-free");
    for (const std::uint32_t idx : r.drops) {
      CR_REQUIRE(idx >= 1, "drop indices are 1-based");
    }
    if (r.count.has_value()) {
      if (*r.count == 0) {
        CR_REQUIRE(r.drops.empty(), "g must be empty when f = 0");
      } else {
        CR_REQUIRE(r.drops.empty() || r.drops.back() <= *r.count,
                   "g must be contained in {1..f}");
      }
    }
  }
}

namespace {

bool fail(std::string* why, const std::string& message) {
  if (why != nullptr) {
    *why = message;
  }
  return false;
}

}  // namespace

bool step_allowed(const Model& m, const spp::Instance& instance,
                  const ActivationStep& step, std::string* why,
                  bool require_single_node) {
  validate_step(instance, step);
  const Graph& g = instance.graph();

  if (require_single_node && step.nodes.size() != 1) {
    return fail(why, "taxonomy models require exactly one updating node");
  }

  // Reliability.
  if (m.reliability == Reliability::kReliable) {
    for (const ReadSpec& r : step.reads) {
      if (!r.drops.empty()) {
        return fail(why, "reliable models never drop messages (channel " +
                             g.channel_name(r.channel) + ")");
      }
    }
  }

  // Group read channels per updating node.
  for (const NodeId v : step.nodes) {
    std::size_t read_count = 0;
    for (const ReadSpec& r : step.reads) {
      if (g.channel_id(r.channel).to == v) {
        ++read_count;
      }
    }
    switch (m.neighbors) {
      case NeighborMode::kOne:
        if (read_count != 1) {
          return fail(why, "model " + m.name() + " requires node " +
                               g.name(v) + " to process exactly one channel");
        }
        break;
      case NeighborMode::kEvery:
        if (read_count != g.in_channels(v).size()) {
          return fail(why, "model " + m.name() + " requires node " +
                               g.name(v) + " to process every channel");
        }
        break;
      case NeighborMode::kMultiple:
        break;  // any subset, including none
    }
  }

  // Message mode per read.
  for (const ReadSpec& r : step.reads) {
    switch (m.messages) {
      case MessageMode::kOne:
        if (!r.count.has_value() || *r.count != 1) {
          return fail(why, "model " + m.name() +
                               " requires f = 1 on every processed channel");
        }
        break;
      case MessageMode::kAll:
        if (r.count.has_value()) {
          return fail(why, "model " + m.name() +
                               " requires f = all on every processed channel");
        }
        break;
      case MessageMode::kForced:
        if (r.count.has_value() && *r.count == 0) {
          return fail(why, "model " + m.name() +
                               " requires f >= 1 on every processed channel");
        }
        break;
      case MessageMode::kSome:
        break;  // unrestricted
    }
  }
  return true;
}

void require_step_allowed(const Model& m, const spp::Instance& instance,
                          const ActivationStep& step,
                          bool require_single_node) {
  std::string why;
  if (!step_allowed(m, instance, step, &why, require_single_node)) {
    throw PreconditionError("step not allowed in " + m.name() + ": " + why +
                            " [" + step.to_string(instance) + "]");
  }
}

ActivationStep poll_all_step(const spp::Instance& instance, NodeId v) {
  ActivationStep step;
  step.nodes = {v};
  for (const ChannelIdx c : instance.graph().in_channels(v)) {
    step.reads.push_back(ReadSpec{c, std::nullopt, {}});
  }
  return step;
}

ActivationStep poll_one_step(const spp::Instance& instance, NodeId v,
                             NodeId u) {
  ActivationStep step;
  step.nodes = {v};
  step.reads.push_back(
      ReadSpec{instance.graph().channel(u, v), std::nullopt, {}});
  return step;
}

ActivationStep read_one_step(const spp::Instance& instance, NodeId v,
                             NodeId u, bool drop) {
  ActivationStep step;
  step.nodes = {v};
  ReadSpec r{instance.graph().channel(u, v), 1u, {}};
  if (drop) {
    r.drops = {1};
  }
  step.reads.push_back(std::move(r));
  return step;
}

ActivationStep read_every_one_step(const spp::Instance& instance, NodeId v) {
  ActivationStep step;
  step.nodes = {v};
  for (const ChannelIdx c : instance.graph().in_channels(v)) {
    step.reads.push_back(ReadSpec{c, 1u, {}});
  }
  return step;
}

ActivationStep make_step(NodeId v, std::vector<ReadSpec> reads) {
  ActivationStep step;
  step.nodes = {v};
  step.reads = std::move(reads);
  return step;
}

ActivationStep make_multi_step(std::vector<NodeId> nodes,
                               std::vector<ReadSpec> reads) {
  ActivationStep step;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  step.nodes = std::move(nodes);
  step.reads = std::move(reads);
  return step;
}

}  // namespace commroute::model
