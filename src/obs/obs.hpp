// The instrumentation handle threaded through the hot loops (engine run,
// checker exploration, campaign driver). Both members are optional:
// detached (the default) must cost nothing, so instrumented code guards
// every metric publish and event emit on the raw pointers and keeps its
// per-iteration counters in plain locals.
#pragma once

#include <string>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace commroute::obs {

struct Instrumentation {
  Registry* metrics = nullptr;
  EventSink* sink = nullptr;

  bool attached() const { return metrics != nullptr || sink != nullptr; }

  /// Forwards to the sink when one is attached. Prefer checking `sink`
  /// before *building* an Event; this is for pre-built events.
  void emit(const Event& event) const {
    if (sink != nullptr) {
      sink->emit(event);
    }
  }

  /// Registry accessors that tolerate a detached handle (nullptr out).
  Counter* counter(const std::string& name) const {
    return metrics != nullptr ? &metrics->counter(name) : nullptr;
  }
  Gauge* gauge(const std::string& name) const {
    return metrics != nullptr ? &metrics->gauge(name) : nullptr;
  }
};

}  // namespace commroute::obs
