// The instrumentation handle threaded through the hot loops (engine run,
// checker exploration, campaign driver). All three members are optional:
// detached (the default) must cost nothing, so instrumented code guards
// every metric publish, event emit, and span begin on the raw pointers
// and keeps its per-iteration counters in plain locals.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"

namespace commroute::obs {

struct Instrumentation {
  Registry* metrics = nullptr;
  EventSink* sink = nullptr;
  SpanCollector* spans = nullptr;

  bool attached() const {
    return metrics != nullptr || sink != nullptr || spans != nullptr;
  }

  /// Forwards to the sink when one is attached. Prefer checking `sink`
  /// before *building* an Event; this is for pre-built events.
  void emit(const Event& event) const {
    if (sink != nullptr) {
      sink->emit(event);
    }
  }

  /// Registry accessors that tolerate a detached handle (nullptr out).
  Counter* counter(const std::string& name) const {
    return metrics != nullptr ? &metrics->counter(name) : nullptr;
  }
  /// `policy` applies on first creation, like Registry::gauge.
  Gauge* gauge(const std::string& name,
               GaugeMerge policy = GaugeMerge::kMax) const {
    return metrics != nullptr ? &metrics->gauge(name, policy) : nullptr;
  }
  /// `bounds` applies on first creation, like Registry::histogram.
  Histogram* histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds) const {
    return metrics != nullptr
               ? &metrics->histogram(name, std::move(bounds))
               : nullptr;
  }

  /// Starts a span when a collector is attached; a disabled no-op span
  /// (no clock read, no allocation) otherwise.
  Span span(std::string_view name) const {
    return spans != nullptr ? spans->begin(name) : Span{};
  }
};

}  // namespace commroute::obs
