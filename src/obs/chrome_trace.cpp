#include "obs/chrome_trace.hpp"

#include <fstream>
#include <istream>

#include "support/error.hpp"

namespace commroute::obs {

namespace {

/// {"id":...,"parent":...} merged with the span's own attributes.
std::string span_args(std::uint32_t id, std::uint32_t parent,
                      const std::string& attrs_json) {
  JsonWriter args;
  args.field("id", static_cast<std::uint64_t>(id))
      .field("parent", static_cast<std::uint64_t>(parent));
  std::string out = args.str();
  if (attrs_json.size() > 2) {  // more than "{}"
    out.pop_back();
    out += ',';
    out.append(attrs_json, 1, attrs_json.size() - 1);
  }
  return out;
}

std::string complete_slice(const std::string& name, std::uint64_t ts,
                           std::uint64_t dur, std::uint32_t tid,
                           const std::string& args_json) {
  JsonWriter w;
  w.field("name", name)
      .field("cat", "commroute")
      .field("ph", "X")
      .field("ts", ts)
      .field("dur", dur)
      .field("pid", 1)
      .field("tid", static_cast<std::uint64_t>(tid));
  w.raw_field("args", args_json);
  return w.str();
}

std::string assemble(const std::vector<std::string>& events) {
  std::string body =
      R"({"name":"process_name","ph":"M","pid":1,"tid":0,)"
      R"("args":{"name":"commroute"}})";
  for (const std::string& event : events) {
    body += ',';
    body += event;
  }
  JsonWriter top;
  top.raw_field("traceEvents", "[" + body + "]");
  top.field("displayTimeUnit", "ms");
  return top.str();
}

}  // namespace

std::string chrome_trace_json(const SpanCollector& collector) {
  std::vector<std::string> events;
  for (const SpanRecord& rec : collector.snapshot()) {
    events.push_back(complete_slice(
        rec.name, rec.start_us, rec.dur_us, rec.tid,
        span_args(rec.id, rec.parent, rec.args_json)));
  }
  return assemble(events);
}

void write_chrome_trace(const SpanCollector& collector,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  CR_REQUIRE(out.is_open(), "cannot write " + path);
  out << chrome_trace_json(collector) << "\n";
}

JsonlConversion chrome_trace_from_jsonl(std::istream& in) {
  JsonlConversion result;
  std::vector<std::string> events;
  std::uint64_t fallback_ts = 0;  ///< synthetic clock for untimed events
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const auto parsed = json_parse(line);
    if (!parsed.has_value() || !parsed->is_object()) {
      ++result.skipped;
      continue;
    }
    const JsonValue* type = parsed->find("type");
    const std::string name =
        (type != nullptr && type->is_string()) ? type->as_string() : "event";

    if (name == "span") {
      const JsonValue* ts = parsed->find("ts_us");
      const JsonValue* dur = parsed->find("dur_us");
      const JsonValue* tid = parsed->find("tid");
      const JsonValue* id = parsed->find("id");
      const JsonValue* parent = parsed->find("parent");
      const JsonValue* span_name = parsed->find("name");
      if (ts == nullptr || !ts->is_number() || dur == nullptr ||
          !dur->is_number() || span_name == nullptr ||
          !span_name->is_string()) {
        ++result.skipped;
        continue;
      }
      const JsonValue* attrs = parsed->find("args");
      events.push_back(complete_slice(
          span_name->as_string(),
          static_cast<std::uint64_t>(ts->as_number()),
          static_cast<std::uint64_t>(dur->as_number()),
          (tid != nullptr && tid->is_number())
              ? static_cast<std::uint32_t>(tid->as_number())
              : 0,
          span_args((id != nullptr && id->is_number())
                        ? static_cast<std::uint32_t>(id->as_number())
                        : 0,
                    (parent != nullptr && parent->is_number())
                        ? static_cast<std::uint32_t>(parent->as_number())
                        : 0,
                    (attrs != nullptr && attrs->is_object())
                        ? json_render(*attrs)
                        : std::string())));
      ++result.events;
      continue;
    }

    // Any other event becomes an instant mark; heartbeats carry their
    // own position (elapsed_ms), everything else ticks a synthetic
    // per-line clock so ordering survives.
    const JsonValue* elapsed = parsed->find("elapsed_ms");
    const std::uint64_t ts =
        (elapsed != nullptr && elapsed->is_number())
            ? static_cast<std::uint64_t>(elapsed->as_number() * 1000.0)
            : fallback_ts++;
    JsonWriter args;
    for (const auto& [key, value] : parsed->as_object()) {
      if (key != "type") {
        args.raw_field(key, json_render(value));
      }
    }
    JsonWriter w;
    w.field("name", name)
        .field("cat", "commroute")
        .field("ph", "i")
        .field("s", "t")
        .field("ts", ts)
        .field("pid", 1)
        .field("tid", 0);
    w.raw_field("args", args.str());
    events.push_back(w.str());
    ++result.events;
  }
  result.trace_json = assemble(events);
  return result;
}

}  // namespace commroute::obs
