#include "obs/chrome_trace.hpp"

#include <fstream>
#include <istream>
#include <set>
#include <unordered_map>

#include "obs/causality.hpp"
#include "support/error.hpp"

namespace commroute::obs {

namespace {

/// {"id":...,"parent":...} merged with the span's own attributes.
std::string span_args(std::uint32_t id, std::uint32_t parent,
                      const std::string& attrs_json) {
  JsonWriter args;
  args.field("id", static_cast<std::uint64_t>(id))
      .field("parent", static_cast<std::uint64_t>(parent));
  std::string out = args.str();
  if (attrs_json.size() > 2) {  // more than "{}"
    out.pop_back();
    out += ',';
    out.append(attrs_json, 1, attrs_json.size() - 1);
  }
  return out;
}

std::string complete_slice(const std::string& name, std::uint64_t ts,
                           std::uint64_t dur, std::uint32_t tid,
                           const std::string& args_json) {
  JsonWriter w;
  w.field("name", name)
      .field("cat", "commroute")
      .field("ph", "X")
      .field("ts", ts)
      .field("dur", dur)
      .field("pid", 1)
      .field("tid", static_cast<std::uint64_t>(tid));
  w.raw_field("args", args_json);
  return w.str();
}

/// Perfetto metadata ("M") record naming a process or thread track.
std::string name_metadata(const char* what, std::uint32_t tid,
                          const std::string& name) {
  JsonWriter w;
  w.field("name", what).field("ph", "M").field("pid", 1);
  w.field("tid", static_cast<std::uint64_t>(tid));
  JsonWriter args;
  args.field("name", name);
  w.raw_field("args", args.str());
  return w.str();
}

std::string assemble(const std::vector<std::string>& events,
                     const std::set<std::uint32_t>& tids) {
  std::string body = name_metadata("process_name", 0, "commroute");
  // Track labels: tid 0 is the calling thread, higher tids are the dense
  // first-use numbers SpanCollector hands to campaign workers.
  for (const std::uint32_t tid : tids) {
    body += ',';
    body += name_metadata("thread_name", tid,
                          tid == 0 ? "main" : "worker-" + std::to_string(tid));
  }
  for (const std::string& event : events) {
    body += ',';
    body += event;
  }
  JsonWriter top;
  top.raw_field("traceEvents", "[" + body + "]");
  top.field("displayTimeUnit", "ms");
  return top.str();
}

/// Flow endpoint ("s" start / "f" finish) tying causal arrows to slices.
std::string flow_event(const char* ph, std::uint64_t id,
                       const std::string& name, std::uint64_t ts,
                       std::uint32_t tid) {
  JsonWriter w;
  w.field("name", name)
      .field("cat", "causal")
      .field("ph", ph)
      .field("id", id)
      .field("ts", ts)
      .field("pid", 1)
      .field("tid", static_cast<std::uint64_t>(tid));
  if (ph[0] == 'f') {
    w.field("bp", "e");  // bind to the enclosing slice
  }
  return w.str();
}

/// Step number an "engine.step" slice carries in its attrs, or nullopt.
std::optional<std::uint64_t> slice_step(const SpanRecord& rec) {
  if (rec.name != "engine.step") {
    return std::nullopt;
  }
  const auto parsed = json_parse(rec.args_json);
  if (!parsed.has_value() || !parsed->is_object()) {
    return std::nullopt;
  }
  const JsonValue* step = parsed->find("step");
  if (step == nullptr || !step->is_number()) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(step->as_number());
}

std::string render_trace(const SpanCollector& collector,
                         const CausalityGraph* graph) {
  const std::vector<SpanRecord> records = collector.snapshot();
  std::vector<std::string> events;
  std::set<std::uint32_t> tids;
  // First occurrence wins when several runs share the collector: flows
  // would be ambiguous across repeated step numbers otherwise.
  std::unordered_map<std::uint64_t, const SpanRecord*> step_slices;
  for (const SpanRecord& rec : records) {
    tids.insert(rec.tid);
    events.push_back(complete_slice(
        rec.name, rec.start_us, rec.dur_us, rec.tid,
        span_args(rec.id, rec.parent, rec.args_json)));
    if (graph != nullptr) {
      if (const auto step = slice_step(rec); step.has_value()) {
        step_slices.emplace(*step, &rec);
      }
    }
  }
  if (graph != nullptr) {
    const auto& activations = graph->activations();
    for (std::size_t i = 0; i < graph->messages().size(); ++i) {
      const CausalMessage& m = graph->messages()[i];
      if (m.sender == kNoCausalIndex || m.consumer == kNoCausalIndex) {
        continue;  // unknown origin or still in flight: nothing to draw
      }
      const auto send = step_slices.find(activations[m.sender].step);
      const auto consume = step_slices.find(activations[m.consumer].step);
      if (send == step_slices.end() || consume == step_slices.end()) {
        continue;  // step not traced (sampled or foreign collector)
      }
      const std::string& name = graph->channel_name(m.channel);
      events.push_back(flow_event(
          "s", i, name, send->second->start_us + send->second->dur_us,
          send->second->tid));
      events.push_back(flow_event("f", i, name, consume->second->start_us,
                                  consume->second->tid));
    }
  }
  return assemble(events, tids);
}

}  // namespace

std::string chrome_trace_json(const SpanCollector& collector) {
  return render_trace(collector, nullptr);
}

std::string chrome_trace_json(const SpanCollector& collector,
                              const CausalityGraph& graph) {
  return render_trace(collector, &graph);
}

void write_chrome_trace(const SpanCollector& collector,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  CR_REQUIRE(out.is_open(), "cannot write " + path);
  out << chrome_trace_json(collector) << "\n";
}

JsonlConversion chrome_trace_from_jsonl(std::istream& in) {
  JsonlConversion result;
  std::vector<std::string> events;
  std::set<std::uint32_t> tids;
  std::uint64_t fallback_ts = 0;  ///< synthetic clock for untimed events
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const auto parsed = json_parse(line);
    if (!parsed.has_value() || !parsed->is_object()) {
      ++result.skipped;
      continue;
    }
    const JsonValue* type = parsed->find("type");
    const std::string name =
        (type != nullptr && type->is_string()) ? type->as_string() : "event";

    if (name == "span") {
      const JsonValue* ts = parsed->find("ts_us");
      const JsonValue* dur = parsed->find("dur_us");
      const JsonValue* tid = parsed->find("tid");
      const JsonValue* id = parsed->find("id");
      const JsonValue* parent = parsed->find("parent");
      const JsonValue* span_name = parsed->find("name");
      if (ts == nullptr || !ts->is_number() || dur == nullptr ||
          !dur->is_number() || span_name == nullptr ||
          !span_name->is_string()) {
        ++result.skipped;
        continue;
      }
      const JsonValue* attrs = parsed->find("args");
      const std::uint32_t event_tid =
          (tid != nullptr && tid->is_number())
              ? static_cast<std::uint32_t>(tid->as_number())
              : 0;
      tids.insert(event_tid);
      events.push_back(complete_slice(
          span_name->as_string(),
          static_cast<std::uint64_t>(ts->as_number()),
          static_cast<std::uint64_t>(dur->as_number()),
          event_tid,
          span_args((id != nullptr && id->is_number())
                        ? static_cast<std::uint32_t>(id->as_number())
                        : 0,
                    (parent != nullptr && parent->is_number())
                        ? static_cast<std::uint32_t>(parent->as_number())
                        : 0,
                    (attrs != nullptr && attrs->is_object())
                        ? json_render(*attrs)
                        : std::string())));
      ++result.events;
      continue;
    }

    // Any other event becomes an instant mark; heartbeats carry their
    // own position (elapsed_ms), everything else ticks a synthetic
    // per-line clock so ordering survives.
    const JsonValue* elapsed = parsed->find("elapsed_ms");
    const std::uint64_t ts =
        (elapsed != nullptr && elapsed->is_number())
            ? static_cast<std::uint64_t>(elapsed->as_number() * 1000.0)
            : fallback_ts++;
    JsonWriter args;
    for (const auto& [key, value] : parsed->as_object()) {
      if (key != "type") {
        args.raw_field(key, json_render(value));
      }
    }
    JsonWriter w;
    w.field("name", name)
        .field("cat", "commroute")
        .field("ph", "i")
        .field("s", "t")
        .field("ts", ts)
        .field("pid", 1)
        .field("tid", 0);
    w.raw_field("args", args.str());
    events.push_back(w.str());
    tids.insert(0);
    ++result.events;
  }
  result.trace_json = assemble(events, tids);
  return result;
}

}  // namespace commroute::obs
