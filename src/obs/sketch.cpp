#include "obs/sketch.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace commroute::obs {

namespace {

/// splitmix64 finalizer: the priority mixer behind ReservoirSample.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// floor(log2(v)) for v > 0.
unsigned floor_log2(std::uint64_t v) {
  unsigned e = 0;
  while (v >>= 1) {
    ++e;
  }
  return e;
}

}  // namespace

std::string to_string(ObsBudget budget) {
  switch (budget) {
    case ObsBudget::kFull:
      return "full";
    case ObsBudget::kSketched:
      return "sketched";
  }
  throw InvariantError("bad ObsBudget");
}

// ---- LogHistogram --------------------------------------------------------

LogHistogram::LogHistogram(unsigned precision_bits) : bits_(precision_bits) {
  CR_REQUIRE(precision_bits >= 1 && precision_bits <= 16,
             "LogHistogram precision_bits must be in [1, 16]");
}

std::uint32_t LogHistogram::bucket_index(std::uint64_t v) const {
  // Values below 2^bits are their own (exact) bucket. Above, group by
  // the top bits_+1 significant bits: with e = floor(log2 v) >= bits_,
  // the bucket spans 2^(e-bits_) consecutive values.
  const std::uint64_t exact = 1ULL << bits_;
  if (v < exact) {
    return static_cast<std::uint32_t>(v);
  }
  const unsigned e = floor_log2(v);
  const unsigned shift = e - bits_;
  const std::uint64_t sub = (v >> shift) - exact;
  return static_cast<std::uint32_t>(
      exact + (static_cast<std::uint64_t>(shift) << bits_) + sub);
}

std::uint64_t LogHistogram::bucket_upper(std::uint32_t index) const {
  const std::uint64_t exact = 1ULL << bits_;
  if (index < exact) {
    return index;
  }
  const std::uint64_t r = index - exact;
  const unsigned shift = static_cast<unsigned>(r >> bits_);
  const std::uint64_t sub = r & (exact - 1);
  const std::uint64_t lower = (exact + sub) << shift;
  return lower + ((1ULL << shift) - 1);
}

void LogHistogram::observe(std::uint64_t v) {
  ++buckets_[bucket_index(v)];
  ++count_;
  sum_ += v;
  if (count_ == 1 || v < min_) {
    min_ = v;
  }
  if (v > max_) {
    max_ = v;
  }
}

void LogHistogram::merge_from(const LogHistogram& other) {
  CR_REQUIRE(bits_ == other.bits_,
             "LogHistogram::merge_from requires identical precision");
  for (const auto& [index, n] : other.buckets_) {
    buckets_[index] += n;
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (const auto& [index, n] : buckets_) {
    cum += n;
    if (cum >= rank) {
      return std::min(bucket_upper(index), max_);
    }
  }
  return max_;
}

std::uint64_t LogHistogram::estimated_bytes() const {
  return static_cast<std::uint64_t>(buckets_.size()) *
             (sizeof(std::uint32_t) + sizeof(std::uint64_t)) +
         sizeof(LogHistogram);
}

std::string LogHistogram::to_json() const {
  JsonWriter w;
  w.field("precision_bits", static_cast<std::uint64_t>(bits_))
      .field("count", count_)
      .field("sum", sum_)
      .field("min", min())
      .field("max", max_)
      .field("p50", quantile(0.50))
      .field("p90", quantile(0.90))
      .field("p99", quantile(0.99))
      .field("buckets", static_cast<std::uint64_t>(buckets_.size()));
  return w.str();
}

// ---- TopK ----------------------------------------------------------------

TopK::TopK(std::size_t capacity) : capacity_(capacity) {
  CR_REQUIRE(capacity > 0, "TopK capacity must be positive");
}

void TopK::add(std::uint64_t key, std::uint64_t weight) {
  total_ += weight;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.count += weight;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.emplace(key, Cell{weight, 0});
    return;
  }
  // Space-saving replacement: evict the minimum-count entry (ties break
  // toward the largest key — smaller keys stay stable) and inherit its
  // count as the new entry's error bound.
  auto victim = entries_.begin();
  for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
    if (cand->second.count < victim->second.count ||
        (cand->second.count == victim->second.count &&
         cand->first > victim->first)) {
      victim = cand;
    }
  }
  const std::uint64_t floor = victim->second.count;
  entries_.erase(victim);
  entries_.emplace(key, Cell{floor + weight, floor});
}

void TopK::prune() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.begin();
    for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
      if (cand->second.count < victim->second.count ||
          (cand->second.count == victim->second.count &&
           cand->first > victim->first)) {
        victim = cand;
      }
    }
    entries_.erase(victim);
  }
}

void TopK::merge_from(const TopK& other) {
  CR_REQUIRE(capacity_ == other.capacity_,
             "TopK::merge_from requires identical capacity");
  total_ += other.total_;
  for (const auto& [key, cell] : other.entries_) {
    Cell& mine = entries_[key];
    mine.count += cell.count;
    mine.error += cell.error;
  }
  prune();
}

std::vector<TopK::Entry> TopK::top() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, cell] : entries_) {
    out.push_back(Entry{key, cell.count, cell.error});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return a.key < b.key;
  });
  return out;
}

std::uint64_t TopK::estimated_bytes() const {
  return static_cast<std::uint64_t>(entries_.size()) *
             (sizeof(std::uint64_t) + sizeof(Cell)) +
         sizeof(TopK);
}

std::string TopK::to_json() const {
  std::string entries = "[";
  bool first = true;
  for (const Entry& e : top()) {
    if (!first) {
      entries += ',';
    }
    first = false;
    JsonWriter w;
    w.field("key", e.key).field("count", e.count).field("error", e.error);
    entries += w.str();
  }
  entries += ']';
  JsonWriter w;
  w.field("capacity", static_cast<std::uint64_t>(capacity_))
      .field("total", total_);
  w.raw_field("entries", entries);
  return w.str();
}

// ---- ReservoirSample -----------------------------------------------------

namespace {

/// Heap order for the bottom-k reservoir: the *largest* (priority, id,
/// value) tuple sits at the front, ready for eviction.
bool reservoir_less(const ReservoirSample::Item& a,
                    const ReservoirSample::Item& b) {
  if (a.priority != b.priority) {
    return a.priority < b.priority;
  }
  if (a.id != b.id) {
    return a.id < b.id;
  }
  return a.value < b.value;
}

}  // namespace

ReservoirSample::ReservoirSample(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), seed_(seed) {
  CR_REQUIRE(capacity > 0, "ReservoirSample capacity must be positive");
}

void ReservoirSample::insert(Item item) {
  if (heap_.size() < capacity_) {
    heap_.push_back(std::move(item));
    std::push_heap(heap_.begin(), heap_.end(), reservoir_less);
    return;
  }
  if (!reservoir_less(item, heap_.front())) {
    return;  // higher priority than every kept item: not sampled
  }
  std::pop_heap(heap_.begin(), heap_.end(), reservoir_less);
  heap_.back() = std::move(item);
  std::push_heap(heap_.begin(), heap_.end(), reservoir_less);
}

void ReservoirSample::add(std::uint64_t id, std::string value) {
  ++seen_;
  Item item;
  item.id = id;
  item.value = std::move(value);
  item.priority = mix64(seed_ ^ mix64(id));
  insert(std::move(item));
}

void ReservoirSample::merge_from(const ReservoirSample& other) {
  CR_REQUIRE(capacity_ == other.capacity_ && seed_ == other.seed_,
             "ReservoirSample::merge_from requires identical capacity "
             "and seed");
  seen_ += other.seen_;
  for (const Item& item : other.heap_) {
    insert(item);
  }
}

std::vector<ReservoirSample::Item> ReservoirSample::items() const {
  std::vector<Item> out = heap_;
  std::sort(out.begin(), out.end(), [](const Item& a, const Item& b) {
    if (a.id != b.id) {
      return a.id < b.id;
    }
    return a.value < b.value;
  });
  return out;
}

std::uint64_t ReservoirSample::estimated_bytes() const {
  std::uint64_t bytes = sizeof(ReservoirSample);
  for (const Item& item : heap_) {
    bytes += sizeof(Item) + item.value.size();
  }
  return bytes;
}

std::string ReservoirSample::to_json() const {
  std::string items_json = "[";
  bool first = true;
  for (const Item& item : items()) {
    if (!first) {
      items_json += ',';
    }
    first = false;
    JsonWriter w;
    w.field("id", item.id).field("value", item.value);
    items_json += w.str();
  }
  items_json += ']';
  JsonWriter w;
  w.field("capacity", static_cast<std::uint64_t>(capacity_))
      .field("seed", seed_)
      .field("seen", seen_);
  w.raw_field("items", items_json);
  return w.str();
}

}  // namespace commroute::obs
