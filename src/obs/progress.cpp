#include "obs/progress.hpp"

#include <algorithm>
#include <utility>

namespace commroute::obs {

ProgressEstimator::ProgressEstimator(std::string name,
                                     std::string detail_label,
                                     double ewma_alpha)
    : name_(std::move(name)),
      detail_label_(std::move(detail_label)),
      alpha_(ewma_alpha) {}

void ProgressEstimator::update(std::uint64_t done, std::uint64_t total) {
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (updates_ == 0) {
    start_ = now;
    last_ = now;
    last_done_ = done;
  } else if (done > last_done_ && now > last_) {
    const double dt =
        std::chrono::duration<double>(now - last_).count();
    if (dt > 0.0) {
      const double instant =
          static_cast<double>(done - last_done_) / dt;
      rate_per_sec_ = rate_per_sec_ == 0.0
                          ? instant
                          : alpha_ * instant +
                                (1.0 - alpha_) * rate_per_sec_;
      last_ = now;
      last_done_ = done;
    }
  }
  // Monotone: concurrent workers may deliver counts out of order (the
  // campaign sweep calls update(fetch_add(1) + 1) from many threads);
  // a stale smaller count must not roll progress backwards. One
  // estimator therefore serves one task — reuse would freeze it.
  done_ = std::max(done_, done);
  total_ = total;
  ++updates_;
}

void ProgressEstimator::set_detail(std::uint64_t detail) {
  const std::lock_guard<std::mutex> lock(mutex_);
  detail_ = detail;
}

void ProgressEstimator::set_detail_label(std::string label) {
  const std::lock_guard<std::mutex> lock(mutex_);
  detail_label_ = std::move(label);
}

ProgressSnapshot ProgressEstimator::snapshot() const {
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);
  ProgressSnapshot snap;
  snap.name = name_;
  snap.done = done_;
  snap.total = total_;
  snap.updates = updates_;
  snap.detail = detail_;
  snap.detail_label = detail_label_;
  snap.rate_per_sec = rate_per_sec_;
  if (total_ > 0) {
    snap.fraction = std::min(
        1.0, static_cast<double>(done_) / static_cast<double>(total_));
    if (rate_per_sec_ > 0.0 && total_ > done_) {
      snap.eta_ms = static_cast<std::uint64_t>(
          static_cast<double>(total_ - done_) / rate_per_sec_ * 1000.0);
    }
  }
  if (updates_ > 0) {
    snap.elapsed_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now - start_)
            .count());
  }
  return snap;
}

}  // namespace commroute::obs
