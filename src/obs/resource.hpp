// Resource telemetry: the fourth observability pillar next to metrics,
// events, and spans. Three pieces:
//
//   * TrackedBytes — a relaxed-atomic byte counter with a high-watermark,
//     threaded into the expensive data structures (checker seen-set,
//     engine channels, sim event queue) so "how much memory does this
//     exploration take" is a counter read, not a guess. Byte values are
//     *estimates* derived from element counts and sizeof — deterministic
//     across runs and thread counts (they use size(), never capacity(),
//     and never the allocator), which is what lets byte metrics appear
//     in byte-diffed CSV/JSON outputs.
//   * ProcessMemory / read_process_memory() — the OS view: current and
//     peak RSS from /proc/self/status (VmRSS/VmHWM) with a getrusage
//     fallback. Inherently machine-dependent; quarantined to artifacts
//     that already carry wall-clock values (BENCH_*.json metrics,
//     telemetry snapshots).
//   * TelemetrySampler — a background thread emitting periodic
//     "telemetry_snapshot" JSONL events (RSS, registered TrackedBytes
//     gauges, caller probes) to a *dedicated* sink. Off by default and
//     never on the hot path: instrumented code updates the same
//     TrackedBytes counters it would anyway; the sampler only reads.
//
// Determinism quarantine rule (same as wall_ms): snapshots carry
// wall-clock and RSS values, so they must never be routed into an event
// stream that is byte-compared across runs or thread widths — give the
// sampler its own FileSink (see CampaignSpec::telemetry_sink).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hpp"
#include "obs/progress.hpp"

namespace commroute::obs {

/// A byte gauge with high-watermark semantics. Updates are relaxed
/// atomics so a single writer (the instrumented loop) and concurrent
/// readers (the sampler thread, end-of-run reporting) need no lock.
/// Estimates only ever come from element counts, so two runs of the
/// same workload report identical values.
class TrackedBytes {
 public:
  void add(std::uint64_t n) {
    const std::uint64_t now =
        current_.fetch_add(n, std::memory_order_relaxed) + n;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak && !peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  void sub(std::uint64_t n) {
    current_.fetch_sub(n, std::memory_order_relaxed);
  }

  std::uint64_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak() const {
    return peak_.load(std::memory_order_relaxed);
  }

  void reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// Process-level memory as the OS accounts it, in bytes. Zero fields
/// mean "unavailable on this platform" (both sources are Linux-shaped;
/// everything degrades gracefully elsewhere).
struct ProcessMemory {
  std::uint64_t rss_bytes = 0;       ///< VmRSS: resident set right now
  std::uint64_t peak_rss_bytes = 0;  ///< VmHWM / ru_maxrss: lifetime peak
};

/// Reads /proc/self/status (VmRSS, VmHWM); falls back to
/// getrusage(RUSAGE_SELF) for the peak when /proc is unavailable.
ProcessMemory read_process_memory();

/// Background sampler: every `interval_ms` it emits one
/// "telemetry_snapshot" event carrying a monotone `seq`, `elapsed_ms`
/// since start(), process RSS (when enabled), every registered
/// TrackedBytes gauge (as `<name>` / `<name>_peak`), and every probe
/// (as `<name>`). One snapshot is emitted immediately on start(), so
/// even sub-interval runs produce at least one sample.
///
/// Registration must finish before start() (enforced); probes run on
/// the sampler thread and must only read thread-safe state (atomics,
/// mutex-guarded accessors). The sink is written exclusively by the
/// sampler thread between start() and stop() — hand it a dedicated
/// FileSink, not the deterministic event stream (see file comment).
class TelemetrySampler {
 public:
  struct Options {
    std::uint64_t interval_ms = 250;
    bool process_memory = true;  ///< include rss_bytes / peak_rss_bytes
  };

  explicit TelemetrySampler(EventSink& sink);
  TelemetrySampler(EventSink& sink, Options options);
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;
  /// Stops the sampler thread if still running.
  ~TelemetrySampler();

  /// Adds a TrackedBytes gauge to every snapshot. The counter is
  /// borrowed and must outlive the sampler. Must precede start().
  void add_bytes(std::string name, const TrackedBytes* bytes);

  /// Adds a caller-defined probe (queue depth, tasks executed, ...).
  /// Must precede start(); see the thread-safety note above.
  void add_probe(std::string name, std::function<std::uint64_t()> probe);

  /// Adds a progress source: each sampler tick additionally emits one
  /// "progress_snapshot" event (name, done/total, fraction, EWMA rate,
  /// ETA) per registered estimator. The estimator is borrowed, must
  /// outlive the sampler, and must precede start(). Rate/ETA are
  /// wall-clock derived — same quarantine rule as RSS.
  void add_progress(const ProgressEstimator* progress);

  /// Launches the sampler thread and emits the first snapshot.
  void start();

  /// Emits one final snapshot, stops, and joins (idempotent). After
  /// stop() the sink is no longer touched.
  void stop();

  bool running() const { return thread_.joinable(); }

  /// Snapshots emitted so far.
  std::uint64_t snapshots() const {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void emit_snapshot();

  EventSink* sink_;
  Options options_;
  std::vector<std::pair<std::string, const TrackedBytes*>> gauges_;
  std::vector<std::pair<std::string, std::function<std::uint64_t()>>>
      probes_;
  std::vector<const ProgressEstimator*> progress_;
  std::chrono::steady_clock::time_point start_time_{};
  std::atomic<std::uint64_t> seq_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace commroute::obs
