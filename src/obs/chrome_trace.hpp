// Chrome trace-event / Perfetto JSON export. Renders a SpanCollector's
// finished spans (or a JSONL event trace) as one JSON-object-format
// trace document — {"traceEvents":[...]} with complete ("X") slices
// carrying ts/dur in microseconds — that loads directly in
// chrome://tracing and ui.perfetto.dev.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/spans.hpp"

namespace commroute::obs {

/// Renders the collector's finished spans as a Chrome trace-event JSON
/// document. Every span becomes a complete ("X") slice with `ts` and
/// `dur` in microseconds; the span's id/parent/attributes travel in
/// `args` so tooling can rebuild the hierarchy losslessly.
std::string chrome_trace_json(const SpanCollector& collector);

/// Writes chrome_trace_json to `path` (truncates; throws on failure).
void write_chrome_trace(const SpanCollector& collector,
                        const std::string& path);

/// Result of a JSONL -> Chrome trace conversion.
struct JsonlConversion {
  std::string trace_json;
  std::size_t events = 0;   ///< lines converted into trace events
  std::size_t skipped = 0;  ///< malformed or non-object lines dropped
};

/// Converts a JSONL event stream (the obs sink format) into a Chrome
/// trace document. "span" events map losslessly onto "X" slices;
/// every other event becomes an instant ("i") mark, placed at
/// `elapsed_ms` when the event carries one (heartbeats) and on a
/// synthetic per-line timeline otherwise, with all its fields in `args`.
/// Malformed lines are counted and skipped, never fatal.
JsonlConversion chrome_trace_from_jsonl(std::istream& in);

}  // namespace commroute::obs
