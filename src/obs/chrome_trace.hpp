// Chrome trace-event / Perfetto JSON export. Renders a SpanCollector's
// finished spans (or a JSONL event trace) as one JSON-object-format
// trace document — {"traceEvents":[...]} with complete ("X") slices
// carrying ts/dur in microseconds — that loads directly in
// chrome://tracing and ui.perfetto.dev. Every document carries
// process_name/thread_name metadata records so Perfetto labels the
// tracks, and the causality-aware overload adds flow events (causal
// arrows between step slices).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/spans.hpp"

namespace commroute::obs {

class CausalityGraph;

/// Renders the collector's finished spans as a Chrome trace-event JSON
/// document. Every span becomes a complete ("X") slice with `ts` and
/// `dur` in microseconds; the span's id/parent/attributes travel in
/// `args` so tooling can rebuild the hierarchy losslessly.
std::string chrome_trace_json(const SpanCollector& collector);

/// As above, plus Perfetto flow events ("s"/"f" pairs, one per message
/// with both endpoints known) rendering `graph`'s causal arrows between
/// the "engine.step" slices — Perfetto draws each message as an arrow
/// from the step that announced it to the step that consumed it. Slices
/// are matched by their "step" attribute; messages whose steps were not
/// traced are skipped, never fatal.
std::string chrome_trace_json(const SpanCollector& collector,
                              const CausalityGraph& graph);

/// Writes chrome_trace_json to `path` (truncates; throws on failure).
void write_chrome_trace(const SpanCollector& collector,
                        const std::string& path);

/// Result of a JSONL -> Chrome trace conversion.
struct JsonlConversion {
  std::string trace_json;
  std::size_t events = 0;   ///< lines converted into trace events
  std::size_t skipped = 0;  ///< malformed or non-object lines dropped
};

/// Converts a JSONL event stream (the obs sink format) into a Chrome
/// trace document. "span" events map losslessly onto "X" slices;
/// every other event becomes an instant ("i") mark, placed at
/// `elapsed_ms` when the event carries one (heartbeats) and on a
/// synthetic per-line timeline otherwise, with all its fields in `args`.
/// Malformed lines are counted and skipped, never fatal.
JsonlConversion chrome_trace_from_jsonl(std::istream& in);

}  // namespace commroute::obs
