// Hierarchical span tracing for the hot loops: an RAII Span measures one
// named region on the monotonic clock, nests under the innermost span
// still open on the same thread, and carries key/value attributes. A
// thread-safe SpanCollector owns the finished records. Like the rest of
// the obs layer everything is opt-in: a detached span (null collector)
// never reads the clock or allocates, so instrumented code can create
// spans unconditionally through the nullable-handle guard idiom.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/events.hpp"
#include "obs/json.hpp"

namespace commroute::obs {

class SpanCollector;

/// One finished span. `start_us` is measured from the collector's epoch
/// (its construction time), so every record in a collector shares one
/// timeline — exactly what the Chrome trace-event `ts` field wants.
struct SpanRecord {
  std::uint32_t id = 0;      ///< 1-based, unique within the collector
  std::uint32_t parent = 0;  ///< 0 = root span
  std::uint32_t tid = 0;     ///< dense thread number (first-use order)
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::string name;
  std::string args_json;  ///< "{...}" of attributes; "" when none
};

/// RAII measurement of one region. Move-only; records into its collector
/// when finished (explicitly or on destruction). A default-constructed
/// span is disabled: every member is a no-op and elapsed_us() is 0.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  bool enabled() const { return collector_ != nullptr; }

  /// Attaches a key/value attribute (rendered into the record's args
  /// object). No-op when disabled; keys should be unique per span.
  template <typename T>
  Span& attr(std::string_view key, T&& value) {
    if (collector_ != nullptr) {
      args_.field(key, std::forward<T>(value));
      has_args_ = true;
    }
    return *this;
  }

  /// Microseconds since the span started; 0 when disabled or finished.
  std::uint64_t elapsed_us() const;

  /// Records the span into its collector and disables it (idempotent).
  void finish();

 private:
  friend class SpanCollector;
  Span(SpanCollector* collector, std::uint32_t id, std::uint32_t parent,
       std::uint32_t tid, std::chrono::steady_clock::time_point start,
       std::string_view name)
      : collector_(collector),
        id_(id),
        parent_(parent),
        tid_(tid),
        start_(start),
        name_(name) {}

  SpanCollector* collector_ = nullptr;
  std::uint32_t id_ = 0;
  std::uint32_t parent_ = 0;
  std::uint32_t tid_ = 0;
  std::chrono::steady_clock::time_point start_{};
  std::string name_;
  JsonWriter args_;
  bool has_args_ = false;
};

/// Owns finished spans and the per-thread nesting state. begin() and
/// Span::finish() take one mutex each; for the instrumented loops (a few
/// spans per step/expansion, only when attached) this is far below noise.
class SpanCollector {
 public:
  SpanCollector() : epoch_(std::chrono::steady_clock::now()) {}
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Starts a span nested under the calling thread's innermost open span.
  Span begin(std::string_view name);

  /// Copy of all finished records, in finish order.
  std::vector<SpanRecord> snapshot() const;

  /// Appends another collector's *finished* records to this one, with
  /// ids, parents, and tids offset into fresh ranges and timestamps
  /// re-based from `other`'s epoch onto this collector's epoch (so the
  /// merged timeline stays consistent). Parent links between `other`'s
  /// own records are preserved; its roots stay roots. Spans still open
  /// in `other` are not migrated. This is how per-worker span shards
  /// collapse into a campaign-level collector after a parallel sweep.
  void merge_from(const SpanCollector& other);

  /// Number of finished records so far.
  std::size_t size() const;

 private:
  friend class Span;
  void record(Span& span, std::uint64_t dur_us);

  struct ThreadState {
    std::thread::id thread;
    std::uint32_t tid = 0;
    std::vector<std::uint32_t> open;  ///< stack of open span ids
  };
  /// Caller must hold mutex_.
  ThreadState& state_for(std::thread::id thread);

  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint32_t next_id_ = 1;
  std::uint32_t next_tid_ = 0;
  std::vector<ThreadState> threads_;
  std::vector<SpanRecord> records_;
};

/// Nullable-handle guard: a disabled span when `collector` is null, so
/// code without an Instrumentation at hand keeps the zero-cost idiom.
inline Span begin_span(SpanCollector* collector, std::string_view name) {
  return collector != nullptr ? collector->begin(name) : Span{};
}

/// Emits every finished span as one "span" JSONL event (fields: name,
/// id, parent, tid, ts_us, dur_us, args) — the format `commroute-obs
/// convert` maps losslessly onto Chrome trace-event slices.
void spans_to_jsonl(const SpanCollector& collector, EventSink& sink);

}  // namespace commroute::obs
