// Structured event traces: instrumented code builds Events (a type tag
// plus ordered fields) and hands them to an EventSink, which writes one
// JSON object per line (JSONL). Sinks are attached by pointer; a null
// sink means the emitting code skips event construction entirely.
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace commroute::obs {

/// One structured record. The first field is always "type".
class Event {
 public:
  explicit Event(std::string_view type) { writer_.field("type", type); }

  template <typename T>
  Event& field(std::string_view key, T&& value) {
    writer_.field(key, std::forward<T>(value));
    return *this;
  }
  Event& raw_field(std::string_view key, std::string_view json) {
    writer_.raw_field(key, json);
    return *this;
  }

  /// The event as a single-line JSON object (no trailing newline).
  std::string to_json() const { return writer_.str(); }

 private:
  JsonWriter writer_;
};

/// Receives emitted events. Implementations must tolerate high emit
/// rates (heartbeats are periodic, but step traces are per-step).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& event) = 0;
};

/// Writes JSONL to a caller-owned stream, flushing per event so long
/// explorations can be tailed live.
class StreamSink : public EventSink {
 public:
  explicit StreamSink(std::ostream& out) : out_(&out) {}
  void emit(const Event& event) override {
    (*out_) << event.to_json() << '\n';
    out_->flush();
  }

 private:
  std::ostream* out_;
};

/// Owns a JSONL output file (truncates on open; throws on failure).
class FileSink : public EventSink {
 public:
  explicit FileSink(const std::string& path);
  void emit(const Event& event) override {
    out_ << event.to_json() << '\n';
  }

 private:
  std::ofstream out_;
};

/// Collects serialized events in memory (tests and post-hoc export).
class MemorySink : public EventSink {
 public:
  void emit(const Event& event) override {
    lines_.push_back(event.to_json());
  }
  const std::vector<std::string>& lines() const { return lines_; }
  void clear() { lines_.clear(); }

 private:
  std::vector<std::string> lines_;
};

}  // namespace commroute::obs
