// Structured event traces: instrumented code builds Events (a type tag
// plus ordered fields) and hands them to an EventSink, which writes one
// JSON object per line (JSONL). Sinks are attached by pointer; a null
// sink means the emitting code skips event construction entirely.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace commroute::obs {

/// One structured record. The first field is always "type".
class Event {
 public:
  explicit Event(std::string_view type) { writer_.field("type", type); }

  template <typename T>
  Event& field(std::string_view key, T&& value) {
    writer_.field(key, std::forward<T>(value));
    return *this;
  }
  Event& raw_field(std::string_view key, std::string_view json) {
    writer_.raw_field(key, json);
    return *this;
  }

  /// The event as a single-line JSON object (no trailing newline).
  std::string to_json() const { return writer_.str(); }

 private:
  JsonWriter writer_;
};

/// Receives emitted events. Implementations must tolerate high emit
/// rates (heartbeats are periodic, but step traces are per-step).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& event) = 0;
};

/// Writes JSONL to a caller-owned stream. `flush_every = 1` (the
/// default) flushes per event so long explorations can be tailed live;
/// a larger batch turns the per-event syscall into one per N events
/// (the destructor always flushes what is pending, so nothing is lost
/// on orderly shutdown).
class StreamSink : public EventSink {
 public:
  explicit StreamSink(std::ostream& out, std::size_t flush_every = 1)
      : out_(&out), flush_every_(flush_every == 0 ? 1 : flush_every) {}
  ~StreamSink() override { out_->flush(); }
  void emit(const Event& event) override {
    (*out_) << event.to_json() << '\n';
    if (++pending_ >= flush_every_) {
      pending_ = 0;
      out_->flush();
    }
  }

 private:
  std::ostream* out_;
  std::size_t flush_every_;
  std::size_t pending_ = 0;
};

/// Owns a JSONL output file (truncates on open; throws on failure).
/// Flushes every `flush_every` events and on destruction — batched by
/// default because campaign/checker drivers emit rows at syscall-hostile
/// rates. Durable artifacts that must survive a crash mid-run (the
/// flight-recorder recordings) are written whole by
/// trace::save_recording and do not pass through this sink.
class FileSink : public EventSink {
 public:
  explicit FileSink(const std::string& path, std::size_t flush_every = 64);
  ~FileSink() override { out_.flush(); }
  void emit(const Event& event) override {
    out_ << event.to_json() << '\n';
    if (++pending_ >= flush_every_) {
      pending_ = 0;
      out_.flush();
    }
  }

 private:
  std::ofstream out_;
  std::size_t flush_every_;
  std::size_t pending_ = 0;
};

/// Serializing decorator: makes any sink safe to share across worker
/// threads by taking a mutex around every emit. Lines from concurrent
/// emitters interleave whole, never byte-wise. The wrapped sink is
/// borrowed and must outlive the wrapper.
class SynchronizedSink : public EventSink {
 public:
  explicit SynchronizedSink(EventSink& wrapped) : wrapped_(&wrapped) {}
  void emit(const Event& event) override {
    std::lock_guard<std::mutex> lock(mutex_);
    wrapped_->emit(event);
  }

 private:
  EventSink* wrapped_;
  std::mutex mutex_;
};

/// Collects serialized events in memory (tests and post-hoc export).
class MemorySink : public EventSink {
 public:
  void emit(const Event& event) override {
    lines_.push_back(event.to_json());
  }
  const std::vector<std::string>& lines() const { return lines_; }
  void clear() { lines_.clear(); }

 private:
  std::vector<std::string> lines_;
};

}  // namespace commroute::obs
