#include "obs/forensics.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace commroute::obs {

FlapReport flap_timelines(const spp::Instance& instance,
                          const trace::RecordingDoc& doc,
                          const Instrumentation& obs) {
  Span span = obs.span("forensics.flaps");
  FlapReport report;
  report.steps = doc.steps.size();
  report.first_step = doc.meta.first_step;

  const std::size_t n = instance.node_count();
  std::vector<NodeFlapTimeline> nodes(n);
  std::vector<std::vector<Path>> seen(n);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    nodes[v].node = v;
    nodes[v].name = instance.graph().name(v);
    seen[v].push_back(doc.initial.size() > v ? doc.initial[v] : Path());
  }

  const trace::Assignment* prev = &doc.initial;
  for (std::size_t t = 0; t < doc.assignments.size(); ++t) {
    const trace::Assignment& cur = doc.assignments[t];
    const std::uint64_t step = doc.meta.first_step + t;
    for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
      if (cur[v] == (*prev)[v]) {
        continue;
      }
      NodeFlapTimeline& node = nodes[v];
      ++node.changes;
      ++report.total_changes;
      if (cur[v].empty()) {
        ++node.withdrawals;
      }
      if (node.first_change_step == 0) {
        node.first_change_step = step;
      }
      node.last_change_step = step;
      if (std::find(seen[v].begin(), seen[v].end(), cur[v]) ==
          seen[v].end()) {
        seen[v].push_back(cur[v]);
      }
    }
    prev = &cur;
  }
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    nodes[v].distinct_paths = seen[v].size();
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const NodeFlapTimeline& a, const NodeFlapTimeline& b) {
              if (a.changes != b.changes) {
                return a.changes > b.changes;
              }
              return a.node < b.node;
            });
  report.nodes = std::move(nodes);

  if (span.enabled()) {
    span.attr("total_changes", report.total_changes);
  }
  if (obs.metrics != nullptr) {
    obs.metrics->counter("forensics.flap_reports").add();
  }
  return report;
}

namespace {

/// Smallest q dividing `period` such that states[start..start+period)
/// is q-periodic.
std::size_t minimal_period(const std::vector<trace::Assignment>& states,
                           std::size_t start, std::size_t period) {
  for (std::size_t q = 1; q <= period / 2; ++q) {
    if (period % q != 0) {
      continue;
    }
    bool periodic = true;
    for (std::size_t k = q; k < period && periodic; ++k) {
      periodic = states[start + k] == states[start + k % q];
    }
    if (periodic) {
      return q;
    }
  }
  return period;
}

}  // namespace

OscillationCycle extract_cycle(const trace::RecordingDoc& doc,
                               const Instrumentation& obs) {
  Span span = obs.span("forensics.extract_cycle");
  OscillationCycle result;

  // Collapsed sequence plus, per collapsed state, the global step index
  // at which it was entered.
  std::vector<trace::Assignment> collapsed;
  std::vector<std::uint64_t> entered;
  collapsed.push_back(doc.initial);
  entered.push_back(doc.meta.first_step == 0 ? 0 : doc.meta.first_step - 1);
  for (std::size_t t = 0; t < doc.assignments.size(); ++t) {
    if (doc.assignments[t] != collapsed.back()) {
      collapsed.push_back(doc.assignments[t]);
      entered.push_back(doc.meta.first_step + t);
    }
  }
  result.collapsed_states = collapsed.size();

  // Earliest previously-seen state whose period the rest of the sequence
  // keeps: find j with collapsed[j] == collapsed[i], i < j, such that
  // collapsed[k] == collapsed[k - (j - i)] for every k >= j.
  std::map<trace::Assignment, std::size_t> first_seen;
  std::size_t cycle_at = collapsed.size();
  std::size_t raw_period = 0;
  for (std::size_t j = 0; j < collapsed.size(); ++j) {
    const auto [it, inserted] = first_seen.emplace(collapsed[j], j);
    if (inserted) {
      continue;
    }
    const std::size_t i = it->second;
    const std::size_t p = j - i;
    bool sustained = true;
    for (std::size_t k = j; k < collapsed.size() && sustained; ++k) {
      sustained = collapsed[k] == collapsed[k - p];
    }
    if (sustained) {
      cycle_at = i;
      raw_period = p;
      break;
    }
  }
  if (raw_period == 0) {
    if (span.enabled()) {
      span.attr("found", false);
    }
    return result;
  }

  result.found = true;
  result.period = minimal_period(collapsed, cycle_at, raw_period);
  for (std::size_t k = 0; k < result.period; ++k) {
    result.cycle.push_back(collapsed[cycle_at + k]);
    result.witness_steps.push_back(entered[cycle_at + k]);
  }
  result.cycle_start_step = result.witness_steps.front();

  if (span.enabled()) {
    span.attr("found", true)
        .attr("period", static_cast<std::uint64_t>(result.period));
  }
  if (obs.metrics != nullptr) {
    obs.metrics->counter("forensics.cycles_found").add();
  }
  return result;
}

std::vector<ChannelOccupancy> channel_occupancy(
    const spp::Instance& instance, const trace::RecordingDoc& doc,
    const Instrumentation& obs) {
  CR_REQUIRE(!doc.io.empty() || doc.steps.empty(),
             "recording carries no per-step I/O summaries");
  Span span = obs.span("forensics.channel_occupancy");

  const std::size_t channels = instance.graph().channel_count();
  std::vector<ChannelOccupancy> out(channels);
  std::vector<std::size_t> occupancy(channels, 0);
  for (ChannelIdx c = 0; c < static_cast<ChannelIdx>(channels); ++c) {
    out[c].channel = c;
    out[c].name = instance.graph().channel_name(c);
    out[c].series.reserve(doc.io.size());
  }
  for (const trace::StepIo& io : doc.io) {
    // Def. 2.3 order: reads drain channels first, announcements fill
    // them afterwards.
    for (const trace::StepIo::Read& read : io.reads) {
      ChannelOccupancy& ch = out[read.channel];
      ch.processed += read.processed;
      ch.dropped += read.dropped;
      std::size_t& occ = occupancy[read.channel];
      // A ring window starts at unknown occupancy; clamp at zero.
      occ -= std::min<std::size_t>(occ, read.processed);
    }
    for (const ChannelIdx c : io.sent) {
      ++out[c].sent;
      ++occupancy[c];
    }
    for (ChannelIdx c = 0; c < static_cast<ChannelIdx>(channels); ++c) {
      out[c].series.push_back(occupancy[c]);
      out[c].peak = std::max(out[c].peak, occupancy[c]);
    }
  }

  if (span.enabled()) {
    span.attr("channels", static_cast<std::uint64_t>(channels))
        .attr("steps", static_cast<std::uint64_t>(doc.io.size()));
  }
  return out;
}

}  // namespace commroute::obs
