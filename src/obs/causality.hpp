// Causal provenance: the happens-before DAG of one execution.
//
// A run in any of the paper's 24 models is a sequence of activation
// steps (U, X, f, g) (Def. 2.2), and its convergence time is lower-
// bounded by the longest chain of message -> activation -> message
// dependencies — the framing Daggitt & Griffin use for algebraic
// convergence bounds. This module materializes that chain structure:
//
//   * vertices: one CausalActivation per (step, updating node) pair and
//     one CausalMessage per message that entered a channel;
//   * consume edges: every message a step's reads removed from a channel
//     precedes the receiving node's activation (dropped messages
//     included — g decides the drop at the reader, so the send still
//     happens-before the read);
//   * program-order edges: each node's activations are totally ordered;
//   * emit edges: an activation precedes the messages it announces;
//   * adoption edges (data flow, not counted in depth — they are
//     subsumed transitively by consume + program order): the message
//     whose payload became rho(selected_from) and thereby pi(v).
//
// depth(a) = length in activations of the longest dependency chain
// ending at a (roots have depth 1). The critical path to convergence is
// the chain ending at the last activation that changed any assignment;
// its length explains the step count, and under sim::run its virtual
// timestamps make it the provable latency lower bound for that seed.
//
// Graphs come from three sources: online from engine::run
// (RunOptions::causality — the detached path costs one predicted branch
// per step), offline from a complete recording (re-executed
// deterministically), or offline from a ring-buffer window (seeded from
// the recorded per-step I/O; messages already in flight at the window
// edge become unknown-origin vertices and the graph reports itself as
// truncated — every analysis then yields lower bounds, never silently
// wrong values).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "engine/executor.hpp"
#include "model/activation.hpp"
#include "spp/instance.hpp"

namespace commroute::trace {
struct RecordingDoc;
}

namespace commroute::obs {

/// Index of an activation or message vertex within its graph.
using CausalIndex = std::uint32_t;
inline constexpr CausalIndex kNoCausalIndex = static_cast<CausalIndex>(-1);

/// One (step, updating node) vertex.
struct CausalActivation {
  std::uint64_t step = 0;  ///< global 1-based step index
  NodeId node = kNoNode;
  bool changed = false;     ///< pi(node) changed at this step
  std::uint64_t t_us = 0;   ///< virtual time (0 when the run is untimed)
  std::uint64_t depth = 0;  ///< longest chain ending here, in activations
  /// Previous activation of the same node (program order).
  CausalIndex prog_parent = kNoCausalIndex;
  /// Message whose payload furnished the new assignment (data flow);
  /// kNoCausalIndex when the node selected epsilon, is the destination,
  /// or the provenance is unknown (see adoption_unknown).
  CausalIndex adopted = kNoCausalIndex;
  /// True when an adoption edge should exist but cannot be recovered
  /// (rho was set before a truncated window, or the recording predates
  /// the causal fields). root_cause() reports such slices as incomplete.
  bool adoption_unknown = false;
  /// Every message this step's reads removed from channels into `node`,
  /// dropped ones included.
  std::vector<CausalIndex> consumed;
};

/// One message vertex.
struct CausalMessage {
  ChannelIdx channel = kNoChannel;
  /// Activation that announced it; kNoCausalIndex = unknown origin (the
  /// message was already in flight when a truncated window begins).
  CausalIndex sender = kNoCausalIndex;
  CausalIndex consumer = kNoCausalIndex;  ///< kNoCausalIndex = in flight
  std::uint64_t send_step = 0;     ///< 0 = before the recorded window
  std::uint64_t consume_step = 0;  ///< 0 = never consumed
  bool dropped = false;            ///< consumed but dropped by g
  /// Destroyed in flight by an injected fault (session reset / reboot
  /// channel flush) — never consumed, and not "still in flight" either.
  bool flushed = false;
};

/// One injected fault, placed in the execution order (scenario
/// subsystem; online from engine::run's FaultHook or offline from a
/// schema-v3 recording).
struct CausalFault {
  /// Global 1-based index of the first step executed after the fault.
  std::uint64_t before = 1;
  std::string text;  ///< scenario fault syntax, e.g. "session-reset u v"
  std::uint64_t t_us = 0;
};

/// One hop of an extracted chain, root first. `via` is the channel of
/// the message edge arriving from the previous hop (kNoChannel for the
/// root and for program-order hops).
struct CausalLink {
  CausalIndex activation = kNoCausalIndex;
  std::uint64_t step = 0;
  NodeId node = kNoNode;
  std::uint64_t t_us = 0;
  bool changed = false;
  ChannelIdx via = kNoChannel;
};

/// Aggregate view of a graph (what `commroute-obs causality` prints).
struct CausalityStats {
  std::uint64_t activations = 0;
  std::uint64_t messages = 0;
  std::uint64_t consume_edges = 0;
  std::uint64_t program_edges = 0;
  std::uint64_t adoption_edges = 0;
  std::uint64_t emit_edges = 0;  ///< messages with a known sender
  std::uint64_t dropped_messages = 0;
  std::uint64_t in_flight_messages = 0;  ///< never consumed (nor flushed)
  std::uint64_t unknown_origin_messages = 0;
  std::uint64_t faults = 0;            ///< injected fault events
  std::uint64_t flushed_messages = 0;  ///< destroyed in flight by faults
  std::uint64_t roots = 0;  ///< activations with no parent edge
  std::uint64_t max_depth = 0;
  std::uint64_t critical_path_len = 0;
  std::uint64_t critical_path_us = 0;
  bool truncated = false;
  bool timed = false;
};

/// The happens-before DAG of one execution window. Self-contained: node
/// and channel names are copied in, so a graph outlives its instance.
class CausalityGraph {
 public:
  const std::vector<CausalActivation>& activations() const {
    return activations_;
  }
  const std::vector<CausalMessage>& messages() const { return messages_; }
  /// Injected faults in execution order (empty for fault-free runs).
  const std::vector<CausalFault>& faults() const { return faults_; }

  std::size_t node_count() const { return node_names_.size(); }
  const std::string& node_name(NodeId v) const { return node_names_[v]; }
  const std::string& channel_name(ChannelIdx c) const {
    return channel_names_[c];
  }

  /// True when the window does not start at step 1: analyses are lower
  /// bounds (chains may continue past the window edge).
  bool truncated() const { return truncated_; }
  /// True when activations carry virtual timestamps (sim::run source).
  bool timed() const { return timed_; }
  std::uint64_t first_step() const { return first_step_; }
  std::uint64_t unknown_origin_messages() const { return unknown_origin_; }

  /// Length (in activations) of the longest dependency chain ending at
  /// the last assignment-changing activation; 0 when nothing changed.
  /// On truncated graphs this is a lower bound.
  std::uint64_t critical_path_len() const;

  /// Virtual timestamp of the critical path's terminal activation — the
  /// chain's virtual length, since its root is a boot activation at
  /// t = 0. Equals SimResult::last_change_us by construction. 0 when
  /// the graph is untimed or nothing changed.
  std::uint64_t critical_path_us() const;

  /// The critical path itself, root first; empty when nothing changed.
  std::vector<CausalLink> critical_path() const;

  /// Per node v: how many activations are causally reachable from some
  /// activation of v (program-order edges included; an activation counts
  /// its own node). The nodes whose announcements the run's work hinges
  /// on score highest.
  std::vector<std::uint64_t> influence() const;

  /// Root-cause slice: the adoption chain explaining why pi(node) ended
  /// at its final value. `complete` is false when the chain leaves the
  /// recorded window (truncated recording) or adoption provenance is
  /// unavailable; the returned prefix is still valid.
  struct RootCause {
    NodeId node = kNoNode;
    bool complete = true;
    /// Origin first, `node`'s final adoption last. Empty when pi(node)
    /// never changed inside the window.
    std::vector<CausalLink> chain;
  };
  RootCause root_cause(NodeId v) const;

  CausalityStats stats() const;

 private:
  friend class CausalityRecorder;

  CausalIndex terminal() const;
  CausalLink link_for(CausalIndex a, ChannelIdx via) const;

  std::vector<CausalActivation> activations_;
  std::vector<CausalMessage> messages_;
  std::vector<CausalFault> faults_;
  std::vector<std::string> node_names_;
  std::vector<std::string> channel_names_;
  std::uint64_t first_step_ = 1;
  std::uint64_t unknown_origin_ = 0;
  bool truncated_ = false;
  bool timed_ = false;
};

/// Incremental builder: feed it every executed step (in order) with its
/// StepEffect, then take the finished graph. Used online by engine::run
/// and offline by build_causality; both paths produce identical graphs
/// for the same execution.
class CausalityRecorder {
 public:
  /// `first_step` is the global index of the first step that will be
  /// recorded; > 1 marks the graph truncated (ring window).
  explicit CausalityRecorder(const spp::Instance& instance,
                             std::uint64_t first_step = 1);

  /// Declares that NodeEffect::selected_from is not trustworthy for the
  /// fed effects (schema-v1 ring windows): adoption edges are skipped
  /// and changed activations are marked adoption_unknown.
  void set_adoption_unavailable();

  /// Records one executed step. `step_index` is the global 1-based step
  /// number (must advance by exactly 1 per call); `t_us` is the step's
  /// virtual timestamp when the run is timed.
  void record(const model::ActivationStep& step,
              const engine::StepEffect& effect, std::uint64_t step_index,
              std::optional<std::uint64_t> t_us = std::nullopt);

  /// Declares an injected fault happening before the next recorded step.
  /// Call it (plus flush_channel for each channel the fault emptied)
  /// between record() calls, in execution order.
  void record_fault(std::string text, std::uint64_t t_us);

  /// A fault emptied channel c: the mirrored in-flight messages are
  /// marked flushed (they will never be consumed) and the channel's rho
  /// provenance is forgotten — keeping the mirror in lockstep with the
  /// engine channel the fault flushed.
  void flush_channel(ChannelIdx c);

  /// Finalizes and returns the graph; the recorder is spent.
  CausalityGraph finish() &&;

 private:
  const spp::Instance* instance_;
  CausalityGraph graph_;
  bool adoption_available_ = true;
  std::uint64_t next_step_;
  /// Mirror of each channel's queue, as message vertex indices.
  std::vector<std::deque<CausalIndex>> channel_mirror_;
  /// Per channel: message that last set rho (kNoCausalIndex = rho unset
  /// or set before the window).
  std::vector<CausalIndex> rho_provenance_;
  /// Per node: latest activation vertex.
  std::vector<CausalIndex> last_activation_;
  /// Per node scratch: activation vertex within the current step.
  std::vector<CausalIndex> step_activation_;
};

/// Reconstructs the happens-before DAG from a recording. Complete
/// recordings (first_step == 1) are re-executed deterministically, so
/// any loadable recording works — including schema-v1 files. Ring
/// windows are seeded from the recorded per-step I/O instead: messages
/// in flight at the window edge become unknown-origin vertices and the
/// graph is marked truncated; windows recorded before schema v2 lack
/// selection provenance, so adoption edges are unavailable there.
/// Throws PreconditionError for ring windows without I/O fields.
CausalityGraph build_causality(const spp::Instance& instance,
                               const trace::RecordingDoc& doc);

}  // namespace commroute::obs
