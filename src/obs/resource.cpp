#include "obs/resource.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace commroute::obs {
namespace {

#if defined(__linux__)
/// Parses a "VmRSS:   1234 kB" style line; returns bytes or 0.
std::uint64_t parse_status_kb(const char* line) {
  const char* p = std::strchr(line, ':');
  if (p == nullptr) {
    return 0;
  }
  return std::strtoull(p + 1, nullptr, 10) * 1024u;
}
#endif

}  // namespace

ProcessMemory read_process_memory() {
  ProcessMemory mem;
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strncmp(line, "VmRSS:", 6) == 0) {
        mem.rss_bytes = parse_status_kb(line);
      } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
        mem.peak_rss_bytes = parse_status_kb(line);
      }
    }
    std::fclose(f);
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  if (mem.peak_rss_bytes == 0) {
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
      // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
      mem.peak_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss);
#else
      mem.peak_rss_bytes =
          static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
    }
  }
#endif
  return mem;
}

TelemetrySampler::TelemetrySampler(EventSink& sink)
    : TelemetrySampler(sink, Options{}) {}

TelemetrySampler::TelemetrySampler(EventSink& sink, Options options)
    : sink_(&sink), options_(std::move(options)) {}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::add_bytes(std::string name,
                                 const TrackedBytes* bytes) {
  if (running()) {
    throw std::logic_error(
        "TelemetrySampler: register gauges before start()");
  }
  gauges_.emplace_back(std::move(name), bytes);
}

void TelemetrySampler::add_probe(std::string name,
                                 std::function<std::uint64_t()> probe) {
  if (running()) {
    throw std::logic_error(
        "TelemetrySampler: register probes before start()");
  }
  probes_.emplace_back(std::move(name), std::move(probe));
}

void TelemetrySampler::add_progress(const ProgressEstimator* progress) {
  if (running()) {
    throw std::logic_error(
        "TelemetrySampler: register progress sources before start()");
  }
  progress_.push_back(progress);
}

void TelemetrySampler::start() {
  if (running()) {
    return;
  }
  stop_requested_ = false;
  start_time_ = std::chrono::steady_clock::now();
  // First snapshot synchronously, so even a stop() racing the thread
  // launch observes the documented start sample.
  emit_snapshot();
  thread_ = std::thread([this] { loop(); });
}

void TelemetrySampler::stop() {
  if (!running()) {
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Final snapshot so end-of-run state (peaks in particular) is always
  // captured, however short the run.
  emit_snapshot();
}

void TelemetrySampler::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  // start() already emitted the first snapshot; wait one interval
  // before each periodic one so stop() can cut the sequence cleanly
  // (the final snapshot is stop()'s to emit).
  while (!cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                       [this] { return stop_requested_; })) {
    lock.unlock();
    emit_snapshot();
    lock.lock();
  }
}

void TelemetrySampler::emit_snapshot() {
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start_time_)
                           .count();
  Event event("telemetry_snapshot");
  event.field("seq", seq_.fetch_add(1, std::memory_order_relaxed));
  event.field("elapsed_ms", static_cast<std::uint64_t>(elapsed));
  if (options_.process_memory) {
    const ProcessMemory mem = read_process_memory();
    event.field("rss_bytes", mem.rss_bytes);
    event.field("peak_rss_bytes", mem.peak_rss_bytes);
  }
  for (const auto& [name, bytes] : gauges_) {
    event.field(name, bytes->current());
    event.field(name + "_peak", bytes->peak());
  }
  for (const auto& [name, probe] : probes_) {
    event.field(name, probe());
  }
  sink_->emit(event);

  for (const ProgressEstimator* source : progress_) {
    const ProgressSnapshot snap = source->snapshot();
    Event progress("progress_snapshot");
    progress.field("name", snap.name)
        .field("done", snap.done)
        .field("total", snap.total)
        .field("fraction", snap.fraction)
        .field("rate_per_sec", snap.rate_per_sec)
        .field("eta_ms", snap.eta_ms)
        .field("elapsed_ms", snap.elapsed_ms)
        .field("updates", snap.updates);
    if (!snap.detail_label.empty()) {
      progress.field(snap.detail_label, snap.detail);
    }
    sink_->emit(progress);
  }
}

}  // namespace commroute::obs
