// Online progress estimation for the long-running loops: the checker's
// state-space exploration, engine runs against a step budget, and
// campaign sweeps. An instrumented loop owns a ProgressEstimator and
// calls update(done, total) as work completes; a TelemetrySampler
// (obs/resource.hpp) registered via add_progress() reads snapshots on
// its own thread and emits periodic "progress_snapshot" events with
// fraction / rate / ETA into the telemetry side channel.
//
// Like RSS and wall_ms, rate and ETA are wall-clock derived and belong
// only in the telemetry sink, never in a byte-compared event stream.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace commroute::obs {

/// Point-in-time progress view; every field is safe to publish.
struct ProgressSnapshot {
  std::string name;
  std::uint64_t done = 0;
  std::uint64_t total = 0;       ///< 0 = unknown / open-ended
  double fraction = 0.0;         ///< done / total, 0 when total unknown
  double rate_per_sec = 0.0;     ///< EWMA of the completion rate
  std::uint64_t eta_ms = 0;      ///< remaining / rate, 0 when unknown
  std::uint64_t elapsed_ms = 0;  ///< since the first update()
  std::uint64_t updates = 0;     ///< update() calls so far
  std::uint64_t detail = 0;      ///< caller-defined (see detail_label)
  std::string detail_label;      ///< "" when the detail is unused
};

/// Thread-safe progress accumulator. One writer (the instrumented loop)
/// and any number of snapshot readers (the sampler thread); updates are
/// mutex-guarded and cheap enough for a per-batch cadence (the loops
/// update every few hundred iterations, not per step).
///
/// The rate is an exponentially weighted moving average of the
/// instantaneous completion rate between updates, so the ETA adapts to
/// frontier growth or slowdown instead of assuming a constant rate —
/// for the checker this is the "frontier growth-rate fit": done =
/// expanded states, total = expanded + current frontier, a moving
/// coverage bound that converges on the true state count.
class ProgressEstimator {
 public:
  /// `detail_label` names the optional free detail counter (e.g.
  /// "steps_since_change" for engine runs, "frontier" for the checker).
  explicit ProgressEstimator(std::string name,
                             std::string detail_label = "",
                             double ewma_alpha = 0.3);

  const std::string& name() const { return name_; }

  /// Records progress. `total` may move between calls (the checker's
  /// coverage bound grows with the frontier). The first call starts the
  /// elapsed clock.
  void update(std::uint64_t done, std::uint64_t total);

  /// Updates the free detail counter published with each snapshot.
  void set_detail(std::uint64_t detail);

  /// Rewrites the detail label mid-run. Loops that end early use this to
  /// mark *why* — e.g. the checker sets "truncated:state_cap" when a cap
  /// fires with a non-empty frontier, so a snapshot reader can tell a
  /// finished-at-100% run from a truncated one.
  void set_detail_label(std::string label);

  ProgressSnapshot snapshot() const;

 private:
  const std::string name_;
  std::string detail_label_;
  const double alpha_;

  mutable std::mutex mutex_;
  std::uint64_t done_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t detail_ = 0;
  double rate_per_sec_ = 0.0;
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point last_{};
  std::uint64_t last_done_ = 0;
};

}  // namespace commroute::obs
