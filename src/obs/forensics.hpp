// Convergence forensics over recorded executions: per-node route-flap
// timelines, oscillation-cycle extraction on the collapsed pi-sequence,
// and channel-occupancy time series. Works on any RecordingDoc window —
// complete recordings and flight-recorder ring windows alike — which
// makes non-converging runs inspectable after the fact ("BGP Stability
// is Precarious" uses exactly these route-flap timelines as the unit of
// stability analysis).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "spp/instance.hpp"
#include "trace/recording_io.hpp"

namespace commroute::obs {

/// One node's route-flap history over the recorded window.
struct NodeFlapTimeline {
  NodeId node = kNoNode;
  std::string name;
  std::uint64_t changes = 0;      ///< steps where pi_node changed
  std::uint64_t withdrawals = 0;  ///< of those, changes to epsilon
  /// Global step index of the first/last change (0 = never changed).
  std::uint64_t first_change_step = 0;
  std::uint64_t last_change_step = 0;
  /// Distinct pi_node values seen in the window (initial included).
  std::size_t distinct_paths = 0;
};

struct FlapReport {
  std::vector<NodeFlapTimeline> nodes;  ///< by changes desc, then NodeId
  std::uint64_t steps = 0;              ///< recorded window length
  std::uint64_t first_step = 1;
  std::uint64_t total_changes = 0;      ///< sum over nodes
};

/// Route-flap timelines for every node of the instance.
FlapReport flap_timelines(const spp::Instance& instance,
                          const trace::RecordingDoc& doc,
                          const Instrumentation& obs = {});

/// A recurring-state cycle found on the collapsed pi-sequence.
struct OscillationCycle {
  bool found = false;
  std::size_t period = 0;  ///< minimal cycle length, in collapsed states
  /// The recurring distinct assignments, in cycle order starting at the
  /// first re-entered state.
  std::vector<trace::Assignment> cycle;
  /// Global step index at which each cycle state was first entered.
  std::vector<std::uint64_t> witness_steps;
  std::uint64_t cycle_start_step = 0;  ///< first witness step
  std::size_t collapsed_states = 0;    ///< collapsed sequence length
};

/// Extracts the oscillation cycle from the recorded window: finds the
/// earliest repeated collapsed assignment whose period the rest of the
/// sequence keeps (so transient revisits during convergence are
/// rejected), then reduces to the minimal period. Heuristic caveat: a
/// run that converges *onto* a previously visited assignment as its very
/// last collapsed state is indistinguishable from a cycle re-entry in
/// the pi-sequence alone — gate on the recording's outcome metadata when
/// it matters (the CLI does).
OscillationCycle extract_cycle(const trace::RecordingDoc& doc,
                               const Instrumentation& obs = {});

/// One channel's queue-occupancy history across the recorded window,
/// reconstructed from the per-step I/O summaries (sends minus reads).
struct ChannelOccupancy {
  ChannelIdx channel = kNoChannel;
  std::string name;                  ///< "u->v"
  std::vector<std::size_t> series;   ///< occupancy after each step
  std::size_t peak = 0;
  std::uint64_t sent = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
};

/// Occupancy time series for every channel. Requires per-step I/O
/// summaries (throws PreconditionError when the recording has none).
/// For a ring window the series is relative to the (unknown) occupancy
/// at the window start, clamped at zero.
std::vector<ChannelOccupancy> channel_occupancy(
    const spp::Instance& instance, const trace::RecordingDoc& doc,
    const Instrumentation& obs = {});

}  // namespace commroute::obs
