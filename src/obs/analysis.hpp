// Consumers for the observability artifacts: JSONL event-trace
// aggregation, span self-time accounting, and BENCH_<name>.json
// comparison. This is the library core behind the commroute-obs CLI,
// kept here so the logic is unit-testable without spawning processes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/spans.hpp"

namespace commroute::obs {

/// Aggregate of one event type in a JSONL trace.
struct EventTypeSummary {
  std::string type;
  std::uint64_t count = 0;
  std::uint64_t timed = 0;     ///< events that carried a duration
  std::uint64_t total_us = 0;  ///< sum over timed events
  std::uint64_t p50_us = 0;
  std::uint64_t p90_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
};

struct JsonlSummary {
  std::vector<EventTypeSummary> types;  ///< by count, descending
  std::size_t lines = 0;                ///< non-empty lines seen
  std::size_t malformed = 0;            ///< lines that failed to parse
};

/// Aggregates a JSONL event stream per event type. An event contributes
/// latency stats when it carries a duration: `dur_us` (spans), `wall_us`
/// (engine/checker summaries), `wall_ms` (x1000), or a nested
/// `row.wall_ms` (campaign rows). Malformed lines are counted, not fatal.
JsonlSummary summarize_jsonl(std::istream& in);

/// Span records from a JSONL stream ("span" events; others ignored).
std::vector<SpanRecord> spans_from_jsonl(std::istream& in);

/// Span records from a Chrome trace document produced by
/// chrome_trace_json / `commroute-obs convert` ("X" slices; hierarchy
/// restored from args.id/args.parent). Attributes are not recovered.
std::vector<SpanRecord> spans_from_chrome_trace(const JsonValue& doc);

/// Per-name span aggregate. Self time is a span's duration minus its
/// direct children's durations — where time is actually spent.
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;  ///< inclusive
  std::uint64_t self_us = 0;   ///< inclusive minus direct children
  std::uint64_t max_us = 0;    ///< largest single inclusive duration
};

/// Aggregates by span name, sorted by self time descending.
std::vector<SpanStat> span_self_times(
    const std::vector<SpanRecord>& records);

/// One benchmark's baseline-vs-current comparison.
struct BenchDelta {
  std::string name;
  double base_ms = 0.0;
  double current_ms = 0.0;
  double delta_pct = 0.0;  ///< positive = slower than baseline
  bool regression = false;
};

struct BenchDiff {
  std::vector<BenchDelta> deltas;  ///< baseline order
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_current;
  double threshold_pct = 10.0;
  bool regression = false;  ///< any delta beyond the threshold
};

/// Compares two BENCH_<name>.json documents (the bench --json output)
/// benchmark-by-benchmark on real_ms_per_iter. A benchmark regresses
/// when it is more than `threshold_pct` percent slower than baseline.
/// Throws ParseError when either document lacks the bench shape.
BenchDiff bench_diff(const JsonValue& baseline, const JsonValue& current,
                     double threshold_pct);

}  // namespace commroute::obs
