// Consumers for the observability artifacts: JSONL event-trace
// aggregation, span self-time accounting, and BENCH_<name>.json
// comparison. This is the library core behind the commroute-obs CLI,
// kept here so the logic is unit-testable without spawning processes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include <map>
#include <optional>

#include "obs/json.hpp"
#include "obs/sketch.hpp"
#include "obs/spans.hpp"

namespace commroute::obs {

/// Aggregate of one event type in a JSONL trace.
struct EventTypeSummary {
  std::string type;
  std::uint64_t count = 0;
  std::uint64_t timed = 0;     ///< events that carried a duration
  std::uint64_t total_us = 0;  ///< sum over timed events
  std::uint64_t p50_us = 0;
  std::uint64_t p90_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
};

struct JsonlSummary {
  std::vector<EventTypeSummary> types;  ///< by count, descending
  std::size_t lines = 0;                ///< non-empty lines seen
  std::size_t malformed = 0;            ///< lines that failed to parse
};

/// Aggregates a JSONL event stream per event type. An event contributes
/// latency stats when it carries a duration: `dur_us` (spans), `wall_us`
/// (engine/checker summaries), `wall_ms` (x1000), or a nested
/// `row.wall_ms` (campaign rows). Malformed lines are counted, not fatal.
/// Implemented on StreamingSummarizer, so memory stays bounded however
/// long the stream is.
JsonlSummary summarize_jsonl(std::istream& in);

/// Incremental, bounded-memory version of summarize_jsonl: feed lines
/// as they arrive (the `summarize --follow` tail mode), snapshot the
/// summary at any point. Per event type the first kExactCap durations
/// are kept exactly — percentiles then match the historical whole-
/// vector computation byte-for-byte — and everything past the cap
/// spills into a LogHistogram(7), capping memory per type while keeping
/// percentiles within a < 1% documented relative error
/// (LogHistogram::relative_error_bound).
class StreamingSummarizer {
 public:
  /// Exact durations kept per event type before spilling to the sketch.
  static constexpr std::size_t kExactCap = 4096;

  /// Consumes one line (without trailing newline). Empty lines are
  /// ignored; malformed lines are counted, never fatal.
  void add_line(const std::string& line);

  /// add_line for every line of `in` (consumes to EOF; with a cleared
  /// stream the follow mode calls it again for the appended tail).
  void consume(std::istream& in);

  std::size_t lines() const { return lines_; }
  std::size_t malformed() const { return malformed_; }

  /// Current aggregate, identical in shape to summarize_jsonl's.
  JsonlSummary summary() const;

 private:
  struct Acc {
    std::uint64_t count = 0;
    std::uint64_t timed = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
    std::vector<std::uint64_t> exact;      ///< first kExactCap durations
    std::optional<LogHistogram> spill;     ///< the rest, sketched
  };
  std::map<std::string, Acc> by_type_;
  std::size_t lines_ = 0;
  std::size_t malformed_ = 0;
};

/// Span records from a JSONL stream ("span" events; others ignored).
std::vector<SpanRecord> spans_from_jsonl(std::istream& in);

/// Span records from a Chrome trace document produced by
/// chrome_trace_json / `commroute-obs convert` ("X" slices; hierarchy
/// restored from args.id/args.parent). Attributes are not recovered.
std::vector<SpanRecord> spans_from_chrome_trace(const JsonValue& doc);

/// Per-name span aggregate. Self time is a span's duration minus its
/// direct children's durations — where time is actually spent.
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;  ///< inclusive
  std::uint64_t self_us = 0;   ///< inclusive minus direct children
  std::uint64_t max_us = 0;    ///< largest single inclusive duration
};

/// Aggregates by span name, sorted by self time descending.
std::vector<SpanStat> span_self_times(
    const std::vector<SpanRecord>& records);

/// One numeric telemetry_snapshot field tracked over a stream: the last
/// sampled value and the maximum across all snapshots.
struct MemorySeries {
  std::string name;
  std::uint64_t last = 0;
  std::uint64_t peak = 0;
  std::uint64_t samples = 0;
};

/// Memory view of a JSONL stream: every numeric field of
/// "telemetry_snapshot" events (rss_bytes, registered gauges, probes)
/// plus the byte metrics stamped into checker/engine summary events.
struct MemoryReport {
  std::uint64_t snapshots = 0;  ///< telemetry_snapshot events seen
  std::vector<MemorySeries> series;  ///< by name, ascending

  // From checker_summary events (max across events; bytes_per_state
  // from the event with the largest tracked_peak_bytes).
  std::uint64_t checker_summaries = 0;
  std::uint64_t tracked_peak_bytes = 0;
  double bytes_per_state = 0.0;

  // From engine_run events and campaign_row rows (max across events).
  std::uint64_t peak_channel_bytes = 0;
};

/// Scans a JSONL event stream for memory telemetry. Works on a
/// dedicated telemetry sink, a checker/engine event stream, or a
/// concatenation — absent sections simply leave their fields zero.
/// Malformed lines are skipped, never fatal.
MemoryReport memory_report(std::istream& in);

/// One worker row of a "pool_summary" event.
struct PoolWorkerRow {
  std::uint64_t worker = 0;
  std::uint64_t tasks = 0;
  std::uint64_t busy_us = 0;
  std::uint64_t idle_us = 0;
};

/// One telemetry_snapshot that carried pool probes, in stream order.
struct PoolTimelinePoint {
  std::uint64_t elapsed_ms = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t tasks_executed = 0;
};

/// Thread-pool view of a JSONL stream: the final "pool_summary" (last
/// one wins when several are present) plus the snapshot-by-snapshot
/// queue-depth timeline.
struct PoolReport {
  bool has_summary = false;
  std::uint64_t workers = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t busy_us = 0;
  std::uint64_t idle_us = 0;
  double utilization = 0.0;  ///< busy / (busy + idle), 0 when unknown
  std::uint64_t queue_depth_peak = 0;
  std::vector<PoolWorkerRow> per_worker;
  std::vector<PoolTimelinePoint> timeline;
};

/// Scans a JSONL event stream (normally a telemetry sink) for pool
/// telemetry. Malformed lines are skipped, never fatal.
PoolReport pool_report(std::istream& in);

/// One benchmark's baseline-vs-current comparison.
struct BenchDelta {
  std::string name;
  double base_ms = 0.0;
  double current_ms = 0.0;
  double delta_pct = 0.0;  ///< positive = slower than baseline
  bool regression = false;
};

/// One byte-metric comparison from the documents' top-level "metrics"
/// objects (peak_rss_bytes, tracked_peak_bytes, ...).
struct MemDelta {
  std::string name;
  std::uint64_t base_bytes = 0;
  std::uint64_t current_bytes = 0;
  double delta_pct = 0.0;  ///< positive = more memory than baseline
  bool regression = false;
};

struct BenchDiff {
  std::vector<BenchDelta> deltas;  ///< baseline order
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_current;
  double threshold_pct = 10.0;
  bool regression = false;  ///< any delta beyond the threshold
  /// Memory gate: "metrics" keys ending in "_bytes" present in *both*
  /// documents (keys missing from either side are skipped, so old
  /// baselines without byte metrics never fail the gate).
  std::vector<MemDelta> mem_deltas;
  double mem_threshold_pct = 25.0;
  bool mem_regression = false;  ///< any byte delta beyond mem threshold
};

/// Compares two BENCH_<name>.json documents (the bench --json output)
/// benchmark-by-benchmark on real_ms_per_iter. A benchmark regresses
/// when it is more than `threshold_pct` percent slower than baseline.
/// Byte metrics (top-level "metrics" keys ending "_bytes") are compared
/// separately under `mem_threshold_pct` — memory is noisier than a
/// per-iteration time, so it gets its own, looser gate and its own
/// `mem_regression` flag. Throws ParseError when either document lacks
/// the bench shape.
BenchDiff bench_diff(const JsonValue& baseline, const JsonValue& current,
                     double threshold_pct,
                     double mem_threshold_pct = 25.0);

}  // namespace commroute::obs
