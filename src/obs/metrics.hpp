// Metrics registry for the hot loops: monotonic counters, gauges,
// fixed-bucket histograms, and RAII scoped timers. Everything is plain
// uint64_t + steady_clock — no atomics, no strings on the update path,
// and zero overhead when no registry is attached (instrumented code
// holds a nullable pointer and publishes aggregates once per run).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace commroute::obs {

/// A monotonically increasing count (steps executed, messages sent).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// How Registry::merge_from combines two same-named gauges. kMax is the
/// historical default (high-water marks); kSum is for counters-in-
/// gauge-clothing (per-shard occurrence flags that must add up, e.g.
/// engine.cycle_detection_disabled); kLast takes the merged-in value
/// (merge order is the deterministic worker order, so "last shard wins"
/// is reproducible, but prefer kMax/kSum for anything byte-compared).
enum class GaugeMerge {
  kMax,
  kSum,
  kLast,
};

/// A point-in-time value (frontier size, channel-occupancy high-water).
class Gauge {
 public:
  void set(std::uint64_t v) { value_ = v; }
  /// Adds to the value — for kSum-merged occurrence gauges, where
  /// set(1) would collapse per-shard counts on the serial path.
  void add(std::uint64_t v = 1) { value_ += v; }
  /// Keeps the maximum ever seen (high-water-mark semantics).
  void record_max(std::uint64_t v) {
    if (v > value_) {
      value_ = v;
    }
  }
  std::uint64_t value() const { return value_; }
  GaugeMerge merge_policy() const { return merge_; }

 private:
  friend class Registry;
  std::uint64_t value_ = 0;
  GaugeMerge merge_ = GaugeMerge::kMax;
};

/// Fixed-bucket histogram: each bucket counts observations `<=` its
/// upper bound; one implicit overflow bucket catches the rest.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing.
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  void observe(std::uint64_t v);

  /// Adds another histogram's observations. Requires identical bounds
  /// (merging shards of the same metric, not arbitrary histograms).
  void merge_from(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  const std::vector<std::uint64_t>& upper_bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// `count` strictly increasing bounds starting at `start`, each `factor`
/// times the previous (rounded up to stay strictly increasing).
std::vector<std::uint64_t> exponential_buckets(std::uint64_t start,
                                               double factor, int count);

/// One metric in a registry snapshot.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t value = 0;  ///< counter/gauge value; histogram count
  std::uint64_t sum = 0;    ///< histogram only
  std::vector<std::uint64_t> bounds;  ///< histogram only
  std::vector<std::uint64_t> counts;  ///< histogram only (bounds + overflow)
};

/// Owns metrics by name. References returned by counter()/gauge()/
/// histogram() stay valid for the registry's lifetime (node-based map),
/// so hot loops can resolve a name once and update through the pointer.
class Registry {
 public:
  Counter& counter(const std::string& name);
  /// `policy` applies on first creation (like histogram bounds); later
  /// calls return the existing gauge with its original policy. The
  /// one-argument form never downgrades an explicit policy.
  Gauge& gauge(const std::string& name,
               GaugeMerge policy = GaugeMerge::kMax);
  /// `bounds` applies on first creation; later calls return the existing
  /// histogram unchanged.
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds);

  /// Folds another registry into this one: counters add, gauges combine
  /// per their GaugeMerge policy (max by default; sum for occurrence
  /// gauges; last-wins for kLast), histograms add bucket-wise
  /// (same-name histograms must share bounds). This is how per-worker
  /// registry shards collapse into a campaign-level registry after a
  /// parallel sweep; kMax/kSum combiners are commutative and
  /// associative, so the merged aggregates are identical regardless of
  /// which worker ran which row (kLast depends on the — deterministic —
  /// shard merge order). A gauge created here by the merge inherits the
  /// incoming shard's policy.
  void merge_from(const Registry& other);

  /// All metrics, name-sorted within each kind.
  std::vector<MetricSample> snapshot() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// RAII timer: on destruction adds the elapsed microseconds to the target
/// counter. A null target disables the timer entirely (the clock is
/// never read), making the detached path free.
class ScopedTimer {
 public:
  explicit ScopedTimer(Counter* target)
      : target_(target),
        start_(target != nullptr ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{}) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (target_ != nullptr) {
      target_->add(elapsed_us());
    }
  }

  /// Microseconds since construction; 0 when disabled.
  std::uint64_t elapsed_us() const {
    if (target_ == nullptr) {
      return 0;
    }
    const auto d = std::chrono::steady_clock::now() - start_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count());
  }

 private:
  Counter* target_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace commroute::obs
