#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <optional>
#include <sstream>
#include <utility>

namespace commroute::obs {

namespace {

std::optional<std::uint64_t> num_field(const JsonValue& obj,
                                       std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v->as_number());
}

double dbl_field(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : 0.0;
}

std::string str_field(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::string();
}

/// An embedded LogHistogram::to_json blob (see sketch.hpp)?
bool is_hist_blob(const JsonValue& v) {
  return v.is_object() && v.find("precision_bits") != nullptr &&
         v.find("buckets") != nullptr;
}

/// An embedded TopK::to_json blob?
bool is_topk_blob(const JsonValue& v) {
  return v.is_object() && v.find("capacity") != nullptr &&
         v.find("entries") != nullptr;
}

void absorb_hist_blob(ReportQuantiles& row, const JsonValue& blob) {
  ++row.occurrences;
  row.count = num_field(blob, "count").value_or(0);
  row.sum = num_field(blob, "sum").value_or(0);
  row.min = num_field(blob, "min").value_or(0);
  row.max = num_field(blob, "max").value_or(0);
  row.p50 = num_field(blob, "p50").value_or(0);
  row.p90 = num_field(blob, "p90").value_or(0);
  row.p99 = num_field(blob, "p99").value_or(0);
}

void absorb_topk_blob(TopK& sketch, const JsonValue& blob) {
  const JsonValue* entries = blob.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return;
  }
  for (const JsonValue& entry : entries->as_array()) {
    if (!entry.is_object()) {
      continue;
    }
    const auto key = num_field(entry, "key");
    const auto count = num_field(entry, "count");
    if (key.has_value() && count.has_value() && *count > 0) {
      sketch.add(*key, *count);
    }
  }
}

}  // namespace

void ReportSeries::add(std::uint64_t x, std::uint64_t y) {
  ++samples;
  last = y;
  peak = std::max(peak, y);
  // Keep every stride_-th sample; when the buffer fills, thin to every
  // other kept point and double the stride. Pure function of the sample
  // sequence, so decimation never breaks report determinism.
  if ((samples - 1) % stride_ != 0) {
    return;
  }
  points.emplace_back(x, y);
  if (points.size() > kSeriesCap) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> kept;
    kept.reserve(points.size() / 2 + 1);
    for (std::size_t i = 0; i < points.size(); i += 2) {
      kept.push_back(points[i]);
    }
    points.swap(kept);
    stride_ *= 2;
  }
}

RunReport build_report(std::istream& in, std::string source) {
  RunReport report;
  report.source = std::move(source);

  StreamingSummarizer summarizer;
  std::map<std::string, ReportSeries> telemetry;
  std::map<std::string, ReportSeries> progress_series;
  std::map<std::string, ReportProgress> progress;
  std::map<std::string, ReportQuantiles> quantiles;
  std::map<std::string, TopK> topk;
  std::vector<std::string> prev_pi;  ///< last recording assignment

  std::string line;
  while (std::getline(in, line)) {
    summarizer.add_line(line);
    if (line.empty()) {
      continue;
    }
    const auto parsed = json_parse(line);
    if (!parsed.has_value() || !parsed->is_object()) {
      continue;
    }
    const JsonValue& ev = *parsed;
    const std::string type = str_field(ev, "type");

    if (type == "telemetry_snapshot") {
      const std::uint64_t elapsed = num_field(ev, "elapsed_ms").value_or(0);
      for (const auto& [key, value] : ev.as_object()) {
        if (!value.is_number() || key == "seq" || key == "elapsed_ms") {
          continue;
        }
        ReportSeries& series = telemetry[key];
        series.name = key;
        series.add(elapsed,
                   static_cast<std::uint64_t>(value.as_number()));
      }
    } else if (type == "progress_snapshot") {
      const std::string name = str_field(ev, "name");
      ReportProgress& p = progress[name];
      p.name = name;
      p.done = num_field(ev, "done").value_or(0);
      p.total = num_field(ev, "total").value_or(0);
      p.fraction = dbl_field(ev, "fraction");
      p.rate_per_sec = dbl_field(ev, "rate_per_sec");
      p.eta_ms = num_field(ev, "eta_ms").value_or(0);
      p.updates = num_field(ev, "updates").value_or(0);
      ReportSeries& series = progress_series[name];
      series.name = name;
      series.add(num_field(ev, "elapsed_ms").value_or(0),
                 static_cast<std::uint64_t>(p.fraction * 1000.0));
    } else if (type == "campaign_row") {
      if (const JsonValue* row = ev.find("row");
          row != nullptr && row->is_object()) {
        ++report.campaign_rows;
        ++report.outcome_counts[str_field(*row, "outcome")];
        if (const auto steps = num_field(*row, "steps"); steps.has_value()) {
          report.campaign_steps_hist.observe(*steps);
        }
      }
    } else if (type == "recording_header") {
      report.has_recording = true;
      report.recording_instance = str_field(ev, "instance_name");
      report.recording_model = str_field(ev, "model");
      report.recording_scheduler = str_field(ev, "scheduler");
      report.recording_outcome = str_field(ev, "outcome");
      report.recording_seed = num_field(ev, "seed").value_or(0);
      report.recording_nodes = num_field(ev, "nodes").value_or(0);
      prev_pi.clear();
      if (const JsonValue* initial = ev.find("initial");
          initial != nullptr && initial->is_array()) {
        for (const JsonValue& a : initial->as_array()) {
          prev_pi.push_back(json_render(a));
        }
      }
    } else if (type == "recording_step") {
      ++report.recording_steps;
      if (const JsonValue* pi = ev.find("pi");
          pi != nullptr && pi->is_array()) {
        const JsonValue::Array& now = pi->as_array();
        for (std::size_t node = 0; node < now.size(); ++node) {
          std::string rendered = json_render(now[node]);
          if (node < prev_pi.size() && prev_pi[node] != rendered) {
            report.recording_flappers.add(node);
          }
          if (node < prev_pi.size()) {
            prev_pi[node] = std::move(rendered);
          } else {
            prev_pi.push_back(std::move(rendered));
          }
        }
      }
    } else if (type == "recording_footer") {
      report.recording_changes = num_field(ev, "changes").value_or(0);
    }

    // Any event may carry embedded sketch blobs (engine_run's flap_topk,
    // sim_summary's latency_hist, campaign_sketch, ...) or a critical
    // path. Detected structurally, so new producers need no report edit.
    for (const auto& [key, value] : ev.as_object()) {
      if (is_hist_blob(value)) {
        ReportQuantiles& row = quantiles[type + "." + key];
        row.label = type + "." + key;
        absorb_hist_blob(row, value);
      } else if (is_topk_blob(value)) {
        absorb_topk_blob(
            topk.try_emplace(type + "." + key, std::size_t{16})
                .first->second,
            value);
      }
    }
    const auto cp_len = num_field(ev, "critical_path_len");
    const auto cp_us = num_field(ev, "critical_path_us");
    if (cp_len.has_value() || cp_us.has_value()) {
      ++report.critical_path_events;
      report.critical_path_len_max =
          std::max(report.critical_path_len_max, cp_len.value_or(0));
      report.critical_path_us_max =
          std::max(report.critical_path_us_max, cp_us.value_or(0));
    }
  }

  report.events = summarizer.summary();
  for (auto& [name, series] : telemetry) {
    report.telemetry.push_back(std::move(series));
  }
  for (auto& [name, series] : progress_series) {
    report.progress_series.push_back(std::move(series));
  }
  for (auto& [name, p] : progress) {
    report.progress.push_back(std::move(p));
  }
  for (auto& [label, row] : quantiles) {
    report.quantiles.push_back(std::move(row));
  }
  for (auto& [label, sketch] : topk) {
    report.topk.emplace_back(label, std::move(sketch));
  }
  return report;
}

namespace {

std::string series_json(const ReportSeries& s) {
  std::string out = "{\"name\":\"" + json_escape(s.name) + "\"";
  out += ",\"samples\":" + std::to_string(s.samples);
  out += ",\"peak\":" + std::to_string(s.peak);
  out += ",\"last\":" + std::to_string(s.last);
  out += ",\"points\":[";
  for (std::size_t i = 0; i < s.points.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '[' + std::to_string(s.points[i].first) + ',' +
           std::to_string(s.points[i].second) + ']';
  }
  out += "]}";
  return out;
}

}  // namespace

std::string report_json(const RunReport& report) {
  // No generation timestamp / host / RSS: the document must be a pure
  // function of the input bytes (CI double-runs and byte-compares it).
  JsonWriter w;
  w.field("type", "run_report").field("schema_version", 1);
  w.field("source", report.source);
  w.field("lines", static_cast<std::uint64_t>(report.events.lines))
      .field("malformed",
             static_cast<std::uint64_t>(report.events.malformed));

  std::string events = "[";
  for (std::size_t i = 0; i < report.events.types.size(); ++i) {
    const EventTypeSummary& t = report.events.types[i];
    if (i > 0) {
      events += ',';
    }
    JsonWriter row;
    row.field("event", t.type)
        .field("count", t.count)
        .field("timed", t.timed)
        .field("total_us", t.total_us)
        .field("p50_us", t.p50_us)
        .field("p90_us", t.p90_us)
        .field("p99_us", t.p99_us)
        .field("max_us", t.max_us);
    events += row.str();
  }
  events += ']';
  w.raw_field("events", events);

  std::string telemetry = "[";
  for (std::size_t i = 0; i < report.telemetry.size(); ++i) {
    if (i > 0) {
      telemetry += ',';
    }
    telemetry += series_json(report.telemetry[i]);
  }
  telemetry += ']';
  w.raw_field("telemetry", telemetry);

  std::string progress = "[";
  for (std::size_t i = 0; i < report.progress.size(); ++i) {
    const ReportProgress& p = report.progress[i];
    if (i > 0) {
      progress += ',';
    }
    JsonWriter row;
    row.field("name", p.name)
        .field("done", p.done)
        .field("total", p.total)
        .field("fraction", p.fraction)
        .field("rate_per_sec", p.rate_per_sec)
        .field("eta_ms", p.eta_ms)
        .field("updates", p.updates);
    progress += row.str();
  }
  progress += ']';
  w.raw_field("progress", progress);

  std::string quantiles = "[";
  for (std::size_t i = 0; i < report.quantiles.size(); ++i) {
    const ReportQuantiles& q = report.quantiles[i];
    if (i > 0) {
      quantiles += ',';
    }
    JsonWriter row;
    row.field("label", q.label)
        .field("occurrences", q.occurrences)
        .field("count", q.count)
        .field("sum", q.sum)
        .field("min", q.min)
        .field("max", q.max)
        .field("p50", q.p50)
        .field("p90", q.p90)
        .field("p99", q.p99);
    quantiles += row.str();
  }
  quantiles += ']';
  w.raw_field("quantiles", quantiles);

  std::string tops = "[";
  for (std::size_t i = 0; i < report.topk.size(); ++i) {
    if (i > 0) {
      tops += ',';
    }
    tops += "{\"label\":\"" + json_escape(report.topk[i].first) +
            "\",\"sketch\":" + report.topk[i].second.to_json() + '}';
  }
  tops += ']';
  w.raw_field("topk", tops);

  if (report.campaign_rows > 0) {
    JsonWriter campaign;
    campaign.field("rows", report.campaign_rows);
    std::string outcomes = "{";
    bool first = true;
    for (const auto& [outcome, count] : report.outcome_counts) {
      if (!first) {
        outcomes += ',';
      }
      first = false;
      outcomes += '"' + json_escape(outcome) +
                  "\":" + std::to_string(count);
    }
    outcomes += '}';
    campaign.raw_field("outcomes", outcomes);
    campaign.raw_field("steps_hist", report.campaign_steps_hist.to_json());
    w.raw_field("campaign", campaign.str());
  }

  if (report.critical_path_events > 0) {
    JsonWriter cp;
    cp.field("events", report.critical_path_events)
        .field("max_len", report.critical_path_len_max)
        .field("max_us", report.critical_path_us_max);
    w.raw_field("critical_path", cp.str());
  }

  if (report.has_recording) {
    JsonWriter rec;
    rec.field("instance", report.recording_instance)
        .field("model", report.recording_model)
        .field("scheduler", report.recording_scheduler)
        .field("outcome", report.recording_outcome)
        .field("seed", report.recording_seed)
        .field("nodes", report.recording_nodes)
        .field("steps", report.recording_steps)
        .field("changes", report.recording_changes);
    rec.raw_field("flappers", report.recording_flappers.to_json());
    w.raw_field("recording", rec.str());
  }
  return w.str();
}

namespace {

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string fixed1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

/// Inline SVG sparkline (no scripts, fixed viewBox). X spreads over the
/// recorded range, or over point index when all x coincide.
std::string sparkline_svg(const ReportSeries& s) {
  constexpr double kW = 240.0;
  constexpr double kH = 40.0;
  std::string svg = "<svg class=\"spark\" viewBox=\"0 0 240 44\" "
                    "width=\"240\" height=\"44\" role=\"img\">";
  if (s.points.size() >= 2) {
    const std::uint64_t x0 = s.points.front().first;
    const std::uint64_t x1 = s.points.back().first;
    const double span = x1 > x0 ? static_cast<double>(x1 - x0)
                                : static_cast<double>(s.points.size() - 1);
    const double ymax =
        s.peak > 0 ? static_cast<double>(s.peak) : 1.0;
    std::string pts;
    for (std::size_t i = 0; i < s.points.size(); ++i) {
      const double fx =
          x1 > x0 ? static_cast<double>(s.points[i].first - x0)
                  : static_cast<double>(i);
      const double px = span > 0.0 ? fx / span * kW : 0.0;
      const double py =
          kH - static_cast<double>(s.points[i].second) / ymax * (kH - 4.0);
      if (!pts.empty()) {
        pts += ' ';
      }
      pts += fixed1(px) + ',' + fixed1(py);
    }
    svg += "<polyline fill=\"none\" stroke=\"#2b6cb0\" "
           "stroke-width=\"1.5\" points=\"" +
           pts + "\"/>";
  } else if (s.points.size() == 1) {
    svg += "<circle cx=\"120\" cy=\"22\" r=\"2\" fill=\"#2b6cb0\"/>";
  }
  svg += "</svg>";
  return svg;
}

void table_open(std::string& html, const std::vector<const char*>& cols) {
  html += "<table><thead><tr>";
  for (const char* c : cols) {
    html += "<th>";
    html += c;
    html += "</th>";
  }
  html += "</tr></thead><tbody>";
}

void table_close(std::string& html) { html += "</tbody></table>"; }

std::string td(const std::string& v) { return "<td>" + v + "</td>"; }
std::string td(std::uint64_t v) { return td(std::to_string(v)); }

}  // namespace

std::string report_html(const RunReport& report, const std::string& title) {
  const std::string heading =
      title.empty() ? "commroute run report" : title;
  std::string html;
  html += "<!DOCTYPE html>\n<html lang=\"en\"><head>\n";
  html += "<meta charset=\"utf-8\">\n<title>" + html_escape(heading) +
          "</title>\n";
  html +=
      "<style>\n"
      "body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;"
      "max-width:72rem;padding:0 1rem;color:#1a202c;}\n"
      "h1{font-size:1.5rem;border-bottom:2px solid #2b6cb0;"
      "padding-bottom:.3rem;}\n"
      "h2{font-size:1.1rem;margin-top:2rem;color:#2b6cb0;}\n"
      "table{border-collapse:collapse;margin:.5rem 0;width:100%;}\n"
      "th,td{border:1px solid #cbd5e0;padding:.25rem .6rem;"
      "text-align:right;font-variant-numeric:tabular-nums;}\n"
      "th:first-child,td:first-child{text-align:left;}\n"
      "th{background:#edf2f7;}\n"
      "tr:nth-child(even) td{background:#f7fafc;}\n"
      ".meta{color:#4a5568;font-size:.9rem;}\n"
      ".spark{vertical-align:middle;background:#f7fafc;"
      "border:1px solid #e2e8f0;}\n"
      ".bar{background:#2b6cb0;height:10px;display:inline-block;}\n"
      ".barbox{background:#e2e8f0;width:160px;display:inline-block;}\n"
      "</style>\n</head><body>\n";
  html += "<h1>" + html_escape(heading) + "</h1>\n";
  html += "<p class=\"meta\">source: <code>" + html_escape(report.source) +
          "</code> &middot; " + std::to_string(report.events.lines) +
          " lines (" + std::to_string(report.events.malformed) +
          " malformed)</p>\n";

  if (!report.events.types.empty()) {
    html += "<h2>Events</h2>\n";
    table_open(html, {"event", "count", "timed", "total us", "p50 us",
                      "p90 us", "p99 us", "max us"});
    for (const EventTypeSummary& t : report.events.types) {
      html += "<tr>" + td(html_escape(t.type)) + td(t.count) + td(t.timed) +
              td(t.total_us) + td(t.p50_us) + td(t.p90_us) + td(t.p99_us) +
              td(t.max_us) + "</tr>";
    }
    table_close(html);
  }

  if (!report.progress.empty()) {
    html += "<h2>Progress</h2>\n";
    table_open(html, {"task", "", "done", "total", "fraction",
                      "rate /s", "eta ms", "updates"});
    for (const ReportProgress& p : report.progress) {
      const int pct = static_cast<int>(p.fraction * 100.0);
      html += "<tr>" + td(html_escape(p.name)) +
              td("<span class=\"barbox\"><span class=\"bar\" style=\""
                 "width:" +
                 std::to_string(pct) + "%\"></span></span>") +
              td(p.done) + td(p.total) + td(fixed1(p.fraction * 100.0) + "%") +
              td(fixed1(p.rate_per_sec)) + td(p.eta_ms) + td(p.updates) +
              "</tr>";
    }
    table_close(html);
    for (const ReportSeries& s : report.progress_series) {
      html += "<p>" + html_escape(s.name) + " " + sparkline_svg(s) +
              " <span class=\"meta\">" + std::to_string(s.samples) +
              " snapshots</span></p>\n";
    }
  }

  if (!report.telemetry.empty()) {
    html += "<h2>Telemetry</h2>\n";
    table_open(html, {"series", "sparkline", "samples", "peak", "last"});
    for (const ReportSeries& s : report.telemetry) {
      html += "<tr>" + td(html_escape(s.name)) + td(sparkline_svg(s)) +
              td(s.samples) + td(s.peak) + td(s.last) + "</tr>";
    }
    table_close(html);
  }

  if (!report.quantiles.empty()) {
    html += "<h2>Sketched distributions</h2>\n";
    table_open(html, {"sketch", "count", "sum", "min", "p50", "p90", "p99",
                      "max"});
    for (const ReportQuantiles& q : report.quantiles) {
      html += "<tr>" + td(html_escape(q.label)) + td(q.count) + td(q.sum) +
              td(q.min) + td(q.p50) + td(q.p90) + td(q.p99) + td(q.max) +
              "</tr>";
    }
    table_close(html);
  }

  if (!report.topk.empty()) {
    html += "<h2>Heavy hitters</h2>\n";
    for (const auto& [label, sketch] : report.topk) {
      html += "<h3>" + html_escape(label) + "</h3>\n";
      table_open(html, {"key", "count", "error"});
      for (const TopK::Entry& e : sketch.top()) {
        html += "<tr>" + td(e.key) + td(e.count) + td(e.error) + "</tr>";
      }
      table_close(html);
    }
  }

  if (report.campaign_rows > 0) {
    html += "<h2>Campaign</h2>\n";
    html += "<p>" + std::to_string(report.campaign_rows) + " rows</p>\n";
    table_open(html, {"outcome", "rows"});
    for (const auto& [outcome, count] : report.outcome_counts) {
      html += "<tr>" + td(html_escape(outcome)) + td(count) + "</tr>";
    }
    table_close(html);
    const LogHistogram& h = report.campaign_steps_hist;
    if (h.count() > 0) {
      table_open(html, {"steps", "min", "p50", "p90", "p99", "max"});
      html += "<tr>" + td("distribution") + td(h.min()) +
              td(h.quantile(0.5)) + td(h.quantile(0.9)) +
              td(h.quantile(0.99)) + td(h.max()) + "</tr>";
      table_close(html);
    }
  }

  if (report.critical_path_events > 0) {
    html += "<h2>Critical path</h2>\n";
    table_open(html, {"events carrying a path", "max length", "max us"});
    html += "<tr>" + td(report.critical_path_events) +
            td(report.critical_path_len_max) +
            td(report.critical_path_us_max) + "</tr>";
    table_close(html);
  }

  if (report.has_recording) {
    html += "<h2>Flight recording</h2>\n";
    table_open(html, {"instance", "model", "scheduler", "outcome", "seed",
                      "nodes", "steps", "changes"});
    html += "<tr>" + td(html_escape(report.recording_instance)) +
            td(html_escape(report.recording_model)) +
            td(html_escape(report.recording_scheduler)) +
            td(html_escape(report.recording_outcome)) +
            td(report.recording_seed) + td(report.recording_nodes) +
            td(report.recording_steps) + td(report.recording_changes) +
            "</tr>";
    table_close(html);
    const auto flappers = report.recording_flappers.top();
    if (!flappers.empty()) {
      html += "<h3>Most-flapped nodes</h3>\n";
      table_open(html, {"node", "assignment changes", "error"});
      for (const TopK::Entry& e : flappers) {
        html += "<tr>" + td("node #" + std::to_string(e.key)) + td(e.count) +
                td(e.error) + "</tr>";
      }
      table_close(html);
    }
  }

  html += "</body></html>\n";
  return html;
}

}  // namespace commroute::obs
