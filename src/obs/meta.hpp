// Run metadata for self-describing artifacts. Every durable artifact the
// library writes (JSONL event/trace sinks, BENCH_*.json, recordings)
// opens with the same header fields — schema_version, created_unix_ms,
// git describe, argv — so a file found on disk months later still says
// what produced it and whether a reader understands its layout.
#pragma once

#include <cstdint>
#include <string>

#include "obs/events.hpp"
#include "obs/json.hpp"

namespace commroute::obs {

/// Version of the artifact layouts (JSONL event records, bench JSON,
/// recording JSONL). Bump on any incompatible field change.
inline constexpr int kArtifactSchemaVersion = 1;

/// Captures the process command line once, first thing in main().
/// Subsequent calls are ignored (the first capture wins).
void set_process_argv(int argc, const char* const* argv);

/// The captured command line, space-joined; "" when never captured.
const std::string& process_argv();

/// `git describe --always --dirty` of the built tree (baked in at
/// configure time); "unknown" when the build was not configured in git.
std::string git_describe();

/// Milliseconds since the Unix epoch, from the system clock.
std::uint64_t unix_time_ms();

/// Appends the shared header fields (schema_version, created_unix_ms,
/// git, argv) to `w` and returns it.
JsonWriter& add_metadata_fields(JsonWriter& w);

/// The self-description record: {"type":"meta",...header fields...}.
/// JSONL artifacts emit this as their first line.
Event metadata_event();

}  // namespace commroute::obs
