#include "obs/analysis.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <unordered_map>

#include "support/error.hpp"

namespace commroute::obs {

namespace {

/// The event's duration in microseconds, if it carries one.
std::optional<std::uint64_t> event_duration_us(const JsonValue& event) {
  if (const JsonValue* v = event.find("dur_us");
      v != nullptr && v->is_number()) {
    return static_cast<std::uint64_t>(v->as_number());
  }
  if (const JsonValue* v = event.find("wall_us");
      v != nullptr && v->is_number()) {
    return static_cast<std::uint64_t>(v->as_number());
  }
  if (const JsonValue* v = event.find("wall_ms");
      v != nullptr && v->is_number()) {
    return static_cast<std::uint64_t>(v->as_number() * 1000.0);
  }
  if (const JsonValue* row = event.find("row"); row != nullptr) {
    if (const JsonValue* v = row->find("wall_ms");
        v != nullptr && v->is_number()) {
      return static_cast<std::uint64_t>(v->as_number() * 1000.0);
    }
  }
  return std::nullopt;
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted,
                         int pct) {
  return sorted[(sorted.size() - 1) * static_cast<std::size_t>(pct) / 100];
}

}  // namespace

JsonlSummary summarize_jsonl(std::istream& in) {
  JsonlSummary summary;
  struct Acc {
    std::uint64_t count = 0;
    std::vector<std::uint64_t> durations_us;
  };
  std::map<std::string, Acc> by_type;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    ++summary.lines;
    const auto parsed = json_parse(line);
    if (!parsed.has_value() || !parsed->is_object()) {
      ++summary.malformed;
      continue;
    }
    const JsonValue* type = parsed->find("type");
    Acc& acc = by_type[(type != nullptr && type->is_string())
                           ? type->as_string()
                           : "(untyped)"];
    ++acc.count;
    if (const auto dur = event_duration_us(*parsed); dur.has_value()) {
      acc.durations_us.push_back(*dur);
    }
  }

  for (auto& [type, acc] : by_type) {
    EventTypeSummary row;
    row.type = type;
    row.count = acc.count;
    if (!acc.durations_us.empty()) {
      std::sort(acc.durations_us.begin(), acc.durations_us.end());
      row.timed = acc.durations_us.size();
      for (const std::uint64_t d : acc.durations_us) {
        row.total_us += d;
      }
      row.p50_us = percentile(acc.durations_us, 50);
      row.p90_us = percentile(acc.durations_us, 90);
      row.p99_us = percentile(acc.durations_us, 99);
      row.max_us = acc.durations_us.back();
    }
    summary.types.push_back(std::move(row));
  }
  std::stable_sort(summary.types.begin(), summary.types.end(),
                   [](const EventTypeSummary& a, const EventTypeSummary& b) {
                     return a.count > b.count;
                   });
  return summary;
}

std::vector<SpanRecord> spans_from_jsonl(std::istream& in) {
  std::vector<SpanRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    const auto parsed = json_parse(line);
    if (!parsed.has_value() || !parsed->is_object()) {
      continue;
    }
    const JsonValue* type = parsed->find("type");
    if (type == nullptr || !type->is_string() ||
        type->as_string() != "span") {
      continue;
    }
    const JsonValue* name = parsed->find("name");
    const JsonValue* ts = parsed->find("ts_us");
    const JsonValue* dur = parsed->find("dur_us");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number() || dur == nullptr || !dur->is_number()) {
      continue;
    }
    SpanRecord rec;
    rec.name = name->as_string();
    rec.start_us = static_cast<std::uint64_t>(ts->as_number());
    rec.dur_us = static_cast<std::uint64_t>(dur->as_number());
    const auto u32 = [&](const char* key) -> std::uint32_t {
      const JsonValue* v = parsed->find(key);
      return (v != nullptr && v->is_number())
                 ? static_cast<std::uint32_t>(v->as_number())
                 : 0;
    };
    rec.id = u32("id");
    rec.parent = u32("parent");
    rec.tid = u32("tid");
    if (const JsonValue* args = parsed->find("args");
        args != nullptr && args->is_object()) {
      rec.args_json = json_render(*args);
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<SpanRecord> spans_from_chrome_trace(const JsonValue& doc) {
  std::vector<SpanRecord> records;
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return records;
  }
  for (const JsonValue& event : events->as_array()) {
    const JsonValue* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") {
      continue;
    }
    const JsonValue* name = event.find("name");
    const JsonValue* ts = event.find("ts");
    const JsonValue* dur = event.find("dur");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number() || dur == nullptr || !dur->is_number()) {
      continue;
    }
    SpanRecord rec;
    rec.name = name->as_string();
    rec.start_us = static_cast<std::uint64_t>(ts->as_number());
    rec.dur_us = static_cast<std::uint64_t>(dur->as_number());
    if (const JsonValue* tid = event.find("tid");
        tid != nullptr && tid->is_number()) {
      rec.tid = static_cast<std::uint32_t>(tid->as_number());
    }
    if (const JsonValue* args = event.find("args"); args != nullptr) {
      if (const JsonValue* id = args->find("id");
          id != nullptr && id->is_number()) {
        rec.id = static_cast<std::uint32_t>(id->as_number());
      }
      if (const JsonValue* parent = args->find("parent");
          parent != nullptr && parent->is_number()) {
        rec.parent = static_cast<std::uint32_t>(parent->as_number());
      }
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<SpanStat> span_self_times(
    const std::vector<SpanRecord>& records) {
  // Direct-children duration per span id (id 0 = roots, discarded).
  std::unordered_map<std::uint32_t, std::uint64_t> child_us;
  for (const SpanRecord& rec : records) {
    if (rec.parent != 0) {
      child_us[rec.parent] += rec.dur_us;
    }
  }

  std::map<std::string, SpanStat> by_name;
  for (const SpanRecord& rec : records) {
    SpanStat& stat = by_name[rec.name];
    stat.name = rec.name;
    ++stat.count;
    stat.total_us += rec.dur_us;
    stat.max_us = std::max(stat.max_us, rec.dur_us);
    const auto it = child_us.find(rec.id);
    const std::uint64_t children = it != child_us.end() ? it->second : 0;
    // Clock granularity can make children sum past the parent; clamp.
    stat.self_us += rec.dur_us > children ? rec.dur_us - children : 0;
  }

  std::vector<SpanStat> stats;
  stats.reserve(by_name.size());
  for (auto& [name, stat] : by_name) {
    stats.push_back(std::move(stat));
  }
  std::stable_sort(stats.begin(), stats.end(),
                   [](const SpanStat& a, const SpanStat& b) {
                     return a.self_us > b.self_us;
                   });
  return stats;
}

namespace {

/// name -> real_ms_per_iter rows of one BENCH_<name>.json document,
/// in document order.
std::vector<std::pair<std::string, double>> bench_rows(
    const JsonValue& doc, const char* which) {
  const JsonValue* results = doc.find("results");
  if (results == nullptr || !results->is_array()) {
    throw ParseError(std::string(which) +
                     " is not bench JSON (missing \"results\" array)");
  }
  std::vector<std::pair<std::string, double>> rows;
  for (const JsonValue& row : results->as_array()) {
    const JsonValue* name = row.find("name");
    const JsonValue* ms = row.find("real_ms_per_iter");
    if (name == nullptr || !name->is_string() || ms == nullptr ||
        !ms->is_number()) {
      throw ParseError(std::string(which) +
                       " has a result row without name/real_ms_per_iter");
    }
    rows.emplace_back(name->as_string(), ms->as_number());
  }
  return rows;
}

}  // namespace

BenchDiff bench_diff(const JsonValue& baseline, const JsonValue& current,
                     double threshold_pct) {
  const auto base_rows = bench_rows(baseline, "baseline");
  const auto current_rows = bench_rows(current, "current");
  std::unordered_map<std::string, double> current_ms;
  for (const auto& [name, ms] : current_rows) {
    current_ms.emplace(name, ms);
  }

  BenchDiff diff;
  diff.threshold_pct = threshold_pct;
  for (const auto& [name, base] : base_rows) {
    const auto it = current_ms.find(name);
    if (it == current_ms.end()) {
      diff.only_in_baseline.push_back(name);
      continue;
    }
    BenchDelta delta;
    delta.name = name;
    delta.base_ms = base;
    delta.current_ms = it->second;
    delta.delta_pct =
        base > 0.0 ? (it->second - base) / base * 100.0 : 0.0;
    delta.regression = delta.delta_pct > threshold_pct;
    diff.regression = diff.regression || delta.regression;
    diff.deltas.push_back(std::move(delta));
  }
  std::unordered_map<std::string, double> base_ms(base_rows.begin(),
                                                  base_rows.end());
  for (const auto& [name, ms] : current_rows) {
    if (base_ms.find(name) == base_ms.end()) {
      diff.only_in_current.push_back(name);
    }
  }
  return diff;
}

}  // namespace commroute::obs
