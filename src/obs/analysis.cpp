#include "obs/analysis.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <map>
#include <unordered_map>

#include "support/error.hpp"

namespace commroute::obs {

namespace {

/// The event's duration in microseconds, if it carries one.
std::optional<std::uint64_t> event_duration_us(const JsonValue& event) {
  if (const JsonValue* v = event.find("dur_us");
      v != nullptr && v->is_number()) {
    return static_cast<std::uint64_t>(v->as_number());
  }
  if (const JsonValue* v = event.find("wall_us");
      v != nullptr && v->is_number()) {
    return static_cast<std::uint64_t>(v->as_number());
  }
  if (const JsonValue* v = event.find("wall_ms");
      v != nullptr && v->is_number()) {
    return static_cast<std::uint64_t>(v->as_number() * 1000.0);
  }
  if (const JsonValue* row = event.find("row"); row != nullptr) {
    if (const JsonValue* v = row->find("wall_ms");
        v != nullptr && v->is_number()) {
      return static_cast<std::uint64_t>(v->as_number() * 1000.0);
    }
  }
  return std::nullopt;
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted,
                         int pct) {
  return sorted[(sorted.size() - 1) * static_cast<std::size_t>(pct) / 100];
}

}  // namespace

void StreamingSummarizer::add_line(const std::string& line) {
  if (line.empty()) {
    return;
  }
  ++lines_;
  const auto parsed = json_parse(line);
  if (!parsed.has_value() || !parsed->is_object()) {
    ++malformed_;
    return;
  }
  const JsonValue* type = parsed->find("type");
  Acc& acc = by_type_[(type != nullptr && type->is_string())
                          ? type->as_string()
                          : "(untyped)"];
  ++acc.count;
  if (const auto dur = event_duration_us(*parsed); dur.has_value()) {
    ++acc.timed;
    acc.total_us += *dur;
    acc.max_us = std::max(acc.max_us, *dur);
    if (acc.exact.size() < kExactCap) {
      acc.exact.push_back(*dur);
    } else {
      if (!acc.spill.has_value()) {
        // Past the cap everything sketches — including the exact prefix,
        // so spilled percentiles cover the whole distribution.
        acc.spill.emplace(7u);
        for (const std::uint64_t d : acc.exact) {
          acc.spill->observe(d);
        }
      }
      acc.spill->observe(*dur);
    }
  }
}

void StreamingSummarizer::consume(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    add_line(line);
  }
}

JsonlSummary StreamingSummarizer::summary() const {
  JsonlSummary summary;
  summary.lines = lines_;
  summary.malformed = malformed_;
  for (const auto& [type, acc] : by_type_) {
    EventTypeSummary row;
    row.type = type;
    row.count = acc.count;
    row.timed = acc.timed;
    row.total_us = acc.total_us;
    row.max_us = acc.max_us;
    if (acc.spill.has_value()) {
      row.p50_us = std::min(acc.spill->quantile(0.50), acc.max_us);
      row.p90_us = std::min(acc.spill->quantile(0.90), acc.max_us);
      row.p99_us = std::min(acc.spill->quantile(0.99), acc.max_us);
    } else if (!acc.exact.empty()) {
      std::vector<std::uint64_t> sorted = acc.exact;
      std::sort(sorted.begin(), sorted.end());
      row.p50_us = percentile(sorted, 50);
      row.p90_us = percentile(sorted, 90);
      row.p99_us = percentile(sorted, 99);
    }
    summary.types.push_back(std::move(row));
  }
  std::stable_sort(summary.types.begin(), summary.types.end(),
                   [](const EventTypeSummary& a, const EventTypeSummary& b) {
                     return a.count > b.count;
                   });
  return summary;
}

JsonlSummary summarize_jsonl(std::istream& in) {
  StreamingSummarizer s;
  s.consume(in);
  return s.summary();
}

std::vector<SpanRecord> spans_from_jsonl(std::istream& in) {
  std::vector<SpanRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    const auto parsed = json_parse(line);
    if (!parsed.has_value() || !parsed->is_object()) {
      continue;
    }
    const JsonValue* type = parsed->find("type");
    if (type == nullptr || !type->is_string() ||
        type->as_string() != "span") {
      continue;
    }
    const JsonValue* name = parsed->find("name");
    const JsonValue* ts = parsed->find("ts_us");
    const JsonValue* dur = parsed->find("dur_us");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number() || dur == nullptr || !dur->is_number()) {
      continue;
    }
    SpanRecord rec;
    rec.name = name->as_string();
    rec.start_us = static_cast<std::uint64_t>(ts->as_number());
    rec.dur_us = static_cast<std::uint64_t>(dur->as_number());
    const auto u32 = [&](const char* key) -> std::uint32_t {
      const JsonValue* v = parsed->find(key);
      return (v != nullptr && v->is_number())
                 ? static_cast<std::uint32_t>(v->as_number())
                 : 0;
    };
    rec.id = u32("id");
    rec.parent = u32("parent");
    rec.tid = u32("tid");
    if (const JsonValue* args = parsed->find("args");
        args != nullptr && args->is_object()) {
      rec.args_json = json_render(*args);
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<SpanRecord> spans_from_chrome_trace(const JsonValue& doc) {
  std::vector<SpanRecord> records;
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return records;
  }
  for (const JsonValue& event : events->as_array()) {
    const JsonValue* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") {
      continue;
    }
    const JsonValue* name = event.find("name");
    const JsonValue* ts = event.find("ts");
    const JsonValue* dur = event.find("dur");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number() || dur == nullptr || !dur->is_number()) {
      continue;
    }
    SpanRecord rec;
    rec.name = name->as_string();
    rec.start_us = static_cast<std::uint64_t>(ts->as_number());
    rec.dur_us = static_cast<std::uint64_t>(dur->as_number());
    if (const JsonValue* tid = event.find("tid");
        tid != nullptr && tid->is_number()) {
      rec.tid = static_cast<std::uint32_t>(tid->as_number());
    }
    if (const JsonValue* args = event.find("args"); args != nullptr) {
      if (const JsonValue* id = args->find("id");
          id != nullptr && id->is_number()) {
        rec.id = static_cast<std::uint32_t>(id->as_number());
      }
      if (const JsonValue* parent = args->find("parent");
          parent != nullptr && parent->is_number()) {
        rec.parent = static_cast<std::uint32_t>(parent->as_number());
      }
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<SpanStat> span_self_times(
    const std::vector<SpanRecord>& records) {
  // Direct-children duration per span id (id 0 = roots, discarded).
  std::unordered_map<std::uint32_t, std::uint64_t> child_us;
  for (const SpanRecord& rec : records) {
    if (rec.parent != 0) {
      child_us[rec.parent] += rec.dur_us;
    }
  }

  std::map<std::string, SpanStat> by_name;
  for (const SpanRecord& rec : records) {
    SpanStat& stat = by_name[rec.name];
    stat.name = rec.name;
    ++stat.count;
    stat.total_us += rec.dur_us;
    stat.max_us = std::max(stat.max_us, rec.dur_us);
    const auto it = child_us.find(rec.id);
    const std::uint64_t children = it != child_us.end() ? it->second : 0;
    // Clock granularity can make children sum past the parent; clamp.
    stat.self_us += rec.dur_us > children ? rec.dur_us - children : 0;
  }

  std::vector<SpanStat> stats;
  stats.reserve(by_name.size());
  for (auto& [name, stat] : by_name) {
    stats.push_back(std::move(stat));
  }
  std::stable_sort(stats.begin(), stats.end(),
                   [](const SpanStat& a, const SpanStat& b) {
                     return a.self_us > b.self_us;
                   });
  return stats;
}

namespace {

std::uint64_t u64_field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_number())
             ? static_cast<std::uint64_t>(v->as_number())
             : 0;
}

}  // namespace

MemoryReport memory_report(std::istream& in) {
  MemoryReport report;
  std::map<std::string, MemorySeries> series;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const auto parsed = json_parse(line);
    if (!parsed.has_value() || !parsed->is_object()) {
      continue;
    }
    const JsonValue* type = parsed->find("type");
    if (type == nullptr || !type->is_string()) {
      continue;
    }
    if (type->as_string() == "telemetry_snapshot") {
      ++report.snapshots;
      for (const auto& [name, value] : parsed->as_object()) {
        if (!value.is_number() || name == "type" || name == "seq" ||
            name == "elapsed_ms") {
          continue;
        }
        MemorySeries& s = series[name];
        s.name = name;
        s.last = static_cast<std::uint64_t>(value.as_number());
        s.peak = std::max(s.peak, s.last);
        ++s.samples;
      }
    } else if (type->as_string() == "checker_summary") {
      ++report.checker_summaries;
      const std::uint64_t tracked =
          u64_field(*parsed, "tracked_peak_bytes");
      if (tracked >= report.tracked_peak_bytes) {
        report.tracked_peak_bytes = tracked;
        if (const JsonValue* bps = parsed->find("bytes_per_state");
            bps != nullptr && bps->is_number()) {
          report.bytes_per_state = bps->as_number();
        }
      }
    } else if (type->as_string() == "engine_run") {
      report.peak_channel_bytes =
          std::max(report.peak_channel_bytes,
                   u64_field(*parsed, "peak_channel_bytes"));
    } else if (type->as_string() == "campaign_row") {
      if (const JsonValue* row = parsed->find("row");
          row != nullptr && row->is_object()) {
        report.peak_channel_bytes =
            std::max(report.peak_channel_bytes,
                     u64_field(*row, "peak_channel_bytes"));
      }
    }
  }
  report.series.reserve(series.size());
  for (auto& [name, s] : series) {
    report.series.push_back(std::move(s));
  }
  return report;
}

PoolReport pool_report(std::istream& in) {
  PoolReport report;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const auto parsed = json_parse(line);
    if (!parsed.has_value() || !parsed->is_object()) {
      continue;
    }
    const JsonValue* type = parsed->find("type");
    if (type == nullptr || !type->is_string()) {
      continue;
    }
    if (type->as_string() == "pool_summary") {
      report.has_summary = true;
      report.workers = u64_field(*parsed, "workers");
      report.tasks_executed = u64_field(*parsed, "tasks_executed");
      report.busy_us = u64_field(*parsed, "busy_us");
      report.idle_us = u64_field(*parsed, "idle_us");
      report.queue_depth_peak = u64_field(*parsed, "queue_depth_peak");
      if (const JsonValue* util = parsed->find("utilization");
          util != nullptr && util->is_number()) {
        report.utilization = util->as_number();
      } else if (report.busy_us + report.idle_us > 0) {
        report.utilization =
            static_cast<double>(report.busy_us) /
            static_cast<double>(report.busy_us + report.idle_us);
      }
      report.per_worker.clear();
      if (const JsonValue* workers = parsed->find("per_worker");
          workers != nullptr && workers->is_array()) {
        for (const JsonValue& w : workers->as_array()) {
          if (!w.is_object()) {
            continue;
          }
          PoolWorkerRow row;
          row.worker = u64_field(w, "worker");
          row.tasks = u64_field(w, "tasks");
          row.busy_us = u64_field(w, "busy_us");
          row.idle_us = u64_field(w, "idle_us");
          report.per_worker.push_back(row);
        }
      }
    } else if (type->as_string() == "telemetry_snapshot") {
      const JsonValue* depth = parsed->find("pool.queue_depth");
      const JsonValue* tasks = parsed->find("pool.tasks_executed");
      if (depth == nullptr && tasks == nullptr) {
        continue;
      }
      PoolTimelinePoint point;
      point.elapsed_ms = u64_field(*parsed, "elapsed_ms");
      point.queue_depth = u64_field(*parsed, "pool.queue_depth");
      point.tasks_executed = u64_field(*parsed, "pool.tasks_executed");
      report.timeline.push_back(point);
    }
  }
  return report;
}

namespace {

/// name -> real_ms_per_iter rows of one BENCH_<name>.json document,
/// in document order.
std::vector<std::pair<std::string, double>> bench_rows(
    const JsonValue& doc, const char* which) {
  const JsonValue* results = doc.find("results");
  if (results == nullptr || !results->is_array()) {
    throw ParseError(std::string(which) +
                     " is not bench JSON (missing \"results\" array)");
  }
  std::vector<std::pair<std::string, double>> rows;
  for (const JsonValue& row : results->as_array()) {
    const JsonValue* name = row.find("name");
    const JsonValue* ms = row.find("real_ms_per_iter");
    if (name == nullptr || !name->is_string() || ms == nullptr ||
        !ms->is_number()) {
      throw ParseError(std::string(which) +
                       " has a result row without name/real_ms_per_iter");
    }
    rows.emplace_back(name->as_string(), ms->as_number());
  }
  return rows;
}

/// Ends-with helper for the "_bytes" metric-key convention.
bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

BenchDiff bench_diff(const JsonValue& baseline, const JsonValue& current,
                     double threshold_pct, double mem_threshold_pct) {
  const auto base_rows = bench_rows(baseline, "baseline");
  const auto current_rows = bench_rows(current, "current");
  std::unordered_map<std::string, double> current_ms;
  for (const auto& [name, ms] : current_rows) {
    current_ms.emplace(name, ms);
  }

  BenchDiff diff;
  diff.threshold_pct = threshold_pct;
  for (const auto& [name, base] : base_rows) {
    const auto it = current_ms.find(name);
    if (it == current_ms.end()) {
      diff.only_in_baseline.push_back(name);
      continue;
    }
    BenchDelta delta;
    delta.name = name;
    delta.base_ms = base;
    delta.current_ms = it->second;
    delta.delta_pct =
        base > 0.0 ? (it->second - base) / base * 100.0 : 0.0;
    delta.regression = delta.delta_pct > threshold_pct;
    diff.regression = diff.regression || delta.regression;
    diff.deltas.push_back(std::move(delta));
  }
  std::unordered_map<std::string, double> base_ms(base_rows.begin(),
                                                  base_rows.end());
  for (const auto& [name, ms] : current_rows) {
    if (base_ms.find(name) == base_ms.end()) {
      diff.only_in_current.push_back(name);
    }
  }

  // Memory gate: byte metrics from the top-level "metrics" objects.
  // Only keys present in both documents participate — baselines that
  // predate byte metrics skip the gate instead of failing it.
  diff.mem_threshold_pct = mem_threshold_pct;
  const JsonValue* base_metrics = baseline.find("metrics");
  const JsonValue* current_metrics = current.find("metrics");
  if (base_metrics != nullptr && base_metrics->is_object() &&
      current_metrics != nullptr && current_metrics->is_object()) {
    for (const auto& [name, value] : base_metrics->as_object()) {
      if (!ends_with(name, "_bytes") || !value.is_number()) {
        continue;
      }
      const JsonValue* cur = current_metrics->find(name);
      if (cur == nullptr || !cur->is_number()) {
        continue;
      }
      MemDelta delta;
      delta.name = name;
      delta.base_bytes = static_cast<std::uint64_t>(value.as_number());
      delta.current_bytes = static_cast<std::uint64_t>(cur->as_number());
      delta.delta_pct =
          delta.base_bytes > 0
              ? (static_cast<double>(delta.current_bytes) -
                 static_cast<double>(delta.base_bytes)) /
                    static_cast<double>(delta.base_bytes) * 100.0
              : 0.0;
      delta.regression = delta.delta_pct > mem_threshold_pct;
      diff.mem_regression = diff.mem_regression || delta.regression;
      diff.mem_deltas.push_back(std::move(delta));
    }
  }
  return diff;
}

}  // namespace commroute::obs
