#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace commroute::obs {

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  CR_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "histogram bounds must be strictly increasing");
}

void Histogram::observe(std::uint64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

void Histogram::merge_from(const Histogram& other) {
  CR_REQUIRE(bounds_ == other.bounds_,
             "Histogram::merge_from requires identical bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::vector<std::uint64_t> exponential_buckets(std::uint64_t start,
                                               double factor, int count) {
  CR_REQUIRE(start > 0 && factor > 1.0 && count > 0,
             "exponential_buckets needs start > 0, factor > 1, count > 0");
  std::vector<std::uint64_t> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double bound = static_cast<double>(start);
  for (int i = 0; i < count; ++i) {
    std::uint64_t b = static_cast<std::uint64_t>(std::llround(bound));
    if (!bounds.empty() && b <= bounds.back()) {
      b = bounds.back() + 1;
    }
    bounds.push_back(b);
    bound *= factor;
  }
  return bounds;
}

Counter& Registry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name, GaugeMerge policy) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    return it->second;
  }
  Gauge& g = gauges_[name];
  g.merge_ = policy;
  return g;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<std::uint64_t> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return it->second;
  }
  return histograms_.emplace(name, Histogram(std::move(bounds)))
      .first->second;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].add(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    Gauge& mine = gauge(name, g.merge_policy());
    switch (g.merge_policy()) {
      case GaugeMerge::kMax:
        mine.record_max(g.value());
        break;
      case GaugeMerge::kSum:
        mine.add(g.value());
        break;
      case GaugeMerge::kLast:
        mine.set(g.value());
        break;
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge_from(h);
    }
  }
}

std::vector<MetricSample> Registry::snapshot() const {
  std::vector<MetricSample> samples;
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = c.value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g.value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.value = h.count();
    s.sum = h.sum();
    s.bounds = h.upper_bounds();
    s.counts = h.bucket_counts();
    samples.push_back(std::move(s));
  }
  return samples;
}

std::string Registry::to_json() const {
  JsonWriter counters;
  for (const auto& [name, c] : counters_) {
    counters.field(name, c.value());
  }
  JsonWriter gauges;
  for (const auto& [name, g] : gauges_) {
    gauges.field(name, g.value());
  }
  JsonWriter histograms;
  for (const auto& [name, h] : histograms_) {
    JsonWriter entry;
    entry.field("count", h.count());
    entry.field("sum", h.sum());
    std::string buckets = "[";
    const auto& bounds = h.upper_bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) {
        buckets += ',';
      }
      JsonWriter bucket;
      if (i < bounds.size()) {
        bucket.field("le", bounds[i]);
      } else {
        bucket.field("le", "+inf");
      }
      bucket.field("count", counts[i]);
      buckets += bucket.str();
    }
    buckets += ']';
    entry.raw_field("buckets", buckets);
    histograms.raw_field(name, entry.str());
  }
  JsonWriter top;
  top.raw_field("counters", counters.str());
  top.raw_field("gauges", gauges.str());
  top.raw_field("histograms", histograms.str());
  return top.str();
}

}  // namespace commroute::obs
