#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace commroute::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buf[32];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  return buf;
}

void JsonWriter::begin_field(std::string_view key) {
  if (!body_.empty()) {
    body_ += ',';
  }
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\":";
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  begin_field(key);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, const std::string& value) {
  return field(key, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t value) {
  begin_field(key);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::int64_t value) {
  begin_field(key);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, int value) {
  return field(key, static_cast<std::int64_t>(value));
}

JsonWriter& JsonWriter::field(std::string_view key, double value) {
  begin_field(key);
  body_ += json_number(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  begin_field(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw_field(std::string_view key,
                                  std::string_view json) {
  begin_field(key);
  body_ += json;
  return *this;
}

std::string JsonWriter::str() const { return "{" + body_ + "}"; }

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [k, v] : as_object()) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

namespace {

/// Recursion ceiling for nested arrays/objects: deep enough for any
/// record this codebase emits, shallow enough that hostile input (e.g.
/// 100k opening brackets fed to commroute-obs) cannot blow the stack.
constexpr int kMaxDepth = 256;

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  bool eat(char c) {
    if (!done() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t' ||
                       text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }
  bool eat_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }
};

bool parse_value(Cursor& c, JsonValue& out, int depth);

bool parse_string_body(Cursor& c, std::string& out) {
  // Opening quote already consumed.
  while (!c.done()) {
    const char ch = c.text[c.pos++];
    if (ch == '"') {
      return true;
    }
    if (static_cast<unsigned char>(ch) < 0x20) {
      return false;  // raw control characters must be escaped
    }
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c.done()) {
      return false;
    }
    const char esc = c.text[c.pos++];
    switch (esc) {
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case '/':
        out += '/';
        break;
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        if (c.pos + 4 > c.text.size()) {
          return false;
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = c.text[c.pos++];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        // UTF-8 encode the BMP code point (surrogate pairs are not
        // combined; each half encodes independently, which is enough
        // for round-tripping our own escaper's output).
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        return false;
    }
  }
  return false;  // unterminated
}

bool parse_number(Cursor& c, JsonValue& out) {
  const std::size_t start = c.pos;
  if (c.eat('-')) {
  }
  // JSON requires a digit here: "+1", ".5", and bare "-" are rejected.
  if (c.done() || c.peek() < '0' || c.peek() > '9') {
    return false;
  }
  while (!c.done() && ((c.peek() >= '0' && c.peek() <= '9') ||
                       c.peek() == '.' || c.peek() == 'e' ||
                       c.peek() == 'E' || c.peek() == '+' ||
                       c.peek() == '-')) {
    ++c.pos;
  }
  const std::string token(c.text.substr(start, c.pos - start));
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
    return false;  // malformed, or overflowed past double range
  }
  out.value = v;
  return true;
}

bool parse_value(Cursor& c, JsonValue& out, int depth) {
  if (depth > kMaxDepth) {
    return false;
  }
  c.skip_ws();
  if (c.done()) {
    return false;
  }
  const char ch = c.peek();
  if (ch == '{') {
    ++c.pos;
    JsonValue::Object obj;
    c.skip_ws();
    if (c.eat('}')) {
      out.value = std::move(obj);
      return true;
    }
    for (;;) {
      c.skip_ws();
      if (!c.eat('"')) {
        return false;
      }
      std::string key;
      if (!parse_string_body(c, key)) {
        return false;
      }
      c.skip_ws();
      if (!c.eat(':')) {
        return false;
      }
      JsonValue member;
      if (!parse_value(c, member, depth + 1)) {
        return false;
      }
      obj.emplace_back(std::move(key), std::move(member));
      c.skip_ws();
      if (c.eat(',')) {
        continue;
      }
      if (c.eat('}')) {
        out.value = std::move(obj);
        return true;
      }
      return false;
    }
  }
  if (ch == '[') {
    ++c.pos;
    JsonValue::Array arr;
    c.skip_ws();
    if (c.eat(']')) {
      out.value = std::move(arr);
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!parse_value(c, element, depth + 1)) {
        return false;
      }
      arr.push_back(std::move(element));
      c.skip_ws();
      if (c.eat(',')) {
        continue;
      }
      if (c.eat(']')) {
        out.value = std::move(arr);
        return true;
      }
      return false;
    }
  }
  if (ch == '"') {
    ++c.pos;
    std::string s;
    if (!parse_string_body(c, s)) {
      return false;
    }
    out.value = std::move(s);
    return true;
  }
  if (c.eat_literal("true")) {
    out.value = true;
    return true;
  }
  if (c.eat_literal("false")) {
    out.value = false;
    return true;
  }
  if (c.eat_literal("null")) {
    out.value = nullptr;
    return true;
  }
  return parse_number(c, out);
}

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  Cursor c{text};
  JsonValue v;
  if (!parse_value(c, v, 0)) {
    return std::nullopt;
  }
  c.skip_ws();
  if (!c.done()) {
    return std::nullopt;  // trailing garbage
  }
  return v;
}

std::string json_render(const JsonValue& value) {
  if (value.is_null()) {
    return "null";
  }
  if (value.is_bool()) {
    return value.as_bool() ? "true" : "false";
  }
  if (value.is_number()) {
    return json_number(value.as_number());
  }
  if (value.is_string()) {
    return "\"" + json_escape(value.as_string()) + "\"";
  }
  if (value.is_array()) {
    std::string out = "[";
    const JsonValue::Array& arr = value.as_array();
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += json_render(arr[i]);
    }
    out += ']';
    return out;
  }
  std::string out = "{";
  const JsonValue::Object& obj = value.as_object();
  for (std::size_t i = 0; i < obj.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '"';
    out += json_escape(obj[i].first);
    out += "\":";
    out += json_render(obj[i].second);
  }
  out += '}';
  return out;
}

}  // namespace commroute::obs
