// Self-contained run reports: one streaming pass over any JSONL
// artifact this repo produces (engine/checker/sim event streams,
// campaign outputs, telemetry side channels, flight recordings — or a
// concatenation) builds a RunReport, which renders either as a single
// static HTML file (inline CSS, SVG sparklines, zero JavaScript, no
// network fetches) or as deterministic JSON.
//
// Determinism contract: report_json() is a pure function of the input
// bytes — no generation timestamp, hostname, or RSS enters the
// document — so CI can double-run `commroute-obs report --json` and
// byte-compare. The HTML shares the same property but is meant for
// humans, not diffing. Memory is bounded regardless of input length:
// event aggregation runs on StreamingSummarizer, time series are
// decimated to a fixed point budget, and heavy-hitter tables are
// TopK sketches.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/sketch.hpp"

namespace commroute::obs {

/// One numeric time series (telemetry gauge, progress fraction),
/// decimated deterministically: when the point budget fills, every
/// other point is dropped and the keep-stride doubles, so the series
/// always spans the whole stream with at most kSeriesCap points.
struct ReportSeries {
  static constexpr std::size_t kSeriesCap = 512;

  std::string name;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> points;  ///< (x, y)
  std::uint64_t samples = 0;  ///< points seen (>= points.size())
  std::uint64_t peak = 0;
  std::uint64_t last = 0;

  void add(std::uint64_t x, std::uint64_t y);

 private:
  std::uint64_t stride_ = 1;
};

/// Latest parsed log-histogram sketch of one labeled source
/// (`sim_summary.latency_hist`, `checker_summary.successor_hist`, ...).
struct ReportQuantiles {
  std::string label;
  std::uint64_t occurrences = 0;  ///< events that carried this sketch
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
};

/// Final state of one progress_snapshot source.
struct ReportProgress {
  std::string name;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  double fraction = 0.0;
  double rate_per_sec = 0.0;
  std::uint64_t eta_ms = 0;
  std::uint64_t updates = 0;
};

/// Everything the HTML/JSON renderers need, built in one pass.
struct RunReport {
  std::string source;  ///< input label (file path or "stdin")

  /// Per-event-type counts and duration percentiles (bounded memory).
  JsonlSummary events;

  /// telemetry_snapshot numeric fields over elapsed_ms (x axis).
  std::vector<ReportSeries> telemetry;
  /// progress_snapshot fraction (permille, y) over elapsed_ms per
  /// source name, plus the final snapshot per source.
  std::vector<ReportSeries> progress_series;
  std::vector<ReportProgress> progress;

  /// Embedded log-histogram sketches by label, latest occurrence.
  std::vector<ReportQuantiles> quantiles;
  /// Embedded top-K sketches by label, merged across occurrences
  /// (per-key counts add; the table is itself a TopK(16)).
  std::vector<std::pair<std::string, TopK>> topk;

  /// campaign_row aggregation.
  std::uint64_t campaign_rows = 0;
  std::map<std::string, std::uint64_t> outcome_counts;
  LogHistogram campaign_steps_hist;

  /// Causality: largest critical path seen on any event carrying one.
  std::uint64_t critical_path_events = 0;
  std::uint64_t critical_path_len_max = 0;
  std::uint64_t critical_path_us_max = 0;

  /// Flight-recording view (recording_header/step/footer lines): header
  /// metadata, per-node assignment-change heavy hitters (streamed — one
  /// previous assignment is kept, never the recording), footer totals.
  bool has_recording = false;
  std::string recording_instance;
  std::string recording_model;
  std::string recording_scheduler;
  std::string recording_outcome;
  std::uint64_t recording_seed = 0;
  std::uint64_t recording_nodes = 0;
  std::uint64_t recording_steps = 0;
  std::uint64_t recording_changes = 0;  ///< footer total (0 if absent)
  TopK recording_flappers{16};
};

/// One streaming pass over a JSONL stream. Never throws on malformed
/// lines (they are counted in events.malformed).
RunReport build_report(std::istream& in, std::string source);

/// Deterministic single-line JSON rendering (see file comment).
std::string report_json(const RunReport& report);

/// Self-contained static HTML document (inline CSS, SVG sparklines, no
/// scripts). `title` defaults to the source label when empty.
std::string report_html(const RunReport& report, const std::string& title);

}  // namespace commroute::obs
