#include "obs/events.hpp"

#include "obs/meta.hpp"
#include "support/error.hpp"

namespace commroute::obs {

FileSink::FileSink(const std::string& path, std::size_t flush_every)
    : out_(path, std::ios::trunc),
      flush_every_(flush_every == 0 ? 1 : flush_every) {
  CR_REQUIRE(out_.is_open(), "cannot open event sink file: " + path);
  // Every durable JSONL artifact opens with the self-describing meta
  // record (schema version, creation time, git describe, argv).
  emit(metadata_event());
}

}  // namespace commroute::obs
