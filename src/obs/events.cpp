#include "obs/events.hpp"

#include "support/error.hpp"

namespace commroute::obs {

FileSink::FileSink(const std::string& path) : out_(path, std::ios::trunc) {
  CR_REQUIRE(out_.is_open(), "cannot open event sink file: " + path);
}

}  // namespace commroute::obs
