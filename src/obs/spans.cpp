#include "obs/spans.hpp"

#include <algorithm>

namespace commroute::obs {

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    collector_ = other.collector_;
    id_ = other.id_;
    parent_ = other.parent_;
    tid_ = other.tid_;
    start_ = other.start_;
    name_ = std::move(other.name_);
    args_ = std::move(other.args_);
    has_args_ = other.has_args_;
    other.collector_ = nullptr;
  }
  return *this;
}

std::uint64_t Span::elapsed_us() const {
  if (collector_ == nullptr) {
    return 0;
  }
  const auto d = std::chrono::steady_clock::now() - start_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

void Span::finish() {
  if (collector_ == nullptr) {
    return;
  }
  const std::uint64_t dur_us = elapsed_us();
  collector_->record(*this, dur_us);
  collector_ = nullptr;
}

SpanCollector::ThreadState& SpanCollector::state_for(
    std::thread::id thread) {
  for (ThreadState& state : threads_) {
    if (state.thread == thread) {
      return state;
    }
  }
  threads_.push_back(ThreadState{thread, next_tid_++, {}});
  return threads_.back();
}

Span SpanCollector::begin(std::string_view name) {
  const auto start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  ThreadState& state = state_for(std::this_thread::get_id());
  const std::uint32_t id = next_id_++;
  const std::uint32_t parent = state.open.empty() ? 0 : state.open.back();
  state.open.push_back(id);
  return Span(this, id, parent, state.tid, start, name);
}

void SpanCollector::record(Span& span, std::uint64_t dur_us) {
  SpanRecord rec;
  rec.id = span.id_;
  rec.parent = span.parent_;
  rec.tid = span.tid_;
  rec.start_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(span.start_ -
                                                            epoch_)
          .count());
  rec.dur_us = dur_us;
  rec.name = std::move(span.name_);
  if (span.has_args_) {
    rec.args_json = span.args_.str();
  }

  std::lock_guard<std::mutex> lock(mutex_);
  // Close the span in its thread's open stack. RAII nesting makes this
  // the top entry; a moved span finished out of order is found deeper.
  for (ThreadState& state : threads_) {
    if (state.tid != span.tid_) {
      continue;
    }
    const auto it =
        std::find(state.open.rbegin(), state.open.rend(), span.id_);
    if (it != state.open.rend()) {
      state.open.erase(std::next(it).base());
    }
    break;
  }
  records_.push_back(std::move(rec));
}

void SpanCollector::merge_from(const SpanCollector& other) {
  if (&other == this) {
    return;
  }
  std::scoped_lock lock(mutex_, other.mutex_);
  const std::uint32_t id_base = next_id_ - 1;
  const std::uint32_t tid_base = next_tid_;
  const std::int64_t shift_us =
      std::chrono::duration_cast<std::chrono::microseconds>(other.epoch_ -
                                                            epoch_)
          .count();
  records_.reserve(records_.size() + other.records_.size());
  for (const SpanRecord& rec : other.records_) {
    SpanRecord merged = rec;
    merged.id += id_base;
    if (merged.parent != 0) {
      merged.parent += id_base;
    }
    merged.tid += tid_base;
    const std::int64_t ts = static_cast<std::int64_t>(rec.start_us) + shift_us;
    merged.start_us = ts > 0 ? static_cast<std::uint64_t>(ts) : 0;
    records_.push_back(std::move(merged));
  }
  next_id_ += other.next_id_ - 1;
  next_tid_ += other.next_tid_;
}

std::vector<SpanRecord> SpanCollector::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t SpanCollector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void spans_to_jsonl(const SpanCollector& collector, EventSink& sink) {
  for (const SpanRecord& rec : collector.snapshot()) {
    Event event("span");
    event.field("name", rec.name)
        .field("id", static_cast<std::uint64_t>(rec.id))
        .field("parent", static_cast<std::uint64_t>(rec.parent))
        .field("tid", static_cast<std::uint64_t>(rec.tid))
        .field("ts_us", rec.start_us)
        .field("dur_us", rec.dur_us);
    if (!rec.args_json.empty()) {
      event.raw_field("args", rec.args_json);
    }
    sink.emit(event);
  }
}

}  // namespace commroute::obs
